//! # adaptagg-obs
//!
//! Cluster-wide observability: structured span tracing, a small metrics
//! registry (counters / gauges / log₂ histograms over virtual **and**
//! wall time), and first-class trace events for the paper's adaptive
//! strategy switches (§3.2–§3.3).
//!
//! The design contract (DESIGN.md §11) is **zero cost when disabled**:
//!
//! - a disabled [`NodeTrace`] is a `None` — every call is a branch on a
//!   niche-optimised option and returns immediately, allocating nothing;
//! - tracing *never* records a [`CostEvent`][cost] and never advances the
//!   virtual clock, so enabling it cannot move a single virtual-time
//!   figure. `tests/cost_invariance.rs` pins this (and CI re-runs the
//!   whole suite with `ADAPTAGG_TRACE=1` to prove observer invariance);
//! - the allocation-free hot path (`tests/alloc_hot_path.rs`) is below
//!   this layer entirely: `AggTable` carries only plain integer counters.
//!
//! This crate is dependency-free by design: `exec` re-exports it, and the
//! layers above (`algos`, `cli`, `bench`) consume it through `exec` so no
//! dependency cycle forms. Time is passed *in* as plain `f64` virtual
//! milliseconds and a 4-component breakdown snapshot — obs never reaches
//! into the clock.
//!
//! [cost]: https://docs.rs/adaptagg-model

pub mod metrics;
pub mod render;
pub mod trace;

pub use metrics::{Histogram, MetricSet};
pub use trace::{
    LinkTrace, NodeTrace, NodeTraceReport, PhaseKind, PhaseTotal, RecoveryAttemptTrace,
    RecoverySummaryTrace, RunTrace, SpanRecord, SwitchCause, TraceEvent,
};
