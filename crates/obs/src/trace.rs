//! Structured span tracing for one simulated node, and the run-level
//! trace artifact.
//!
//! A [`NodeTrace`] is owned by the node context. Disabled (the default)
//! it is a bare `None`: every method is an early-return branch that
//! touches no heap and no clock. Enabled, it records phase spans (with
//! both virtual- and wall-time extents), first-class trace events (the
//! adaptive strategy switches of §3.2–§3.3, with trigger cause and tuple
//! offset), and a per-node [`MetricSet`].

use crate::metrics::{Histogram, MetricSet};
use std::time::Instant;

/// The span taxonomy (DESIGN.md §11). Every phase a node moves through
/// maps to one of these; the adaptive algorithms emit several per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Reading the base relation (interleaved with local aggregation).
    Scan,
    /// Draining / finalising the local aggregation state.
    LocalAgg,
    /// Hash-partitioning rows to their destination nodes.
    Partition,
    /// Receiving and merging partials (or repartitioned raws).
    Merge,
    /// Processing spilled overflow buckets.
    Spill,
    /// The sampling algorithm's estimation phase (§3.1).
    Sample,
    /// Sort-based local aggregation.
    Sort,
    /// One attempt of the query-level recovery driver.
    RecoveryAttempt,
}

impl PhaseKind {
    /// Every phase, in display order.
    pub const ALL: [PhaseKind; 8] = [
        PhaseKind::Scan,
        PhaseKind::LocalAgg,
        PhaseKind::Partition,
        PhaseKind::Merge,
        PhaseKind::Spill,
        PhaseKind::Sample,
        PhaseKind::Sort,
        PhaseKind::RecoveryAttempt,
    ];

    /// Stable lowercase name (used in JSON and metric names).
    pub fn name(&self) -> &'static str {
        match self {
            PhaseKind::Scan => "scan",
            PhaseKind::LocalAgg => "local-agg",
            PhaseKind::Partition => "partition",
            PhaseKind::Merge => "merge",
            PhaseKind::Spill => "spill",
            PhaseKind::Sample => "sample",
            PhaseKind::Sort => "sort",
            PhaseKind::RecoveryAttempt => "recovery-attempt",
        }
    }
}

impl std::fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an adaptive algorithm switched strategy mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchCause {
    /// A2P (§3.2): the local hash table filled — switch to
    /// repartitioning the remaining raw tuples.
    TableFull,
    /// ARep (§3.3): this node's own `initSeg` prefix showed too few
    /// distinct groups — fall back to Adaptive Two Phase.
    LowCardinalityLocal,
    /// ARep (§3.3): a peer announced its fallback — contagion.
    LowCardinalityPeer,
}

impl SwitchCause {
    /// Stable name for rendering.
    pub fn name(&self) -> &'static str {
        match self {
            SwitchCause::TableFull => "table-full",
            SwitchCause::LowCardinalityLocal => "low-cardinality-local",
            SwitchCause::LowCardinalityPeer => "low-cardinality-peer",
        }
    }
}

/// A first-class trace event. Strategy switches carry their trigger
/// cause and the tuple offset at which they fired — the observability
/// the adaptivity claim rests on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An adaptive algorithm changed strategy at `at_tuple` (tuples
    /// scanned on this node when the trigger fired) because of `cause`.
    StrategySwitch {
        /// Virtual milliseconds on the node clock when the switch fired.
        at_ms: f64,
        /// The trigger.
        cause: SwitchCause,
        /// Tuples this node had scanned when the trigger fired.
        at_tuple: u64,
    },
    /// The sampling coordinator's pre-run decision reached this node.
    SamplingDecision {
        /// Virtual milliseconds on the node clock at receipt.
        at_ms: f64,
        /// `true` → Repartitioning, `false` → Two Phase.
        use_repartitioning: bool,
        /// Distinct groups observed in the merged sample.
        groups_in_sample: u64,
    },
    /// The intra-node picker chose its physical table strategy
    /// (`intra.pick`). Names are the stable strategy spellings
    /// (`thread-local` / `shared` / `partitioned`).
    IntraPick {
        /// Virtual milliseconds on the node clock when recorded.
        at_ms: f64,
        /// The chosen strategy.
        strategy: &'static str,
        /// Morsel offset at which the decision landed.
        at_morsel: u64,
    },
    /// The intra-node picker switched strategies mid-scan
    /// (`intra.switch`).
    IntraSwitch {
        /// Virtual milliseconds on the node clock when recorded.
        at_ms: f64,
        /// Strategy rows were routed to before.
        from: &'static str,
        /// Strategy rows route to now.
        to: &'static str,
        /// Stable cause name (`high-distinct-rate` / `memory-pressure`).
        cause: &'static str,
        /// Morsel offset at which the change landed.
        at_morsel: u64,
    },
}

/// One completed phase span: virtual extent, wall extent, and the
/// virtual-time breakdown accumulated while it was open.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Which phase.
    pub phase: PhaseKind,
    /// Virtual ms at open.
    pub start_ms: f64,
    /// Virtual ms at close.
    pub end_ms: f64,
    /// Wall-clock microseconds the span was open.
    pub wall_us: u64,
    /// Virtual CPU ms accumulated inside the span.
    pub cpu_ms: f64,
    /// Virtual disk-I/O ms accumulated inside the span.
    pub io_ms: f64,
    /// Virtual network ms accumulated inside the span.
    pub net_ms: f64,
    /// Virtual wait ms accumulated inside the span.
    pub wait_ms: f64,
}

impl SpanRecord {
    /// Virtual duration.
    pub fn virt_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// Per-destination traffic totals for one outgoing link, copied out of
/// the fabric at harvest time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTrace {
    /// Destination node.
    pub to: usize,
    /// Messages handed to the link (data + control).
    pub msgs: u64,
    /// Data pages among them.
    pub pages: u64,
    /// Encoded payload bytes of those pages.
    pub bytes: u64,
    /// Tuples carried by those pages.
    pub tuples: u64,
    /// Retransmissions after injected drops.
    pub retries: u64,
    /// Injected drops on this link.
    pub drops: u64,
}

/// One attempt of the recovery driver, as seen from the cluster driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryAttemptTrace {
    /// 1-based attempt number that *failed* (the final successful
    /// attempt is not listed — the run result describes it).
    pub attempt: u32,
    /// The node blamed for the failure, if attributable.
    pub victim: Option<usize>,
    /// Virtual ms of progress lost when the attempt died.
    pub lost_ms: f64,
    /// Backoff charged before the next attempt.
    pub backoff_ms: f64,
}

struct OpenSpan {
    phase: PhaseKind,
    start_ms: f64,
    breakdown: [f64; 4],
    wall: Instant,
}

struct TraceData {
    node: usize,
    spans: Vec<SpanRecord>,
    open: Vec<OpenSpan>,
    events: Vec<TraceEvent>,
    metrics: MetricSet,
    links: Vec<LinkTrace>,
}

/// A per-node trace handle: `None` when disabled (the default), boxed
/// recording state when enabled. All methods are no-ops when disabled.
pub struct NodeTrace {
    inner: Option<Box<TraceData>>,
}

impl std::fmt::Debug for NodeTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("NodeTrace(off)"),
            Some(d) => write!(
                f,
                "NodeTrace(node {}, {} spans, {} events)",
                d.node,
                d.spans.len(),
                d.events.len()
            ),
        }
    }
}

impl Default for NodeTrace {
    fn default() -> Self {
        NodeTrace::off()
    }
}

impl NodeTrace {
    /// A disabled trace: every operation is a no-op.
    pub fn off() -> Self {
        NodeTrace { inner: None }
    }

    /// An enabled trace recording for `node`.
    pub fn on(node: usize) -> Self {
        NodeTrace {
            inner: Some(Box::new(TraceData {
                node,
                spans: Vec::new(),
                open: Vec::new(),
                events: Vec::new(),
                metrics: MetricSet::new(),
                links: Vec::new(),
            })),
        }
    }

    /// Whether this trace records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a phase span at virtual time `now_ms` with the given
    /// `[cpu, io, net, wait]` breakdown snapshot. Spans nest as a stack.
    pub fn span_start(&mut self, phase: PhaseKind, now_ms: f64, breakdown: [f64; 4]) {
        if let Some(d) = &mut self.inner {
            d.open.push(OpenSpan {
                phase,
                start_ms: now_ms,
                breakdown,
                wall: Instant::now(),
            });
        }
    }

    /// Close the innermost open span.
    pub fn span_end(&mut self, now_ms: f64, breakdown: [f64; 4]) {
        if let Some(d) = &mut self.inner {
            if let Some(open) = d.open.pop() {
                d.spans.push(close(open, now_ms, breakdown));
            }
        }
    }

    /// Record a trace event.
    pub fn event(&mut self, event: TraceEvent) {
        if let Some(d) = &mut self.inner {
            d.events.push(event);
        }
    }

    /// Add to a named counter.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        if let Some(d) = &mut self.inner {
            d.metrics.counter_add(name, delta);
        }
    }

    /// Set a named gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        if let Some(d) = &mut self.inner {
            d.metrics.gauge_set(name, value);
        }
    }

    /// Raise a named gauge to a high-water mark.
    pub fn gauge_max(&mut self, name: &'static str, value: f64) {
        if let Some(d) = &mut self.inner {
            d.metrics.gauge_max(name, value);
        }
    }

    /// Record one histogram sample.
    pub fn histogram_record(&mut self, name: &'static str, value: u64) {
        if let Some(d) = &mut self.inner {
            d.metrics.histogram_record(name, value);
        }
    }

    /// Attach per-link traffic totals (harvest time).
    pub fn set_links(&mut self, links: Vec<LinkTrace>) {
        if let Some(d) = &mut self.inner {
            d.links = links;
        }
    }

    /// Consume the trace into a report, closing any spans still open at
    /// `now_ms`. Returns `None` when disabled. Per-phase virtual/wall
    /// duration histograms are derived here so every enabled report
    /// carries them without the recording path paying for it.
    pub fn finish(&mut self, now_ms: f64, breakdown: [f64; 4]) -> Option<NodeTraceReport> {
        let mut d = self.inner.take()?;
        while let Some(open) = d.open.pop() {
            d.spans.push(close(open, now_ms, breakdown));
        }
        for span in &d.spans {
            let (virt_name, wall_name) = phase_histogram_names(span.phase);
            d.metrics
                .histogram_record(virt_name, (span.virt_ms() * 1000.0).max(0.0) as u64);
            d.metrics.histogram_record(wall_name, span.wall_us);
        }
        Some(NodeTraceReport {
            node: d.node,
            spans: d.spans,
            events: d.events,
            metrics: d.metrics,
            links: d.links,
        })
    }
}

fn close(open: OpenSpan, now_ms: f64, breakdown: [f64; 4]) -> SpanRecord {
    SpanRecord {
        phase: open.phase,
        start_ms: open.start_ms,
        end_ms: now_ms,
        wall_us: open.wall.elapsed().as_micros() as u64,
        cpu_ms: breakdown[0] - open.breakdown[0],
        io_ms: breakdown[1] - open.breakdown[1],
        net_ms: breakdown[2] - open.breakdown[2],
        wait_ms: breakdown[3] - open.breakdown[3],
    }
}

/// The per-phase histogram metric names (`phase.virt_us.*` /
/// `phase.wall_us.*`).
pub fn phase_histogram_names(phase: PhaseKind) -> (&'static str, &'static str) {
    match phase {
        PhaseKind::Scan => ("phase.virt_us.scan", "phase.wall_us.scan"),
        PhaseKind::LocalAgg => ("phase.virt_us.local-agg", "phase.wall_us.local-agg"),
        PhaseKind::Partition => ("phase.virt_us.partition", "phase.wall_us.partition"),
        PhaseKind::Merge => ("phase.virt_us.merge", "phase.wall_us.merge"),
        PhaseKind::Spill => ("phase.virt_us.spill", "phase.wall_us.spill"),
        PhaseKind::Sample => ("phase.virt_us.sample", "phase.wall_us.sample"),
        PhaseKind::Sort => ("phase.virt_us.sort", "phase.wall_us.sort"),
        PhaseKind::RecoveryAttempt => {
            ("phase.virt_us.recovery-attempt", "phase.wall_us.recovery-attempt")
        }
    }
}

/// Everything one node recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTraceReport {
    /// Node id (original ids, even after recovery reassignment).
    pub node: usize,
    /// Completed phase spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Trace events, in emission order.
    pub events: Vec<TraceEvent>,
    /// The node's metric set.
    pub metrics: MetricSet,
    /// Per-destination traffic totals.
    pub links: Vec<LinkTrace>,
}

impl NodeTraceReport {
    /// Total virtual ms spent in `phase` across all its spans.
    pub fn phase_ms(&self, phase: PhaseKind) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.virt_ms())
            .sum()
    }

    /// The strategy-switch events only.
    pub fn switches(&self) -> impl Iterator<Item = (SwitchCause, u64)> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::StrategySwitch { cause, at_tuple, .. } => Some((*cause, *at_tuple)),
            _ => None,
        })
    }
}

/// Aggregated per-phase totals across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotal {
    /// Spans observed.
    pub spans: u64,
    /// Total virtual ms.
    pub virt_ms: f64,
    /// Total wall microseconds.
    pub wall_us: u64,
}

/// Whole-run recovery totals, mirrored from the engine's
/// `RecoveryStats` (this crate stays independent of the exec layer, so
/// the engine copies its numbers in rather than being depended on).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoverySummaryTrace {
    /// Attempts the query took, counting the successful one.
    pub attempts: u32,
    /// Nodes declared dead, in failure order (original ids).
    pub dead_nodes: Vec<usize>,
    /// Partitions that changed owner across all recoveries.
    pub reassigned_partitions: u64,
    /// Virtual time wasted in failed attempts.
    pub lost_ms: f64,
    /// Virtual backoff charged between attempts.
    pub backoff_ms: f64,
}

/// The run-level trace artifact attached to a cluster outcome.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTrace {
    /// One report per node, in node order.
    pub nodes: Vec<NodeTraceReport>,
    /// Failed recovery attempts, in order (empty for fail-stop runs and
    /// runs that needed no recovery).
    pub recovery: Vec<RecoveryAttemptTrace>,
    /// Whole-run recovery totals (`None` when the producer ran
    /// fail-stop or predates recovery accounting).
    pub recovery_summary: Option<RecoverySummaryTrace>,
    /// The transport backend the run executed over (`"in-process"`,
    /// `"tcp-loopback"`, …) — a label, not a type, so this crate stays
    /// independent of the net layer. Empty when the producer predates
    /// transport selection.
    pub transport: String,
    /// Run-level annotations from layers above the engine (the serving
    /// scheduler records its queue/broker numbers here: admitted grant,
    /// queue wait, co-resident queries). Names are dotted lowercase
    /// (`serve.grant_entries`); values render as JSON numbers.
    pub annotations: Vec<(String, f64)>,
}

impl RunTrace {
    /// The report for `node`, if present.
    pub fn node(&self, node: usize) -> Option<&NodeTraceReport> {
        self.nodes.iter().find(|n| n.node == node)
    }

    /// Every `(node, event)` pair across the run.
    pub fn events(&self) -> impl Iterator<Item = (usize, &TraceEvent)> + '_ {
        self.nodes
            .iter()
            .flat_map(|n| n.events.iter().map(move |e| (n.node, e)))
    }

    /// Per-phase totals across all nodes, in [`PhaseKind::ALL`] order,
    /// omitting phases no node entered.
    pub fn phase_totals(&self) -> Vec<(PhaseKind, PhaseTotal)> {
        let mut out = Vec::new();
        for phase in PhaseKind::ALL {
            let mut total = PhaseTotal::default();
            for node in &self.nodes {
                for span in node.spans.iter().filter(|s| s.phase == phase) {
                    total.spans += 1;
                    total.virt_ms += span.virt_ms();
                    total.wall_us += span.wall_us;
                }
            }
            if total.spans > 0 {
                out.push((phase, total));
            }
        }
        out
    }

    /// Merged histogram of virtual span durations (µs) for `phase`
    /// across all nodes, if any node entered it.
    pub fn phase_histogram(&self, phase: PhaseKind) -> Option<Histogram> {
        let (virt_name, _) = phase_histogram_names(phase);
        let mut merged: Option<Histogram> = None;
        for node in &self.nodes {
            if let Some(h) = node.metrics.histogram(virt_name) {
                merged.get_or_insert_with(Histogram::new).merge(h);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_inert() {
        let mut t = NodeTrace::off();
        assert!(!t.enabled());
        t.span_start(PhaseKind::Scan, 0.0, [0.0; 4]);
        t.event(TraceEvent::StrategySwitch {
            at_ms: 1.0,
            cause: SwitchCause::TableFull,
            at_tuple: 7,
        });
        t.counter_add("x", 1);
        t.span_end(2.0, [0.0; 4]);
        assert!(t.finish(2.0, [0.0; 4]).is_none());
    }

    #[test]
    fn spans_nest_and_record_breakdown_deltas() {
        let mut t = NodeTrace::on(3);
        t.span_start(PhaseKind::Scan, 0.0, [0.0, 0.0, 0.0, 0.0]);
        t.span_start(PhaseKind::Spill, 5.0, [2.0, 3.0, 0.0, 0.0]);
        t.span_end(8.0, [2.0, 6.0, 0.0, 0.0]); // spill: 3 io ms
        t.span_end(10.0, [4.0, 6.0, 0.0, 0.0]); // scan: 4 cpu, 6 io
        let report = t.finish(10.0, [4.0, 6.0, 0.0, 0.0]).unwrap();
        assert_eq!(report.node, 3);
        assert_eq!(report.spans.len(), 2);
        let spill = &report.spans[0];
        assert_eq!(spill.phase, PhaseKind::Spill);
        assert_eq!(spill.virt_ms(), 3.0);
        assert_eq!(spill.io_ms, 3.0);
        let scan = &report.spans[1];
        assert_eq!(scan.phase, PhaseKind::Scan);
        assert_eq!(scan.virt_ms(), 10.0);
        assert_eq!(scan.cpu_ms, 4.0);
        assert_eq!(report.phase_ms(PhaseKind::Scan), 10.0);
    }

    #[test]
    fn unclosed_spans_are_closed_by_finish() {
        let mut t = NodeTrace::on(0);
        t.span_start(PhaseKind::Merge, 1.0, [0.0; 4]);
        let report = t.finish(4.0, [1.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].virt_ms(), 3.0);
    }

    #[test]
    fn finish_derives_phase_histograms() {
        let mut t = NodeTrace::on(0);
        t.span_start(PhaseKind::Scan, 0.0, [0.0; 4]);
        t.span_end(2.5, [0.0; 4]);
        let report = t.finish(2.5, [0.0; 4]).unwrap();
        let h = report.metrics.histogram("phase.virt_us.scan").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 2500);
        assert!(report.metrics.histogram("phase.wall_us.scan").is_some());
    }

    #[test]
    fn run_trace_aggregates_phases_and_events() {
        let mut a = NodeTrace::on(0);
        a.span_start(PhaseKind::Scan, 0.0, [0.0; 4]);
        a.span_end(2.0, [0.0; 4]);
        a.event(TraceEvent::StrategySwitch {
            at_ms: 1.0,
            cause: SwitchCause::TableFull,
            at_tuple: 42,
        });
        let mut b = NodeTrace::on(1);
        b.span_start(PhaseKind::Scan, 0.0, [0.0; 4]);
        b.span_end(3.0, [0.0; 4]);
        let run = RunTrace {
            nodes: vec![
                a.finish(2.0, [0.0; 4]).unwrap(),
                b.finish(3.0, [0.0; 4]).unwrap(),
            ],
            recovery: Vec::new(),
            transport: String::new(),
            ..RunTrace::default()
        };
        let totals = run.phase_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].0, PhaseKind::Scan);
        assert_eq!(totals[0].1.spans, 2);
        assert_eq!(totals[0].1.virt_ms, 5.0);
        assert_eq!(run.events().count(), 1);
        assert_eq!(run.node(0).unwrap().switches().next(), Some((SwitchCause::TableFull, 42)));
        assert_eq!(run.phase_histogram(PhaseKind::Scan).unwrap().count(), 2);
        assert!(run.phase_histogram(PhaseKind::Merge).is_none());
    }
}
