//! A minimal metrics registry: named counters, gauges, and log₂
//! histograms.
//!
//! Metric names are `&'static str` and sets are small (a node records a
//! few dozen metrics per run), so storage is an insertion-ordered vector
//! with linear lookup — no hashing, no allocation per update once a name
//! is registered, and deterministic rendering order for free.

/// A fixed-shape histogram over `u64` samples with power-of-two buckets:
/// bucket `i` counts samples whose value has `i` significant bits
/// (bucket 0 is the value `0`). 65 buckets cover the full `u64` range,
/// so recording never allocates and never saturates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize; // 0 for value 0
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (0.0–1.0): the exclusive
    /// upper edge of the bucket holding the `⌈q·count⌉`-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << (i - 1)).saturating_mul(2) - 1 };
            }
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound_exclusive_log2, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An insertion-ordered set of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter, registering it at zero first if
    /// this is its first update.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += delta;
        } else {
            self.counters.push((name, delta));
        }
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        if let Some(slot) = self.gauges.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.gauges.push((name, value));
        }
    }

    /// Raise the named gauge to `value` if it exceeds the current value
    /// (registering it otherwise) — for high-water marks recorded from
    /// several phases.
    pub fn gauge_max(&mut self, name: &'static str, value: f64) {
        if let Some(slot) = self.gauges.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = slot.1.max(value);
        } else {
            self.gauges.push((name, value));
        }
    }

    /// Record one sample into the named histogram.
    pub fn histogram_record(&mut self, name: &'static str, value: u64) {
        if let Some(slot) = self.histograms.iter_mut().find(|(n, _)| *n == name) {
            slot.1.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.push((name, h));
        }
    }

    /// Current value of a counter (0 when never updated).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// All counters in registration order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All gauges in registration order.
    pub fn gauges(&self) -> &[(&'static str, f64)] {
        &self.gauges
    }

    /// All histograms in registration order.
    pub fn histograms(&self) -> &[(&'static str, Histogram)] {
        &self.histograms
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3.
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 1));
        assert_eq!(buckets[2], (2, 2));
        assert_eq!(buckets[3], (3, 1));
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert!(h.quantile(0.5) >= 50, "p50 {} below median", h.quantile(0.5));
        assert!(h.quantile(1.0) >= 100);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 505);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn metric_set_registers_and_accumulates() {
        let mut m = MetricSet::new();
        m.counter_add("net.pages", 3);
        m.counter_add("net.pages", 2);
        m.gauge_set("occupancy", 0.5);
        m.gauge_set("occupancy", 0.75);
        m.gauge_max("peak", 4.0);
        m.gauge_max("peak", 2.0);
        assert_eq!(m.gauge("peak"), Some(4.0));
        m.histogram_record("probe_len", 1);
        m.histogram_record("probe_len", 9);
        assert_eq!(m.counter("net.pages"), 5);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.gauge("occupancy"), Some(0.75));
        assert_eq!(m.histogram("probe_len").unwrap().count(), 2);
        assert!(!m.is_empty());
    }
}
