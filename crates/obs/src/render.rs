//! Rendering a [`RunTrace`] as JSON or human-readable text.
//!
//! Hand-written JSON, same as the bench harness: the workspace carries no
//! JSON dependency and every value here is a number or a known-safe
//! static label, so escaping is a non-issue.

use crate::trace::{
    NodeTraceReport, RunTrace, SpanRecord, SwitchCause, TraceEvent,
};

impl RunTrace {
    /// The machine-readable trace document (`adaptagg-trace/v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"adaptagg-trace/v1\",\n  \"nodes\": [\n");
        for (ni, node) in self.nodes.iter().enumerate() {
            node_json(&mut s, node);
            s.push_str(if ni + 1 < self.nodes.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"recovery_attempts\": [");
        for (ri, r) in self.recovery.iter().enumerate() {
            if ri > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"attempt\": {}, \"victim\": {}, \"lost_ms\": {:.6}, \"backoff_ms\": {:.6}}}",
                r.attempt,
                r.victim.map_or("null".to_string(), |v| v.to_string()),
                r.lost_ms,
                r.backoff_ms
            ));
        }
        s.push_str("],\n  \"recovery\": ");
        match &self.recovery_summary {
            Some(r) => {
                s.push_str(&format!(
                    "{{\"attempts\": {}, \"dead_nodes\": [{}], \
                     \"reassigned_partitions\": {}, \"lost_ms\": {:.6}, \"backoff_ms\": {:.6}}}",
                    r.attempts,
                    r.dead_nodes
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    r.reassigned_partitions,
                    r.lost_ms,
                    r.backoff_ms
                ));
            }
            None => s.push_str("null"),
        }
        s.push_str(&format!(
            ",\n  \"transport\": \"{}\"",
            self.transport.replace('"', "'")
        ));
        s.push_str(",\n  \"annotations\": {");
        for (i, (name, value)) in self.annotations.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {value}", name.replace('"', "'")));
        }
        s.push_str("}\n}\n");
        s
    }

    /// A per-node, per-phase text breakdown for terminals.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for node in &self.nodes {
            s.push_str(&format!("node {}\n", node.node));
            if node.spans.is_empty() {
                s.push_str("  (no phase spans)\n");
            }
            for span in &node.spans {
                s.push_str(&format!(
                    "  {:<17} {:>10.3} ms virtual  [cpu {:.3} io {:.3} net {:.3} wait {:.3}]  {:>8} us wall\n",
                    span.phase.name(),
                    span.virt_ms(),
                    span.cpu_ms,
                    span.io_ms,
                    span.net_ms,
                    span.wait_ms,
                    span.wall_us
                ));
            }
            for event in &node.events {
                s.push_str(&format!("  event: {}\n", event_text(event)));
            }
            for &(name, v) in node.metrics.counters() {
                s.push_str(&format!("  {name} = {v}\n"));
            }
            for &(name, v) in node.metrics.gauges() {
                s.push_str(&format!("  {name} = {v:.4}\n"));
            }
            for link in &node.links {
                if link.msgs == 0 {
                    continue;
                }
                s.push_str(&format!(
                    "  link ->{}: {} msgs, {} pages, {} bytes, {} tuples, {} retries, {} drops\n",
                    link.to, link.msgs, link.pages, link.bytes, link.tuples,
                    link.retries, link.drops
                ));
            }
        }
        if !self.recovery.is_empty() {
            s.push_str("recovery\n");
            for r in &self.recovery {
                s.push_str(&format!(
                    "  attempt {} failed: victim {}, lost {:.3} ms, backoff {:.3} ms\n",
                    r.attempt,
                    r.victim.map_or("unattributed".to_string(), |v| format!("node {v}")),
                    r.lost_ms,
                    r.backoff_ms
                ));
            }
        }
        if let Some(r) = &self.recovery_summary {
            s.push_str(&format!(
                "recovery summary: {} attempt(s), dead {:?}, {} partition(s) reassigned, \
                 lost {:.3} ms + backoff {:.3} ms\n",
                r.attempts, r.dead_nodes, r.reassigned_partitions, r.lost_ms, r.backoff_ms
            ));
        }
        for (name, value) in &self.annotations {
            s.push_str(&format!("annotation: {name} = {value}\n"));
        }
        s
    }
}

fn node_json(s: &mut String, node: &NodeTraceReport) {
    s.push_str(&format!("    {{\"node\": {}, \"phases\": [", node.node));
    for (si, span) in node.spans.iter().enumerate() {
        if si > 0 {
            s.push_str(", ");
        }
        span_json(s, span);
    }
    s.push_str("], \"events\": [");
    for (ei, event) in node.events.iter().enumerate() {
        if ei > 0 {
            s.push_str(", ");
        }
        s.push_str(&event_json(event));
    }
    s.push_str("], \"counters\": {");
    for (ci, &(name, v)) in node.metrics.counters().iter().enumerate() {
        if ci > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{name}\": {v}"));
    }
    s.push_str("}, \"gauges\": {");
    for (gi, &(name, v)) in node.metrics.gauges().iter().enumerate() {
        if gi > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{name}\": {v:.6}"));
    }
    s.push_str("}, \"histograms\": {");
    for (hi, (name, h)) in node.metrics.histograms().iter().enumerate() {
        if hi > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "\"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}}}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.quantile(0.5)
        ));
    }
    s.push_str("}, \"links\": [");
    for (li, link) in node.links.iter().enumerate() {
        if li > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"to\": {}, \"msgs\": {}, \"pages\": {}, \"bytes\": {}, \"tuples\": {}, \"retries\": {}, \"drops\": {}}}",
            link.to, link.msgs, link.pages, link.bytes, link.tuples, link.retries, link.drops
        ));
    }
    s.push_str("]}");
}

fn span_json(s: &mut String, span: &SpanRecord) {
    s.push_str(&format!(
        "{{\"phase\": \"{}\", \"start_ms\": {:.6}, \"end_ms\": {:.6}, \"wall_us\": {}, \
         \"cpu_ms\": {:.6}, \"io_ms\": {:.6}, \"net_ms\": {:.6}, \"wait_ms\": {:.6}}}",
        span.phase.name(),
        span.start_ms,
        span.end_ms,
        span.wall_us,
        span.cpu_ms,
        span.io_ms,
        span.net_ms,
        span.wait_ms
    ));
}

fn event_json(event: &TraceEvent) -> String {
    match event {
        TraceEvent::StrategySwitch { at_ms, cause, at_tuple } => format!(
            "{{\"kind\": \"strategy-switch\", \"at_ms\": {at_ms:.6}, \"cause\": \"{}\", \"at_tuple\": {at_tuple}}}",
            cause.name()
        ),
        TraceEvent::SamplingDecision { at_ms, use_repartitioning, groups_in_sample } => format!(
            "{{\"kind\": \"sampling-decision\", \"at_ms\": {at_ms:.6}, \"use_repartitioning\": {use_repartitioning}, \"groups_in_sample\": {groups_in_sample}}}"
        ),
        TraceEvent::IntraPick { at_ms, strategy, at_morsel } => format!(
            "{{\"kind\": \"intra.pick\", \"at_ms\": {at_ms:.6}, \"strategy\": \"{strategy}\", \"at_morsel\": {at_morsel}}}"
        ),
        TraceEvent::IntraSwitch { at_ms, from, to, cause, at_morsel } => format!(
            "{{\"kind\": \"intra.switch\", \"at_ms\": {at_ms:.6}, \"from\": \"{from}\", \"to\": \"{to}\", \"cause\": \"{cause}\", \"at_morsel\": {at_morsel}}}"
        ),
    }
}

fn event_text(event: &TraceEvent) -> String {
    match event {
        TraceEvent::StrategySwitch { at_ms, cause, at_tuple } => {
            let what = match cause {
                SwitchCause::TableFull => "switched to repartitioning",
                SwitchCause::LowCardinalityLocal | SwitchCause::LowCardinalityPeer => {
                    "fell back to two-phase"
                }
            };
            format!("{what} at tuple {at_tuple} ({}; {at_ms:.3} ms virtual)", cause.name())
        }
        TraceEvent::SamplingDecision { at_ms, use_repartitioning, groups_in_sample } => {
            format!(
                "sampling chose {} ({groups_in_sample} groups in sample; {at_ms:.3} ms virtual)",
                if *use_repartitioning { "repartitioning" } else { "two-phase" }
            )
        }
        TraceEvent::IntraPick { at_ms, strategy, at_morsel } => {
            format!("intra-node picker chose {strategy} at morsel {at_morsel} ({at_ms:.3} ms virtual)")
        }
        TraceEvent::IntraSwitch { at_ms, from, to, cause, at_morsel } => {
            format!(
                "intra-node strategy switched {from} → {to} at morsel {at_morsel} ({cause}; {at_ms:.3} ms virtual)"
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LinkTrace, NodeTrace, PhaseKind, RecoveryAttemptTrace};

    fn sample_trace() -> RunTrace {
        let mut t = NodeTrace::on(0);
        t.span_start(PhaseKind::Scan, 0.0, [0.0; 4]);
        t.event(TraceEvent::StrategySwitch {
            at_ms: 1.5,
            cause: SwitchCause::TableFull,
            at_tuple: 100,
        });
        t.span_end(2.0, [1.0, 0.5, 0.0, 0.5]);
        t.counter_add("hashagg.raw_in", 100);
        t.set_links(vec![LinkTrace { to: 1, msgs: 4, pages: 3, bytes: 600, tuples: 30, retries: 1, drops: 1 }]);
        RunTrace {
            nodes: vec![t.finish(2.0, [1.0, 0.5, 0.0, 0.5]).unwrap()],
            recovery: vec![RecoveryAttemptTrace {
                attempt: 1,
                victim: Some(2),
                lost_ms: 12.5,
                backoff_ms: 5.0,
            }],
            recovery_summary: Some(crate::trace::RecoverySummaryTrace {
                attempts: 2,
                dead_nodes: vec![2],
                reassigned_partitions: 3,
                lost_ms: 12.5,
                backoff_ms: 5.0,
            }),
            transport: "in-process".into(),
            annotations: vec![("serve.grant_entries".into(), 400.0)],
        }
    }

    #[test]
    fn json_contains_schema_phases_events_and_links() {
        let json = sample_trace().to_json();
        assert!(json.contains("\"schema\": \"adaptagg-trace/v1\""));
        assert!(json.contains("\"phase\": \"scan\""));
        assert!(json.contains("\"kind\": \"strategy-switch\""));
        assert!(json.contains("\"cause\": \"table-full\""));
        assert!(json.contains("\"at_tuple\": 100"));
        assert!(json.contains("\"hashagg.raw_in\": 100"));
        assert!(json.contains("\"to\": 1"));
        assert!(json.contains("\"attempt\": 1"));
        assert!(json.contains("\"recovery\": {\"attempts\": 2, \"dead_nodes\": [2]"));
        assert!(json.contains("\"reassigned_partitions\": 3"));
        assert!(json.contains("\"transport\": \"in-process\""));
        assert!(json.contains("\"annotations\": {\"serve.grant_entries\": 400}"));
        // Balanced braces (cheap well-formedness check, same spirit as
        // the bench harness's extract_object).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn text_shows_switch_event_and_phase_line() {
        let text = sample_trace().to_text();
        assert!(text.contains("node 0"));
        assert!(text.contains("scan"));
        assert!(text.contains("switched to repartitioning at tuple 100"));
        assert!(text.contains("link ->1"));
        assert!(text.contains("attempt 1 failed"));
    }
}
