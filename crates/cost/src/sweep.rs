//! Selectivity sweeps and scaleup experiments.

use crate::breakdown::CostBreakdown;
use crate::config::ModelConfig;
use std::fmt;

/// The algorithms the model covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostAlgorithm {
    /// §2.1.
    CentralizedTwoPhase,
    /// §2.2.
    TwoPhase,
    /// §2.3.
    Repartitioning,
    /// §3.1.
    Sampling,
    /// §3.2.
    AdaptiveTwoPhase,
    /// §3.3.
    AdaptiveRepartitioning,
}

impl CostAlgorithm {
    /// Figure 1's cast (the traditional algorithms).
    pub const TRADITIONAL: [CostAlgorithm; 3] = [
        CostAlgorithm::CentralizedTwoPhase,
        CostAlgorithm::TwoPhase,
        CostAlgorithm::Repartitioning,
    ];

    /// Figures 3/4's cast (statics for context + the proposed three).
    pub const PROPOSED: [CostAlgorithm; 5] = [
        CostAlgorithm::TwoPhase,
        CostAlgorithm::Repartitioning,
        CostAlgorithm::Sampling,
        CostAlgorithm::AdaptiveTwoPhase,
        CostAlgorithm::AdaptiveRepartitioning,
    ];

    /// Plot label.
    pub fn label(&self) -> &'static str {
        match self {
            CostAlgorithm::CentralizedTwoPhase => "C-2P",
            CostAlgorithm::TwoPhase => "2P",
            CostAlgorithm::Repartitioning => "Rep",
            CostAlgorithm::Sampling => "Samp",
            CostAlgorithm::AdaptiveTwoPhase => "A-2P",
            CostAlgorithm::AdaptiveRepartitioning => "A-Rep",
        }
    }

    /// Evaluate the model at grouping selectivity `s`.
    pub fn cost(&self, cfg: &ModelConfig, s: f64) -> CostBreakdown {
        match self {
            CostAlgorithm::CentralizedTwoPhase => crate::c2p::cost(cfg, s),
            CostAlgorithm::TwoPhase => crate::twophase::cost(cfg, s),
            CostAlgorithm::Repartitioning => crate::repart::cost(cfg, s),
            CostAlgorithm::Sampling => crate::sampling::cost(cfg, s),
            CostAlgorithm::AdaptiveTwoPhase => crate::a2p::cost(cfg, s),
            CostAlgorithm::AdaptiveRepartitioning => crate::arep::cost(cfg, s),
        }
    }
}

impl fmt::Display for CostAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Grouping selectivity.
    pub selectivity: f64,
    /// Number of groups (`S·|R|`).
    pub groups: f64,
    /// Predicted time per algorithm, in sweep's algorithm order.
    pub times_ms: Vec<f64>,
}

/// Log-spaced selectivities from scalar aggregation (`1/|R|`) to
/// duplicate elimination (`0.5`), the paper's full evaluation range.
pub fn selectivity_grid(cfg: &ModelConfig, points_per_decade: usize) -> Vec<f64> {
    let lo = 1.0 / cfg.tuples;
    let hi = 0.5;
    let decades = (hi / lo).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize;
    let mut out = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let s = lo * 10f64.powf(decades * i as f64 / n as f64);
        out.push(s.min(hi));
    }
    out.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON);
    out
}

/// Sweep the model over the full selectivity range.
pub fn selectivity_sweep(
    cfg: &ModelConfig,
    algorithms: &[CostAlgorithm],
    points_per_decade: usize,
) -> Vec<SweepPoint> {
    selectivity_grid(cfg, points_per_decade)
        .into_iter()
        .map(|s| SweepPoint {
            selectivity: s,
            groups: (s * cfg.tuples).max(1.0),
            times_ms: algorithms.iter().map(|a| a.cost(cfg, s).total_ms()).collect(),
        })
        .collect()
}

/// Scaleup (Figures 5–6): hold the per-node load fixed (`|R| = base · N`)
/// and grow the cluster. Returns `(N, time_ms, scaleup)` per size, where
/// `scaleup = time(1) / time(N)` (ideal = 1.0).
pub fn scaleup_curve(
    base: &ModelConfig,
    algorithm: CostAlgorithm,
    s_per_relation: f64,
    node_counts: &[usize],
    tuples_per_node: f64,
) -> Vec<(usize, f64, f64)> {
    let time_at = |n: usize| {
        let cfg = ModelConfig {
            nodes: n,
            tuples: tuples_per_node * n as f64,
            ..base.clone()
        };
        algorithm.cost(&cfg, s_per_relation).total_ms()
    };
    let t1 = time_at(1);
    node_counts
        .iter()
        .map(|&n| {
            let t = time_at(n);
            (n, t, t1 / t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spans_the_paper_range() {
        let cfg = ModelConfig::paper_standard();
        let grid = selectivity_grid(&cfg, 4);
        assert!((grid[0] - 1.0 / cfg.tuples).abs() < 1e-12);
        assert!((grid.last().unwrap() - 0.5).abs() < 1e-9);
        assert!(grid.len() > 20);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_rows_are_consistent() {
        let cfg = ModelConfig::paper_standard();
        let algos = [CostAlgorithm::TwoPhase, CostAlgorithm::Repartitioning];
        let rows = selectivity_sweep(&cfg, &algos, 2);
        for row in &rows {
            assert_eq!(row.times_ms.len(), 2);
            assert!(row.times_ms.iter().all(|t| *t > 0.0));
        }
    }

    #[test]
    fn figure1_crossover_exists() {
        // 2P wins on the left, Rep on the right, and they cross.
        let cfg = ModelConfig::paper_standard();
        let algos = [CostAlgorithm::TwoPhase, CostAlgorithm::Repartitioning];
        let rows = selectivity_sweep(&cfg, &algos, 4);
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(first.times_ms[0] < first.times_ms[1], "2P wins at scalar");
        assert!(last.times_ms[1] < last.times_ms[0], "Rep wins at dup-elim");
    }

    #[test]
    fn adaptive_algorithms_scale_nearly_ideally() {
        // Figures 5–6: near-ideal scaleup at both selectivity extremes.
        let base = ModelConfig::paper_standard();
        for (alg, s) in [
            (CostAlgorithm::AdaptiveTwoPhase, 2.0e-6),
            (CostAlgorithm::AdaptiveRepartitioning, 2.0e-6),
            (CostAlgorithm::AdaptiveTwoPhase, 0.25),
            (CostAlgorithm::AdaptiveRepartitioning, 0.25),
        ] {
            let curve = scaleup_curve(&base, alg, s, &[1, 8, 32], 250_000.0);
            for &(n, t, scaleup) in &curve {
                assert!(
                    scaleup > 0.8,
                    "{alg:?} at S={s}: scaleup {scaleup} at N={n} (t={t})"
                );
            }
        }
    }

    #[test]
    fn sampling_scaleup_is_suboptimal() {
        // §4: the per-node sampling overhead is constant, so Samp's
        // scaleup sits below the adaptives'.
        let base = ModelConfig::paper_standard();
        let samp = scaleup_curve(&base, CostAlgorithm::Sampling, 2.0e-6, &[32], 250_000.0);
        let a2p = scaleup_curve(
            &base,
            CostAlgorithm::AdaptiveTwoPhase,
            2.0e-6,
            &[32],
            250_000.0,
        );
        assert!(samp[0].2 < a2p[0].2, "Samp {} >= A2P {}", samp[0].2, a2p[0].2);
    }
}
