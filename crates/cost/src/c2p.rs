//! §2.1 — Centralized Two Phase cost model.

use crate::breakdown::{CostBreakdown, PhaseCost};
use crate::config::{overflow_io_ms, ModelConfig, Selectivities};

/// The shared phase-1 (local aggregation) cost, per node. Term-by-term
/// from §2.1's bullet list:
///
/// * scan: `(R_i/P)·IO`
/// * select: `|R_i|·(t_r+t_w)`
/// * local aggregation: `|R_i|·(t_r+t_h+t_a)`
/// * overflow: `max(0, 1−M/G_local) · p·R_i/P · 2·IO` (corrected)
/// * result generation: `G_local·t_w`
/// * send: `(p·R_i·S_l/P)·(m_p + m_l)`
pub fn local_phase(cfg: &ModelConfig, sel: &Selectivities) -> PhaseCost {
    let p = &cfg.params;
    let tuples_i = cfg.tuples_per_node();
    let bytes_i = cfg.bytes_per_node();
    let local_groups = sel.local_groups(tuples_i);
    let projected_bytes_i = bytes_i * p.projectivity;

    let io = cfg.pages(bytes_i) * cfg.scan_io_ms()
        + overflow_io_ms(
            local_groups,
            projected_bytes_i,
            p.max_hash_entries,
            p.page_bytes,
            p.io_seq_ms,
        );
    let out_bytes = local_groups * cfg.projected_tuple_bytes();
    let out_pages = cfg.pages(out_bytes);
    let cpu = tuples_i * (p.t_read() + p.t_write())
        + tuples_i * (p.t_read() + p.t_hash() + p.t_agg())
        + local_groups * p.t_write()
        + out_pages * p.t_msg_protocol();
    let net = cfg.net_transfer_ms(out_pages);
    PhaseCost::new("local agg", cpu, io, net)
}

/// Full C2P cost: local phase + the coordinator's sequential merge.
pub fn cost(cfg: &ModelConfig, s: f64) -> CostBreakdown {
    let sel = cfg.selectivities(s);
    let p = &cfg.params;
    let local = local_phase(cfg, &sel);

    // Everything lands on one coordinator: |G| = |R|·S_l rows.
    let incoming_rows = sel.local_groups(cfg.tuples_per_node()) * cfg.nodes as f64;
    let incoming_bytes = incoming_rows * cfg.projected_tuple_bytes();
    let out_bytes = sel.groups * cfg.projected_tuple_bytes();

    let cpu = cfg.pages(incoming_bytes) * p.t_msg_protocol()
        + incoming_rows * (p.t_read() + p.t_agg())
        + sel.groups * p.t_write();
    let io = overflow_io_ms(
        sel.groups,
        incoming_bytes,
        p.max_hash_entries,
        p.page_bytes,
        p.io_seq_ms,
    ) + cfg.pages(out_bytes) * cfg.scan_io_ms();

    CostBreakdown::new(vec![local, PhaseCost::new("central merge", cpu, io, 0.0)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_grows_with_selectivity() {
        let cfg = ModelConfig::paper_standard();
        let low = cost(&cfg, 1e-6).total_ms();
        let high = cost(&cfg, 0.01).total_ms();
        assert!(high > low * 2.0, "low {low}, high {high}");
    }

    #[test]
    fn coordinator_is_a_sequential_bottleneck() {
        // At moderate selectivity the central merge phase dominates the
        // parallel local phase.
        let cfg = ModelConfig::paper_standard();
        let b = cost(&cfg, 0.01); // 80K groups
        assert!(b.phases[1].total_ms() > b.phases[0].total_ms());
    }

    #[test]
    fn scalar_aggregation_is_cheap() {
        let cfg = ModelConfig::paper_standard();
        let b = cost(&cfg, 1.0 / cfg.tuples);
        // Dominated by the local scan, merge is negligible.
        assert!(b.phases[1].total_ms() < 0.1 * b.phases[0].total_ms());
    }
}
