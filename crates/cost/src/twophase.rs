//! §2.2 — Two Phase cost model.

use crate::breakdown::{CostBreakdown, PhaseCost};
use crate::c2p::local_phase;
use crate::config::{overflow_io_ms, ModelConfig, Selectivities};

/// The parallel merge phase, per node. From §2.2's bullet list with the
/// overflow correction:
///
/// * receive: `(G_i/P)·m_p` where `|G_i| = |R_i|·S_l`
/// * merge: `|G_i|·(t_r + t_a)`
/// * result generation: `|G_i|·S_g·t_w` → `G/N` rows
/// * overflow: `max(0, 1−M/(G/N)) · G_i/P · 2·IO`
/// * store: `(G_i·S_g/P)·IO`
pub fn merge_phase(cfg: &ModelConfig, sel: &Selectivities) -> PhaseCost {
    let p = &cfg.params;
    // Each node receives an equal share of all partials: |R|·S_l / N.
    let incoming_rows = sel.local_groups(cfg.tuples_per_node());
    let incoming_bytes = incoming_rows * cfg.projected_tuple_bytes();
    let merge_groups = sel.merge_groups(cfg.nodes);
    let out_bytes = merge_groups * cfg.projected_tuple_bytes();

    let cpu = cfg.pages(incoming_bytes) * p.t_msg_protocol()
        + incoming_rows * (p.t_read() + p.t_agg())
        + merge_groups * p.t_write();
    let io = overflow_io_ms(
        merge_groups,
        incoming_bytes,
        p.max_hash_entries,
        p.page_bytes,
        p.io_seq_ms,
    ) + cfg.pages(out_bytes) * cfg.scan_io_ms();
    PhaseCost::new("parallel merge", cpu, io, 0.0)
}

/// Full Two Phase cost.
pub fn cost(cfg: &ModelConfig, s: f64) -> CostBreakdown {
    let sel = cfg.selectivities(s);
    CostBreakdown::new(vec![local_phase(cfg, &sel), merge_phase(cfg, &sel)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_c2p_when_groups_are_plentiful() {
        let cfg = ModelConfig::paper_standard();
        for s in [1e-4, 1e-3, 1e-2] {
            let tp = cost(&cfg, s).total_ms();
            let c2p = crate::c2p::cost(&cfg, s).total_ms();
            assert!(tp < c2p, "S={s}: 2P {tp} >= C2P {c2p}");
        }
    }

    #[test]
    fn matches_c2p_at_scalar_aggregation() {
        // One group: both merge phases are trivial.
        let cfg = ModelConfig::paper_standard();
        let s = 1.0 / cfg.tuples;
        let tp = cost(&cfg, s).total_ms();
        let c2p = crate::c2p::cost(&cfg, s).total_ms();
        assert!((tp - c2p).abs() / c2p < 0.01);
    }

    #[test]
    fn memory_knee_is_visible() {
        // Past G_local = M the local phase pays intermediate I/O: cost
        // jumps between S just below and above the knee.
        let cfg = ModelConfig::paper_standard();
        let m = cfg.params.max_hash_entries as f64;
        let tuples_i = cfg.tuples_per_node();
        // S at which local groups hit M: S_l·|R_i| = M → S = M/(N·|R_i|)·N = M/|R|… derive:
        let s_knee = m / cfg.tuples; // S·N·|R_i| = M ⇒ S = M/|R|
        let below = cost(&cfg, s_knee * 0.5);
        let above = cost(&cfg, s_knee * 8.0);
        assert!(
            above.total_ms() > below.total_ms() * 1.15,
            "knee not visible: below {}, above {} (knee S={s_knee}, tuples_i={tuples_i})",
            below.total_ms(),
            above.total_ms()
        );
        // The jump is intermediate I/O: below the knee the local phase's
        // I/O is scan-only, above it is not.
        let scan_only = cfg.pages(cfg.bytes_per_node()) * cfg.params.io_seq_ms;
        assert!((below.phases[0].io_ms - scan_only).abs() < 1e-6);
        assert!(above.phases[0].io_ms > scan_only * 1.2);
    }
}
