//! §2.3 — Repartitioning cost model.

use crate::breakdown::{CostBreakdown, PhaseCost};
use crate::config::{overflow_io_ms, ModelConfig};

/// Full Repartitioning cost. §2.3's bullet list:
///
/// * scan: `(R_i/P)·IO`
/// * select: `|R_i|·(t_r+t_w+t_h+t_d)`
/// * repartition: `p·R_i/P·(m_p + m_l + m_p)`
/// * aggregate: received tuples `·(t_r+t_a)`
/// * overflow: corrected term over the received bytes
/// * result generation: received groups `· t_w` (printed as `t_r`;
///   deviation #2)
/// * store: result pages `· IO`
///
/// Under-utilization (deviation #3): when `G < N` only `G` nodes receive
/// data; the busiest node absorbs `|R|/min(G,N)` tuples and holds
/// `G/min(G,N)` groups.
pub fn cost(cfg: &ModelConfig, s: f64) -> CostBreakdown {
    let sel = cfg.selectivities(s);
    let p = &cfg.params;
    let tuples_i = cfg.tuples_per_node();
    let bytes_i = cfg.bytes_per_node();
    let projected_bytes_i = bytes_i * p.projectivity;
    let send_pages = cfg.pages(projected_bytes_i);

    // Phase 1: scan + partition + send.
    let cpu1 = tuples_i * (p.t_read() + p.t_write() + p.t_hash() + p.t_dest())
        + send_pages * p.t_msg_protocol();
    let io1 = cfg.pages(bytes_i) * cfg.scan_io_ms();
    let net1 = cfg.net_transfer_ms(send_pages);
    let phase1 = PhaseCost::new("partition", cpu1, io1, net1);

    // Phase 2: the busiest receiving node.
    let receivers = sel.groups.min(cfg.nodes as f64).max(1.0);
    let recv_tuples = cfg.tuples / receivers;
    let recv_bytes = recv_tuples * cfg.projected_tuple_bytes();
    let groups_here = sel.groups / receivers;
    let out_bytes = groups_here * cfg.projected_tuple_bytes();

    let cpu2 = cfg.pages(recv_bytes) * p.t_msg_protocol()
        + recv_tuples * (p.t_read() + p.t_agg())
        + groups_here * p.t_write();
    let io2 = overflow_io_ms(
        groups_here,
        recv_bytes,
        p.max_hash_entries,
        p.page_bytes,
        p.io_seq_ms,
    ) + cfg.pages(out_bytes) * cfg.scan_io_ms();
    let phase2 = PhaseCost::new("aggregate", cpu2, io2, 0.0);

    CostBreakdown::new(vec![phase1, phase2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::NetworkKind;

    #[test]
    fn flat_across_high_selectivities() {
        // Rep's defining property: cost barely moves with S once G >= N
        // and G/N <= M.
        let cfg = ModelConfig::paper_standard();
        let a = cost(&cfg, 1e-5).total_ms(); // G = 80 >= N
        let b = cost(&cfg, 1e-3).total_ms(); // G = 8000
        assert!((a - b).abs() / a < 0.15, "a {a}, b {b}");
    }

    #[test]
    fn beats_two_phase_at_high_selectivity() {
        let cfg = ModelConfig::paper_standard();
        for s in [0.05, 0.25, 0.5] {
            let rep = cost(&cfg, s).total_ms();
            let tp = crate::twophase::cost(&cfg, s).total_ms();
            assert!(rep < tp, "S={s}: Rep {rep} >= 2P {tp}");
        }
    }

    #[test]
    fn loses_to_two_phase_at_low_selectivity() {
        let cfg = ModelConfig::paper_standard();
        let s = 1.0 / cfg.tuples; // scalar aggregation
        let rep = cost(&cfg, s).total_ms();
        let tp = crate::twophase::cost(&cfg, s).total_ms();
        assert!(rep > tp, "Rep {rep} <= 2P {tp} at scalar aggregation");
    }

    #[test]
    fn under_utilization_hurts_at_tiny_group_counts() {
        let cfg = ModelConfig::paper_standard();
        let two_groups = cost(&cfg, 2.0 / cfg.tuples).total_ms();
        let many_groups = cost(&cfg, 1e-3).total_ms();
        assert!(
            two_groups > many_groups * 2.0,
            "2 groups {two_groups} vs many {many_groups}"
        );
    }

    #[test]
    fn shared_bus_inflates_network_cost() {
        let fast = ModelConfig::paper_standard();
        let mut slow = ModelConfig::paper_standard();
        slow.params.network = NetworkKind::SharedBus { ms_per_page: 2.0 };
        let s = 1e-3;
        let f = cost(&fast, s);
        let sl = cost(&slow, s);
        assert!(sl.net_ms() > 50.0 * f.net_ms());
        assert!(sl.total_ms() > 2.0 * f.total_ms());
    }
}
