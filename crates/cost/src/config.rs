//! Model configuration and derived selectivities.

use adaptagg_model::CostParams;

/// What the analytical model is evaluated over.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Table 1 constants, including the network kind and `M`.
    pub params: CostParams,
    /// `N` — number of processors.
    pub nodes: usize,
    /// `|R|` — tuples in the relation.
    pub tuples: f64,
    /// Scan/store I/O enabled? `false` models the operator-pipeline case
    /// of Figure 2 (aggregation fed by, and feeding, other operators).
    pub io_enabled: bool,
}

impl ModelConfig {
    /// The paper's standard configuration: 32 nodes, 8 M × 100 B tuples,
    /// high-speed network (Figures 1–3, 5–7).
    pub fn paper_standard() -> Self {
        ModelConfig {
            params: CostParams::paper_default(),
            nodes: 32,
            tuples: 8_000_000.0,
            io_enabled: true,
        }
    }

    /// The implementation-matched configuration: 8 nodes, 2 M tuples,
    /// shared 10 Mbit bus (Figure 4).
    pub fn paper_cluster() -> Self {
        ModelConfig {
            params: CostParams::cluster_default(),
            nodes: 8,
            tuples: 2_000_000.0,
            io_enabled: true,
        }
    }

    /// Relation bytes `R`.
    pub fn relation_bytes(&self) -> f64 {
        self.tuples * self.params.tuple_bytes as f64
    }

    /// Per-node tuples `|R_i|`.
    pub fn tuples_per_node(&self) -> f64 {
        self.tuples / self.nodes as f64
    }

    /// Per-node bytes `R_i`.
    pub fn bytes_per_node(&self) -> f64 {
        self.relation_bytes() / self.nodes as f64
    }

    /// Projected bytes of one tuple (`p · tuple`).
    pub fn projected_tuple_bytes(&self) -> f64 {
        self.params.projectivity * self.params.tuple_bytes as f64
    }

    /// Derive the selectivity family for a grouping selectivity `s`.
    pub fn selectivities(&self, s: f64) -> Selectivities {
        Selectivities::derive(s, self.tuples, self.nodes)
    }

    /// Disk pages for `bytes` (fractional — this is a closed-form model).
    pub fn pages(&self, bytes: f64) -> f64 {
        bytes / self.params.page_bytes as f64
    }

    /// `IO` in ms if scan/store I/O is modelled, else 0 (Figure 2).
    /// Overflow I/O is *always* charged: the paper's pipeline variant
    /// removes base-relation and result I/O only.
    pub fn scan_io_ms(&self) -> f64 {
        if self.io_enabled {
            self.params.io_seq_ms
        } else {
            0.0
        }
    }

    /// Network transfer time for a phase, given per-node pages sent.
    /// Shared bus: the whole cluster's volume serializes (§2's
    /// "sequential resource"); high-speed: each node pays only its own.
    pub fn net_transfer_ms(&self, pages_per_node: f64) -> f64 {
        let per_page = self.params.network.ms_per_page();
        if self.params.network.is_shared() {
            pages_per_node * self.nodes as f64 * per_page
        } else {
            pages_per_node * per_page
        }
    }
}

/// The selectivity family of §2 (Table 1, corrected).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selectivities {
    /// `S` — result tuples / input tuples.
    pub s: f64,
    /// `S_l` — phase-1 (local) selectivity: distinct groups a node sees
    /// per local tuple. `clamp(S·N, 1/|R_i|, 1)`.
    pub s_l: f64,
    /// `S_g` — phase-2 (merge) selectivity: `max(1/N, S)`.
    pub s_g: f64,
    /// `G = S·|R|` — total groups.
    pub groups: f64,
}

impl Selectivities {
    /// Derive from `S`, `|R|`, `N`.
    pub fn derive(s: f64, tuples: f64, nodes: usize) -> Self {
        let n = nodes as f64;
        let tuples_per_node = tuples / n;
        // The lower bound (at least one group per node) cannot exceed the
        // upper bound even for degenerate relations with < 1 tuple/node.
        let floor = (1.0 / tuples_per_node).min(1.0);
        let s_l = (s * n).clamp(floor, 1.0);
        let s_g = (1.0 / n).max(s);
        Selectivities {
            s,
            s_l,
            s_g,
            groups: (s * tuples).max(1.0),
        }
    }

    /// Distinct groups one node's *local* table must hold in phase 1.
    pub fn local_groups(&self, tuples_per_node: f64) -> f64 {
        (self.s_l * tuples_per_node).max(1.0)
    }

    /// Distinct groups one node's *merge* table must hold (`G/N`, at
    /// least 1).
    pub fn merge_groups(&self, nodes: usize) -> f64 {
        (self.groups / nodes as f64).max(1.0)
    }
}

/// The overflow I/O term, corrected (deviation #1 in the crate docs):
/// the fraction of input that cannot stay resident is
/// `max(0, 1 − M/groups_here)`; that fraction of the input bytes is
/// written and re-read once.
pub fn overflow_io_ms(
    groups_here: f64,
    input_bytes: f64,
    max_entries: usize,
    page_bytes: usize,
    io_ms: f64,
) -> f64 {
    let frac = (1.0 - max_entries as f64 / groups_here.max(1.0)).max(0.0);
    frac * (input_bytes / page_bytes as f64) * 2.0 * io_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_standard_shape() {
        let m = ModelConfig::paper_standard();
        assert_eq!(m.nodes, 32);
        assert!((m.relation_bytes() - 800e6).abs() < 1.0);
        assert!((m.tuples_per_node() - 250_000.0).abs() < 1e-9);
        assert!((m.projected_tuple_bytes() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_family_matches_table1() {
        // Low selectivity: S·N < 1 → S_l = S·N, S_g = 1/N.
        let s = Selectivities::derive(1e-6, 8e6, 32);
        assert!((s.s_l - 32e-6).abs() < 1e-12);
        assert!((s.s_g - 1.0 / 32.0).abs() < 1e-12);
        assert_eq!(s.groups, 8.0);

        // High selectivity: S·N > 1 → S_l = 1, S_g = S.
        let s = Selectivities::derive(0.25, 8e6, 32);
        assert_eq!(s.s_l, 1.0);
        assert_eq!(s.s_g, 0.25);

        // Scalar aggregation: S = 1/|R| → S_l floors at one group/node.
        let s = Selectivities::derive(1.0 / 8e6, 8e6, 32);
        assert!((s.s_l - 1.0 / 250_000.0).abs() < 1e-12);
        assert_eq!(s.groups, 1.0);
    }

    #[test]
    fn degenerate_tiny_relations_do_not_panic() {
        // Fewer tuples than nodes: the one-group floor caps at 1.
        let s = Selectivities::derive(1.0, 1.0, 4);
        assert_eq!(s.s_l, 1.0);
        let s = Selectivities::derive(0.5, 0.0, 4);
        assert!((0.0..=1.0).contains(&s.s_l));
    }

    #[test]
    fn local_and_merge_group_counts() {
        let s = Selectivities::derive(0.01, 8e6, 32); // G = 80_000
        assert!((s.local_groups(250_000.0) - 80_000.0).abs() < 1.0);
        assert!((s.merge_groups(32) - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_kicks_in_past_m() {
        // groups <= M → no overflow I/O.
        assert_eq!(overflow_io_ms(10_000.0, 1e6, 10_000, 4096, 1.15), 0.0);
        assert_eq!(overflow_io_ms(100.0, 1e6, 10_000, 4096, 1.15), 0.0);
        // groups = 2M → half the input spills.
        let ms = overflow_io_ms(20_000.0, 1e6, 10_000, 4096, 1.15);
        let expect = 0.5 * (1e6 / 4096.0) * 2.0 * 1.15;
        assert!((ms - expect).abs() < 1e-9);
    }

    #[test]
    fn network_models_differ() {
        let mut m = ModelConfig::paper_standard(); // high speed 0.1ms
        assert!((m.net_transfer_ms(10.0) - 1.0).abs() < 1e-12);
        m.params.network = adaptagg_model::NetworkKind::SharedBus { ms_per_page: 2.0 };
        // Shared: the whole cluster's 32×10 pages serialize.
        assert!((m.net_transfer_ms(10.0) - 640.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_mode_zeroes_scan_io() {
        let mut m = ModelConfig::paper_standard();
        assert!(m.scan_io_ms() > 0.0);
        m.io_enabled = false;
        assert_eq!(m.scan_io_ms(), 0.0);
    }
}
