//! Algorithm recommendation — §7's conclusions, operationalized.
//!
//! "If the system is to support only one algorithm, then the Adaptive Two
//! Phase algorithm seems to be the best choice because in all cases it
//! performs almost as well as the best of all other algorithms. However,
//! if the system is to support multiple algorithms then the Adaptive
//! Repartitioning could be supported as well to support efficient
//! computation when the number of groups is very large."
//!
//! [`recommend`] encodes that: with no group estimate, Adaptive Two Phase;
//! with an estimate, the cheaper of the two adaptives under the analytical
//! model (which in practice means ARep once the estimate is clearly past
//! the memory knee). The full per-algorithm prediction rides along so an
//! EXPLAIN-style surface can print it.

use crate::config::ModelConfig;
use crate::sweep::CostAlgorithm;

/// The optimizer's pick, with its reasoning and the full cost table.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The chosen strategy.
    pub algorithm: CostAlgorithm,
    /// Predicted time for the chosen strategy, in ms (`None` when no
    /// group estimate was available to evaluate the model).
    pub predicted_ms: Option<f64>,
    /// Why.
    pub rationale: &'static str,
    /// Predicted time per candidate (the PROPOSED set), when an estimate
    /// was available.
    pub candidates: Vec<(CostAlgorithm, f64)>,
}

/// Recommend a strategy for a query expected to produce `expected_groups`
/// groups (or `None` when the optimizer has no estimate — the common case
/// the paper designs for).
pub fn recommend(cfg: &ModelConfig, expected_groups: Option<f64>) -> Recommendation {
    let Some(groups) = expected_groups else {
        return Recommendation {
            algorithm: CostAlgorithm::AdaptiveTwoPhase,
            predicted_ms: None,
            rationale: "no group estimate: Adaptive Two Phase performs almost as well as \
                        the best algorithm at every selectivity (§7)",
            candidates: Vec::new(),
        };
    };

    let s = (groups.max(1.0) / cfg.tuples).min(1.0);
    let candidates: Vec<(CostAlgorithm, f64)> = CostAlgorithm::PROPOSED
        .iter()
        .map(|&a| (a, a.cost(cfg, s).total_ms()))
        .collect();

    let a2p = lookup(&candidates, CostAlgorithm::AdaptiveTwoPhase);
    let arep = lookup(&candidates, CostAlgorithm::AdaptiveRepartitioning);
    // Estimates err, and ARep's failure mode (estimate too high, groups
    // actually few) repartitions the initial segment for nothing. Prefer
    // it only when the estimate is decisive: the model predicts ARep
    // sticks with Repartitioning outright *and* comes out cheaper.
    let stays_rep = !crate::arep::ArepModel::default_for(cfg.nodes)
        .falls_back(cfg, &cfg.selectivities(s));
    if stays_rep && arep < a2p {
        Recommendation {
            algorithm: CostAlgorithm::AdaptiveRepartitioning,
            predicted_ms: Some(arep),
            rationale: "estimated group count is large: Adaptive Repartitioning skips the \
                        local phase for the initial segment and stays with Repartitioning (§7)",
            candidates,
        }
    } else {
        Recommendation {
            algorithm: CostAlgorithm::AdaptiveTwoPhase,
            predicted_ms: Some(a2p),
            rationale: "Adaptive Two Phase is within a whisker of the best prediction and \
                        is robust to estimate error (§7)",
            candidates,
        }
    }
}

fn lookup(candidates: &[(CostAlgorithm, f64)], which: CostAlgorithm) -> f64 {
    candidates
        .iter()
        .find(|(a, _)| *a == which)
        .map(|(_, t)| *t)
        .expect("candidate present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_estimate_follows_section_seven() {
        let r = recommend(&ModelConfig::paper_standard(), None);
        assert_eq!(r.algorithm, CostAlgorithm::AdaptiveTwoPhase);
        assert!(r.predicted_ms.is_none());
        assert!(r.candidates.is_empty());
    }

    #[test]
    fn small_estimate_prefers_adaptive_two_phase() {
        let cfg = ModelConfig::paper_standard();
        let r = recommend(&cfg, Some(100.0));
        assert_eq!(r.algorithm, CostAlgorithm::AdaptiveTwoPhase);
        assert!(r.predicted_ms.is_some());
        assert_eq!(r.candidates.len(), CostAlgorithm::PROPOSED.len());
    }

    #[test]
    fn huge_estimate_prefers_adaptive_repartitioning() {
        let cfg = ModelConfig::paper_standard();
        // Duplicate-elimination territory: 4M groups of 8M tuples.
        let r = recommend(&cfg, Some(4_000_000.0));
        assert_eq!(r.algorithm, CostAlgorithm::AdaptiveRepartitioning);
    }

    #[test]
    fn recommendation_is_never_far_from_the_best_candidate() {
        let cfg = ModelConfig::paper_standard();
        for groups in [1.0, 1e3, 1e5, 4e6] {
            let r = recommend(&cfg, Some(groups));
            let best = r
                .candidates
                .iter()
                .map(|(_, t)| *t)
                .fold(f64::INFINITY, f64::min);
            let chosen = r.predicted_ms.unwrap();
            assert!(
                chosen <= best * 1.25,
                "groups={groups}: chose {chosen}, best {best}"
            );
        }
    }

    #[test]
    fn estimates_beyond_the_relation_are_clamped() {
        let cfg = ModelConfig::paper_standard();
        let r = recommend(&cfg, Some(1e12));
        assert!(r.predicted_ms.unwrap().is_finite());
    }
}
