//! §3.3 — Adaptive Repartitioning cost model.
//!
//! "If `S·|R_i| > threshold` then cost is same as that of the
//! Repartitioning algorithm. Otherwise \[the\] first `initSeg` tuples are
//! processed as in the Repartitioning algorithm \[and the rest\] as in
//! \[the\] Adaptive Two Phase algorithm" — with the merge phase seeing the
//! already-repartitioned initial segment as well.

use crate::breakdown::{CostBreakdown, PhaseCost};
use crate::config::{overflow_io_ms, ModelConfig, Selectivities};

/// ARep's decision knobs (mirrors `adaptagg_algos::AlgoConfig`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArepModel {
    /// Tuples each node partitions before judging.
    pub init_seg: f64,
    /// Fallback happens if fewer distinct groups than this were seen.
    pub min_groups: f64,
}

impl ArepModel {
    /// Defaults consistent with `AlgoConfig::default_for(nodes)`.
    pub fn default_for(nodes: usize) -> Self {
        let threshold = 10.0 * nodes as f64;
        ArepModel {
            init_seg: (10.0 * threshold).max(512.0),
            min_groups: threshold,
        }
    }

    /// Whether a node falls back: expected distinct groups in the initial
    /// segment (`≈ initSeg·S_l`, capped by the local group count) below
    /// the bar.
    pub fn falls_back(&self, cfg: &ModelConfig, sel: &Selectivities) -> bool {
        let seg = self.init_seg.min(cfg.tuples_per_node());
        let expected_distinct = (seg * sel.s_l).min(sel.local_groups(cfg.tuples_per_node()));
        expected_distinct < self.min_groups
    }
}

/// Full ARep cost with explicit knobs.
pub fn cost_with(cfg: &ModelConfig, s: f64, knobs: &ArepModel) -> CostBreakdown {
    let sel = cfg.selectivities(s);
    if !knobs.falls_back(cfg, &sel) {
        // The common case it is optimized for: pure Repartitioning, no
        // extra phase for the initial segment, negligible switch cost.
        return crate::repart::cost(cfg, s);
    }

    let p = &cfg.params;
    let tuples_i = cfg.tuples_per_node();
    let bytes_i = cfg.bytes_per_node();
    let ptuple = cfg.projected_tuple_bytes();
    let seg = knobs.init_seg.min(tuples_i);
    let after = tuples_i - seg;

    // A2P sub-behaviour on the remainder.
    let local_tuples = (p.max_hash_entries as f64 / sel.s_l).min(after);
    let forwarded = after - local_tuples;
    let partials_out = (sel.s_l * local_tuples).max(1.0);

    // Phase 1: scan + select all; partition the segment; aggregate the
    // prefix of the remainder; flush partials; forward the suffix.
    let out_rows = seg + partials_out + forwarded;
    let out_pages = cfg.pages(out_rows * ptuple);
    let cpu1 = tuples_i * (p.t_read() + p.t_write())
        + seg * (p.t_hash() + p.t_dest())
        + local_tuples * (p.t_read() + p.t_hash() + p.t_agg())
        + partials_out * p.t_write()
        + forwarded * (p.t_hash() + p.t_dest())
        + out_pages * p.t_msg_protocol();
    let io1 = cfg.pages(bytes_i) * cfg.scan_io_ms();
    let net1 = cfg.net_transfer_ms(out_pages);
    let phase1 = PhaseCost::new("arep scan", cpu1, io1, net1);

    // Phase 2: per-node share of segment raws + partials + forwarded raws.
    let incoming_rows = out_rows; // cluster total / N
    let incoming_bytes = incoming_rows * ptuple;
    let merge_groups = sel.merge_groups(cfg.nodes);
    let result_bytes = merge_groups * ptuple;
    let cpu2 = cfg.pages(incoming_bytes) * p.t_msg_protocol()
        + incoming_rows * (p.t_read() + p.t_agg())
        + merge_groups * p.t_write();
    let io2 = overflow_io_ms(
        merge_groups,
        incoming_bytes,
        p.max_hash_entries,
        p.page_bytes,
        p.io_seq_ms,
    ) + cfg.pages(result_bytes) * cfg.scan_io_ms();
    let phase2 = PhaseCost::new("merge", cpu2, io2, 0.0);

    CostBreakdown::new(vec![phase1, phase2])
}

/// Full ARep cost with default knobs.
pub fn cost(cfg: &ModelConfig, s: f64) -> CostBreakdown {
    cost_with(cfg, s, &ArepModel::default_for(cfg.nodes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_selectivity_equals_repartitioning() {
        let cfg = ModelConfig::paper_standard();
        for s in [0.01, 0.25, 0.5] {
            let arep = cost(&cfg, s).total_ms();
            let rep = crate::repart::cost(&cfg, s).total_ms();
            assert!((arep - rep).abs() < 1e-9, "S={s}");
        }
    }

    #[test]
    fn low_selectivity_falls_back_near_two_phase() {
        let cfg = ModelConfig::paper_standard();
        for s in [1e-6, 1e-5] {
            let arep = cost(&cfg, s).total_ms();
            let tp = crate::twophase::cost(&cfg, s).total_ms();
            let rep = crate::repart::cost(&cfg, s).total_ms();
            assert!(arep < rep, "S={s}: fallback should beat staying Rep");
            assert!(
                arep < tp * 1.25,
                "S={s}: ARep {arep} should be near 2P {tp}"
            );
        }
    }

    #[test]
    fn fallback_decision_matches_expectation() {
        let cfg = ModelConfig::paper_standard();
        let knobs = ArepModel::default_for(32);
        assert!(knobs.falls_back(&cfg, &cfg.selectivities(1e-6)));
        assert!(!knobs.falls_back(&cfg, &cfg.selectivities(0.1)));
    }

    #[test]
    fn slightly_worse_than_a2p_at_very_low_selectivity() {
        // Figure 3's observation: ARep "does suffer a little when the
        // groups are too few" (the initial segment is repartitioned for
        // nothing).
        let cfg = ModelConfig::paper_standard();
        let s = 1e-6;
        let arep = cost(&cfg, s).total_ms();
        let a2p = crate::a2p::cost(&cfg, s).total_ms();
        assert!(arep >= a2p, "ARep {arep} < A2P {a2p}");
    }
}
