//! Cost breakdowns: per-phase CPU / I/O / network terms.

use std::fmt;

/// One phase's cost on the critical path, in ms.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Phase name ("local agg", "merge", …).
    pub label: &'static str,
    /// Per-tuple CPU work.
    pub cpu_ms: f64,
    /// Disk I/O (scan, store, overflow).
    pub io_ms: f64,
    /// Network (protocol CPU folded into `cpu_ms`; this is transfer).
    pub net_ms: f64,
}

impl PhaseCost {
    /// A phase with the given terms.
    pub fn new(label: &'static str, cpu_ms: f64, io_ms: f64, net_ms: f64) -> Self {
        PhaseCost {
            label,
            cpu_ms,
            io_ms,
            net_ms,
        }
    }

    /// The phase's total.
    pub fn total_ms(&self) -> f64 {
        self.cpu_ms + self.io_ms + self.net_ms
    }
}

/// An algorithm's predicted response time: the sum of its phases on the
/// critical path (phases are serial; nodes within a phase are parallel,
/// per the paper's "all nodes work completely in parallel thus allowing
/// us to study the performance of just one node").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostBreakdown {
    /// Critical-path phases in order.
    pub phases: Vec<PhaseCost>,
}

impl CostBreakdown {
    /// Build from phases.
    pub fn new(phases: Vec<PhaseCost>) -> Self {
        CostBreakdown { phases }
    }

    /// Predicted elapsed time in ms.
    pub fn total_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.total_ms()).sum()
    }

    /// Total CPU across phases.
    pub fn cpu_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.cpu_ms).sum()
    }

    /// Total I/O across phases.
    pub fn io_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.io_ms).sum()
    }

    /// Total network across phases.
    pub fn net_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.net_ms).sum()
    }

    /// Append another breakdown's phases (Sampling = sampling + chosen).
    pub fn extend(&mut self, other: CostBreakdown) {
        self.phases.extend(other.phases);
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.phases {
            writeln!(
                f,
                "  {:<16} cpu {:>10.2}  io {:>10.2}  net {:>10.2}  = {:>10.2} ms",
                p.label,
                p.cpu_ms,
                p.io_ms,
                p.net_ms,
                p.total_ms()
            )?;
        }
        write!(f, "  total {:>46.2} ms", self.total_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_phases() {
        let b = CostBreakdown::new(vec![
            PhaseCost::new("p1", 1.0, 2.0, 3.0),
            PhaseCost::new("p2", 0.5, 0.0, 0.0),
        ]);
        assert!((b.total_ms() - 6.5).abs() < 1e-12);
        assert!((b.cpu_ms() - 1.5).abs() < 1e-12);
        assert!((b.io_ms() - 2.0).abs() < 1e-12);
        assert!((b.net_ms() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn extend_appends() {
        let mut a = CostBreakdown::new(vec![PhaseCost::new("a", 1.0, 0.0, 0.0)]);
        a.extend(CostBreakdown::new(vec![PhaseCost::new("b", 2.0, 0.0, 0.0)]));
        assert_eq!(a.phases.len(), 2);
        assert!((a.total_ms() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_phases_and_total() {
        let b = CostBreakdown::new(vec![PhaseCost::new("scan", 1.0, 2.0, 0.0)]);
        let s = b.to_string();
        assert!(s.contains("scan"));
        assert!(s.contains("total"));
    }
}
