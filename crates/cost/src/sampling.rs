//! §3.1 — Sampling cost model.
//!
//! Cost = sampling + estimation + the chosen algorithm. The decision uses
//! the expected number of distinct groups in the sample (a classical
//! occupancy expectation, `G·(1 − e^{−n/G})`), thresholded by the
//! crossover rule.

use crate::breakdown::{CostBreakdown, PhaseCost};
use crate::config::ModelConfig;

/// Sampling knobs (mirrors `adaptagg_sample::CrossoverRule`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingModel {
    /// Crossover threshold in groups.
    pub threshold: f64,
    /// Cluster-wide sample size in tuples (§3.1: ≈ 10× the threshold).
    pub sample_tuples: f64,
}

impl SamplingModel {
    /// The defaults for `nodes` processors: threshold `10·N`, and `10×`
    /// the threshold sampled **per node** (the per-node reading of §3.1's
    /// rule — see `adaptagg_sample::CrossoverRule::sample_size_per_node`).
    /// The per-node overhead therefore grows with `N`, which is what §4
    /// describes ("the sampling overhead … is proportional to the number
    /// of processors") and what makes Samp's scaleup sub-ideal in
    /// Figures 5–6.
    pub fn default_for(nodes: usize) -> Self {
        let threshold = 10.0 * nodes as f64;
        SamplingModel {
            threshold,
            sample_tuples: 10.0 * threshold * nodes as f64,
        }
    }

    /// Expected distinct groups in a uniform sample of `n` tuples from a
    /// relation with `g` groups.
    pub fn expected_distinct(n: f64, g: f64) -> f64 {
        if g <= 0.0 {
            return 0.0;
        }
        (g * (1.0 - (-n / g).exp())).min(n)
    }

    /// Whether the sample leads to choosing Repartitioning.
    pub fn chooses_repartitioning(&self, groups: f64) -> bool {
        Self::expected_distinct(self.sample_tuples, groups) >= self.threshold
    }
}

/// The pure sampling/estimation phase cost (per §3.1's bullet list).
pub fn sampling_phase(cfg: &ModelConfig, s: f64, knobs: &SamplingModel) -> PhaseCost {
    let p = &cfg.params;
    let sel = cfg.selectivities(s);
    let per_node = knobs.sample_tuples / cfg.nodes as f64;
    let sample_bytes = per_node * p.tuple_bytes as f64;
    let distinct_per_node =
        SamplingModel::expected_distinct(per_node, sel.groups).min(per_node);
    let out_pages = cfg.pages(distinct_per_node * cfg.projected_tuple_bytes());

    // scan (random pages) + select + aggregate + result + send; the
    // coordinator then reads every node's keys.
    let io = (sample_bytes / p.page_bytes as f64) * p.io_rand_ms;
    let coordinator_rows = distinct_per_node * cfg.nodes as f64;
    let cpu = per_node * (p.t_read() + p.t_write())
        + per_node * (p.t_read() + p.t_hash() + p.t_agg())
        + distinct_per_node * p.t_write()
        + out_pages * p.t_msg_protocol()
        + coordinator_rows * p.t_read();
    let net = cfg.net_transfer_ms(out_pages);
    PhaseCost::new("sampling", cpu, io, net)
}

/// Full Sampling-algorithm cost with explicit knobs.
pub fn cost_with(cfg: &ModelConfig, s: f64, knobs: &SamplingModel) -> CostBreakdown {
    let sel = cfg.selectivities(s);
    let mut breakdown = CostBreakdown::new(vec![sampling_phase(cfg, s, knobs)]);
    let chosen = if knobs.chooses_repartitioning(sel.groups) {
        crate::repart::cost(cfg, s)
    } else {
        crate::twophase::cost(cfg, s)
    };
    breakdown.extend(chosen);
    breakdown
}

/// Full Sampling-algorithm cost with the paper's defaults.
pub fn cost(cfg: &ModelConfig, s: f64) -> CostBreakdown {
    cost_with(cfg, s, &SamplingModel::default_for(cfg.nodes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_distinct_behaves() {
        // Sample smaller than group count: nearly all distinct.
        let d = SamplingModel::expected_distinct(100.0, 1e6);
        assert!(d > 99.0 && d <= 100.0);
        // Sample much larger than group count: all groups seen.
        let d = SamplingModel::expected_distinct(10_000.0, 10.0);
        assert!((d - 10.0).abs() < 1e-6);
        assert_eq!(SamplingModel::expected_distinct(10.0, 0.0), 0.0);
    }

    #[test]
    fn decision_flips_with_group_count() {
        let k = SamplingModel::default_for(32); // threshold 320
        assert!(!k.chooses_repartitioning(10.0));
        assert!(k.chooses_repartitioning(100_000.0));
    }

    #[test]
    fn constant_overhead_over_the_better_static_choice() {
        // Figure 3: Samp tracks the lower envelope plus a roughly
        // constant sampling cost.
        let cfg = ModelConfig::paper_standard();
        for s in [1e-6, 1e-3, 0.25] {
            let samp = cost(&cfg, s);
            let envelope = crate::twophase::cost(&cfg, s)
                .total_ms()
                .min(crate::repart::cost(&cfg, s).total_ms());
            let overhead = samp.total_ms() - envelope;
            assert!(overhead > 0.0, "sampling is never free");
            assert!(
                overhead < 0.35 * envelope + 500.0,
                "S={s}: overhead {overhead} too large vs envelope {envelope}"
            );
        }
    }

    #[test]
    fn larger_samples_cost_more() {
        let cfg = ModelConfig::paper_standard();
        let small = SamplingModel {
            threshold: 320.0,
            sample_tuples: 3_200.0,
        };
        let large = SamplingModel {
            threshold: 3200.0,
            sample_tuples: 32_000.0,
        };
        let s = 1e-6;
        let cs = cost_with(&cfg, s, &small).phases[0].total_ms();
        let cl = cost_with(&cfg, s, &large).phases[0].total_ms();
        assert!(cl > cs * 5.0, "small {cs}, large {cl}");
    }
}
