//! # adaptagg-cost
//!
//! The paper's analytical cost models (§2.1–2.3 and §3.1–3.3), which
//! generate Figures 1–7. "The intention is that although the models will
//! not be able to predict the actual running times, they will be good
//! enough to predict the relative performance of the algorithms under
//! varying circumstances" — the same stance we take.
//!
//! Structure:
//!
//! * [`ModelConfig`] — cluster shape, Table 1 constants, relation size,
//!   and the `io_enabled` switch that produces Figure 2's operator-
//!   pipeline variant (no scan/store I/O);
//! * [`Selectivities`] — `S`, the phase-1 (`S_l`) and phase-2 (`S_g`)
//!   selectivities derived from it (with the Table 1 typo corrected:
//!   `S_l = min(S·N, 1)`, not `max`);
//! * one module per algorithm, each returning a [`CostBreakdown`] of
//!   per-phase CPU / I/O / network terms that mirror the paper's bullet
//!   lists term by term;
//! * [`sweep`] — selectivity sweeps and the scaleup experiments
//!   (Figures 5–6).
//!
//! ## Documented deviations from the printed formulas
//!
//! 1. Overflow terms: the printed `(1 − M/S_l)` is dimensionally
//!    inconsistent (`M` in entries vs a selectivity); we use the evident
//!    intent `max(0, 1 − M/G_here)` where `G_here` is the number of
//!    distinct groups the table in question must hold.
//! 2. `§2.3`'s result-generation term uses `t_r`; every sibling formula
//!    uses `t_w` — we use `t_w`.
//! 3. Repartitioning under-utilization: we model the post-partition load
//!    as `|R| / min(G, N)` tuples on the busiest node (only `G` nodes
//!    receive data when `G < N`), which is the stated behaviour
//!    ("not all processors can be utilized").
//! 4. The shared-bus network is "a sequential resource": a phase's
//!    network time is the *cluster-wide* transfer volume times the
//!    per-page time; the high-speed network charges each node only its
//!    own volume.

pub mod a2p;
pub mod arep;
pub mod breakdown;
pub mod c2p;
pub mod config;
pub mod recommend;
pub mod repart;
pub mod sampling;
pub mod sweep;
pub mod twophase;

pub use breakdown::{CostBreakdown, PhaseCost};
pub use config::{ModelConfig, Selectivities};
pub use recommend::{recommend, Recommendation};
pub use sweep::{scaleup_curve, selectivity_sweep, CostAlgorithm, SweepPoint};
