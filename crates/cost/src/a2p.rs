//! §3.2 — Adaptive Two Phase cost model.
//!
//! "The first `M/S_l` tuples are processed like the Two Phase algorithm
//! and the remaining tuples, if any, are processed like the
//! Repartitioning algorithm." We construct the cost directly from that
//! decomposition: the local table absorbs tuples until it holds `M`
//! groups (never spilling — switching replaces overflow I/O), the
//! accumulated `M` partials are flushed partitioned, and every remaining
//! tuple is forwarded raw. The merge phase sees both kinds.

use crate::breakdown::{CostBreakdown, PhaseCost};
use crate::config::{overflow_io_ms, ModelConfig, Selectivities};

/// Tuples a node aggregates locally before its table fills: `min(M/S_l,
/// |R_i|)` (§3.2's `|P_i|`).
pub fn tuples_before_switch(cfg: &ModelConfig, sel: &Selectivities) -> f64 {
    (cfg.params.max_hash_entries as f64 / sel.s_l).min(cfg.tuples_per_node())
}

/// Full A2P cost.
pub fn cost(cfg: &ModelConfig, s: f64) -> CostBreakdown {
    let sel = cfg.selectivities(s);
    let p = &cfg.params;
    let tuples_i = cfg.tuples_per_node();
    let bytes_i = cfg.bytes_per_node();
    let ptuple = cfg.projected_tuple_bytes();

    let local_tuples = tuples_before_switch(cfg, &sel);
    let forwarded = tuples_i - local_tuples;
    let partials_out = (sel.s_l * local_tuples).max(1.0); // ≤ M

    // Phase 1: scan + select everything; aggregate the prefix; flush
    // partials; forward the suffix raw.
    let out_bytes = partials_out * ptuple + forwarded * ptuple;
    let out_pages = cfg.pages(out_bytes);
    let cpu1 = tuples_i * (p.t_read() + p.t_write())
        + local_tuples * (p.t_read() + p.t_hash() + p.t_agg())
        + partials_out * p.t_write()
        + forwarded * (p.t_hash() + p.t_dest())
        + out_pages * p.t_msg_protocol();
    let io1 = cfg.pages(bytes_i) * cfg.scan_io_ms(); // no local overflow, ever
    let net1 = cfg.net_transfer_ms(out_pages);
    let phase1 = PhaseCost::new("adaptive local", cpu1, io1, net1);

    // Phase 2: each node's share of all partials + all forwarded raws.
    let incoming_rows = partials_out + forwarded; // cluster total / N
    let incoming_bytes = incoming_rows * ptuple;
    let merge_groups = sel.merge_groups(cfg.nodes);
    let result_bytes = merge_groups * ptuple;
    let cpu2 = cfg.pages(incoming_bytes) * p.t_msg_protocol()
        + incoming_rows * (p.t_read() + p.t_agg())
        + merge_groups * p.t_write();
    let io2 = overflow_io_ms(
        merge_groups,
        incoming_bytes,
        p.max_hash_entries,
        p.page_bytes,
        p.io_seq_ms,
    ) + cfg.pages(result_bytes) * cfg.scan_io_ms();
    let phase2 = PhaseCost::new("merge", cpu2, io2, 0.0);

    CostBreakdown::new(vec![phase1, phase2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_two_phase_at_low_selectivity() {
        let cfg = ModelConfig::paper_standard();
        for s in [1e-6, 1e-5] {
            let a2p = cost(&cfg, s).total_ms();
            let tp = crate::twophase::cost(&cfg, s).total_ms();
            assert!(
                (a2p - tp).abs() / tp < 0.05,
                "S={s}: A2P {a2p} vs 2P {tp}"
            );
        }
    }

    #[test]
    fn tracks_repartitioning_at_high_selectivity() {
        let cfg = ModelConfig::paper_standard();
        for s in [0.1, 0.25, 0.5] {
            let a2p = cost(&cfg, s).total_ms();
            let rep = crate::repart::cost(&cfg, s).total_ms();
            assert!(
                a2p < rep * 1.15,
                "S={s}: A2P {a2p} not near Rep {rep}"
            );
        }
    }

    #[test]
    fn never_pays_local_overflow() {
        // At selectivities where 2P's local phase spills, A2P's phase-1
        // I/O is scan-only.
        let cfg = ModelConfig::paper_standard();
        let s = 0.05;
        let a2p = cost(&cfg, s);
        let tp = crate::twophase::cost(&cfg, s);
        let scan_only = cfg.pages(cfg.bytes_per_node()) * cfg.params.io_seq_ms;
        assert!((a2p.phases[0].io_ms - scan_only).abs() < 1e-6);
        assert!(tp.phases[0].io_ms > scan_only, "2P should spill here");
    }

    #[test]
    fn near_lower_envelope_everywhere() {
        // Figure 3's claim: A2P tracks min(2P, Rep) within a small factor
        // across the whole range.
        let cfg = ModelConfig::paper_standard();
        let mut s = 1.0 / cfg.tuples;
        while s <= 0.5 {
            let a2p = cost(&cfg, s).total_ms();
            let envelope = crate::twophase::cost(&cfg, s)
                .total_ms()
                .min(crate::repart::cost(&cfg, s).total_ms());
            assert!(
                a2p <= envelope * 1.35,
                "S={s}: A2P {a2p} vs envelope {envelope}"
            );
            s *= 4.0;
        }
    }

    #[test]
    fn switch_point_is_the_memory_knee() {
        let cfg = ModelConfig::paper_standard();
        // Below the knee: all tuples aggregated locally.
        let sel = cfg.selectivities(1e-5);
        assert_eq!(tuples_before_switch(&cfg, &sel), cfg.tuples_per_node());
        // Above: prefix only.
        let sel = cfg.selectivities(0.25);
        assert!(tuples_before_switch(&cfg, &sel) < cfg.tuples_per_node());
    }
}
