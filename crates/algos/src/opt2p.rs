//! Graefe's optimized Two Phase (§3.2's discussed competitor).
//!
//! "\[Gra93\] suggests that in the local aggregation phase, if the hash
//! table is full then the locally generated tuples are hash partitioned
//! and forwarded … Hopefully, there might already be an entry there for
//! that group which will save on I/O costs."
//!
//! We implement it to reproduce the paper's *argument* that A2P dominates
//! it:
//!
//! 1. a forwarded tuple may find no entry at the destination (extra
//!    network, no I/O saved);
//! 2. all tuples still pass through both phases (duplicated work);
//! 3. the local table stays resident until the scan ends, instead of
//!    freeing its memory at the overflow point as A2P does.
//!
//! Concretely: on table-full, tuples of *resident* groups keep updating
//! in place; tuples of new groups are forwarded raw immediately; the
//! table is only drained (as partials) at end of scan.

use crate::common::{merge_phase_store, QueryPlan};
use crate::config::AlgoConfig;
use crate::outcome::NodeOutcome;
use adaptagg_exec::{operators, Exchange, ExecError, NodeCtx};
use adaptagg_hashagg::{AggTable, Inserted};
use adaptagg_model::RowKind;

/// Run optimized Two Phase on one node.
pub fn run_node(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<NodeOutcome, ExecError> {
    let max_entries = ctx.params().max_hash_entries;
    let fanout = cfg.overflow_fanout;

    let mut table =
        AggTable::new(plan.projected.clone(), max_entries).with_grant(ctx.grant().clone());
    let mut ex = Exchange::new(
        ctx.nodes(),
        ctx.params().message_bytes,
        plan.key_len(),
        RowKind::Raw,
    );
    let mut forwarded: u64 = 0;

    operators::scan_project(ctx, "base", &plan.base.filter, &plan.projection, |ctx, values| {
        match table.insert_raw(values, &mut ctx.clock)? {
            Inserted::Updated | Inserted::New => Ok(()),
            Inserted::Full => {
                // Forward immediately; the table stays resident (the
                // memory-hoarding A2P avoids).
                forwarded += 1;
                ex.route(ctx, values, false)?;
                Ok(())
            }
        }
    })?;

    // Drain the local table as partials only now (end of input).
    let partials = table.drain_partial_rows(&mut ctx.clock);
    ex.switch_kind(ctx, RowKind::Partial)?;
    ex.route_rows(ctx, &partials, false)?;
    ex.finish(ctx)?;
    ctx.clock.mark("phase1");

    let (rows, mut agg) = merge_phase_store(ctx, plan, max_entries, fanout, Vec::new(), 0)?;
    agg.raw_in += table.accepted() + forwarded;
    Ok(NodeOutcome {
        rows,
        agg,
        events: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algorithm_with, AlgorithmKind};
    use adaptagg_exec::ClusterConfig;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    #[test]
    fn matches_reference_under_memory_pressure() {
        let spec = RelationSpec::uniform(8000, 1200);
        let parts = generate_partitions(&spec, 4);
        let query = default_query();
        let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();
        let params = CostParams {
            max_hash_entries: 100,
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(4, params);
        let cfg = AlgoConfig::default_for(4);
        let out = run_algorithm_with(
            AlgorithmKind::OptimizedTwoPhase,
            &config,
            &parts,
            &query,
            &cfg,
        )
        .unwrap();
        assert_eq!(out.rows, reference);
    }

    #[test]
    fn no_memory_pressure_behaves_like_two_phase() {
        let spec = RelationSpec::uniform(3000, 30);
        let parts = generate_partitions(&spec, 4);
        let query = default_query();
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let opt = run_algorithm_with(
            AlgorithmKind::OptimizedTwoPhase,
            &config,
            &parts,
            &query,
            &cfg,
        )
        .unwrap();
        let tp =
            run_algorithm_with(AlgorithmKind::TwoPhase, &config, &parts, &query, &cfg).unwrap();
        assert_eq!(opt.rows, tp.rows);
        // Without overflow the two ship the same partial volume.
        assert_eq!(
            opt.run.total_net().tuples_sent,
            tp.run.total_net().tuples_sent
        );
    }

    #[test]
    fn ships_more_raw_tuples_than_a2p_under_pressure() {
        // A2P frees memory at the switch; opt2P keeps filtering through a
        // stale table and forwards the overflow one-by-one. Under heavy
        // pressure A2P's flush+forward moves at most the same data, but
        // opt2P duplicates work: every node still sends its whole table
        // at the end *plus* all forwarded raws.
        let spec = RelationSpec::uniform(8000, 2000);
        let parts = generate_partitions(&spec, 4);
        let params = CostParams {
            max_hash_entries: 100,
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(4, params);
        let cfg = AlgoConfig::default_for(4);
        let opt = run_algorithm_with(
            AlgorithmKind::OptimizedTwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        let a2p = run_algorithm_with(
            AlgorithmKind::AdaptiveTwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        assert_eq!(opt.rows, a2p.rows);
        // The paper's duplication argument: past the knee, opt2P still
        // probes its (full, stale) local table for every tuple before
        // forwarding, while A2P routes directly. With mostly-new groups
        // after the fill, opt2P is strictly slower.
        assert!(
            opt.elapsed_ms() > a2p.elapsed_ms(),
            "opt2P {} <= A2P {}",
            opt.elapsed_ms(),
            a2p.elapsed_ms()
        );
    }
}
