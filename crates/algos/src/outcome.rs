//! Per-node and per-run outcome types.

use adaptagg_exec::{RunResult, RunTrace};
use adaptagg_hashagg::HashAggStats;
use adaptagg_model::ResultRow;
use adaptagg_sample::AlgorithmChoice;

/// Something a node's adaptive logic did during the run. The §6 analysis
/// depends on nodes deciding *independently*, so outcomes are reported per
/// node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptEvent {
    /// A2P (or ARep-after-fallback): the local table filled after this
    /// many scanned tuples; the node flushed its partials and switched to
    /// repartitioning raw tuples.
    SwitchedToRepartitioning {
        /// Scanned-tuple index at which the switch happened.
        at_tuple: u64,
    },
    /// ARep: the node judged the group count too small after `initSeg`
    /// tuples (or was told so by a peer) and fell back to Adaptive Two
    /// Phase.
    FellBackToTwoPhase {
        /// Scanned-tuple index at which the fallback happened.
        at_tuple: u64,
        /// Whether the fallback was triggered locally (`true`) or by a
        /// peer's `EndOfPhase` broadcast (`false`).
        local_decision: bool,
    },
    /// Sampling: the coordinator's broadcast choice.
    SamplingChose(AlgorithmChoice),
}

/// One node's report.
#[derive(Debug, Clone, Default)]
pub struct NodeOutcome {
    /// Result rows this node produced (stored on its disk). Under C2P only
    /// the coordinator has any.
    pub rows: Vec<ResultRow>,
    /// Aggregation behaviour: inputs, spills, overflow depth. Summed over
    /// the node's local and merge aggregators.
    pub agg: HashAggStats,
    /// Adaptive events, in the order they happened.
    pub events: Vec<AdaptEvent>,
}

impl NodeOutcome {
    /// Whether this node switched/fell back at least once.
    pub fn adapted(&self) -> bool {
        self.events
            .iter()
            .any(|e| !matches!(e, AdaptEvent::SamplingChose(_)))
    }
}

/// A full algorithm run: the (globally sorted) result plus timing and
/// per-node reports.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// All result rows, gathered from every node and sorted by group key.
    pub rows: Vec<ResultRow>,
    /// Virtual-time and traffic report.
    pub run: RunResult,
    /// Per-node outcomes (rows omitted — they are merged into `rows`).
    pub nodes: Vec<NodeOutcomeSummary>,
    /// The run trace (spans, events, metrics, per-link traffic) when the
    /// cluster ran with tracing enabled; `None` otherwise.
    pub trace: Option<RunTrace>,
}

/// [`NodeOutcome`] minus the rows (which move into [`RunOutcome::rows`]).
#[derive(Debug, Clone, Default)]
pub struct NodeOutcomeSummary {
    /// Rows this node produced.
    pub rows_produced: usize,
    /// Aggregation stats.
    pub agg: HashAggStats,
    /// Adaptive events.
    pub events: Vec<AdaptEvent>,
}

impl RunOutcome {
    /// Elapsed virtual time (slowest node).
    pub fn elapsed_ms(&self) -> f64 {
        self.run.elapsed_ms()
    }

    /// Nodes that adapted during the run.
    pub fn adapted_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.events
                    .iter()
                    .any(|e| !matches!(e, AdaptEvent::SamplingChose(_)))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Cluster-wide spilled tuples (intermediate I/O volume).
    pub fn total_spilled(&self) -> u64 {
        self.nodes.iter().map(|n| n.agg.spilled_tuples).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapted_ignores_sampling_choice() {
        let mut n = NodeOutcome::default();
        assert!(!n.adapted());
        n.events
            .push(AdaptEvent::SamplingChose(AlgorithmChoice::TwoPhase));
        assert!(!n.adapted());
        n.events
            .push(AdaptEvent::SwitchedToRepartitioning { at_tuple: 42 });
        assert!(n.adapted());
    }

    #[test]
    fn run_outcome_aggregates() {
        let outcome = RunOutcome {
            rows: vec![],
            run: RunResult::default(),
            nodes: vec![
                NodeOutcomeSummary {
                    agg: HashAggStats {
                        spilled_tuples: 5,
                        ..Default::default()
                    },
                    events: vec![AdaptEvent::FellBackToTwoPhase {
                        at_tuple: 10,
                        local_decision: true,
                    }],
                    ..Default::default()
                },
                NodeOutcomeSummary::default(),
            ],
            trace: None,
        };
        assert_eq!(outcome.total_spilled(), 5);
        assert_eq!(outcome.adapted_nodes(), vec![0]);
    }
}
