//! Adaptive Repartitioning (§3.3).
//!
//! The mirror image of A2P, for when the optimizer *expects* many groups:
//! start with Repartitioning (so the first segment of tuples skips the
//! extra local phase), but guard against estimation error. Each node
//! watches the distinct groups among its first `initSeg` scanned tuples;
//! if there are "too few groups given the number of seen tuples" it
//! broadcasts `EndOfPhase` and falls back to Adaptive Two Phase. Nodes
//! receiving `EndOfPhase` "follow suit by switching … and sending their
//! own end-of-phase message"; the merge phase simply keeps the hash table
//! it has been filling — "the global aggregation phase now uses the hash
//! table left by the repartitioning phase".
//!
//! While scanning, the node polls its endpoint for `EndOfPhase` (every
//! [`crate::AlgoConfig::arep_poll_interval`] tuples); any data pages the
//! poll pulls off the wire are buffered for the merge phase.

use crate::adaptive2p::ScanState;
use crate::common::{merge_phase_store, QueryPlan};
use crate::config::AlgoConfig;
use crate::outcome::{AdaptEvent, NodeOutcome};
use adaptagg_exec::{operators, Exchange, ExecError, NodeCtx, PhaseKind, SwitchCause};
use adaptagg_model::hash::{hash_values, Seed};
use adaptagg_model::RowKind;
use adaptagg_net::{Control, Page, Payload};
use std::collections::HashSet;

/// Run Adaptive Repartitioning on one node.
pub fn run_node(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<NodeOutcome, ExecError> {
    let max_entries = ctx.params().max_hash_entries;
    let fanout = cfg.overflow_fanout;
    let mut events: Vec<AdaptEvent> = Vec::new();

    let mut ex = Exchange::new(
        ctx.nodes(),
        ctx.params().message_bytes,
        plan.key_len(),
        RowKind::Raw,
    );

    // Scan-side state.
    let mut fallen_back = false; // running A2P logic?
    let mut signalled = false; // has this node broadcast EndOfPhase?
    let mut a2p: Option<ScanState> = None;
    let mut seen_keys: HashSet<u64> = HashSet::new();
    let mut scanned: u64 = 0;
    let mut pre_received: Vec<(RowKind, Page)> = Vec::new();
    let mut pre_eos = 0usize;

    let key_len = plan.key_len();
    let init_seg = cfg.arep_init_seg as u64;
    let min_groups = cfg.arep_min_groups;
    let poll = cfg.arep_poll_interval.max(1) as u64;

    ctx.span_start(PhaseKind::Scan);
    let scan_result = operators::scan_project(ctx, "base", &plan.base.filter, &plan.projection, |ctx, values| {
        scanned += 1;

        // Track distinct groups over the initial segment only (bounded
        // memory: the set stops growing once the verdict is safe).
        if !fallen_back && scanned <= init_seg && (seen_keys.len() as u64) <= min_groups {
            let h = hash_values(Seed::Table, &values[..key_len.min(values.len())]);
            seen_keys.insert(h);
        }

        // Poll for a peer's EndOfPhase; buffer anything else data-like.
        // A peer's abort surfaces here as an error (`try_recv` intercepts
        // it), ending the scan promptly.
        if scanned.is_multiple_of(poll) && !fallen_back {
            while let Some(msg) = ctx.try_recv()? {
                match msg.payload {
                    Payload::Control(Control::EndOfPhase { .. }) => {
                        fallen_back = true;
                        events.push(AdaptEvent::FellBackToTwoPhase {
                            at_tuple: scanned,
                            local_decision: false,
                        });
                        ctx.trace_switch(SwitchCause::LowCardinalityPeer, scanned);
                    }
                    Payload::Data { kind, page } => pre_received.push((kind, page)),
                    Payload::Control(Control::EndOfStream) => pre_eos += 1,
                    Payload::Control(_) => {
                        return Err(ExecError::Protocol("unexpected control during ARep scan"))
                    }
                }
            }
            if fallen_back && !signalled {
                // "Follow suit … sending their own end-of-phase message."
                ctx.broadcast_control(Control::EndOfPhase {
                    groups_seen: seen_keys.len() as u64,
                })?;
                signalled = true;
            }
        }

        // The local verdict at the end of the initial segment.
        if !fallen_back && scanned == init_seg && (seen_keys.len() as u64) < min_groups {
            fallen_back = true;
            signalled = true;
            events.push(AdaptEvent::FellBackToTwoPhase {
                at_tuple: scanned,
                local_decision: true,
            });
            ctx.trace_switch(SwitchCause::LowCardinalityLocal, scanned);
            ctx.broadcast_control(Control::EndOfPhase {
                groups_seen: seen_keys.len() as u64,
            })?;
        }

        if fallen_back {
            // Adaptive Two Phase logic from here on.
            let grant = ctx.grant().clone();
            let state =
                a2p.get_or_insert_with(|| ScanState::new(plan, max_entries).with_grant(grant));
            state.push(ctx, &mut ex, plan, values, &mut events)
        } else {
            // Repartitioning: hash + destination per tuple.
            ex.route(ctx, values, true)
        }
    });
    ctx.span_end();
    scan_result?;

    // If the A2P table holds partials (fell back and never re-switched),
    // ship them now.
    ctx.span_start(PhaseKind::Partition);
    let shipped = (|| {
        if let Some(mut state) = a2p {
            if !state.switched {
                let partials = state.table.drain_partial_rows(&mut ctx.clock);
                ex.switch_kind(ctx, RowKind::Partial)?;
                ex.route_rows(ctx, &partials, false)?;
            }
        }
        ex.finish(ctx)
    })();
    ctx.span_end();
    shipped?;
    ctx.clock.mark("phase1");

    // Merge phase "uses the hash table left by the repartitioning phase":
    // one bounded table over pre-received + remaining pages of all kinds.
    let (rows, agg) = merge_phase_store(ctx, plan, max_entries, fanout, pre_received, pre_eos)?;
    Ok(NodeOutcome { rows, agg, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algorithm_with, AlgorithmKind};
    use adaptagg_exec::ClusterConfig;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    fn run_with_m(tuples: usize, groups: usize, nodes: usize, m: usize) -> crate::RunOutcome {
        let spec = RelationSpec::uniform(tuples, groups);
        let parts = generate_partitions(&spec, nodes);
        let params = CostParams {
            max_hash_entries: m,
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(nodes, params);
        let cfg = AlgoConfig::default_for(nodes);
        run_algorithm_with(
            AlgorithmKind::AdaptiveRepartitioning,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn many_groups_sticks_with_repartitioning() {
        // 5000 groups >> min_groups (40 for 4 nodes): no fallback.
        let out = run_with_m(20_000, 5000, 4, 10_000);
        assert!(
            out.adapted_nodes().is_empty(),
            "no fallback expected: {:?}",
            out.nodes.iter().map(|n| &n.events).collect::<Vec<_>>()
        );
        assert_eq!(out.rows.len(), 5000);
    }

    #[test]
    fn few_groups_falls_back_to_two_phase() {
        let out = run_with_m(20_000, 10, 4, 10_000);
        // Every node must fall back (locally or by contagion).
        assert_eq!(out.adapted_nodes().len(), 4);
        assert_eq!(out.rows.len(), 10);
        // At least one node decided locally.
        let local_deciders = out
            .nodes
            .iter()
            .filter(|n| {
                n.events.iter().any(|e| {
                    matches!(
                        e,
                        AdaptEvent::FellBackToTwoPhase {
                            local_decision: true,
                            ..
                        }
                    )
                })
            })
            .count();
        assert!(local_deciders >= 1);
    }

    #[test]
    fn matches_reference_in_both_regimes() {
        for groups in [5usize, 3000] {
            let spec = RelationSpec::uniform(10_000, groups);
            let parts = generate_partitions(&spec, 4);
            let query = default_query();
            let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();
            let config = ClusterConfig::new(4, CostParams::paper_default());
            let cfg = AlgoConfig::default_for(4);
            let out = run_algorithm_with(
                AlgorithmKind::AdaptiveRepartitioning,
                &config,
                &parts,
                &query,
                &cfg,
            )
            .unwrap();
            assert_eq!(out.rows, reference, "groups = {groups}");
        }
    }

    #[test]
    fn fallback_then_memory_pressure_reswitches() {
        // Few distinct groups *early* is judged on init_seg; use a config
        // where fallback happens but then the table fills (groups > M):
        // the A2P state must switch back to repartitioning.
        let spec = RelationSpec::uniform(30_000, 300);
        let parts = generate_partitions(&spec, 4);
        let params = CostParams {
            max_hash_entries: 50,
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(4, params);
        // min_groups 400 > 300 actual groups → fallback guaranteed;
        // then 300 local groups > M=50 → re-switch guaranteed.
        let cfg = AlgoConfig::default_for(4).with_crossover_threshold(400);
        let query = default_query();
        let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();
        let out = run_algorithm_with(
            AlgorithmKind::AdaptiveRepartitioning,
            &config,
            &parts,
            &query,
            &cfg,
        )
        .unwrap();
        assert_eq!(out.rows, reference);
        // Some node must show both events in order.
        let double = out.nodes.iter().any(|n| {
            let fell = n
                .events
                .iter()
                .position(|e| matches!(e, AdaptEvent::FellBackToTwoPhase { .. }));
            let switched = n
                .events
                .iter()
                .position(|e| matches!(e, AdaptEvent::SwitchedToRepartitioning { .. }));
            matches!((fell, switched), (Some(f), Some(s)) if f < s)
        });
        assert!(double, "expected fallback followed by re-switch");
    }

    #[test]
    fn scan_poll_rejects_unknown_controls() {
        // The mid-scan poll accepts EndOfPhase (the fallback signal),
        // racing data, and end-of-stream markers — a rogue control is a
        // typed protocol violation attributed to the scanning node.
        let spec = RelationSpec::uniform(4_000, 300);
        let parts = generate_partitions(&spec, 2);
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let plan = crate::common::QueryPlan::new(&default_query());
        let cfg = AlgoConfig::default_for(2);
        let r = adaptagg_exec::run_cluster(&config, parts, |ctx| {
            if ctx.id() == 0 {
                ctx.send_control(
                    1,
                    Control::SamplingDecision {
                        use_repartitioning: true,
                        groups_in_sample: 0,
                    },
                )?;
                // Consume the peer's traffic until its abort arrives.
                loop {
                    ctx.recv()?;
                }
            } else {
                run_node(ctx, &plan, &cfg).map(|_| ())
            }
        });
        assert_eq!(
            r.err(),
            Some(ExecError::Protocol("unexpected control during ARep scan"))
        );
    }
}
