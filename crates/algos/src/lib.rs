//! # adaptagg-algos
//!
//! The six parallel aggregation algorithms of Shatdal & Naughton (SIGMOD
//! 1995), plus three related-work strategies the paper discusses — the
//! Graefe-optimized Two Phase it argues against (§3.2) and Bitton et
//! al.'s sort-based and broadcast algorithms (§1) — all running on the
//! `adaptagg-exec` cluster:
//!
//! | kind | paper § | module |
//! |------|---------|--------|
//! | [`AlgorithmKind::CentralizedTwoPhase`] | 2.1 | [`c2p`] |
//! | [`AlgorithmKind::TwoPhase`] | 2.2 | [`twophase`] |
//! | [`AlgorithmKind::Repartitioning`] | 2.3 | [`repart`] |
//! | [`AlgorithmKind::Sampling`] | 3.1 | [`sampling`] |
//! | [`AlgorithmKind::AdaptiveTwoPhase`] | 3.2 | [`adaptive2p`] |
//! | [`AlgorithmKind::AdaptiveRepartitioning`] | 3.3 | [`adaptiverep`] |
//! | [`AlgorithmKind::OptimizedTwoPhase`] | 3.2 (discussed) | [`opt2p`] |
//! | [`AlgorithmKind::SortTwoPhase`] | 1 (related work) | [`sort2p`] |
//! | [`AlgorithmKind::Broadcast`] | 1 (related work) | [`broadcast`] |
//!
//! Every algorithm produces the **identical, exact** aggregation result
//! (verified against [`verify::reference_aggregate`] in the integration
//! suite); they differ only in where work happens and what travels over
//! the network — which is what the paper's figures measure.
//!
//! Entry point: [`run_algorithm`].

pub mod adaptive2p;
pub mod adaptiverep;
pub mod broadcast;
pub mod c2p;
pub mod common;
pub mod config;
pub mod driver;
pub mod opt2p;
pub mod outcome;
pub mod parallel;
pub mod repart;
pub mod sampling;
pub mod sort2p;
pub mod twophase;
pub mod verify;

pub use config::AlgoConfig;
pub use driver::{run_algorithm, run_algorithm_with, AlgorithmKind};
pub use outcome::{AdaptEvent, NodeOutcome, RunOutcome};
pub use verify::reference_aggregate;
