//! Algorithm tuning knobs.

use adaptagg_sample::CrossoverRule;

/// Parameters shared by the adaptive and sampling algorithms. The defaults
/// follow the paper's guidance; the ablation benches sweep them.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoConfig {
    /// The Sampling algorithm's crossover rule (§3.1; default `10·N`
    /// groups, sample size `10×` that).
    pub crossover: CrossoverRule,
    /// Seed for page-level sampling.
    pub sample_seed: u64,
    /// Adaptive Repartitioning: tuples a node partitions before judging
    /// whether "it has seen too few groups given the number of seen
    /// tuples" (§3.3's `initSeg`).
    pub arep_init_seg: usize,
    /// Adaptive Repartitioning: if fewer than this many distinct groups
    /// were seen in the first `arep_init_seg` tuples, fall back to
    /// Adaptive Two Phase. Defaults to the crossover threshold.
    pub arep_min_groups: u64,
    /// How often (in scanned tuples) the Adaptive Repartitioning scan
    /// polls for `EndOfPhase` messages from other nodes.
    pub arep_poll_interval: usize,
    /// Overflow-bucket fanout for all memory-bounded tables.
    pub overflow_fanout: usize,
}

impl AlgoConfig {
    /// Defaults for a cluster of `nodes` nodes.
    pub fn default_for(nodes: usize) -> Self {
        let crossover = CrossoverRule::default_for(nodes);
        AlgoConfig {
            crossover,
            sample_seed: 0xabcd,
            // Judge after a sample-sized prefix: enough tuples that
            // "too few groups" is statistically meaningful.
            arep_init_seg: crossover.sample_size_per_node().max(512),
            arep_min_groups: crossover.threshold,
            arep_poll_interval: 256,
            overflow_fanout: adaptagg_hashagg::aggregate::DEFAULT_OVERFLOW_FANOUT,
        }
    }

    /// Override the crossover threshold (Figure 7's sweep), keeping the
    /// sample-size and ARep defaults consistent with it.
    pub fn with_crossover_threshold(mut self, threshold: u64) -> Self {
        self.crossover = CrossoverRule::with_threshold(threshold);
        self.arep_init_seg = self.crossover.sample_size_per_node().max(512);
        self.arep_min_groups = threshold;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_guidance() {
        let cfg = AlgoConfig::default_for(32);
        assert_eq!(cfg.crossover.threshold, 320);
        assert_eq!(cfg.arep_min_groups, 320);
        assert_eq!(cfg.arep_init_seg, 3200);
        assert!(cfg.overflow_fanout >= 2);
    }

    #[test]
    fn threshold_override_keeps_consistency() {
        let cfg = AlgoConfig::default_for(8).with_crossover_threshold(1000);
        assert_eq!(cfg.crossover.threshold, 1000);
        assert_eq!(cfg.arep_min_groups, 1000);
        assert_eq!(cfg.arep_init_seg, 10_000);
    }

    #[test]
    fn tiny_clusters_keep_a_meaningful_init_seg() {
        let cfg = AlgoConfig::default_for(1);
        assert!(cfg.arep_init_seg >= 512);
    }
}
