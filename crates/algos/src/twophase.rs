//! Two Phase (§2.2).
//!
//! Like C2P, but "the merging phase is parallelized by hash-partitioning
//! on the GROUP BY attribute". Works well while the number of groups is
//! small; past the memory knee it pays duplicated aggregation work and
//! intermediate overflow I/O in *both* phases — the weakness A2P fixes.

use crate::common::{
    local_partial_aggregation, merge_phase_store, ship_partials_partitioned, QueryPlan,
};
use crate::config::AlgoConfig;
use crate::outcome::NodeOutcome;
use adaptagg_exec::{ExecError, NodeCtx};

/// Run Two Phase on one node.
pub fn run_node(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<NodeOutcome, ExecError> {
    run_node_with(ctx, plan, cfg, Vec::new(), 0)
}

/// Two Phase accepting pages/EOS that an earlier phase (Sampling's
/// decision wait) already pulled off the wire.
pub fn run_node_with(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
    pre_received: Vec<(adaptagg_model::RowKind, adaptagg_net::Page)>,
    pre_eos: usize,
) -> Result<NodeOutcome, ExecError> {
    let max_entries = ctx.params().max_hash_entries;
    let fanout = cfg.overflow_fanout;

    let (partials, local_stats) = local_partial_aggregation(ctx, plan, max_entries, fanout)?;
    ship_partials_partitioned(ctx, plan, partials)?;
    let (rows, merge_stats) =
        merge_phase_store(ctx, plan, max_entries, fanout, pre_received, pre_eos)?;

    let mut agg = local_stats;
    agg.add(&merge_stats);
    Ok(NodeOutcome {
        rows,
        agg,
        events: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algorithm_with, AlgorithmKind};
    use adaptagg_exec::ClusterConfig;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    fn run(tuples: usize, groups: usize, nodes: usize, m: usize) -> crate::RunOutcome {
        let spec = RelationSpec::uniform(tuples, groups);
        let parts = generate_partitions(&spec, nodes);
        let params = CostParams {
            max_hash_entries: m,
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(nodes, params);
        let cfg = AlgoConfig::default_for(nodes);
        run_algorithm_with(AlgorithmKind::TwoPhase, &config, &parts, &default_query(), &cfg)
            .unwrap()
    }

    #[test]
    fn matches_reference_and_spreads_result() {
        let spec = RelationSpec::uniform(3000, 60);
        let parts = generate_partitions(&spec, 4);
        let query = default_query();
        let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();

        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let out =
            run_algorithm_with(AlgorithmKind::TwoPhase, &config, &parts, &query, &cfg).unwrap();
        assert_eq!(out.rows, reference);
        // Result is spread over nodes (parallel merge), unlike C2P.
        let producing = out.nodes.iter().filter(|n| n.rows_produced > 0).count();
        assert!(producing >= 3, "only {producing} nodes produced rows");
    }

    #[test]
    fn no_spill_when_groups_fit_memory() {
        let out = run(2000, 50, 4, 1000);
        assert_eq!(out.total_spilled(), 0);
    }

    #[test]
    fn spills_when_groups_exceed_memory() {
        // 2000 groups over 4 nodes, M = 100: every node's local table
        // overflows (each sees ~all groups) — the paper's memory knee.
        let out = run(8000, 2000, 4, 100);
        assert!(out.total_spilled() > 0, "expected intermediate I/O");
        assert_eq!(out.rows.len(), 2000);
    }

    #[test]
    fn single_node_degenerates_gracefully() {
        let out = run(500, 10, 1, 100);
        assert_eq!(out.rows.len(), 10);
    }

    #[test]
    fn scalar_aggregation_works() {
        let spec = RelationSpec::uniform(1000, 1);
        let parts = generate_partitions(&spec, 4);
        let query = adaptagg_model::AggQuery::new(
            vec![],
            vec![adaptagg_model::AggSpec::count_star()],
        );
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let out =
            run_algorithm_with(AlgorithmKind::TwoPhase, &config, &parts, &query, &cfg).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].aggs, vec![adaptagg_model::Value::Int(1000)]);
    }
}
