//! Centralized Two Phase (§2.1).
//!
//! "Each node do\[es\] aggregation on the locally generated tuples in phase
//! one and then merge\[s\] these local aggregate values at a central
//! coordinator in phase two." The merge is a sequential bottleneck —
//! Figure 1 shows C2P falling behind as soon as the number of groups is
//! non-trivial; it is the baseline the parallel merge (2P) improves on.

use crate::common::{merge_phase_store, ship_partials_to, QueryPlan};
use crate::config::AlgoConfig;
use crate::outcome::NodeOutcome;
use adaptagg_exec::{ExecError, NodeCtx};

/// The coordinator node id (node 0, by convention).
pub const COORDINATOR: usize = 0;

/// Run Centralized Two Phase on one node.
pub fn run_node(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<NodeOutcome, ExecError> {
    let max_entries = ctx.params().max_hash_entries;
    let fanout = cfg.overflow_fanout;

    // Phase 1: local aggregation; ship partials to the coordinator.
    let (partials, local_stats) =
        crate::common::local_partial_aggregation(ctx, plan, max_entries, fanout)?;
    ship_partials_to(ctx, COORDINATOR, plan, partials)?;

    let mut outcome = NodeOutcome {
        agg: local_stats,
        ..Default::default()
    };

    // Phase 2: the coordinator alone merges everything.
    if ctx.id() == COORDINATOR {
        let (rows, merge_stats) =
            merge_phase_store(ctx, plan, max_entries, fanout, Vec::new(), 0)?;
        outcome.agg.add(&merge_stats);
        outcome.rows = rows;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algorithm_with, AlgorithmKind};
    use adaptagg_exec::ClusterConfig;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    #[test]
    fn c2p_matches_reference_and_centralizes_result() {
        let spec = RelationSpec::uniform(3000, 40);
        let parts = generate_partitions(&spec, 4);
        let query = default_query();
        let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();

        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let out = run_algorithm_with(
            AlgorithmKind::CentralizedTwoPhase,
            &config,
            &parts,
            &query,
            &cfg,
        )
        .unwrap();
        assert_eq!(out.rows, reference);
        // All rows live on the coordinator.
        assert_eq!(out.nodes[COORDINATOR].rows_produced, 40);
        for n in &out.nodes[1..] {
            assert_eq!(n.rows_produced, 0);
        }
    }

    #[test]
    fn coordinator_does_the_merge_work() {
        let spec = RelationSpec::uniform(2000, 100);
        let parts = generate_partitions(&spec, 4);
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let out = run_algorithm_with(
            AlgorithmKind::CentralizedTwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        // Coordinator processed its own raw tuples plus every node's
        // partials; others only their raw tuples.
        let coord_in = out.nodes[COORDINATOR].agg.rows_in();
        let other_in = out.nodes[1].agg.rows_in();
        assert!(
            coord_in > other_in,
            "coordinator {coord_in} <= other {other_in}"
        );
        // Each node contributes ~100 partials (some groups may miss a
        // node's 500-tuple sample).
        let partials = out.nodes[COORDINATOR].agg.partial_in;
        assert!((360..=400).contains(&partials), "partials = {partials}");
    }
}
