//! Sort-based Two Phase — the Bitton et al. \[BBDW83\] lineage the paper's
//! §1 cites ("the first algorithm is somewhat similar to the Two Phase
//! approach in that it uses local aggregation", via sorting).
//!
//! Structurally identical to Two Phase, but the local phase forms sorted
//! runs with early aggregation and merges them, instead of hashing with
//! overflow buckets. The partials it ships are key-ordered per node
//! (which the hash-partitioned merge then disregards — on a 1995 system
//! the order would feed an ORDER BY for free). Including it lets the
//! benchmarks compare hash-based and sort-based local aggregation under
//! one cost model.

use crate::common::{merge_phase_store, ship_partials_partitioned, QueryPlan};
use crate::config::AlgoConfig;
use crate::outcome::NodeOutcome;
use adaptagg_exec::{operators, ExecError, NodeCtx, PhaseKind};
use adaptagg_sortagg::SortAggregator;

/// Run sort-based Two Phase on one node.
pub fn run_node(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<NodeOutcome, ExecError> {
    let max_entries = ctx.params().max_hash_entries;
    let fanout = cfg.overflow_fanout;
    let page_bytes = ctx.params().page_bytes;

    // Phase 1: sorted-run local aggregation.
    let mut agg = SortAggregator::new(plan.projected.clone(), max_entries, page_bytes);
    ctx.span_start(PhaseKind::Scan);
    let scanned =
        operators::scan_project(ctx, "base", &plan.base.filter, &plan.projection, |ctx, values| {
            agg.push_raw(values, &mut ctx.clock).map_err(ExecError::from)
        });
    ctx.span_end();
    scanned?;
    ctx.span_start(PhaseKind::Sort);
    let finished = agg.finish_partials(&mut ctx.clock);
    ctx.span_end();
    let (partials, sort_stats) = finished?;
    ship_partials_partitioned(ctx, plan, partials)?;

    // Phase 2: hash merge, as in plain Two Phase.
    let (rows, mut agg_stats) =
        merge_phase_store(ctx, plan, max_entries, fanout, Vec::new(), 0)?;
    agg_stats.raw_in += sort_stats.rows_in;
    // Runs written to disk are this strategy's "intermediate I/O"; report
    // them in the overflow counter so comparisons line up.
    agg_stats.overflow_buckets += sort_stats.runs_sealed;
    Ok(NodeOutcome {
        rows,
        agg: agg_stats,
        events: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algorithm_with, AlgorithmKind};
    use adaptagg_exec::ClusterConfig;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    #[test]
    fn matches_reference_with_and_without_runs() {
        for (groups, m) in [(50usize, 1_000usize), (3_000, 100)] {
            let spec = RelationSpec::uniform(8_000, groups);
            let parts = generate_partitions(&spec, 4);
            let query = default_query();
            let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();
            let params = CostParams {
                max_hash_entries: m,
                ..CostParams::paper_default()
            };
            let config = ClusterConfig::new(4, params);
            let cfg = AlgoConfig::default_for(4);
            let out = run_algorithm_with(
                AlgorithmKind::SortTwoPhase,
                &config,
                &parts,
                &query,
                &cfg,
            )
            .unwrap();
            assert_eq!(out.rows, reference, "groups={groups} m={m}");
        }
    }

    #[test]
    fn run_sealing_shows_up_as_intermediate_io() {
        let spec = RelationSpec::uniform(12_000, 3_000);
        let parts = generate_partitions(&spec, 4);
        let params = CostParams {
            max_hash_entries: 100,
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(4, params);
        let cfg = AlgoConfig::default_for(4);
        let out = run_algorithm_with(
            AlgorithmKind::SortTwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        let runs: u64 = out.nodes.iter().map(|n| n.agg.overflow_buckets).sum();
        assert!(runs > 0, "expected sealed runs under memory pressure");
    }

    #[test]
    fn comparable_to_hash_two_phase_in_memory() {
        // With everything resident, the two local strategies do the same
        // logical work; virtual times stay within a modest factor.
        let spec = RelationSpec::uniform(6_000, 50);
        let parts = generate_partitions(&spec, 4);
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let sort = run_algorithm_with(
            AlgorithmKind::SortTwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        let hash = run_algorithm_with(
            AlgorithmKind::TwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        assert_eq!(sort.rows, hash.rows);
        let ratio = sort.elapsed_ms() / hash.elapsed_ms();
        assert!((0.7..1.5).contains(&ratio), "ratio {ratio}");
    }
}
