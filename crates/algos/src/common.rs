//! Building blocks shared by all algorithms.

use adaptagg_exec::{operators, Exchange, ExecError, NodeCtx, PhaseKind};
use adaptagg_hashagg::{EmitMode, HashAggStats, HashAggregator};
use adaptagg_model::{AggQuery, CostTracker, ResultRow, RowKind, Value};
use adaptagg_net::{Control, Page};

/// A query compiled for execution: the base-schema form, the projection
/// the scan applies, and the projected (remapped) form every operator
/// downstream of the scan uses.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The query as posed against the base schema.
    pub base: AggQuery,
    /// Columns the scan keeps (the paper's projectivity `p`).
    pub projection: Vec<usize>,
    /// The query remapped against the projection: group columns first.
    pub projected: AggQuery,
}

impl QueryPlan {
    /// Compile a query.
    pub fn new(query: &AggQuery) -> Self {
        QueryPlan {
            base: query.clone(),
            projection: query.projection_columns(),
            projected: query.remapped_to_projection(),
        }
    }

    /// Number of group-key columns (the leading columns of every projected
    /// row, raw or partial).
    pub fn key_len(&self) -> usize {
        self.projected.group_by.len()
    }
}

/// Phase 1 of the Two Phase family: scan + project the local partition,
/// aggregate into a memory-bounded table (with overflow processing), and
/// return the partial rows (§2.1's local aggregation).
///
/// When the node carries a recovery session, the scan is checkpointed:
/// rows already durable for a partition are restored instead of
/// recomputed, and the remaining pages are aggregated in checkpoint-sized
/// chunks whose partials are persisted as they are produced. Duplicate
/// group keys across restored and fresh chunks are fine — partial rows
/// are mergeable, and every consumer of this function's output merges.
pub fn local_partial_aggregation(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    max_entries: usize,
    fanout: usize,
) -> Result<(Vec<Vec<Value>>, HashAggStats), ExecError> {
    if ctx.recovery.is_some() {
        return checkpointed_local_aggregation(ctx, plan, max_entries, fanout);
    }
    // Intra-node morsel parallelism: an optimistic fast path that
    // commits only when its rows and charges are bit-identical to the
    // serial scan below; `None` means fall through (nothing consumed,
    // nothing charged).
    if let Some(done) = crate::parallel::par_local_aggregation(ctx, plan, max_entries) {
        return Ok(done);
    }
    let page_bytes = ctx.params().page_bytes;
    let mut agg = HashAggregator::new(plan.projected.clone(), max_entries, page_bytes, fanout)
        .with_grant(ctx.grant().clone());
    ctx.span_start(PhaseKind::Scan);
    let scan = operators::scan_project(
        ctx,
        "base",
        &plan.base.filter,
        &plan.projection,
        |ctx, values| agg.push_raw(values, &mut ctx.clock).map_err(ExecError::from),
    );
    ctx.span_end();
    scan?;
    ctx.span_start(PhaseKind::LocalAgg);
    let spilled = agg.has_spilled();
    if spilled {
        ctx.span_start(PhaseKind::Spill);
    }
    let finished = agg.finish(EmitMode::Partial, &mut ctx.clock);
    if spilled {
        ctx.span_end();
    }
    ctx.span_end();
    let (partials, stats) = finished?;
    trace_hashagg(ctx, &stats);
    Ok((partials, stats))
}

/// Feed one aggregation's [`HashAggStats`] into the node's trace metrics
/// (no-op when tracing is disabled). Counters sum across the phases a
/// node runs; the peak-resident gauge keeps the maximum.
pub fn trace_hashagg(ctx: &mut NodeCtx, stats: &HashAggStats) {
    if ctx.trace.enabled() {
        ctx.trace.counter_add("hashagg.rows_in", stats.rows_in());
        ctx.trace.counter_add("hashagg.probe_slots", stats.probe_slots);
        ctx.trace
            .counter_add("hashagg.spilled_tuples", stats.spilled_tuples);
        ctx.trace
            .counter_add("hashagg.overflow_flushes", stats.overflow_buckets);
        ctx.trace
            .gauge_max("hashagg.peak_resident", stats.peak_resident as f64);
    }
}

/// [`local_partial_aggregation`] under a recovery session: restore each
/// partition's durable partials, then aggregate the un-checkpointed page
/// suffix chunk by chunk, checkpointing at every chunk boundary. A fresh
/// aggregator per chunk keeps the checkpoint self-contained (no
/// aggregator state to snapshot); the cost is duplicate group keys across
/// chunk outputs, which merge downstream.
fn checkpointed_local_aggregation(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    max_entries: usize,
    fanout: usize,
) -> Result<(Vec<Vec<Value>>, HashAggStats), ExecError> {
    let page_bytes = ctx.params().page_bytes;
    let mut session = ctx.recovery.take().expect("checked by caller");
    ctx.span_start(PhaseKind::Scan);
    let result = (|| {
        let mut out = Vec::new();
        let mut stats = HashAggStats::default();
        for seg in session.segments() {
            let restored = session.restore_partials(seg.partition, &mut ctx.clock)?;
            out.extend(restored);
            let mut done = session.resume_point(seg.partition).min(seg.pages);
            while done < seg.pages {
                let chunk_end = (done + session.interval_pages()).min(seg.pages);
                let mut agg =
                    HashAggregator::new(plan.projected.clone(), max_entries, page_bytes, fanout)
                        .with_grant(ctx.grant().clone());
                operators::scan_project_range(
                    ctx,
                    "base",
                    &plan.base.filter,
                    &plan.projection,
                    seg.start_page + done,
                    seg.start_page + chunk_end,
                    |ctx, values| {
                        agg.push_raw(values, &mut ctx.clock).map_err(ExecError::from)
                    },
                )?;
                let (partials, s) = agg.finish(EmitMode::Partial, &mut ctx.clock)?;
                stats.add(&s);
                session.checkpoint(
                    seg.partition,
                    chunk_end,
                    &partials,
                    chunk_end == seg.pages,
                    &mut ctx.clock,
                    &mut ctx.disk,
                )?;
                out.extend(partials);
                done = chunk_end;
            }
        }
        Ok((out, stats))
    })();
    ctx.span_end();
    ctx.recovery = Some(session);
    if let Ok((_, stats)) = &result {
        trace_hashagg(ctx, stats);
    }
    result
}

/// A merge phase: consume data pages (raw tuples and/or partial rows)
/// until every node's `EndOfStream` arrived, aggregate them in a
/// memory-bounded table (hash cost not re-charged: rows were hashed when
/// partitioned), finalize, and store the results on the local disk.
///
/// `pre_received` holds pages that an earlier phase pulled off the wire
/// while polling for control traffic (Adaptive Repartitioning does this).
/// Stray `EndOfPhase` controls are tolerated (a peer may switch late);
/// any other control is a protocol violation.
pub fn merge_phase_store(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    max_entries: usize,
    fanout: usize,
    pre_received: Vec<(RowKind, Page)>,
    pre_eos: usize,
) -> Result<(Vec<ResultRow>, HashAggStats), ExecError> {
    // Intra-node parallel merge: once eligible, the parallel driver owns
    // the phase end to end (it consumes the wire), committing in
    // parallel or replaying serially — either way bit-identical to the
    // loop below.
    if ctx.par_scan_eligible() && ctx.threads() > 1 {
        return crate::parallel::par_merge_phase_store(
            ctx,
            plan,
            max_entries,
            fanout,
            pre_received,
            pre_eos,
        );
    }
    let page_bytes = ctx.params().page_bytes;
    let mut agg = HashAggregator::new(plan.projected.clone(), max_entries, page_bytes, fanout)
        .with_charge_hash(false)
        .with_grant(ctx.grant().clone());

    ctx.span_start(PhaseKind::Merge);
    let merged = merge_phase_inner(ctx, &mut agg, pre_received, pre_eos);
    if let Err(e) = merged {
        ctx.span_end();
        return Err(e);
    }

    let spilled = agg.has_spilled();
    if spilled {
        ctx.span_start(PhaseKind::Spill);
    }
    let finished = agg.finish_rows(&mut ctx.clock);
    if spilled {
        ctx.span_end();
    }
    ctx.span_end();
    let (rows, stats) = finished?;
    trace_hashagg(ctx, &stats);
    operators::store_results(ctx, &rows)?;
    Ok((rows, stats))
}

/// The receive loop of [`merge_phase_store`], factored out so its span
/// closes on every exit path.
///
/// Arrivals are buffered **cost-free** and the clock accounting (Lamport
/// observation + receiver protocol charge + aggregation) replays in
/// canonical order: sender id ascending, per-sender FIFO. Physical
/// arrival order depends on thread scheduling — two senders' streams
/// interleave however the OS ran them — and `f64` accumulation is
/// order-sensitive at the ULP level, so charging in arrival order would
/// imprint the schedule on the virtual clock. Canonical replay makes the
/// merge phase's virtual time a pure function of what was sent.
fn merge_phase_inner(
    ctx: &mut NodeCtx,
    agg: &mut HashAggregator,
    pre_received: Vec<(RowKind, Page)>,
    pre_eos: usize,
) -> Result<(), ExecError> {
    for (kind, page) in pre_received {
        agg.push_page(kind, &page, &mut ctx.clock)?;
        ctx.page_pool.put(page);
    }

    let mut eos = pre_eos;
    let nodes = ctx.nodes();
    let mut streams: Vec<Vec<adaptagg_net::Message>> = (0..nodes).map(|_| Vec::new()).collect();
    let mut pending_err: Option<ExecError> = None;
    while eos < nodes {
        match ctx.recv_deferred() {
            Ok(msg) => {
                match &msg.payload {
                    adaptagg_net::Payload::Data { .. } => {}
                    adaptagg_net::Payload::Control(Control::EndOfStream) => eos += 1,
                    adaptagg_net::Payload::Control(Control::EndOfPhase { .. }) => {}
                    adaptagg_net::Payload::Control(_) => {
                        pending_err =
                            Some(ExecError::Protocol("unexpected control in merge phase"));
                    }
                }
                let from = msg.from;
                streams[from].push(msg);
                if pending_err.is_some() {
                    break;
                }
            }
            Err(e) => {
                pending_err = Some(e);
                break;
            }
        }
    }
    for msgs in streams {
        for msg in msgs {
            ctx.clock.observe(msg.sent_at_ms);
            if let adaptagg_net::Payload::Data { kind, page } = msg.payload {
                ctx.clock.record(adaptagg_model::CostEvent::MsgProtocol, 1);
                agg.push_page(kind, &page, &mut ctx.clock)?;
                ctx.page_pool.put(page);
            }
        }
    }
    match pending_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Feed one received page into an aggregator (page-batched; cost events
/// identical to pushing each tuple — see [`HashAggregator::push_page`]).
pub fn push_page(
    agg: &mut HashAggregator,
    kind: RowKind,
    page: &Page,
    clock: &mut adaptagg_exec::Clock,
) -> Result<(), ExecError> {
    agg.push_page(kind, page, clock)?;
    Ok(())
}

/// Ship partial rows through an exchange, hash-partitioned on the group
/// key (destination cost only — the rows came out of a hash table), then
/// signal end-of-stream to every node.
pub fn ship_partials_partitioned(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    partials: Vec<Vec<Value>>,
) -> Result<(), ExecError> {
    let mut ex = Exchange::new(
        ctx.nodes(),
        ctx.params().message_bytes,
        plan.key_len(),
        RowKind::Partial,
    );
    ctx.span_start(PhaseKind::Partition);
    let shipped = ex.route_rows(ctx, &partials, false).and_then(|_| ex.finish(ctx));
    ctx.span_end();
    shipped?;
    ctx.clock.mark("phase1");
    Ok(())
}

/// Ship partial rows to a single coordinator (C2P), then signal
/// end-of-stream to the coordinator only.
pub fn ship_partials_to(
    ctx: &mut NodeCtx,
    coordinator: usize,
    plan: &QueryPlan,
    partials: Vec<Vec<Value>>,
) -> Result<(), ExecError> {
    let mut ex = Exchange::new(
        ctx.nodes(),
        ctx.params().message_bytes,
        plan.key_len(),
        RowKind::Partial,
    );
    ctx.span_start(PhaseKind::Partition);
    let shipped = (|| {
        for row in &partials {
            ex.send_to(ctx, coordinator, row)?;
        }
        ex.flush(ctx)?;
        ctx.send_control(coordinator, Control::EndOfStream)
    })();
    ctx.span_end();
    shipped?;
    ctx.clock.mark("phase1");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_exec::{run_cluster, ClusterConfig};
    use adaptagg_model::{AggFunc, AggSpec, CostParams};
    use adaptagg_workload::RelationSpec;

    fn plan() -> QueryPlan {
        QueryPlan::new(&AggQuery::new(
            vec![0],
            vec![AggSpec::over(AggFunc::Sum, 1)],
        ))
    }

    #[test]
    fn query_plan_projects_and_remaps() {
        let q = AggQuery::new(vec![2], vec![AggSpec::over(AggFunc::Sum, 0)]);
        let p = QueryPlan::new(&q);
        assert_eq!(p.projection, vec![2, 0]);
        assert_eq!(p.projected.group_by, vec![0]);
        assert_eq!(p.projected.aggs[0].input, Some(1));
        assert_eq!(p.key_len(), 1);
    }

    #[test]
    fn local_aggregation_compresses_to_group_count() {
        let spec = RelationSpec::uniform(1000, 20);
        let parts = adaptagg_workload::generate_partitions(&spec, 2);
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let plan = plan();
        let run = run_cluster(&config, parts, |ctx| {
            let (partials, stats) = local_partial_aggregation(ctx, &plan, 1000, 4)?;
            Ok((partials.len(), stats.spilled()))
        })
        .unwrap();
        for (count, spilled) in run.outputs {
            assert_eq!(count, 20, "each node sees all 20 groups");
            assert!(!spilled);
        }
    }

    #[test]
    fn two_phase_via_common_blocks_matches_reference() {
        // Wire local aggregation + partitioned shipping + merge into a
        // miniature Two Phase and verify against a flat reference.
        let spec = RelationSpec::uniform(2000, 50);
        let parts = adaptagg_workload::generate_partitions(&spec, 4);
        let reference = crate::verify::reference_aggregate(
            &parts,
            &AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)]),
        )
        .unwrap();

        let config = ClusterConfig::new(4, CostParams::paper_default());
        let plan = plan();
        let run = run_cluster(&config, parts, |ctx| {
            let (partials, _) = local_partial_aggregation(ctx, &plan, 10_000, 4)?;
            ship_partials_partitioned(ctx, &plan, partials)?;
            let (rows, _) = merge_phase_store(ctx, &plan, 10_000, 4, Vec::new(), 0)?;
            Ok(rows)
        })
        .unwrap();

        let mut all: Vec<ResultRow> = run.outputs.into_iter().flatten().collect();
        adaptagg_model::query::sort_rows(&mut all);
        assert_eq!(all, reference);
    }

    #[test]
    fn merge_phase_rejects_unknown_controls() {
        // A control that has no business in a merge phase (a sampling
        // decision) must surface as a typed protocol violation, not a
        // panic — and attribution must point at the receiver that
        // detected it, not at a cascade.
        let spec = RelationSpec::uniform(200, 10);
        let parts = adaptagg_workload::generate_partitions(&spec, 2);
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let plan = plan();
        let r = run_cluster(&config, parts, |ctx| {
            if ctx.id() == 0 {
                ctx.send_control(
                    1,
                    Control::SamplingDecision {
                        use_repartitioning: true,
                        groups_in_sample: 0,
                    },
                )?;
                Ok(())
            } else {
                merge_phase_store(ctx, &plan, 100, 4, Vec::new(), 0).map(|_| ())
            }
        });
        assert_eq!(
            r.err(),
            Some(ExecError::Protocol("unexpected control in merge phase"))
        );
    }
}
