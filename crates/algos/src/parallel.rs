//! Intra-node morsel-driven drivers for the scan and merge phases.
//!
//! Both drivers are **optimistic fast paths** around the serial code in
//! [`crate::common`]: they run the physical work on `ctx.threads()`
//! workers through [`ParTables`] (the strategy engine), then make the
//! node's virtual clock land on *exactly* the serial value:
//!
//! * the **scan** driver charges nothing while workers run; each morsel
//!   records its pass/fail pattern into a [`ScanJournal`], and on commit
//!   the journals replay in morsel order — the same event sequence, in
//!   the same `f64` accumulation order, the serial scan records. If the
//!   engine aborts (budget, floats, any error) nothing was charged and
//!   the caller simply runs the unchanged serial path.
//! * the **merge** driver buffers arrivals cost-free and then walks
//!   them in **canonical order** — sender id ascending, per-sender FIFO,
//!   the same order the serial loop replays — charging optimistically
//!   inline: the Lamport `observe`, the protocol charge, and per data
//!   page the exact accept run the serial `push_page` emits when
//!   nothing spills. Pages are stashed in that canonical order instead
//!   of aggregated. On commit the stash is aggregated in parallel; on
//!   any deviation (engine abort, spill regime, floats, a receive
//!   error) the clock is restored from a snapshot and the stash replays
//!   through the serial aggregator — reproducing serial charges
//!   bit-for-bit even on error paths.
//!
//! Result rows are bit-identical in both paths because [`ParTables`]
//! reconstructs the serial insertion order from per-row stamps; see
//! `adaptagg-hashagg::parallel`.

use std::sync::atomic::{AtomicUsize, Ordering};

use adaptagg_exec::{
    build_select_mask, operators, replay_scan_journal, scan_morsel, ExecError, NodeCtx, PhaseKind,
    ScanJournal,
};
use adaptagg_hashagg::{HashAggStats, HashAggregator, IntraEvent, IntraMode, ParOutcome, ParTables};
use adaptagg_model::hash::{hash_batch_finish, hash_batch_init, hash_batch_ints, hash_batch_values};
use adaptagg_model::{CostEvent, CostTracker, ResultRow, RowKind, Seed, Value};
use adaptagg_net::{Control, Message, Page, Payload};
use adaptagg_storage::StripView;

use crate::common::{trace_hashagg, QueryPlan};

/// Pages per morsel. Small enough that 8 threads find work in modest
/// partitions, large enough that the claim (one atomic increment) is
/// noise.
pub const MORSEL_PAGES: usize = 8;

/// What the serial merge-phase `push_page` charges per accepted tuple
/// (`with_charge_hash(false)`: rows were hashed when partitioned). A
/// fully-accepted page is exactly one `record_tuples` of this over its
/// tuple count, which is what the optimistic inline charge predicts.
const MERGE_ACCEPT: [CostEvent; 2] = [CostEvent::TupleRead, CostEvent::TupleAgg];

/// Emit the engine's picker decisions as `intra.pick` / `intra.switch`
/// trace events (no-op when tracing is off).
fn trace_intra_events(ctx: &mut NodeCtx, events: &[IntraEvent]) {
    for ev in events {
        match *ev {
            IntraEvent::Pick { strategy, at_morsel } => {
                ctx.trace_intra_pick(strategy.name(), at_morsel)
            }
            IntraEvent::Switch {
                from,
                to,
                cause,
                at_morsel,
            } => ctx.trace_intra_switch(from.name(), to.name(), cause.name(), at_morsel),
        }
    }
}

/// Synthesize the stats a committed parallel aggregation reports.
///
/// `raw_in`/`partial_in`/`groups_out` are exact. `probe_slots` is
/// reported as the row count (one probe per row — the parallel
/// structures' actual probe counts depend on physical interleaving, and
/// stats must stay deterministic) and `peak_resident` as the group
/// count. Spill counters are zero by construction: a spill regime
/// aborts to the serial path.
fn synth_stats(raw_in: u64, partial_in: u64, groups_out: u64) -> HashAggStats {
    HashAggStats {
        raw_in,
        partial_in,
        groups_out,
        probe_slots: raw_in + partial_in,
        peak_resident: groups_out,
        ..HashAggStats::default()
    }
}

/// Morsel-parallel local aggregation (phase 1 of the Two Phase family).
///
/// Returns `None` when the node is ineligible (single-threaded,
/// recovery/fault session, tiny scan, non-prefix key) **or** the engine
/// aborted — in every such case nothing was charged and nothing was
/// consumed, so the caller runs the serial path unchanged.
pub fn par_local_aggregation(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    max_entries: usize,
) -> Option<(Vec<Vec<Value>>, HashAggStats)> {
    if !ctx.par_scan_eligible() {
        return None;
    }
    let threads = ctx.threads();
    let file = ctx.disk.take("base").ok()?;
    let pages = file.page_count();
    if pages < 2 {
        ctx.disk.put("base", file);
        return None;
    }
    let tables = match ParTables::new(
        plan.projected.clone(),
        max_entries,
        ctx.grant().clone(),
        threads,
        IntraMode::from_env(),
    ) {
        Some(t) => t,
        None => {
            ctx.disk.put("base", file);
            return None;
        }
    };
    let select = build_select_mask(&plan.base.filter, &plan.projection);
    let morsels = pages.div_ceil(MORSEL_PAGES);
    let cursor = AtomicUsize::new(0);

    // Physical scan: workers claim morsels, feed the engine, and journal
    // what the serial scan would have charged. No clock is touched.
    let mut journals: Vec<(usize, ScanJournal)> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let cursor = &cursor;
            let tables = &tables;
            let file = &file;
            let select = select.as_deref();
            handles.push(s.spawn(move || {
                let mut out: Vec<(usize, ScanJournal)> = Vec::new();
                loop {
                    let m = cursor.fetch_add(1, Ordering::Relaxed);
                    if m >= morsels || tables.aborted() {
                        break;
                    }
                    let start = m * MORSEL_PAGES;
                    let end = ((m + 1) * MORSEL_PAGES).min(pages);
                    let mut journal = ScanJournal::new();
                    let mut ordinal = 0u64;
                    let mut rows = 0u64;
                    let mut news = 0u64;
                    let scanned = scan_morsel(
                        file,
                        start,
                        end,
                        select,
                        &plan.base.filter,
                        &plan.projection,
                        &mut journal,
                        |values| {
                            let stamp = ((m as u64) << 24) | ordinal;
                            ordinal += 1;
                            match tables.insert(w, RowKind::Raw, values, stamp) {
                                None => Ok(false),
                                Some(is_new) => {
                                    rows += 1;
                                    if is_new {
                                        news += 1;
                                    }
                                    Ok(true)
                                }
                            }
                        },
                    );
                    match scanned {
                        Ok(true) => {
                            tables.report_morsel(m as u64, rows, news);
                            out.push((m, journal));
                        }
                        // Engine abort or a scan error: the serial rerun
                        // surfaces it with the right charges.
                        Ok(false) => break,
                        Err(_) => {
                            tables.abort();
                            break;
                        }
                    }
                }
                out
            }));
        }
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    // Scan barrier passed: scatter buffers are quiescent; aggregate the
    // partitioned route's partitions (each claimed exclusively).
    if !tables.aborted() {
        std::thread::scope(|s| {
            for _ in 0..threads {
                let tables = &tables;
                s.spawn(move || {
                    let mut scratch = Vec::new();
                    tables.run_partition_phase(&mut scratch);
                });
            }
        });
    }
    ctx.disk.put("base", file);
    let outcome: ParOutcome = tables.finish()?;

    // Commit: replay the journals in logical (morsel) order, then drain
    // — the exact serial charge sequence, under the serial spans.
    journals.sort_unstable_by_key(|(m, _)| *m);
    debug_assert_eq!(journals.len(), morsels);
    ctx.span_start(PhaseKind::Scan);
    for (_, journal) in &journals {
        replay_scan_journal(&mut ctx.clock, journal.ops());
    }
    ctx.span_end();
    ctx.span_start(PhaseKind::LocalAgg);
    let mut table = outcome.table;
    let partials = table.drain_partial_rows(&mut ctx.clock);
    ctx.span_end();
    let stats = synth_stats(outcome.raw_in, outcome.partial_in, partials.len() as u64);
    trace_intra_events(ctx, &outcome.events);
    trace_hashagg(ctx, &stats);
    Some((partials, stats))
}

/// One stashed merge-phase arrival, in serial order.
enum StashEntry {
    /// A page an earlier phase pulled off the wire (already observed).
    Pre { kind: RowKind, page: Page },
    /// A data page received in this phase.
    Data { kind: RowKind, page: Page, ts: f64 },
    /// A control message (only its Lamport observation matters).
    Control { ts: f64 },
}

/// Morsel-parallel merge phase. The caller must have checked
/// [`NodeCtx::par_scan_eligible`] — once this starts receiving, it owns
/// the phase (messages are consumed off the wire) and always completes
/// it: parallel on commit, by bit-identical serial replay on any
/// deviation.
pub fn par_merge_phase_store(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    max_entries: usize,
    fanout: usize,
    pre_received: Vec<(RowKind, Page)>,
    pre_eos: usize,
) -> Result<(Vec<ResultRow>, HashAggStats), ExecError> {
    let threads = ctx.threads();
    ctx.span_start(PhaseKind::Merge);
    let snapshot = ctx.clock.clone();
    let mut stash: Vec<StashEntry> = Vec::new();
    let mut pending_err: Option<ExecError> = None;

    for (kind, page) in pre_received {
        ctx.clock.record_tuples(&MERGE_ACCEPT, page.tuple_count() as u64);
        stash.push(StashEntry::Pre { kind, page });
    }
    // Buffer arrivals cost-free, exactly like the serial loop: clock
    // accounting happens only in the canonical walk below, so physical
    // arrival order cannot leak into the virtual time.
    let mut eos = pre_eos;
    let nodes = ctx.nodes();
    let mut streams: Vec<Vec<Message>> = (0..nodes).map(|_| Vec::new()).collect();
    while eos < nodes {
        match ctx.recv_deferred() {
            Ok(msg) => {
                match &msg.payload {
                    Payload::Data { .. } => {}
                    Payload::Control(Control::EndOfStream) => eos += 1,
                    Payload::Control(Control::EndOfPhase { .. }) => {}
                    Payload::Control(_) => {
                        pending_err =
                            Some(ExecError::Protocol("unexpected control in merge phase"));
                    }
                }
                let from = msg.from;
                streams[from].push(msg);
                if pending_err.is_some() {
                    break;
                }
            }
            // Receive errors charge nothing (aborts are intercepted
            // before observation), so the replay below reproduces the
            // serial clock at the failure point exactly.
            Err(e) => {
                pending_err = Some(e);
                break;
            }
        }
    }
    // Canonical walk — sender id ascending, per-sender FIFO, the same
    // order the serial loop replays: observe and charge optimistically
    // inline, and stash in that order so both the stamps and the
    // fallback replay see the schedule-independent sequence.
    for msgs in streams {
        for msg in msgs {
            let ts = msg.sent_at_ms;
            ctx.clock.observe(ts);
            match msg.payload {
                Payload::Data { kind, page } => {
                    ctx.clock.record(CostEvent::MsgProtocol, 1);
                    // Optimistic: predict full acceptance — exactly one
                    // accept run over the page, which is what the serial
                    // push charges when nothing spills.
                    ctx.clock.record_tuples(&MERGE_ACCEPT, page.tuple_count() as u64);
                    stash.push(StashEntry::Data { kind, page, ts });
                }
                Payload::Control(_) => stash.push(StashEntry::Control { ts }),
            }
        }
    }

    if pending_err.is_none() {
        if let Some((rows, stats)) = par_aggregate_stash(ctx, plan, max_entries, &stash, threads) {
            ctx.span_end();
            // Recycle consumed pages exactly as the serial loop does.
            for entry in stash {
                match entry {
                    StashEntry::Pre { page, .. } | StashEntry::Data { page, .. } => {
                        ctx.page_pool.put(page)
                    }
                    StashEntry::Control { .. } => {}
                }
            }
            trace_hashagg(ctx, &stats);
            operators::store_results(ctx, &rows)?;
            return Ok((rows, stats));
        }
    }

    // Deviation (spill regime, floats, budget, or a receive error):
    // restore the clock and replay the stash through the serial
    // aggregator — identical charges, identical state, even mid-error.
    ctx.clock = snapshot;
    let page_bytes = ctx.params().page_bytes;
    let mut agg = HashAggregator::new(plan.projected.clone(), max_entries, page_bytes, fanout)
        .with_charge_hash(false)
        .with_grant(ctx.grant().clone());
    let replayed = (|| {
        for entry in stash {
            match entry {
                StashEntry::Pre { kind, page } => {
                    agg.push_page(kind, &page, &mut ctx.clock)?;
                    ctx.page_pool.put(page);
                }
                StashEntry::Data { kind, page, ts } => {
                    ctx.clock.observe(ts);
                    ctx.clock.record(CostEvent::MsgProtocol, 1);
                    agg.push_page(kind, &page, &mut ctx.clock)?;
                    ctx.page_pool.put(page);
                }
                StashEntry::Control { ts } => ctx.clock.observe(ts),
            }
        }
        Ok(())
    })();
    if let Err(e) = replayed {
        ctx.span_end();
        return Err(e);
    }
    if let Some(e) = pending_err {
        ctx.span_end();
        return Err(e);
    }
    let spilled = agg.has_spilled();
    if spilled {
        ctx.span_start(PhaseKind::Spill);
    }
    let finished = agg.finish_rows(&mut ctx.clock);
    if spilled {
        ctx.span_end();
    }
    ctx.span_end();
    let (rows, stats) = finished?;
    trace_hashagg(ctx, &stats);
    operators::store_results(ctx, &rows)?;
    Ok((rows, stats))
}

/// Aggregate the stashed pages on `threads` workers. `None` = the
/// engine aborted (budget, floats, spill regime); the caller replays
/// serially. On success the result rows are drained with the real
/// clock, charging the serial finish's `t_w` run.
fn par_aggregate_stash(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    max_entries: usize,
    stash: &[StashEntry],
    threads: usize,
) -> Option<(Vec<ResultRow>, HashAggStats)> {
    let tables = ParTables::new(
        plan.projected.clone(),
        max_entries,
        ctx.grant().clone(),
        threads,
        IntraMode::from_env(),
    )?;
    // Batch-hash whole key strips per page (ADAPTAGG_COLUMNAR ≠ "row"),
    // feeding the engine prehashed rows; the engine requires a prefix
    // key, so the key columns are always the leading strips.
    let columnar = std::env::var("ADAPTAGG_COLUMNAR").map(|v| v != "row").unwrap_or(true);
    let key_len = plan.projected.group_by.len();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for w in 0..threads {
            let cursor = &cursor;
            let tables = &tables;
            s.spawn(move || {
                let mut scratch: Vec<Value> = Vec::new();
                let mut hashes: Vec<u64> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= stash.len() || tables.aborted() {
                        break;
                    }
                    let (kind, page) = match &stash[i] {
                        StashEntry::Pre { kind, page } => (*kind, page),
                        StashEntry::Data { kind, page, .. } => (*kind, page),
                        StashEntry::Control { .. } => continue,
                    };
                    let batched = if columnar { page.uniform_arity() } else { None };
                    if let Some(arity) = batched {
                        let k = key_len.min(arity);
                        hash_batch_init(Seed::Table, page.tuple_count(), &mut hashes);
                        for j in 0..k {
                            match page.column(j).expect("uniform-arity page has dense strips") {
                                StripView::Ints(xs) => hash_batch_ints(&mut hashes, xs),
                                StripView::Values(vs) => hash_batch_values(&mut hashes, vs),
                            }
                        }
                        hash_batch_finish(&mut hashes);
                    }
                    let mut ordinal = 0u64;
                    let mut rows = 0u64;
                    let mut news = 0u64;
                    let mut page_cursor = page.cursor();
                    loop {
                        match page_cursor.next_into(&mut scratch) {
                            Ok(false) => break,
                            Ok(true) => {}
                            Err(_) => {
                                tables.abort();
                                return;
                            }
                        }
                        let stamp = ((i as u64) << 24) | ordinal;
                        let inserted = if batched.is_some() {
                            let hash = hashes[ordinal as usize];
                            tables.insert_prehashed(w, kind, &scratch, stamp, hash)
                        } else {
                            tables.insert(w, kind, &scratch, stamp)
                        };
                        ordinal += 1;
                        match inserted {
                            None => return,
                            Some(is_new) => {
                                rows += 1;
                                if is_new {
                                    news += 1;
                                }
                            }
                        }
                    }
                    tables.report_morsel(i as u64, rows, news);
                }
            });
        }
    });
    if !tables.aborted() {
        std::thread::scope(|s| {
            for _ in 0..threads {
                let tables = &tables;
                s.spawn(move || {
                    let mut scratch = Vec::new();
                    tables.run_partition_phase(&mut scratch);
                });
            }
        });
    }
    let outcome = tables.finish()?;
    let mut table = outcome.table;
    let rows = table.drain_result_rows(&mut ctx.clock);
    let stats = synth_stats(outcome.raw_in, outcome.partial_in, rows.len() as u64);
    trace_intra_events(ctx, &outcome.events);
    Some((rows, stats))
}
