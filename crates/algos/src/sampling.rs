//! Sampling (§3.1).
//!
//! Decide between Two Phase and Repartitioning *before* running, from a
//! page-level random sample:
//!
//! ```text
//! sample the relation
//! find the number of groups in the sample
//! if (number of groups found < crossover threshold)  use Two Phase
//! else                                               use Repartitioning
//! ```
//!
//! Each node samples its local partition and sends the *distinct group
//! keys of its sample* to the coordinator (a miniature Centralized Two
//! Phase over the sample, as the paper suggests); the coordinator counts
//! distinct groups — a lower bound on the true count — applies the
//! crossover rule, and broadcasts the decision.

use crate::common::QueryPlan;
use crate::config::AlgoConfig;
use crate::outcome::{AdaptEvent, NodeOutcome};
use adaptagg_exec::{Exchange, ExecError, NodeCtx, PhaseKind};
use adaptagg_model::{CostEvent, CostTracker, GroupKey, RowKind};
use adaptagg_net::{Control, Payload};
use adaptagg_sample::{distinct_groups, sample_tuples, AlgorithmChoice};
use std::collections::HashSet;

/// The estimation coordinator (node 0).
pub const COORDINATOR: usize = 0;

/// Run the Sampling algorithm on one node.
pub fn run_node(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<NodeOutcome, ExecError> {
    ctx.span_start(PhaseKind::Sample);
    let estimated = estimate_and_decide(ctx, plan, cfg);
    ctx.span_end();
    let (choice, pre_received, pre_eos) = estimated?;
    let mut outcome = match choice {
        AlgorithmChoice::TwoPhase => {
            crate::twophase::run_node_with(ctx, plan, cfg, pre_received, pre_eos)?
        }
        AlgorithmChoice::Repartitioning => {
            crate::repart::run_node_with(ctx, plan, cfg, pre_received, pre_eos)?
        }
    };
    outcome.events.insert(0, AdaptEvent::SamplingChose(choice));
    Ok(outcome)
}

/// Phase 0: sample, estimate, decide, broadcast.
///
/// Returns the choice plus any phase-1 traffic that raced ahead of this
/// node's decision message: a peer that received its decision first may
/// already be shipping data. Per-sender channels are FIFO, but arrival
/// *across* senders is not ordered, so the wait loop buffers data pages
/// and end-of-stream markers for the main phase to consume.
#[allow(clippy::type_complexity)]
fn estimate_and_decide(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<(AlgorithmChoice, Vec<(RowKind, adaptagg_net::Page)>, usize), ExecError> {
    let per_node = cfg.crossover.sample_size_per_node();
    let node_seed = cfg.sample_seed ^ (ctx.id() as u64).wrapping_mul(0x9e37_79b9);

    // Sample local pages (charges rIO per page, t_r per tuple).
    let file = ctx.disk.take("base")?;
    let sample = sample_tuples(&file, per_node, node_seed, &mut ctx.clock)?;
    ctx.disk.put("base", file);

    // Local "aggregation" of the sample: find its distinct keys, charging
    // the §3.1 sample-aggregation costs (t_h + t_a per tuple; t_r was
    // charged by the sampler).
    let mut keys: HashSet<GroupKey> = HashSet::with_capacity(sample.len());
    for values in &sample {
        // The estimate must reflect the *filtered* relation's group count.
        if !adaptagg_model::matches_all(&plan.base.filter, values)? {
            continue;
        }
        ctx.clock.record(CostEvent::TupleHash, 1);
        ctx.clock.record(CostEvent::TupleAgg, 1);
        keys.insert(plan.base.key_of_values(values)?);
    }
    // Generate result tuples (t_w each) and ship to the coordinator.
    ctx.clock.record(CostEvent::TupleWrite, keys.len() as u64);
    let mut ex = Exchange::new(
        ctx.nodes(),
        ctx.params().message_bytes,
        plan.key_len(),
        RowKind::Raw,
    );
    for key in keys {
        ex.send_to(ctx, COORDINATOR, &key.into_values())?;
    }
    ex.flush(ctx)?;
    ctx.send_control(COORDINATOR, Control::EndOfStream)?;

    if ctx.id() == COORDINATOR {
        // Merge sample keys; the distinct count is a lower bound on the
        // relation's group count.
        let key_query = adaptagg_model::AggQuery::distinct(
            (0..plan.key_len()).collect(),
        );
        let mut all_keys: Vec<Vec<adaptagg_model::Value>> = Vec::new();
        let mut eos = 0;
        while eos < ctx.nodes() {
            let msg = ctx.recv()?;
            match msg.payload {
                Payload::Data { page, .. } => {
                    for t in page.iter() {
                        ctx.clock.record(CostEvent::TupleRead, 1);
                        all_keys.push(t?);
                    }
                    ctx.page_pool.put(page);
                }
                Payload::Control(Control::EndOfStream) => eos += 1,
                _ => return Err(ExecError::Protocol("unexpected control during sampling")),
            }
        }
        let groups = distinct_groups(&key_query, &all_keys)?;
        let choice = cfg.crossover.decide(groups);
        ctx.broadcast_control(Control::SamplingDecision {
            use_repartitioning: choice == AlgorithmChoice::Repartitioning,
            groups_in_sample: groups,
        })?;
        ctx.trace_sampling_decision(choice == AlgorithmChoice::Repartitioning, groups);
        // The coordinator cannot receive phase-1 traffic yet: peers start
        // phase 1 only after this broadcast.
        Ok((choice, Vec::new(), 0))
    } else {
        // Wait for the verdict, buffering any phase-1 traffic from peers
        // that got theirs first.
        let mut pre_received = Vec::new();
        let mut pre_eos = 0usize;
        loop {
            let msg = ctx.recv()?;
            match msg.payload {
                Payload::Control(Control::SamplingDecision {
                    use_repartitioning,
                    groups_in_sample,
                }) => {
                    ctx.trace_sampling_decision(use_repartitioning, groups_in_sample);
                    let choice = if use_repartitioning {
                        AlgorithmChoice::Repartitioning
                    } else {
                        AlgorithmChoice::TwoPhase
                    };
                    return Ok((choice, pre_received, pre_eos));
                }
                Payload::Data { kind, page } => pre_received.push((kind, page)),
                Payload::Control(Control::EndOfStream) => pre_eos += 1,
                // Abort never reaches this match (`recv` intercepts it);
                // any other control here is a protocol violation.
                Payload::Control(_) => {
                    return Err(ExecError::Protocol(
                        "unexpected control during sampling decision wait",
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algorithm_with, AlgorithmKind};
    use adaptagg_exec::ClusterConfig;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    fn run(groups: usize) -> crate::RunOutcome {
        let spec = RelationSpec::uniform(20_000, groups);
        let parts = generate_partitions(&spec, 4);
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        run_algorithm_with(
            AlgorithmKind::Sampling,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap()
    }

    fn chose_repartitioning(out: &crate::RunOutcome) -> bool {
        out.nodes.iter().all(|n| {
            n.events.iter().any(|e| {
                matches!(
                    e,
                    AdaptEvent::SamplingChose(AlgorithmChoice::Repartitioning)
                )
            })
        })
    }

    #[test]
    fn few_groups_choose_two_phase() {
        // 10 groups << threshold 40: sample can never show 40 groups.
        let out = run(10);
        assert!(!chose_repartitioning(&out));
        assert_eq!(out.rows.len(), 10);
    }

    #[test]
    fn many_groups_choose_repartitioning() {
        // 5000 groups >> threshold 40, sample of ~400/node shows plenty.
        let out = run(5000);
        assert!(chose_repartitioning(&out));
        assert_eq!(out.rows.len(), 5000);
    }

    #[test]
    fn all_nodes_agree_on_the_choice() {
        let out = run(5000);
        let choices: Vec<bool> = out
            .nodes
            .iter()
            .map(|n| {
                n.events.iter().any(|e| {
                    matches!(
                        e,
                        AdaptEvent::SamplingChose(AlgorithmChoice::Repartitioning)
                    )
                })
            })
            .collect();
        assert!(choices.iter().all(|&c| c == choices[0]));
    }

    #[test]
    fn sampling_pays_random_io() {
        let out = run(10);
        // Sampling charges rIO; at least the coordinator's node report
        // shows nonzero io before the main scan... indirectly: elapsed
        // exceeds a pure Two Phase run on identical data.
        let spec = RelationSpec::uniform(20_000, 10);
        let parts = generate_partitions(&spec, 4);
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let tp = run_algorithm_with(
            AlgorithmKind::TwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        assert!(
            out.elapsed_ms() > tp.elapsed_ms(),
            "sampling {} <= 2P {}",
            out.elapsed_ms(),
            tp.elapsed_ms()
        );
        assert_eq!(out.rows, tp.rows);
    }

    #[test]
    fn coordinator_rejects_unknown_controls_during_estimation() {
        // A rogue control in the coordinator's sample-gather loop is a
        // typed protocol violation, attributed to the coordinator.
        let spec = RelationSpec::uniform(400, 10);
        let parts = generate_partitions(&spec, 2);
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let plan = crate::common::QueryPlan::new(&default_query());
        let cfg = AlgoConfig::default_for(2);
        let r = adaptagg_exec::run_cluster(&config, parts, |ctx| {
            if ctx.id() == COORDINATOR {
                estimate_and_decide(ctx, &plan, &cfg).map(|_| ())
            } else {
                ctx.send_control(COORDINATOR, Control::EndOfPhase { groups_seen: 0 })?;
                Ok(())
            }
        });
        assert_eq!(
            r.err(),
            Some(ExecError::Protocol("unexpected control during sampling"))
        );
    }

    #[test]
    fn worker_rejects_unknown_controls_while_awaiting_decision() {
        // The worker's decision wait accepts the decision, racing phase-1
        // traffic, and end-of-stream markers — anything else is a typed
        // protocol violation.
        let spec = RelationSpec::uniform(400, 10);
        let parts = generate_partitions(&spec, 2);
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let plan = crate::common::QueryPlan::new(&default_query());
        let cfg = AlgoConfig::default_for(2);
        let r = adaptagg_exec::run_cluster(&config, parts, |ctx| {
            if ctx.id() == COORDINATOR {
                // Answer the worker's sample with a rogue control instead
                // of a decision, then drain its phase-0 stream.
                ctx.send_control(1, Control::EndOfPhase { groups_seen: 0 })?;
                loop {
                    if let Payload::Control(Control::EndOfStream) = ctx.recv()?.payload {
                        return Ok(());
                    }
                }
            } else {
                estimate_and_decide(ctx, &plan, &cfg).map(|_| ())
            }
        });
        assert_eq!(
            r.err(),
            Some(ExecError::Protocol(
                "unexpected control during sampling decision wait"
            ))
        );
    }
}
