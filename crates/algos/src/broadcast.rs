//! Broadcast aggregation — Bitton et al.'s second algorithm, included as
//! the negative baseline the paper dismisses: it "uses broadcast of the
//! tuples and lets each node process the tuples belonging to a subset of
//! groups. This is impractical on today's multiprocessor interconnects,
//! which do not efficiently support broadcasting" (§1).
//!
//! Every node ships its whole projected partition to **every** node
//! (N× the repartitioning volume); each receiver aggregates only the
//! tuples whose group key hashes to it and discards the rest after a
//! destination check. Correct, embarrassingly parallel — and catastrophic
//! on a shared bus, which the benchmarks demonstrate.

use crate::common::QueryPlan;
use crate::config::AlgoConfig;
use crate::outcome::NodeOutcome;
use adaptagg_exec::{operators, ExecError, NodeCtx};
use adaptagg_hashagg::HashAggregator;
use adaptagg_model::hash::{hash_values, Seed};
use adaptagg_model::{CostEvent, CostTracker, RowKind};
use adaptagg_net::{Blocker, Control, Page, Payload};

/// Run Broadcast aggregation on one node.
pub fn run_node(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<NodeOutcome, ExecError> {
    let max_entries = ctx.params().max_hash_entries;
    let fanout = cfg.overflow_fanout;
    let nodes = ctx.nodes();
    let message_bytes = ctx.params().message_bytes;
    let key_len = plan.key_len();

    // Phase 1: scan + project, blocking into pages; each sealed page is
    // cloned to every node (the broadcast).
    let mut blocker = Blocker::new(1, message_bytes);
    let mut scanned: u64 = 0;
    operators::scan_project(ctx, "base", &plan.base.filter, &plan.projection, |ctx, values| {
        scanned += 1;
        if let Some(page) = blocker.add_pooled(0, values, &mut ctx.page_pool)? {
            broadcast_page(ctx, &page)?;
            ctx.page_pool.put(page);
        }
        Ok(())
    })?;
    for (_, page) in blocker.flush() {
        broadcast_page(ctx, &page)?;
    }
    for dest in 0..nodes {
        ctx.send_control(dest, Control::EndOfStream)?;
    }
    ctx.clock.mark("phase1");

    // Phase 2: aggregate only the tuples this node owns; a destination
    // check (`t_d`) is paid for every received tuple, owned or not.
    let page_bytes = ctx.params().page_bytes;
    let mut agg = HashAggregator::new(plan.projected.clone(), max_entries, page_bytes, fanout)
        .with_charge_hash(false)
        .with_grant(ctx.grant().clone());
    let mut eos = 0usize;
    let mut discarded: u64 = 0;
    let mut scratch: Vec<adaptagg_model::Value> = Vec::new();
    while eos < nodes {
        let msg = ctx.recv()?;
        match msg.payload {
            Payload::Data { page, .. } => {
                let mut cursor = page.cursor();
                while cursor.next_into(&mut scratch)? {
                    ctx.clock.record(CostEvent::TupleDest, 1);
                    let owner = (hash_values(Seed::Partition, &scratch[..key_len.min(scratch.len())])
                        % nodes as u64) as usize;
                    if owner == ctx.id() {
                        push_one(&mut agg, &scratch, ctx)?;
                    } else {
                        discarded += 1;
                    }
                }
                ctx.page_pool.put(page);
            }
            Payload::Control(Control::EndOfStream) => eos += 1,
            Payload::Control(_) => {
                return Err(ExecError::Protocol("unexpected control in broadcast merge"))
            }
        }
    }

    let (rows, mut agg_stats) = agg.finish_rows(&mut ctx.clock)?;
    operators::store_results(ctx, &rows)?;
    agg_stats.raw_in += scanned + discarded;
    Ok(NodeOutcome {
        rows,
        agg: agg_stats,
        events: Vec::new(),
    })
}

fn broadcast_page(ctx: &mut NodeCtx, page: &Page) -> Result<(), ExecError> {
    for dest in 0..ctx.nodes() {
        ctx.send_page(dest, RowKind::Raw, page.clone())?;
    }
    Ok(())
}

fn push_one(
    agg: &mut HashAggregator,
    values: &[adaptagg_model::Value],
    ctx: &mut NodeCtx,
) -> Result<(), ExecError> {
    agg.push_raw(values, &mut ctx.clock)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algorithm_with, AlgorithmKind};
    use adaptagg_exec::ClusterConfig;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    #[test]
    fn matches_reference() {
        let spec = RelationSpec::uniform(4_000, 300);
        let parts = generate_partitions(&spec, 4);
        let query = default_query();
        let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let out =
            run_algorithm_with(AlgorithmKind::Broadcast, &config, &parts, &query, &cfg).unwrap();
        assert_eq!(out.rows, reference);
    }

    #[test]
    fn ships_n_times_the_relation() {
        let spec = RelationSpec::uniform(2_000, 100);
        let parts = generate_partitions(&spec, 4);
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let out = run_algorithm_with(
            AlgorithmKind::Broadcast,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        assert_eq!(out.run.total_net().tuples_sent, 4 * 2_000);
    }

    #[test]
    fn loses_badly_on_a_shared_bus() {
        // The paper's dismissal, demonstrated: N× the volume on a
        // sequential medium.
        let spec = RelationSpec::uniform(8_000, 2_000);
        let parts = generate_partitions(&spec, 8);
        let config = ClusterConfig::new(8, CostParams::cluster_default());
        let cfg = AlgoConfig::default_for(8);
        let bcast = run_algorithm_with(
            AlgorithmKind::Broadcast,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        let rep = run_algorithm_with(
            AlgorithmKind::Repartitioning,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        assert_eq!(bcast.rows, rep.rows);
        assert!(
            bcast.elapsed_ms() > rep.elapsed_ms() * 3.0,
            "broadcast {} vs repartitioning {}",
            bcast.elapsed_ms(),
            rep.elapsed_ms()
        );
    }

    #[test]
    fn merge_rejects_unknown_controls() {
        let spec = RelationSpec::uniform(2_000, 50);
        let parts = generate_partitions(&spec, 2);
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let plan = crate::common::QueryPlan::new(&default_query());
        let cfg = AlgoConfig::default_for(2);
        let r = adaptagg_exec::run_cluster(&config, parts, |ctx| {
            if ctx.id() == 0 {
                ctx.send_control(
                    1,
                    Control::SamplingDecision {
                        use_repartitioning: false,
                        groups_in_sample: 0,
                    },
                )?;
                // Consume the peer's broadcast until its abort arrives.
                loop {
                    ctx.recv()?;
                }
            } else {
                run_node(ctx, &plan, &cfg).map(|_| ())
            }
        });
        assert_eq!(
            r.err(),
            Some(ExecError::Protocol("unexpected control in broadcast merge"))
        );
    }
}
