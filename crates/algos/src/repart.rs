//! Repartitioning (§2.3).
//!
//! "First partitions the data on the GROUP BY attributes and then
//! aggregates the partitions in parallel. It eliminates duplication of
//! work as each value is processed for aggregation just once. It also
//! reduces the memory requirement as each group value is stored in one
//! place only." The price is shipping the whole (projected) relation —
//! cheap on an SP-2, ruinous on shared Ethernet (Figures 1 vs 4/8) — and
//! under-utilization when there are fewer groups than processors.

use crate::common::{merge_phase_store, QueryPlan};
use crate::config::AlgoConfig;
use crate::outcome::NodeOutcome;
use adaptagg_exec::{operators, Exchange, ExecError, NodeCtx};
use adaptagg_model::RowKind;

/// Run Repartitioning on one node.
pub fn run_node(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<NodeOutcome, ExecError> {
    run_node_with(ctx, plan, cfg, Vec::new(), 0)
}

/// Repartitioning accepting pages/EOS an earlier phase already pulled off
/// the wire (Sampling's decision wait).
pub fn run_node_with(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
    pre_received: Vec<(RowKind, adaptagg_net::Page)>,
    pre_eos: usize,
) -> Result<NodeOutcome, ExecError> {
    let max_entries = ctx.params().max_hash_entries;
    let fanout = cfg.overflow_fanout;

    // Phase 1: scan, project, hash-partition raw tuples to their owners.
    // Select cost per §2.3 is t_r + t_w (scan) + t_h + t_d (route).
    let mut ex = Exchange::new(
        ctx.nodes(),
        ctx.params().message_bytes,
        plan.key_len(),
        RowKind::Raw,
    );
    operators::scan_project(ctx, "base", &plan.base.filter, &plan.projection, |ctx, values| {
        ex.route(ctx, values, true)
    })?;
    ex.finish(ctx)?;
    ctx.clock.mark("phase1");

    // Phase 2: aggregate everything that hashed here, store locally.
    let (rows, agg) = merge_phase_store(ctx, plan, max_entries, fanout, pre_received, pre_eos)?;
    Ok(NodeOutcome {
        rows,
        agg,
        events: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algorithm_with, AlgorithmKind};
    use adaptagg_exec::ClusterConfig;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    #[test]
    fn matches_reference() {
        let spec = RelationSpec::uniform(3000, 300);
        let parts = generate_partitions(&spec, 4);
        let query = default_query();
        let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();

        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let out =
            run_algorithm_with(AlgorithmKind::Repartitioning, &config, &parts, &query, &cfg)
                .unwrap();
        assert_eq!(out.rows, reference);
    }

    #[test]
    fn each_group_aggregated_exactly_once() {
        // No duplicated work: total rows into merge tables equals the
        // relation size (every tuple once), and groups_out equals the
        // group count (each group in one place).
        let spec = RelationSpec::uniform(2000, 100);
        let parts = generate_partitions(&spec, 4);
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let out = run_algorithm_with(
            AlgorithmKind::Repartitioning,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        let raw_in: u64 = out.nodes.iter().map(|n| n.agg.raw_in).sum();
        assert_eq!(raw_in, 2000);
        let groups_out: u64 = out.nodes.iter().map(|n| n.agg.groups_out).sum();
        assert_eq!(groups_out, 100);
    }

    #[test]
    fn ships_the_whole_projected_relation() {
        let spec = RelationSpec::uniform(2000, 100);
        let parts = generate_partitions(&spec, 4);
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(4);
        let out = run_algorithm_with(
            AlgorithmKind::Repartitioning,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        assert_eq!(out.run.total_net().tuples_sent, 2000);
    }

    #[test]
    fn fewer_groups_than_nodes_underutilizes() {
        // 2 groups on 8 nodes: at most 2 nodes receive any data.
        let spec = RelationSpec::uniform(1000, 2);
        let parts = generate_partitions(&spec, 8);
        let config = ClusterConfig::new(8, CostParams::paper_default());
        let cfg = AlgoConfig::default_for(8);
        let out = run_algorithm_with(
            AlgorithmKind::Repartitioning,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        let busy = out.nodes.iter().filter(|n| n.agg.raw_in > 0).count();
        assert!(busy <= 2, "{busy} nodes got data for 2 groups");
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn memory_pressure_is_lower_than_two_phase() {
        // With G groups spread over N nodes, Rep holds ~G/N entries per
        // node while 2P's local phase holds up to G; at M between the
        // two, Rep must not spill while 2P must.
        let spec = RelationSpec::uniform(8000, 2000);
        let parts = generate_partitions(&spec, 4);
        let params = CostParams {
            max_hash_entries: 1000, // G/N = 500 < M=1000 < G=2000
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(4, params);
        let cfg = AlgoConfig::default_for(4);
        let rep = run_algorithm_with(
            AlgorithmKind::Repartitioning,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        let tp = run_algorithm_with(
            AlgorithmKind::TwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        assert_eq!(rep.total_spilled(), 0, "Rep fits in memory");
        assert!(tp.total_spilled() > 0, "2P must overflow");
        assert_eq!(rep.rows, tp.rows, "same answer either way");
    }
}
