//! Algorithm dispatch: run any of the nine strategies on a cluster.

use crate::common::QueryPlan;
use crate::config::AlgoConfig;
use crate::outcome::{NodeOutcome, NodeOutcomeSummary, RunOutcome};
use adaptagg_exec::{run_cluster, ClusterConfig, ExecError, NodeCtx};
use adaptagg_model::query::sort_rows;
use adaptagg_model::AggQuery;
use adaptagg_storage::HeapFile;
use std::fmt;

/// The aggregation strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// §2.1 — local aggregation, sequential merge at a coordinator.
    CentralizedTwoPhase,
    /// §2.2 — local aggregation, parallel hash-partitioned merge.
    TwoPhase,
    /// §2.3 — repartition raw tuples, aggregate once in parallel.
    Repartitioning,
    /// §3.1 — sample first, then run Two Phase or Repartitioning.
    Sampling,
    /// §3.2 — Two Phase that switches to Repartitioning at the memory
    /// knee, per node independently. The paper's recommendation.
    AdaptiveTwoPhase,
    /// §3.3 — Repartitioning that falls back to Adaptive Two Phase when a
    /// node sees too few groups.
    AdaptiveRepartitioning,
    /// Graefe's optimization (\[Gra93\], discussed in §3.2): forward
    /// overflow tuples instead of spilling, keep the local table resident.
    OptimizedTwoPhase,
    /// Bitton et al.'s sort-based local aggregation (\[BBDW83\], cited in
    /// §1): sorted runs with early aggregation instead of a hash table.
    SortTwoPhase,
    /// Bitton et al.'s broadcast algorithm (\[BBDW83\], cited in §1 as
    /// "impractical on today's multiprocessor interconnects"): every node
    /// ships everything to everyone. The negative baseline.
    Broadcast,
}

impl AlgorithmKind {
    /// All strategies, in the paper's presentation order (paper baselines
    /// and proposals first, related-work baselines last).
    pub const ALL: [AlgorithmKind; 9] = [
        AlgorithmKind::CentralizedTwoPhase,
        AlgorithmKind::TwoPhase,
        AlgorithmKind::Repartitioning,
        AlgorithmKind::Sampling,
        AlgorithmKind::AdaptiveTwoPhase,
        AlgorithmKind::AdaptiveRepartitioning,
        AlgorithmKind::OptimizedTwoPhase,
        AlgorithmKind::SortTwoPhase,
        AlgorithmKind::Broadcast,
    ];

    /// The five the paper's implementation study plots (Figure 8).
    pub const FIGURE8: [AlgorithmKind; 5] = [
        AlgorithmKind::TwoPhase,
        AlgorithmKind::Repartitioning,
        AlgorithmKind::Sampling,
        AlgorithmKind::AdaptiveTwoPhase,
        AlgorithmKind::AdaptiveRepartitioning,
    ];

    /// Short plot label, as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::CentralizedTwoPhase => "C-2P",
            AlgorithmKind::TwoPhase => "2P",
            AlgorithmKind::Repartitioning => "Rep",
            AlgorithmKind::Sampling => "Samp",
            AlgorithmKind::AdaptiveTwoPhase => "A-2P",
            AlgorithmKind::AdaptiveRepartitioning => "A-Rep",
            AlgorithmKind::OptimizedTwoPhase => "Opt-2P",
            AlgorithmKind::SortTwoPhase => "Sort-2P",
            AlgorithmKind::Broadcast => "Bcast",
        }
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Run an algorithm with default tuning for the cluster size.
pub fn run_algorithm(
    kind: AlgorithmKind,
    cluster: &ClusterConfig,
    partitions: &[HeapFile],
    query: &AggQuery,
) -> Result<RunOutcome, ExecError> {
    run_algorithm_with(
        kind,
        cluster,
        partitions,
        query,
        &AlgoConfig::default_for(cluster.nodes),
    )
}

/// Run an algorithm with explicit tuning.
///
/// `partitions[i]` is node `i`'s base partition (cloned into the node's
/// simulated disk so the caller can reuse them across algorithms). The
/// returned [`RunOutcome`] carries the globally-sorted result, virtual-time
/// reports, and per-node adaptive events.
pub fn run_algorithm_with(
    kind: AlgorithmKind,
    cluster: &ClusterConfig,
    partitions: &[HeapFile],
    query: &AggQuery,
    cfg: &AlgoConfig,
) -> Result<RunOutcome, ExecError> {
    let plan = QueryPlan::new(query);
    let body = move |ctx: &mut NodeCtx| -> Result<NodeOutcome, ExecError> {
        match kind {
            AlgorithmKind::CentralizedTwoPhase => crate::c2p::run_node(ctx, &plan, cfg),
            AlgorithmKind::TwoPhase => crate::twophase::run_node(ctx, &plan, cfg),
            AlgorithmKind::Repartitioning => crate::repart::run_node(ctx, &plan, cfg),
            AlgorithmKind::Sampling => crate::sampling::run_node(ctx, &plan, cfg),
            AlgorithmKind::AdaptiveTwoPhase => crate::adaptive2p::run_node(ctx, &plan, cfg),
            AlgorithmKind::AdaptiveRepartitioning => {
                crate::adaptiverep::run_node(ctx, &plan, cfg)
            }
            AlgorithmKind::OptimizedTwoPhase => crate::opt2p::run_node(ctx, &plan, cfg),
            AlgorithmKind::SortTwoPhase => crate::sort2p::run_node(ctx, &plan, cfg),
            AlgorithmKind::Broadcast => crate::broadcast::run_node(ctx, &plan, cfg),
        }
    };

    let cluster_run = run_cluster(cluster, partitions.to_vec(), body)?;

    let mut rows = Vec::new();
    let mut nodes = Vec::with_capacity(cluster_run.outputs.len());
    for outcome in cluster_run.outputs {
        nodes.push(NodeOutcomeSummary {
            rows_produced: outcome.rows.len(),
            agg: outcome.agg,
            events: outcome.events,
        });
        rows.extend(outcome.rows);
    }
    sort_rows(&mut rows);

    Ok(RunOutcome {
        rows,
        run: cluster_run.run,
        nodes,
        trace: cluster_run.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in AlgorithmKind::ALL {
            assert!(seen.insert(k.label()), "duplicate label {}", k.label());
        }
    }

    #[test]
    fn all_algorithms_agree_on_one_workload() {
        let spec = RelationSpec::uniform(4000, 150);
        let parts = generate_partitions(&spec, 4);
        let query = default_query();
        let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();
        let config = ClusterConfig::new(4, CostParams::paper_default());
        for kind in AlgorithmKind::ALL {
            let out = run_algorithm(kind, &config, &parts, &query).unwrap();
            assert_eq!(out.rows, reference, "{kind} diverged from reference");
        }
    }

    #[test]
    fn partitions_are_reusable_across_runs() {
        let spec = RelationSpec::uniform(500, 10);
        let parts = generate_partitions(&spec, 2);
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let query = default_query();
        let a = run_algorithm(AlgorithmKind::TwoPhase, &config, &parts, &query).unwrap();
        let b = run_algorithm(AlgorithmKind::TwoPhase, &config, &parts, &query).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.elapsed_ms(), b.elapsed_ms(), "virtual time is deterministic");
    }
}
