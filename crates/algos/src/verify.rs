//! Reference aggregation: the ground truth every algorithm must match.

use adaptagg_model::query::sort_rows;
use adaptagg_model::{AggQuery, AggStates, GroupKey, ResultRow};
use adaptagg_storage::{HeapFile, StorageError};
use std::collections::HashMap;

/// Aggregate all partitions on a single unbounded, uncosted hash table.
/// This is the semantic specification of the query — the integration
/// suite asserts that every parallel algorithm's output equals this,
/// sorted by group key.
pub fn reference_aggregate(
    partitions: &[HeapFile],
    query: &AggQuery,
) -> Result<Vec<ResultRow>, StorageError> {
    let mut groups: HashMap<GroupKey, AggStates> = HashMap::new();
    for part in partitions {
        for tuple in part.iter_untracked() {
            let values = tuple?;
            if !adaptagg_model::matches_all(&query.filter, &values)? {
                continue;
            }
            let key = query.key_of_values(&values)?;
            let states = groups
                .entry(key)
                .or_insert_with(|| AggStates::new(&query.aggs));
            states.update_from_tuple(&query.aggs, &values)?;
        }
    }
    let mut rows: Vec<ResultRow> = groups
        .into_iter()
        .map(|(key, states)| ResultRow::new(key, states.finalize()))
        .collect();
    sort_rows(&mut rows);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec, Value};

    fn part(rows: &[(i64, i64)]) -> HeapFile {
        let tuples: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(g, v)| vec![Value::Int(g), Value::Int(v)])
            .collect();
        HeapFile::from_tuples(4096, tuples.iter().map(|t| t.as_slice())).unwrap()
    }

    #[test]
    fn aggregates_across_partitions() {
        let parts = vec![part(&[(1, 10), (2, 1)]), part(&[(1, 5), (3, 7)])];
        let q = AggQuery::new(
            vec![0],
            vec![AggSpec::over(AggFunc::Sum, 1), AggSpec::count_star()],
        );
        let rows = reference_aggregate(&parts, &q).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].key.values(), &[Value::Int(1)]);
        assert_eq!(rows[0].aggs, vec![Value::Int(15), Value::Int(2)]);
        assert_eq!(rows[1].aggs, vec![Value::Int(1), Value::Int(1)]);
        assert_eq!(rows[2].aggs, vec![Value::Int(7), Value::Int(1)]);
    }

    #[test]
    fn output_is_sorted_by_key() {
        let parts = vec![part(&[(9, 1), (3, 1), (5, 1)])];
        let q = AggQuery::distinct(vec![0]);
        let rows = reference_aggregate(&parts, &q).unwrap();
        let keys: Vec<i64> = rows
            .iter()
            .map(|r| r.key.values()[0].as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![3, 5, 9]);
    }

    #[test]
    fn empty_relation_empty_result() {
        let q = AggQuery::distinct(vec![0]);
        assert!(reference_aggregate(&[], &q).unwrap().is_empty());
        assert!(reference_aggregate(&[part(&[])], &q).unwrap().is_empty());
    }
}
