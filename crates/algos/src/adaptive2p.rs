//! Adaptive Two Phase (§3.2) — the paper's flagship.
//!
//! Start as Two Phase under the common-case assumption that the number of
//! groups is small. The moment the local hash table fills — the point at
//! which plain Two Phase would start paying intermediate overflow I/O —
//! the node:
//!
//! 1. stops aggregating locally,
//! 2. partitions and ships the accumulated **partial** results downstream
//!    (freeing its memory — the advantage over Graefe's optimization,
//!    which keeps the table resident),
//! 3. forwards every remaining tuple **raw**, hash-partitioned, exactly
//!    like Repartitioning.
//!
//! The merge phase accepts both kinds in one table. Crucially, "each
//! processor … adapts based on what it observes, independently of what
//! all the other processors are doing" — no synchronization; under §6's
//! output skew the group-rich nodes switch while group-poor ones stay in
//! Two Phase mode, beating both static algorithms.

use crate::common::{merge_phase_store, QueryPlan};
use crate::config::AlgoConfig;
use crate::outcome::{AdaptEvent, NodeOutcome};
use adaptagg_exec::{operators, Exchange, ExecError, NodeCtx, PhaseKind, SwitchCause};
use adaptagg_hashagg::{AggTable, Inserted};
use adaptagg_model::RowKind;

/// Run Adaptive Two Phase on one node.
pub fn run_node(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
) -> Result<NodeOutcome, ExecError> {
    run_node_with(ctx, plan, cfg, Vec::new(), 0, None)
}

/// A2P with pre-received traffic and an optional pre-seeded local table
/// (Adaptive Repartitioning falls back into this with whatever it had).
pub fn run_node_with(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    cfg: &AlgoConfig,
    pre_received: Vec<(RowKind, adaptagg_net::Page)>,
    pre_eos: usize,
    // (scanned_so_far, exchange) when resuming mid-scan — used by ARep.
    resume: Option<ResumeState>,
) -> Result<NodeOutcome, ExecError> {
    let max_entries = ctx.params().max_hash_entries;
    let fanout = cfg.overflow_fanout;
    let mut events = Vec::new();

    let resuming = resume.is_some();
    let (mut scan, mut ex) = match resume {
        Some(r) => (r.scan, r.exchange),
        None => (
            ScanState::new(plan, max_entries).with_grant(ctx.grant().clone()),
            Exchange::new(
                ctx.nodes(),
                ctx.params().message_bytes,
                plan.key_len(),
                RowKind::Partial,
            ),
        ),
    };

    ctx.span_start(PhaseKind::Scan);
    let scanned = if !resuming && ctx.recovery.is_some() {
        checkpointed_scan(ctx, plan, &mut scan, &mut ex, &mut events)
    } else {
        operators::scan_project(ctx, "base", &plan.base.filter, &plan.projection, |ctx, values| {
            scan.push(ctx, &mut ex, plan, values, &mut events)
        })
        .map(|_| ())
    };
    ctx.span_end();
    scanned?;

    // If we never switched, the table holds all local partials: ship them
    // partitioned (plain Two Phase behaviour).
    ctx.span_start(PhaseKind::Partition);
    let shipped = (|| {
        if !scan.switched {
            let partials = scan.table.drain_partial_rows(&mut ctx.clock);
            ex.switch_kind(ctx, RowKind::Partial)?;
            ex.route_rows(ctx, &partials, false)?;
        }
        ex.finish(ctx)
    })();
    ctx.span_end();
    shipped?;
    ctx.clock.mark("phase1");

    // Merge phase: raw + partial interleaved, one bounded table.
    let (rows, mut agg) =
        merge_phase_store(ctx, plan, max_entries, fanout, pre_received, pre_eos)?;
    agg.raw_in += scan.raw_seen;
    Ok(NodeOutcome { rows, agg, events })
}

/// The A2P scan under a recovery session: per assigned partition, restore
/// durable partials (shipping them to their owners right away — they are
/// phase-1 output an earlier attempt already produced), then scan the
/// un-checkpointed page suffix chunk by chunk.
///
/// Durable progress only advances while the node has *not* switched: at a
/// chunk boundary in Two Phase mode the table is drained into the
/// checkpoint and shipped (the table restarts empty, so each checkpoint
/// is self-contained). After the switch, output leaves the node as raw
/// forwarded tuples living in peers' memory — nothing durable — so the
/// checkpoint is frozen and only the replay high-water advances. The
/// boundary drains also mean the table rarely fills across chunks: under
/// recovery the switch heuristic effectively observes one chunk at a
/// time, a deliberate granularity trade-off of checkpointing.
fn checkpointed_scan(
    ctx: &mut NodeCtx,
    plan: &QueryPlan,
    scan: &mut ScanState,
    ex: &mut Exchange,
    events: &mut Vec<AdaptEvent>,
) -> Result<(), ExecError> {
    let mut session = ctx.recovery.take().expect("checked by caller");
    let result = (|| {
        for seg in session.segments() {
            let restored = session.restore_partials(seg.partition, &mut ctx.clock)?;
            route_partials_now(ctx, ex, scan.switched, &restored)?;
            let mut done = session.resume_point(seg.partition).min(seg.pages);
            while done < seg.pages {
                let chunk_end = (done + session.interval_pages()).min(seg.pages);
                operators::scan_project_range(
                    ctx,
                    "base",
                    &plan.base.filter,
                    &plan.projection,
                    seg.start_page + done,
                    seg.start_page + chunk_end,
                    |ctx, values| scan.push(ctx, ex, plan, values, events),
                )?;
                if !scan.switched {
                    let partials = scan.table.drain_partial_rows(&mut ctx.clock);
                    session.checkpoint(
                        seg.partition,
                        chunk_end,
                        &partials,
                        chunk_end == seg.pages,
                        &mut ctx.clock,
                        &mut ctx.disk,
                    )?;
                    route_partials_now(ctx, ex, false, &partials)?;
                } else {
                    session.note_scanned(seg.partition, chunk_end);
                }
                done = chunk_end;
            }
        }
        Ok(())
    })();
    ctx.recovery = Some(session);
    result
}

/// Route already-finalized partial rows through the exchange, restoring
/// the raw kind afterwards if the scan had switched.
fn route_partials_now(
    ctx: &mut NodeCtx,
    ex: &mut Exchange,
    switched: bool,
    rows: &[Vec<adaptagg_model::Value>],
) -> Result<(), ExecError> {
    if rows.is_empty() {
        return Ok(());
    }
    if switched {
        ex.switch_kind(ctx, RowKind::Partial)?;
    }
    ex.route_rows(ctx, rows, false)?;
    if switched {
        ex.switch_kind(ctx, RowKind::Raw)?;
    }
    Ok(())
}

/// The A2P scan-side state machine (shared with ARep's fallback).
#[derive(Debug)]
pub struct ScanState {
    /// The bounded local table (phase 1's "first bucket").
    pub table: AggTable,
    /// Whether the memory-full switch has fired.
    pub switched: bool,
    /// Tuples scanned so far.
    pub raw_seen: u64,
}

impl ScanState {
    /// Fresh scan state for a node.
    pub fn new(plan: &QueryPlan, max_entries: usize) -> Self {
        ScanState {
            table: AggTable::new(plan.projected.clone(), max_entries),
            switched: false,
            raw_seen: 0,
        }
    }

    /// Attach the node's live memory grant to the local table: a broker
    /// revocation mid-scan then triggers the adaptive switch exactly as a
    /// naturally-full table would.
    pub fn with_grant(mut self, grant: adaptagg_model::MemoryGrant) -> Self {
        self.table.set_grant(grant);
        self
    }

    /// Process one projected tuple: aggregate locally until the table
    /// fills, then flush partials and forward raws.
    pub fn push(
        &mut self,
        ctx: &mut NodeCtx,
        ex: &mut Exchange,
        _plan: &QueryPlan,
        values: &[adaptagg_model::Value],
        events: &mut Vec<AdaptEvent>,
    ) -> Result<(), ExecError> {
        self.raw_seen += 1;
        if self.switched {
            // Repartitioning mode: hash + destination per tuple.
            ex.route(ctx, values, true)?;
            return Ok(());
        }
        match self.table.insert_raw(values, &mut ctx.clock)? {
            Inserted::Updated | Inserted::New => Ok(()),
            Inserted::Full => {
                // The switch (§3.2): flush accumulated partials to their
                // owners, freeing memory, then forward raws.
                let partials = self.table.drain_partial_rows(&mut ctx.clock);
                ex.switch_kind(ctx, RowKind::Partial)?;
                ex.route_rows(ctx, &partials, false)?;
                ex.switch_kind(ctx, RowKind::Raw)?;
                self.switched = true;
                events.push(AdaptEvent::SwitchedToRepartitioning {
                    at_tuple: self.raw_seen,
                });
                ctx.trace_switch(SwitchCause::TableFull, self.raw_seen);
                // The tuple that triggered the switch is forwarded raw
                // (its hash was already charged by the failed insert).
                ex.route(ctx, values, false)?;
                Ok(())
            }
        }
    }
}

/// State handed over by Adaptive Repartitioning when it falls back (§3.3).
#[derive(Debug)]
pub struct ResumeState {
    /// The scan state (table possibly pre-seeded, counters running).
    pub scan: ScanState,
    /// The exchange (with its buffered pages and current kind).
    pub exchange: Exchange,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algorithm_with, AlgorithmKind};
    use adaptagg_exec::ClusterConfig;
    use adaptagg_model::CostParams;
    use adaptagg_workload::{default_query, generate_partitions, RelationSpec};

    fn run(tuples: usize, groups: usize, nodes: usize, m: usize) -> crate::RunOutcome {
        let spec = RelationSpec::uniform(tuples, groups);
        let parts = generate_partitions(&spec, nodes);
        let params = CostParams {
            max_hash_entries: m,
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(nodes, params);
        let cfg = AlgoConfig::default_for(nodes);
        run_algorithm_with(
            AlgorithmKind::AdaptiveTwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn few_groups_stays_two_phase() {
        let out = run(4000, 50, 4, 1000);
        assert!(out.adapted_nodes().is_empty(), "no node should switch");
        assert_eq!(out.rows.len(), 50);
        assert_eq!(out.total_spilled(), 0);
    }

    #[test]
    fn many_groups_switches_at_the_memory_knee() {
        // Each node sees ~all 2000 groups; M = 100 → switch after ~100
        // distinct groups observed.
        let out = run(8000, 2000, 4, 100);
        assert_eq!(out.adapted_nodes().len(), 4, "every node switches");
        assert_eq!(out.rows.len(), 2000);
        for n in &out.nodes {
            let at = n
                .events
                .iter()
                .find_map(|e| match e {
                    AdaptEvent::SwitchedToRepartitioning { at_tuple } => Some(*at_tuple),
                    _ => None,
                })
                .expect("switch event");
            // The switch can't fire before M distinct groups were seen.
            assert!(at >= 100, "switched after only {at} tuples");
        }
    }

    #[test]
    fn local_phase_never_spills() {
        // The defining property (§3.2): A2P avoids *local* intermediate
        // I/O by switching instead of spilling. (The merge phase may
        // still spill when G/N exceeds M — that is unavoidable.)
        let out = run(8000, 1500, 4, 150);
        // merge tables hold ~1500/4 = 375 > 150 → merge spills allowed;
        // but check against plain 2P: A2P must spill strictly less.
        let spec = RelationSpec::uniform(8000, 1500);
        let parts = generate_partitions(&spec, 4);
        let params = CostParams {
            max_hash_entries: 150,
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(4, params);
        let cfg = AlgoConfig::default_for(4);
        let tp = run_algorithm_with(
            AlgorithmKind::TwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        assert!(
            out.total_spilled() < tp.total_spilled(),
            "A2P {} >= 2P {}",
            out.total_spilled(),
            tp.total_spilled()
        );
        assert_eq!(out.rows, tp.rows);
    }

    #[test]
    fn matches_reference_across_the_selectivity_range() {
        for groups in [1usize, 10, 100, 1000, 2500] {
            let spec = RelationSpec::uniform(5000, groups);
            let parts = generate_partitions(&spec, 4);
            let query = default_query();
            let reference = crate::verify::reference_aggregate(&parts, &query).unwrap();
            let params = CostParams {
                max_hash_entries: 200,
                ..CostParams::paper_default()
            };
            let config = ClusterConfig::new(4, params);
            let cfg = AlgoConfig::default_for(4);
            let out = run_algorithm_with(
                AlgorithmKind::AdaptiveTwoPhase,
                &config,
                &parts,
                &query,
                &cfg,
            )
            .unwrap();
            assert_eq!(out.rows, reference, "groups = {groups}");
        }
    }

    #[test]
    fn nodes_decide_independently_under_output_skew() {
        // §6.2: group-poor nodes stay 2P, group-rich nodes switch.
        let spec = adaptagg_workload::OutputSkewSpec::new(4, 2000, 800, 2);
        let parts = spec.generate_partitions();
        let params = CostParams {
            max_hash_entries: 100,
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(4, params);
        let cfg = AlgoConfig::default_for(4);
        let out = run_algorithm_with(
            AlgorithmKind::AdaptiveTwoPhase,
            &config,
            &parts,
            &default_query(),
            &cfg,
        )
        .unwrap();
        let adapted = out.adapted_nodes();
        assert_eq!(
            adapted,
            vec![2, 3],
            "only the group-rich nodes should switch"
        );
        assert_eq!(out.rows.len(), 800);
    }
}
