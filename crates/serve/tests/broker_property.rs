//! Property tests for the per-node memory broker: under any random
//! interleaving of admits, budget resizes, and finishes, the sum of
//! outstanding grants never exceeds the budget, every admitted query
//! always holds a nonzero grant (no starvation), and finishing anyone
//! regrows the survivors.

use adaptagg_serve::broker::{BrokerConfig, NodeBroker};
use proptest::prelude::*;

/// One scripted step against the broker.
#[derive(Debug, Clone)]
enum Op {
    /// Try to admit query `id` (may be honestly denied).
    Admit(u64),
    /// Finish query `id` (idempotent; unknown ids are no-ops).
    Finish(u64),
    /// Resize the node budget.
    SetBudget(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..12).prop_map(Op::Admit),
        (0u64..12).prop_map(Op::Finish),
        (1usize..3_000).prop_map(Op::SetBudget),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The broker's safety and liveness invariants hold after every
    /// step of any random schedule.
    #[test]
    fn prop_grant_sum_bounded_and_no_starvation(
        budget in 8usize..2_000,
        min_grant in 1usize..400,
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut broker = NodeBroker::new(BrokerConfig::new(budget, min_grant));
        let mut admitted: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Admit(id) => {
                    if admitted.contains(&id) {
                        prop_assert!(broker.try_admit(id).is_err(),
                            "double admit of {id} must be refused");
                    } else if let Ok(grant) = broker.try_admit(id) {
                        prop_assert!(grant.current() > 0,
                            "an admission must carry a usable grant");
                        admitted.push(id);
                    }
                }
                Op::Finish(id) => {
                    broker.finish(id);
                    admitted.retain(|&q| q != id);
                }
                Op::SetBudget(b) => broker.set_budget(b),
            }

            // Safety: grants never oversubscribe the budget.
            prop_assert!(broker.outstanding() <= broker.budget(),
                "outstanding {} > budget {}", broker.outstanding(), broker.budget());
            // Bookkeeping agrees with the model.
            prop_assert_eq!(broker.active(), admitted.len());
            // Liveness: every admitted query holds a nonzero grant right
            // now — not eventually, *always* (a zero grant would wedge a
            // running query's table admissions forever).
            if !admitted.is_empty() {
                let share = broker.budget() / admitted.len();
                prop_assert!(share > 0, "resize must never starve residents");
            }
        }
    }

    /// Fair-share arithmetic: k admitted queries each hold ⌊budget/k⌋,
    /// so a finish visibly regrows everyone left.
    #[test]
    fn prop_finish_regrows_survivors(
        budget in 64usize..4_000,
        k in 2usize..8,
    ) {
        let mut broker = NodeBroker::new(BrokerConfig::new(budget, 1));
        let grants: Vec<_> = (0..k as u64)
            .map(|id| broker.try_admit(id).expect("min_grant 1 always fits"))
            .collect();
        for g in &grants {
            prop_assert_eq!(g.current(), budget / k);
        }
        broker.finish(0);
        for g in grants.iter().skip(1) {
            prop_assert_eq!(g.current(), budget / (k - 1),
                "survivors regrow after a finish");
        }
        prop_assert!(broker.outstanding() <= budget);
    }
}
