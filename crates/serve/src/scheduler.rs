//! Admission control and the multi-query scheduler: a bounded queue,
//! a fixed-size executor pool, and the per-node memory broker, glued
//! into one serving loop over a shared dataset.
//!
//! The contract is honest load-shedding. Every submitted query either
//! *completes exactly* (rows bit-identical to what it would produce
//! alone — resident groups are never evicted, shrunken grants degrade
//! into strategy switches or spills), or is *rejected with a typed
//! reason* the client can act on:
//!
//! - `queue_full` — the bounded admission queue is at capacity;
//! - `deadline_unmeetable` — the query's deadline lapsed before it
//!   reached an executor (queue wait counts against the deadline);
//! - `memory_exhausted` — admitting it would shrink some node's
//!   fair share below the configured floor.
//!
//! Failure isolation falls out of the execution model: each query runs
//! its own virtual cluster over the shared (immutable) partitions, so
//! one query's injected node crash engages *its* recovery policy and
//! cannot touch a co-resident query.

use crate::broker::{BrokerConfig, MemoryBroker};
use adaptagg_algos::{run_algorithm, AlgorithmKind};
use adaptagg_exec::{ClusterConfig, ExecError, FaultPlan, RecoveryPolicy};
use adaptagg_model::{CostParams, DataType, Field, ResultRow, Schema};
use adaptagg_sql::compile;
use adaptagg_storage::HeapFile;
use adaptagg_workload::{generate_partitions, RelationSpec};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The shared relation every query in the serving session reads: the
/// partitions are generated once and never mutated, so concurrent
/// queries share them by reference.
#[derive(Debug)]
pub struct Dataset {
    /// Schema the SQL front-end binds against.
    pub schema: Schema,
    /// One base partition per node.
    pub partitions: Vec<HeapFile>,
}

impl Dataset {
    /// The study's uniform workload (`g INT, v INT, pad STR`).
    pub fn uniform(nodes: usize, tuples: usize, groups: usize, seed: u64) -> Self {
        let spec = RelationSpec::uniform(tuples, groups).with_seed(seed);
        Dataset {
            schema: Schema::new(vec![
                Field::new("g", DataType::Int),
                Field::new("v", DataType::Int),
                Field::new("pad", DataType::Str),
            ]),
            partitions: generate_partitions(&spec, nodes),
        }
    }

    /// Cluster size (= partition count).
    pub fn nodes(&self) -> usize {
        self.partitions.len()
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded admission-queue capacity; submissions past it are shed
    /// with `queue_full`.
    pub queue_capacity: usize,
    /// Executor pool size — queries running concurrently.
    pub concurrency: usize,
    /// Per-node hash-table budget `M` (entries) the broker divides.
    pub memory_budget: usize,
    /// Smallest per-query share worth admitting at (see
    /// [`BrokerConfig::min_grant`]).
    pub min_grant: usize,
    /// Deadline applied to queries that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Base cost parameters (`max_hash_entries` is overridden by
    /// `memory_budget`).
    pub params: CostParams,
    /// Run every query with tracing on, so degraded queries are
    /// attributable from the trace alone.
    pub trace: bool,
    /// Intra-node morsel worker threads per query (0 = leave the
    /// engine default, which honours `ADAPTAGG_THREADS`). Results and
    /// virtual times are thread-count-invariant; this only moves
    /// wall-clock, so co-resident queries share cores fairly at the
    /// default of 1-per-query.
    pub threads: usize,
}

impl ServeConfig {
    /// Defaults sized for an interactive serving session.
    pub fn new(memory_budget: usize) -> Self {
        ServeConfig {
            queue_capacity: 32,
            concurrency: 4,
            memory_budget,
            min_grant: (memory_budget / 8).max(1),
            default_deadline: None,
            params: CostParams::paper_default(),
            trace: true,
            threads: 0,
        }
    }
}

/// Why a query was shed instead of run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue was at capacity.
    QueueFull,
    /// The deadline lapsed before an executor picked the query up (or
    /// was zero at submission).
    DeadlineUnmeetable,
    /// The memory broker could not carve out `min_grant` entries per
    /// node without starving the queries already running.
    MemoryExhausted,
}

impl RejectReason {
    /// Stable wire label (`adaptagg-serve/v1`).
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineUnmeetable => "deadline_unmeetable",
            RejectReason::MemoryExhausted => "memory_exhausted",
        }
    }
}

/// A typed rejection: the reason plus a human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRejected {
    /// The machine-actionable reason.
    pub reason: RejectReason,
    /// Context (queue depth, wait time, broker state).
    pub detail: String,
}

impl std::fmt::Display for QueryRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.reason.label(), self.detail)
    }
}

/// One query as submitted to the scheduler.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// SQL over the dataset's schema.
    pub sql: String,
    /// End-to-end deadline, measured from submission (queue wait
    /// counts). `None` falls back to the config default.
    pub deadline: Option<Duration>,
    /// Strategy override; `None` runs Adaptive Two Phase, the paper's
    /// recommendation when the group count is unknown — which is
    /// exactly the serving situation.
    pub algo: Option<AlgorithmKind>,
    /// Inject a seeded random fault schedule into this query's cluster.
    pub fault_seed: Option<u64>,
    /// Crash this node halfway through its scan (this query only).
    pub crash_node: Option<usize>,
    /// Recover from injected faults instead of failing fast.
    pub recovery: bool,
    /// Test/bench hook: hold the memory grant this long before
    /// executing — widens the concurrency window so overload behaviour
    /// is deterministic in tests and the load generator.
    pub stall: Option<Duration>,
}

impl QueryRequest {
    /// A plain query with no deadline, faults, or stall.
    pub fn new(sql: impl Into<String>) -> Self {
        QueryRequest {
            sql: sql.into(),
            deadline: None,
            algo: None,
            fault_seed: None,
            crash_node: None,
            recovery: false,
            stall: None,
        }
    }
}

/// A completed query's payload.
#[derive(Debug)]
pub struct QuerySuccess {
    /// Result rows, globally sorted by group key.
    pub rows: Vec<ResultRow>,
    /// Output column names from the SQL binder.
    pub output_names: Vec<String>,
    /// Virtual elapsed milliseconds (slowest node).
    pub virtual_ms: f64,
    /// Nodes that switched strategy mid-run.
    pub adapted_nodes: Vec<usize>,
    /// Total adaptation events across nodes.
    pub switch_events: u64,
    /// The query ran under a grant below the full budget.
    pub degraded: bool,
    /// Cluster executions, including the successful one (1 = clean).
    pub recovery_attempts: u32,
    /// Nodes declared dead and recovered from.
    pub dead_nodes: Vec<usize>,
    /// The query completed, but after its deadline.
    pub deadline_missed: bool,
    /// The `adaptagg-trace/v1` document, when tracing is on.
    pub trace_json: Option<String>,
}

/// How a query ended.
#[derive(Debug)]
pub enum QueryOutcome {
    /// Ran to completion; rows are exact.
    Complete(Box<QuerySuccess>),
    /// Shed before execution, with a typed reason.
    Rejected(QueryRejected),
    /// Ran and failed; `exit_code` follows the CLI contract (2 =
    /// recovery honestly exhausted, 1 = everything else).
    Failed { error: String, exit_code: i32 },
}

/// The full per-query report the scheduler replies with.
#[derive(Debug)]
pub struct QueryReport {
    /// Scheduler-assigned query id (monotonic per session).
    pub id: u64,
    /// Wall-clock time spent queued before an executor picked it up.
    pub queue_wait_ms: f64,
    /// Wall-clock submission → reply.
    pub total_ms: f64,
    /// Per-node entries granted at admission (`None` if never
    /// admitted). May shrink later if more queries are admitted.
    pub grant_entries: Option<usize>,
    /// Queries already running when this one was admitted.
    pub active_at_admit: usize,
    /// What happened.
    pub outcome: QueryOutcome,
}

impl QueryReport {
    /// Convenience: the success payload, if any.
    pub fn success(&self) -> Option<&QuerySuccess> {
        match &self.outcome {
            QueryOutcome::Complete(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience: the rejection, if any.
    pub fn rejected(&self) -> Option<&QueryRejected> {
        match &self.outcome {
            QueryOutcome::Rejected(r) => Some(r),
            _ => None,
        }
    }
}

/// Serving-session counters, all monotonic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Queries offered to `submit`.
    pub submitted: u64,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries that ran and failed.
    pub failed: u64,
    /// Shed: queue at capacity.
    pub rejected_queue_full: u64,
    /// Shed: deadline lapsed in the queue (or was zero).
    pub rejected_deadline: u64,
    /// Shed: broker floor would be undercut.
    pub rejected_memory: u64,
    /// Admissions granted less than the full budget.
    pub degraded_admissions: u64,
    /// Completed queries that needed fault recovery.
    pub recovered_queries: u64,
    /// Completed queries that overran their deadline.
    pub deadlines_missed: u64,
}

/// A handle on one submitted query.
#[derive(Debug)]
pub struct Ticket {
    /// The assigned query id.
    pub id: u64,
    rx: mpsc::Receiver<QueryReport>,
}

impl Ticket {
    /// Block until the query's report arrives.
    pub fn wait(self) -> QueryReport {
        self.rx.recv().expect("scheduler replies before shutdown")
    }
}

struct Pending {
    id: u64,
    req: QueryRequest,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<QueryReport>,
}

struct Queue {
    q: VecDeque<Pending>,
    closed: bool,
}

struct Inner {
    cfg: ServeConfig,
    data: Arc<Dataset>,
    queue: Mutex<Queue>,
    available: Condvar,
    broker: Mutex<MemoryBroker>,
    metrics: Mutex<ServeMetrics>,
    next_id: AtomicU64,
}

/// The multi-query scheduler. Create with [`Scheduler::new`], submit
/// with [`Scheduler::submit`] (or the blocking [`Scheduler::run`]),
/// stop with [`Scheduler::shutdown`] — queued queries drain first.
pub struct Scheduler {
    inner: Arc<Inner>,
    executors: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Spin up the executor pool over a shared dataset.
    pub fn new(cfg: ServeConfig, data: Arc<Dataset>) -> Self {
        assert!(!data.partitions.is_empty(), "dataset has at least one partition");
        let broker = MemoryBroker::new(
            data.nodes(),
            BrokerConfig::new(cfg.memory_budget, cfg.min_grant),
        );
        let concurrency = cfg.concurrency;
        let inner = Arc::new(Inner {
            cfg,
            data,
            queue: Mutex::new(Queue {
                q: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            broker: Mutex::new(broker),
            metrics: Mutex::new(ServeMetrics::default()),
            next_id: AtomicU64::new(1),
        });
        let executors = (0..concurrency)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-exec-{i}"))
                    .spawn(move || executor_loop(inner))
                    .expect("spawn executor")
            })
            .collect();
        Scheduler {
            inner,
            executors: Mutex::new(executors),
        }
    }

    /// Non-blocking admission. `Err` is the immediate-rejection report
    /// (queue full, zero deadline, or shutdown in progress).
    pub fn submit(&self, req: QueryRequest) -> Result<Ticket, QueryReport> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let submitted = Instant::now();
        self.inner.metrics.lock().unwrap().submitted += 1;

        let rel_deadline = req.deadline.or(self.inner.cfg.default_deadline);
        if rel_deadline.is_some_and(|d| d.is_zero()) {
            return Err(self.inner.reject_report(
                id,
                submitted,
                RejectReason::DeadlineUnmeetable,
                "a zero deadline cannot cover any execution".into(),
            ));
        }
        let deadline = rel_deadline.map(|d| submitted + d);

        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.inner.queue.lock().unwrap();
            if q.closed {
                return Err(self.inner.reject_report(
                    id,
                    submitted,
                    RejectReason::QueueFull,
                    "server is shutting down".into(),
                ));
            }
            if q.q.len() >= self.inner.cfg.queue_capacity {
                let detail = format!(
                    "admission queue at capacity ({} queued)",
                    q.q.len()
                );
                return Err(self.inner.reject_report(
                    id,
                    submitted,
                    RejectReason::QueueFull,
                    detail,
                ));
            }
            q.q.push_back(Pending {
                id,
                req,
                submitted,
                deadline,
                reply: tx,
            });
        }
        self.inner.available.notify_one();
        Ok(Ticket { id, rx })
    }

    /// Submit and block for the report. Immediate rejections come back
    /// as a report too, so callers handle one shape.
    pub fn run(&self, req: QueryRequest) -> QueryReport {
        match self.submit(req) {
            Ok(ticket) => ticket.wait(),
            Err(report) => report,
        }
    }

    /// Snapshot the session counters.
    pub fn metrics(&self) -> ServeMetrics {
        self.inner.metrics.lock().unwrap().clone()
    }

    /// Queries currently holding memory grants.
    pub fn active_queries(&self) -> usize {
        self.inner.broker.lock().unwrap().active()
    }

    /// The dataset this session serves.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.inner.data
    }

    /// Close admission, drain the queue, and join the executors.
    /// Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.closed = true;
        }
        self.inner.available.notify_all();
        let handles: Vec<_> = self.executors.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    /// Build (and count) a rejection report.
    fn reject_report(
        &self,
        id: u64,
        submitted: Instant,
        reason: RejectReason,
        detail: String,
    ) -> QueryReport {
        {
            let mut m = self.metrics.lock().unwrap();
            match reason {
                RejectReason::QueueFull => m.rejected_queue_full += 1,
                RejectReason::DeadlineUnmeetable => m.rejected_deadline += 1,
                RejectReason::MemoryExhausted => m.rejected_memory += 1,
            }
        }
        QueryReport {
            id,
            queue_wait_ms: 0.0,
            total_ms: submitted.elapsed().as_secs_f64() * 1e3,
            grant_entries: None,
            active_at_admit: 0,
            outcome: QueryOutcome::Rejected(QueryRejected {
                reason,
                detail,
            }),
        }
    }

    /// Build this query's fault plan (same shape as the CLI's).
    fn fault_plan(&self, req: &QueryRequest) -> Option<FaultPlan> {
        let nodes = self.data.nodes();
        let mut plan = match req.fault_seed {
            Some(seed) => FaultPlan::random(seed, nodes),
            None => {
                req.crash_node?;
                FaultPlan::none()
            }
        };
        if let Some(node) = req.crash_node {
            let at = self
                .data
                .partitions
                .get(node)
                .map(|p| p.tuple_count() / 2)
                .unwrap_or(0)
                .max(1);
            plan = plan.with_crash(node, at as u64);
        }
        Some(plan)
    }

    /// Run one admitted query end to end.
    fn execute(&self, p: Pending) {
        let queue_wait = p.submitted.elapsed();

        // End-to-end deadline: the wait above already counts.
        if p.deadline.is_some_and(|dl| Instant::now() >= dl) {
            let detail = format!(
                "deadline lapsed after {:.1} ms in the admission queue",
                queue_wait.as_secs_f64() * 1e3
            );
            let report =
                self.reject_report(p.id, p.submitted, RejectReason::DeadlineUnmeetable, detail);
            let _ = p.reply.send(QueryReport {
                queue_wait_ms: queue_wait.as_secs_f64() * 1e3,
                ..report
            });
            return;
        }

        // Memory admission: all nodes or none.
        let (grants, active_at_admit) = {
            let mut broker = self.broker.lock().unwrap();
            let active = broker.active();
            match broker.try_admit(p.id) {
                Ok(g) => (g, active),
                Err(denied) => {
                    let report = self.reject_report(
                        p.id,
                        p.submitted,
                        RejectReason::MemoryExhausted,
                        denied.to_string(),
                    );
                    let _ = p.reply.send(QueryReport {
                        queue_wait_ms: queue_wait.as_secs_f64() * 1e3,
                        ..report
                    });
                    return;
                }
            }
        };
        let grant_entries = grants[0].current();
        let degraded = grant_entries < self.cfg.memory_budget;
        if degraded {
            self.metrics.lock().unwrap().degraded_admissions += 1;
        }

        if let Some(stall) = p.req.stall {
            std::thread::sleep(stall);
        }

        // Queue/broker numbers for the query's trace document, so a
        // degraded run is attributable from the trace alone.
        let annotations = vec![
            ("serve.grant_entries".to_string(), grant_entries as f64),
            (
                "serve.memory_budget".to_string(),
                self.cfg.memory_budget as f64,
            ),
            (
                "serve.queue_wait_ms".to_string(),
                queue_wait.as_secs_f64() * 1e3,
            ),
            (
                "serve.active_at_admit".to_string(),
                active_at_admit as f64,
            ),
        ];
        let mut outcome = self.run_query(&p.req, grants, p.deadline, annotations);
        if let QueryOutcome::Complete(s) = &mut outcome {
            s.degraded = degraded;
        }
        self.broker.lock().unwrap().finish(p.id);

        {
            let mut m = self.metrics.lock().unwrap();
            match &outcome {
                QueryOutcome::Complete(s) => {
                    m.completed += 1;
                    if s.recovery_attempts > 1 {
                        m.recovered_queries += 1;
                    }
                    if s.deadline_missed {
                        m.deadlines_missed += 1;
                    }
                }
                QueryOutcome::Failed { .. } => m.failed += 1,
                QueryOutcome::Rejected(_) => unreachable!("rejections return early"),
            }
        }

        let _ = p.reply.send(QueryReport {
            id: p.id,
            queue_wait_ms: queue_wait.as_secs_f64() * 1e3,
            total_ms: p.submitted.elapsed().as_secs_f64() * 1e3,
            grant_entries: Some(grant_entries),
            active_at_admit,
            outcome,
        });
    }

    /// Compile and execute under the granted memory.
    fn run_query(
        &self,
        req: &QueryRequest,
        grants: Vec<adaptagg_model::MemoryGrant>,
        deadline: Option<Instant>,
        annotations: Vec<(String, f64)>,
    ) -> QueryOutcome {
        let bound = match compile(&req.sql, &self.data.schema) {
            Ok(b) => b,
            Err(e) => {
                return QueryOutcome::Failed {
                    error: e.to_string(),
                    exit_code: 1,
                }
            }
        };
        let params = CostParams {
            max_hash_entries: self.cfg.memory_budget,
            ..self.cfg.params.clone()
        };
        let mut cluster = ClusterConfig::new(self.data.nodes(), params).with_grants(grants);
        if self.cfg.threads > 0 {
            cluster = cluster.with_threads(self.cfg.threads);
        }
        if let Some(plan) = self.fault_plan(req) {
            cluster = cluster.with_fault_plan(plan);
        }
        if req.recovery {
            cluster = cluster.with_recovery(RecoveryPolicy::default());
        }
        if self.cfg.trace {
            cluster = cluster.with_tracing();
        }
        let kind = req.algo.unwrap_or(AlgorithmKind::AdaptiveTwoPhase);

        match run_algorithm(kind, &cluster, &self.data.partitions, &bound.query) {
            Ok(mut out) => {
                if let Some(trace) = &mut out.trace {
                    trace.annotations = annotations;
                }
                let adapted_nodes = out.adapted_nodes();
                let switch_events: u64 =
                    out.nodes.iter().map(|n| n.events.len() as u64).sum();
                let rec = &out.run.recovery;
                QueryOutcome::Complete(Box::new(QuerySuccess {
                    output_names: bound.output_names,
                    virtual_ms: out.elapsed_ms(),
                    adapted_nodes,
                    switch_events,
                    degraded: false, // caller flags it from the grant
                    recovery_attempts: rec.attempts,
                    dead_nodes: rec.dead_nodes.clone(),
                    deadline_missed: deadline.is_some_and(|dl| Instant::now() > dl),
                    trace_json: out.trace.as_ref().map(|t| t.to_json()),
                    rows: out.rows,
                }))
            }
            Err(e) => QueryOutcome::Failed {
                exit_code: if matches!(e, ExecError::RecoveryExhausted { .. }) {
                    2
                } else {
                    1
                },
                error: e.to_string(),
            },
        }
    }
}

fn executor_loop(inner: Arc<Inner>) {
    loop {
        let pending = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(p) = q.q.pop_front() {
                    break p;
                }
                if q.closed {
                    return;
                }
                q = inner.available.wait(q).unwrap();
            }
        };
        inner.execute(pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_algos::reference_aggregate;
    use adaptagg_sql::compile;

    const SQL: &str = "SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g";

    fn dataset() -> Arc<Dataset> {
        Arc::new(Dataset::uniform(4, 12_000, 600, 7))
    }

    fn reference(data: &Dataset) -> Vec<ResultRow> {
        let bound = compile(SQL, &data.schema).unwrap();
        reference_aggregate(&data.partitions, &bound.query).unwrap()
    }

    #[test]
    fn lone_query_gets_the_full_budget_and_exact_rows() {
        let data = dataset();
        let sched = Scheduler::new(ServeConfig::new(10_000), Arc::clone(&data));
        let report = sched.run(QueryRequest::new(SQL));
        let s = report.success().expect("completes");
        assert_eq!(report.grant_entries, Some(10_000));
        assert_eq!(report.active_at_admit, 0);
        assert_eq!(s.rows, reference(&data));
        assert!(s.adapted_nodes.is_empty(), "full budget: no switch");
        let m = sched.metrics();
        assert_eq!((m.submitted, m.completed), (1, 1));
    }

    #[test]
    fn queue_full_sheds_honestly() {
        let data = dataset();
        let mut cfg = ServeConfig::new(10_000);
        cfg.concurrency = 0; // no executors: the queue only fills
        cfg.queue_capacity = 2;
        let sched = Scheduler::new(cfg, data);
        let _t1 = sched.submit(QueryRequest::new(SQL)).unwrap();
        let _t2 = sched.submit(QueryRequest::new(SQL)).unwrap();
        let r = sched.submit(QueryRequest::new(SQL)).unwrap_err();
        let rej = r.rejected().expect("typed rejection");
        assert_eq!(rej.reason, RejectReason::QueueFull);
        assert_eq!(sched.metrics().rejected_queue_full, 1);
    }

    #[test]
    fn deadline_counts_queue_wait() {
        let data = dataset();
        let mut cfg = ServeConfig::new(10_000);
        cfg.concurrency = 1;
        let sched = Scheduler::new(cfg, data);
        // Head-of-line query holds the lone executor well past 1 ms…
        let mut slow = QueryRequest::new(SQL);
        slow.stall = Some(Duration::from_millis(50));
        let t1 = sched.submit(slow).unwrap();
        // …so the 1 ms-deadline query behind it lapses while queued.
        let mut tight = QueryRequest::new(SQL);
        tight.deadline = Some(Duration::from_millis(1));
        let t2 = sched.submit(tight).unwrap();
        assert!(t1.wait().success().is_some());
        let r2 = t2.wait();
        let rej = r2.rejected().expect("deadline rejection");
        assert_eq!(rej.reason, RejectReason::DeadlineUnmeetable);
        assert!(r2.queue_wait_ms >= 1.0, "wait {} ms", r2.queue_wait_ms);
        // And a zero deadline is refused at the door.
        let mut zero = QueryRequest::new(SQL);
        zero.deadline = Some(Duration::ZERO);
        let r = sched.submit(zero).unwrap_err();
        assert_eq!(
            r.rejected().unwrap().reason,
            RejectReason::DeadlineUnmeetable
        );
        assert_eq!(sched.metrics().rejected_deadline, 2);
    }

    #[test]
    fn memory_floor_sheds_the_overload_query() {
        let data = dataset();
        let mut cfg = ServeConfig::new(10_000);
        cfg.concurrency = 3;
        cfg.min_grant = 4_000; // at most 2 concurrent queries
        let sched = Scheduler::new(cfg, data);
        let mut held = QueryRequest::new(SQL);
        held.stall = Some(Duration::from_millis(150));
        let t1 = sched.submit(held.clone()).unwrap();
        let t2 = sched.submit(held).unwrap();
        // Give both stalled queries time to take their grants.
        std::thread::sleep(Duration::from_millis(50));
        let r3 = sched.run(QueryRequest::new(SQL));
        let rej = r3.rejected().expect("third query is shed");
        assert_eq!(rej.reason, RejectReason::MemoryExhausted);
        assert!(t1.wait().success().is_some());
        assert!(t2.wait().success().is_some());
        assert_eq!(sched.metrics().rejected_memory, 1);
        // With the session idle again, the same query is admitted.
        assert!(sched.run(QueryRequest::new(SQL)).success().is_some());
    }

    #[test]
    fn degraded_grant_switches_strategy_but_rows_stay_exact() {
        // Budget 800 holds this workload's ~600 groups per node when
        // alone; halved to 400 under concurrency it cannot, so the
        // second query must switch to repartitioning mid-scan — and
        // still match the serial oracle bit for bit.
        let data = dataset();
        let reference = reference(&data);
        let mut cfg = ServeConfig::new(800);
        cfg.concurrency = 2;
        cfg.min_grant = 100;
        let sched = Scheduler::new(cfg, Arc::clone(&data));
        let mut held = QueryRequest::new(SQL);
        held.stall = Some(Duration::from_millis(150));
        let t1 = sched.submit(held).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let r2 = sched.run(QueryRequest::new(SQL));
        let s2 = r2.success().expect("degraded query completes");
        assert_eq!(r2.grant_entries, Some(400), "half the budget");
        assert!(
            !s2.adapted_nodes.is_empty() && s2.switch_events > 0,
            "a 400-entry grant over ~600 groups must switch"
        );
        assert_eq!(s2.rows, reference, "degraded rows stay exact");
        let trace = s2.trace_json.as_ref().expect("tracing on by default");
        assert!(trace.contains("switch"), "switch visible in the trace");
        let r1 = t1.wait();
        let s1 = r1.success().expect("stalled query completes");
        assert_eq!(s1.rows, reference);
        assert_eq!(sched.metrics().degraded_admissions, 1);
    }

    #[test]
    fn one_query_crash_recovers_without_touching_its_neighbour() {
        let data = dataset();
        let reference = reference(&data);
        let mut cfg = ServeConfig::new(10_000);
        cfg.concurrency = 2;
        let sched = Scheduler::new(cfg, Arc::clone(&data));
        let mut crashing = QueryRequest::new(SQL);
        crashing.crash_node = Some(2);
        crashing.recovery = true;
        let t1 = sched.submit(crashing).unwrap();
        let r2 = sched.run(QueryRequest::new(SQL));
        let r1 = t1.wait();
        let s1 = r1.success().expect("crashed query recovers");
        assert!(s1.recovery_attempts > 1, "recovery engaged");
        assert_eq!(s1.dead_nodes, vec![2]);
        assert_eq!(s1.rows, reference, "recovered rows stay exact");
        let s2 = r2.success().expect("co-resident query unaffected");
        assert_eq!(s2.recovery_attempts, 1);
        assert!(s2.dead_nodes.is_empty());
        assert_eq!(s2.rows, reference);
        assert_eq!(sched.metrics().recovered_queries, 1);
    }

    #[test]
    fn crash_without_recovery_fails_only_its_own_query() {
        let data = dataset();
        let mut cfg = ServeConfig::new(10_000);
        cfg.concurrency = 2;
        let sched = Scheduler::new(cfg, Arc::clone(&data));
        let mut crashing = QueryRequest::new(SQL);
        crashing.crash_node = Some(1);
        let t1 = sched.submit(crashing).unwrap();
        let r2 = sched.run(QueryRequest::new(SQL));
        assert!(r2.success().is_some(), "neighbour completes");
        match t1.wait().outcome {
            QueryOutcome::Failed { error, exit_code } => {
                assert!(error.contains("crash"), "unexpected error: {error}");
                assert_eq!(exit_code, 1, "fail-stop crash is an ordinary failure");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        let m = sched.metrics();
        assert_eq!((m.completed, m.failed), (1, 1));
    }

    #[test]
    fn bad_sql_is_a_clean_failure() {
        let sched = Scheduler::new(ServeConfig::new(10_000), dataset());
        let r = sched.run(QueryRequest::new("SELECT nope FROM r GROUP BY nope"));
        match r.outcome {
            QueryOutcome::Failed { error, exit_code } => {
                assert!(error.contains("nope"));
                assert_eq!(exit_code, 1);
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_drains_queued_queries() {
        let data = dataset();
        let mut cfg = ServeConfig::new(10_000);
        cfg.concurrency = 1;
        let sched = Scheduler::new(cfg, data);
        let tickets: Vec<_> = (0..3)
            .map(|_| sched.submit(QueryRequest::new(SQL)).unwrap())
            .collect();
        sched.shutdown();
        for t in tickets {
            assert!(t.wait().success().is_some(), "drained before shutdown");
        }
        // Post-shutdown submissions are refused.
        let r = sched.submit(QueryRequest::new(SQL)).unwrap_err();
        assert_eq!(r.rejected().unwrap().reason, RejectReason::QueueFull);
    }
}
