//! Multi-query serving for the adaptive-aggregation engine: admission
//! control, a per-node memory broker, and graceful degradation under
//! overload.
//!
//! The paper's algorithms assume a query has the node's whole hash
//! budget `M` to itself. A serving system cannot: queries arrive
//! concurrently, and the interesting question is what happens when
//! their combined appetite exceeds `M`. This crate's answer reuses the
//! adaptivity the paper already built — a query whose grant shrinks
//! mid-run stops admitting new groups, which is precisely A2P's
//! table-full trigger, so overload degrades into strategy switches and
//! spills (traced, exact) instead of OOM or wrong answers. What cannot
//! be absorbed is shed honestly, with a typed reason.
//!
//! Layers, bottom up:
//!
//! - [`broker`] — per-node fair-share division of `M` into revocable
//!   [`adaptagg_model::MemoryGrant`]s, with an admission floor;
//! - [`scheduler`] — bounded admission queue, executor pool, typed
//!   rejections (`queue_full` / `deadline_unmeetable` /
//!   `memory_exhausted`), per-query deadlines that count queue wait,
//!   and per-query fault isolation;
//! - [`server`] — the long-running TCP line protocol
//!   (`adaptagg serve`), one JSON response line per query;
//! - [`procmesh`] — the optional real-process backend: a persistent
//!   coordinator seat over PR 6's TCP worker mesh, surviving worker
//!   SIGKILLs across queries.

pub mod broker;
pub mod procmesh;
pub mod scheduler;
pub mod server;

pub use broker::{BrokerConfig, GrantDenied, MemoryBroker, NodeBroker};
pub use procmesh::ProcBackend;
pub use scheduler::{
    Dataset, QueryOutcome, QueryRejected, QueryReport, QueryRequest, QuerySuccess, RejectReason,
    Scheduler, ServeConfig, ServeMetrics, Ticket,
};
pub use server::{serve, ServeSummary, PROTO};
