//! The serving front door: a long-running TCP line protocol over the
//! scheduler.
//!
//! One request per line, one JSON response line per request. A request
//! is either a bare command (`ping`, `metrics`, `shutdown`, `proc`) or
//! a SQL query with an optional `key=value;` option prefix:
//!
//! ```text
//! deadline_ms=500;algo=a2p; SELECT g, SUM(v) FROM r GROUP BY g
//! ```
//!
//! Options: `deadline_ms`, `algo` (CLI spellings: `a2p`, `rep`, …),
//! `fault_seed`, `crash_node`, `recovery` (0/1), `stall_ms`,
//! `trace` (0/1 — embed the `adaptagg-trace/v1` document, compacted to
//! one line). Responses carry `"proto": "adaptagg-serve/v1"` and a
//! `status` of `ok`, `rejected` (with the typed reason), `failed`,
//! `pong`, or `error` (malformed request). The server itself never
//! dies on a bad line — robustness stops at the protocol edge.

use crate::procmesh::ProcBackend;
use crate::scheduler::{
    QueryOutcome, QueryReport, QueryRequest, Scheduler, ServeMetrics,
};
use adaptagg_algos::AlgorithmKind;
use adaptagg_model::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stable protocol identifier carried by every response line.
pub const PROTO: &str = "adaptagg-serve/v1";

/// Everything a connection handler needs.
struct Shared {
    sched: Arc<Scheduler>,
    proc: Option<Arc<ProcBackend>>,
    stop: AtomicBool,
}

/// What a finished serving session reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted over the session.
    pub connections: u64,
    /// Final scheduler counters.
    pub metrics: ServeMetrics,
}

/// Run the accept loop until a client sends `shutdown`. Each
/// connection gets its own thread; queries block their connection (a
/// load generator opens one connection per in-flight query) while the
/// scheduler bounds actual concurrency. Returns after the scheduler
/// has drained.
pub fn serve(
    listener: TcpListener,
    sched: Arc<Scheduler>,
    proc: Option<Arc<ProcBackend>>,
    mut log: impl FnMut(&str),
) -> std::io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        sched,
        proc,
        stop: AtomicBool::new(false),
    });
    let mut handlers = Vec::new();
    let mut connections = 0u64;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                connections += 1;
                log(&format!("connection from {peer}"));
                let shared = Arc::clone(&shared);
                handlers.push(
                    std::thread::Builder::new()
                        .name(format!("serve-conn-{connections}"))
                        .spawn(move || handle_connection(stream, &shared))
                        .expect("spawn connection handler"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    log("shutdown requested; draining");
    for h in handlers {
        let _ = h.join();
    }
    shared.sched.shutdown();
    let metrics = shared.sched.metrics();
    log(&format!(
        "served {} quer{} ({} rejected)",
        metrics.submitted,
        if metrics.submitted == 1 { "y" } else { "ies" },
        metrics.rejected_queue_full + metrics.rejected_deadline + metrics.rejected_memory
    ));
    Ok(ServeSummary {
        connections,
        metrics,
    })
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(read) = stream.try_clone() else { return };
    let mut writer = stream;
    let reader = BufReader::new(read);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (response, stop_after) = handle_line(line, shared);
        if writeln!(writer, "{response}").is_err() {
            return;
        }
        let _ = writer.flush();
        if stop_after {
            shared.stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Dispatch one request line; returns the response and whether the
/// server should stop afterwards.
fn handle_line(line: &str, shared: &Shared) -> (String, bool) {
    match line {
        "ping" => (format!("{{\"proto\": \"{PROTO}\", \"status\": \"pong\"}}"), false),
        "shutdown" => (
            format!("{{\"proto\": \"{PROTO}\", \"status\": \"ok\", \"shutdown\": true}}"),
            true,
        ),
        "metrics" => (metrics_json(&shared.sched.metrics(), shared.sched.active_queries()), false),
        "proc" => (proc_response(shared), false),
        _ => match parse_request(line) {
            Ok((req, want_trace)) => {
                let report = shared.sched.run(req);
                (report_json(&report, want_trace), false)
            }
            Err(e) => (
                format!(
                    "{{\"proto\": \"{PROTO}\", \"status\": \"error\", \"error\": {}}}",
                    json_str(&e)
                ),
                false,
            ),
        },
    }
}

/// Run one query on the attached process mesh (the real-TCP cluster).
fn proc_response(shared: &Shared) -> String {
    let Some(proc) = &shared.proc else {
        return format!(
            "{{\"proto\": \"{PROTO}\", \"status\": \"failed\", \"backend\": \"proc\", \
             \"error\": \"no process mesh attached (start with --proc-cluster)\", \"exit_code\": 1}}"
        );
    };
    let t0 = std::time::Instant::now();
    match proc.run_query() {
        Ok(report) => format!(
            "{{\"proto\": \"{PROTO}\", \"status\": \"ok\", \"backend\": \"proc\", \
             \"row_count\": {}, \"rows\": {}, \"attempts\": {}, \"dead_workers\": {}, \
             \"reassigned_partitions\": {}, \"total_ms\": {:.3}}}",
            report.rows.len(),
            rows_json(&report.rows),
            report.attempts,
            json_usize_array(&report.dead_workers),
            report.reassigned_partitions,
            t0.elapsed().as_secs_f64() * 1e3,
        ),
        Err(e) => format!(
            "{{\"proto\": \"{PROTO}\", \"status\": \"failed\", \"backend\": \"proc\", \
             \"error\": {}, \"exit_code\": {}, \"total_ms\": {:.3}}}",
            json_str(&e.to_string()),
            e.exit_code(),
            t0.elapsed().as_secs_f64() * 1e3,
        ),
    }
}

/// Parse a `key=value;`-prefixed SQL request line.
pub fn parse_request(line: &str) -> Result<(QueryRequest, bool), String> {
    let mut rest = line.trim_start();
    let mut req = QueryRequest::new("");
    let mut want_trace = false;
    // An option token runs `ident=value;` with no spaces — anything
    // else (including SQL that happens to contain `;`) ends the
    // prefix.
    while let Some(semi) = rest.find(';') {
        let head = &rest[..semi];
        let Some(eq) = head.find('=') else { break };
        let key = &head[..eq];
        let val = &head[eq + 1..];
        if key.is_empty()
            || head.contains(' ')
            || !key.chars().all(|c| c.is_ascii_lowercase() || c == '_')
        {
            break;
        }
        match key {
            "deadline_ms" => {
                req.deadline = Some(Duration::from_millis(parse_num(key, val)?));
            }
            "stall_ms" => {
                req.stall = Some(Duration::from_millis(parse_num(key, val)?));
            }
            "fault_seed" => req.fault_seed = Some(parse_num(key, val)?),
            "crash_node" => req.crash_node = Some(parse_num(key, val)? as usize),
            "recovery" => req.recovery = parse_bool(key, val)?,
            "trace" => want_trace = parse_bool(key, val)?,
            "algo" => req.algo = Some(parse_algo(val)?),
            other => return Err(format!("unknown option '{other}'")),
        }
        rest = rest[semi + 1..].trim_start();
    }
    if rest.is_empty() {
        return Err("empty query".into());
    }
    req.sql = rest.to_string();
    Ok((req, want_trace))
}

fn parse_num(key: &str, s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("{key}: '{s}' is not a number"))
}

fn parse_bool(key: &str, s: &str) -> Result<bool, String> {
    match s {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(format!("{key}: '{other}' is not a boolean (0/1)")),
    }
}

fn parse_algo(s: &str) -> Result<AlgorithmKind, String> {
    Ok(match s {
        "c2p" => AlgorithmKind::CentralizedTwoPhase,
        "2p" => AlgorithmKind::TwoPhase,
        "rep" => AlgorithmKind::Repartitioning,
        "samp" => AlgorithmKind::Sampling,
        "a2p" => AlgorithmKind::AdaptiveTwoPhase,
        "arep" => AlgorithmKind::AdaptiveRepartitioning,
        "opt2p" => AlgorithmKind::OptimizedTwoPhase,
        "sort2p" => AlgorithmKind::SortTwoPhase,
        "bcast" => AlgorithmKind::Broadcast,
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

/// Render a scheduler report as one `adaptagg-serve/v1` response line.
pub fn report_json(report: &QueryReport, want_trace: bool) -> String {
    let mut s = format!(
        "{{\"proto\": \"{PROTO}\", \"id\": {}, \"queue_wait_ms\": {:.3}, \"total_ms\": {:.3}",
        report.id, report.queue_wait_ms, report.total_ms
    );
    match &report.outcome {
        QueryOutcome::Complete(q) => {
            s.push_str(&format!(
                ", \"status\": \"ok\", \"columns\": {}, \"row_count\": {}, \"rows\": {}, \
                 \"virtual_ms\": {:.6}, \"grant_entries\": {}, \"active_at_admit\": {}, \
                 \"degraded\": {}, \"adapted_nodes\": {}, \"switch_events\": {}, \
                 \"recovery_attempts\": {}, \"dead_nodes\": {}, \"deadline_missed\": {}",
                json_str_array(&q.output_names),
                q.rows.len(),
                rows_json(&q.rows),
                q.virtual_ms,
                report.grant_entries.unwrap_or(0),
                report.active_at_admit,
                q.degraded,
                json_usize_array(&q.adapted_nodes),
                q.switch_events,
                q.recovery_attempts,
                json_usize_array(&q.dead_nodes),
                q.deadline_missed,
            ));
            if want_trace {
                if let Some(trace) = &q.trace_json {
                    // The trace document is pretty-printed; fold it onto
                    // the single response line (whitespace is free in
                    // JSON).
                    s.push_str(", \"trace\": ");
                    s.push_str(&trace.replace('\n', " "));
                }
            }
        }
        QueryOutcome::Rejected(r) => {
            s.push_str(&format!(
                ", \"status\": \"rejected\", \"reason\": \"{}\", \"detail\": {}",
                r.reason.label(),
                json_str(&r.detail)
            ));
        }
        QueryOutcome::Failed { error, exit_code } => {
            s.push_str(&format!(
                ", \"status\": \"failed\", \"error\": {}, \"exit_code\": {exit_code}",
                json_str(error)
            ));
        }
    }
    s.push('}');
    s
}

/// Render the session counters (plus the live concurrency gauge).
pub fn metrics_json(m: &ServeMetrics, active: usize) -> String {
    format!(
        "{{\"proto\": \"{PROTO}\", \"status\": \"ok\", \"metrics\": {{\
         \"submitted\": {}, \"completed\": {}, \"failed\": {}, \
         \"rejected_queue_full\": {}, \"rejected_deadline\": {}, \"rejected_memory\": {}, \
         \"degraded_admissions\": {}, \"recovered_queries\": {}, \"deadlines_missed\": {}, \
         \"active_queries\": {active}}}}}",
        m.submitted,
        m.completed,
        m.failed,
        m.rejected_queue_full,
        m.rejected_deadline,
        m.rejected_memory,
        m.degraded_admissions,
        m.recovered_queries,
        m.deadlines_missed,
    )
}

/// Result rows as a JSON array of arrays: key values then aggregates,
/// in output-column order.
fn rows_json(rows: &[adaptagg_model::ResultRow]) -> String {
    let mut s = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push('[');
        for (j, v) in row.key.values().iter().chain(row.aggs.iter()).enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&value_json(v));
        }
        s.push(']');
    }
    s.push(']');
    s
}

fn value_json(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => format!("{f}"),
        Value::Float(_) => "null".into(), // NaN/inf have no JSON form
        Value::Str(s) => json_str(s),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let mut s = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(item));
    }
    s.push(']');
    s
}

fn json_usize_array(items: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&item.to_string());
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Dataset, ServeConfig};

    #[test]
    fn request_lines_parse_options_then_sql() {
        let (req, trace) = parse_request(
            "deadline_ms=250;algo=rep;recovery=1;crash_node=2;trace=1; SELECT g FROM r GROUP BY g",
        )
        .unwrap();
        assert_eq!(req.deadline, Some(Duration::from_millis(250)));
        assert_eq!(req.algo, Some(AlgorithmKind::Repartitioning));
        assert!(req.recovery);
        assert_eq!(req.crash_node, Some(2));
        assert!(trace);
        assert_eq!(req.sql, "SELECT g FROM r GROUP BY g");

        // No options: the whole line is SQL.
        let (req, trace) = parse_request("SELECT g, SUM(v) FROM r GROUP BY g").unwrap();
        assert_eq!(req.sql, "SELECT g, SUM(v) FROM r GROUP BY g");
        assert!(!trace && req.deadline.is_none());

        // Bad option values are typed errors, not panics.
        assert!(parse_request("deadline_ms=soon; SELECT g FROM r GROUP BY g").is_err());
        assert!(parse_request("algo=quantum; SELECT g FROM r GROUP BY g").is_err());
        assert!(parse_request("bogus_knob=1; SELECT g FROM r GROUP BY g").is_err());
        assert!(parse_request("   ").is_err());
    }

    #[test]
    fn json_strings_escape_cleanly() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(value_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(value_json(&Value::Int(-3)), "-3");
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        let data = Arc::new(Dataset::uniform(2, 2_000, 40, 5));
        let mut cfg = ServeConfig::new(10_000);
        cfg.concurrency = 2;
        let sched = Arc::new(Scheduler::new(cfg, data));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || serve(listener, sched, None, |_| {}).unwrap())
        };

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reply = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        let mut ask = |conn: &mut TcpStream, reply: &mut BufReader<TcpStream>, q: &str| {
            writeln!(conn, "{q}").unwrap();
            line.clear();
            reply.read_line(&mut line).unwrap();
            line.trim().to_string()
        };

        assert!(ask(&mut conn, &mut reply, "ping").contains("\"pong\""));
        let ok = ask(
            &mut conn,
            &mut reply,
            "SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g",
        );
        assert!(ok.contains("\"status\": \"ok\""), "{ok}");
        assert!(ok.contains("\"row_count\": 40"), "{ok}");
        let bad = ask(&mut conn, &mut reply, "SELECT zap FROM r GROUP BY zap");
        assert!(bad.contains("\"status\": \"failed\""), "{bad}");
        let garbage = ask(&mut conn, &mut reply, "deadline_ms=nope; SELECT g FROM r GROUP BY g");
        assert!(garbage.contains("\"status\": \"error\""), "{garbage}");
        let proc = ask(&mut conn, &mut reply, "proc");
        assert!(proc.contains("no process mesh attached"), "{proc}");
        let metrics = ask(&mut conn, &mut reply, "metrics");
        assert!(metrics.contains("\"submitted\": 2"), "{metrics}");
        let bye = ask(&mut conn, &mut reply, "shutdown");
        assert!(bye.contains("\"shutdown\": true"), "{bye}");

        let summary = server.join().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.metrics.completed, 1);
        assert_eq!(summary.metrics.failed, 1);
    }
}
