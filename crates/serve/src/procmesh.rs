//! The process-mesh backend: serve repeated queries over a persistent
//! real-TCP worker cluster (PR 6's `adaptagg-worker` processes started
//! with `--serve`).
//!
//! The serving coordinator endpoint and its [`CoordinatorState`] live
//! behind one mutex: the mesh runs one query at a time (its workers
//! are real processes pinned to the spec's partitions), while the
//! in-process scheduler handles overlap. What persists across queries
//! is exactly what must: the liveness map and the ownership map — a
//! worker SIGKILLed during query `k` stays dead for query `k+1`, its
//! partitions remain reassigned, and the attempt counter keeps rising
//! so a stale ack can never open a later query's barrier.

use adaptagg_cluster::coordinator::{run_coordinated_query, CoordinatorState};
use adaptagg_cluster::{
    establish_endpoint, ClusterError, ClusterSpec, CoordinatorOpts, CoordinatorReport,
};
use adaptagg_net::Endpoint;
use std::net::SocketAddr;
use std::sync::Mutex;

/// A connected, persistent coordinator seat on a worker mesh.
pub struct ProcBackend {
    spec: ClusterSpec,
    opts: CoordinatorOpts,
    mesh: Mutex<(Endpoint, CoordinatorState)>,
}

impl ProcBackend {
    /// Bind `cluster[0]` and join the mesh as the coordinator. The
    /// workers must be started with the same `--cluster` list, matching
    /// workload flags, and `--serve`.
    pub fn connect(
        cluster: &[SocketAddr],
        tuples: usize,
        groups: usize,
        seed: u64,
        opts: CoordinatorOpts,
    ) -> Result<Self, ClusterError> {
        let spec = ClusterSpec {
            nodes: cluster.len(),
            tuples,
            groups,
            seed,
        };
        let endpoint = establish_endpoint(0, cluster, Default::default())?;
        let state = CoordinatorState::new(&spec);
        Ok(ProcBackend {
            spec,
            opts,
            mesh: Mutex::new((endpoint, state)),
        })
    }

    /// The spec the mesh agreed on.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Run the spec's default query once over the mesh, reusing the
    /// surviving workers. Serialized: concurrent callers queue on the
    /// mesh mutex.
    pub fn run_query(&self) -> Result<CoordinatorReport, ClusterError> {
        let mut mesh = self
            .mesh
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let (endpoint, state) = &mut *mesh;
        run_coordinated_query(endpoint, &self.spec, &self.opts, state, &mut |_| {})
    }

    /// Workers currently believed dead (cumulative).
    pub fn dead_workers(&self) -> Vec<usize> {
        let mesh = self
            .mesh
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        mesh.1.dead_workers().to_vec()
    }
}
