//! The per-node memory broker: divides one node's hash-table budget
//! `M` across the queries currently running on it.
//!
//! Admission is fair-share with a floor: `k` active queries each hold
//! `⌊M/k⌋` entries, and a query is only admitted when the post-admit
//! share stays at or above `min_grant`. Grants are *revocable*
//! ([`MemoryGrant`] is a live handle shared with the executing query):
//! admitting a query shrinks every resident grant **before** the new
//! one is handed out, so the sum of outstanding grants never exceeds
//! the budget, not even transiently. A shrunk query keeps its resident
//! groups (no eviction, no wrong answers) but stops admitting new ones
//! — exactly the condition that triggers an A2P strategy switch or a
//! hash-aggregation spill, i.e. graceful degradation instead of OOM.
//!
//! Finishing a query releases its share and regrows the survivors, so
//! every admitted query eventually holds `⌊M/k⌋ ≥ min_grant` again (no
//! starvation: shares only shrink when admissions succeed, and the
//! admission gate bounds how far).

use adaptagg_model::MemoryGrant;
use std::collections::BTreeMap;

/// Broker knobs for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerConfig {
    /// The node's hash-table budget `M` in entries.
    pub budget: usize,
    /// Smallest share worth admitting at. A query granted fewer entries
    /// than this would thrash (switch/spill almost immediately), so the
    /// broker sheds load instead — the `memory_exhausted` rejection.
    pub min_grant: usize,
}

impl BrokerConfig {
    /// Validate and build. `min_grant` is clamped to `1..=budget`.
    pub fn new(budget: usize, min_grant: usize) -> Self {
        let budget = budget.max(1);
        BrokerConfig {
            budget,
            min_grant: min_grant.clamp(1, budget),
        }
    }
}

/// Why the broker refused to admit a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrantDenied {
    /// Queries already holding grants.
    pub active: usize,
    /// The node budget being divided.
    pub budget: usize,
    /// The configured floor the post-admit share would undercut.
    pub min_grant: usize,
}

impl std::fmt::Display for GrantDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "budget {} / {} active queries leaves less than the {}-entry floor",
            self.budget,
            self.active + 1,
            self.min_grant
        )
    }
}

/// One node's ledger of outstanding grants.
#[derive(Debug)]
pub struct NodeBroker {
    cfg: BrokerConfig,
    /// Query id → its live grant handle. BTreeMap for deterministic
    /// iteration (tests and the no-starvation argument like it).
    grants: BTreeMap<u64, MemoryGrant>,
}

impl NodeBroker {
    /// A broker over one node's budget.
    pub fn new(cfg: BrokerConfig) -> Self {
        NodeBroker {
            cfg,
            grants: BTreeMap::new(),
        }
    }

    /// Queries currently holding a grant.
    pub fn active(&self) -> usize {
        self.grants.len()
    }

    /// The budget currently being divided.
    pub fn budget(&self) -> usize {
        self.cfg.budget
    }

    /// Sum of the grants as the queries currently see them.
    pub fn outstanding(&self) -> usize {
        self.grants.values().map(|g| g.current()).sum()
    }

    /// The fair share with `k` active queries.
    fn share(&self, k: usize) -> usize {
        self.cfg.budget / k.max(1)
    }

    /// Would an admission succeed right now?
    pub fn can_admit(&self) -> bool {
        self.share(self.active() + 1) >= self.cfg.min_grant
    }

    /// Admit `query`: shrink every resident grant to the new fair
    /// share, then hand out the newcomer's. Refuses (leaving every
    /// grant untouched) when the post-admit share would undercut the
    /// floor, or when `query` already holds a grant.
    pub fn try_admit(&mut self, query: u64) -> Result<MemoryGrant, GrantDenied> {
        if self.grants.contains_key(&query) || !self.can_admit() {
            return Err(GrantDenied {
                active: self.active(),
                budget: self.cfg.budget,
                min_grant: self.cfg.min_grant,
            });
        }
        let share = self.share(self.active() + 1);
        // Shrink-before-grow: revoke headroom from the residents first
        // so the sum never exceeds the budget, not even between the two
        // statements.
        for g in self.grants.values() {
            g.set(share);
        }
        let grant = MemoryGrant::bounded(share);
        self.grants.insert(query, grant.clone());
        Ok(grant)
    }

    /// Release `query`'s grant and regrow the survivors to their new
    /// fair share. Unknown ids are ignored (finish is idempotent).
    pub fn finish(&mut self, query: u64) {
        if self.grants.remove(&query).is_none() {
            return;
        }
        let share = self.share(self.active());
        for g in self.grants.values() {
            g.set(share);
        }
    }

    /// Resize the budget (e.g. an operator reclaiming memory for other
    /// work) and re-share among the active queries. The budget is
    /// clamped so every resident query keeps at least one entry — a
    /// grant of zero could strand a query that has not yet admitted its
    /// first group.
    pub fn set_budget(&mut self, budget: usize) {
        self.cfg.budget = budget.max(self.active()).max(1);
        self.cfg.min_grant = self.cfg.min_grant.min(self.cfg.budget);
        let share = self.share(self.active());
        for g in self.grants.values() {
            g.set(share);
        }
    }
}

/// The cluster-wide broker: one [`NodeBroker`] per node, admitted
/// all-or-nothing so a query holds a grant on every node or none.
#[derive(Debug)]
pub struct MemoryBroker {
    nodes: Vec<NodeBroker>,
}

impl MemoryBroker {
    /// One broker per node, all with the same budget (the simulated
    /// cluster is symmetric).
    pub fn new(nodes: usize, cfg: BrokerConfig) -> Self {
        assert!(nodes > 0, "a cluster has at least one node");
        MemoryBroker {
            nodes: (0..nodes).map(|_| NodeBroker::new(cfg)).collect(),
        }
    }

    /// Queries currently admitted (identical on every node).
    pub fn active(&self) -> usize {
        self.nodes[0].active()
    }

    /// Per-node outstanding totals (for metrics).
    pub fn outstanding(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.outstanding()).collect()
    }

    /// Admit on every node, or nowhere. Returns one grant per node, in
    /// node order — ready for `ClusterConfig::with_grants`.
    pub fn try_admit(&mut self, query: u64) -> Result<Vec<MemoryGrant>, GrantDenied> {
        // Symmetric budgets mean node 0's verdict is everyone's, but
        // probe all anyway so an asymmetric future cannot half-admit.
        if let Some(n) = self.nodes.iter().find(|n| !n.can_admit()) {
            return Err(GrantDenied {
                active: n.active(),
                budget: n.budget(),
                min_grant: n.cfg.min_grant,
            });
        }
        self.nodes
            .iter_mut()
            .map(|n| n.try_admit(query))
            .collect()
    }

    /// Release the query's grants on every node.
    pub fn finish(&mut self, query: u64) {
        for n in &mut self.nodes {
            n.finish(query);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker(budget: usize, min: usize) -> NodeBroker {
        NodeBroker::new(BrokerConfig::new(budget, min))
    }

    #[test]
    fn fair_share_shrinks_and_regrows_across_admissions() {
        let mut b = broker(1200, 100);
        let g1 = b.try_admit(1).unwrap();
        assert_eq!(g1.current(), 1200);
        let g2 = b.try_admit(2).unwrap();
        assert_eq!(g1.current(), 600);
        assert_eq!(g2.current(), 600);
        let g3 = b.try_admit(3).unwrap();
        assert_eq!(g1.current(), 400);
        assert_eq!(g3.current(), 400);
        b.finish(2);
        assert_eq!(g1.current(), 600);
        assert_eq!(g3.current(), 600);
        b.finish(1);
        assert_eq!(g3.current(), 1200);
    }

    #[test]
    fn admission_floor_sheds_load_honestly() {
        let mut b = broker(1000, 400);
        b.try_admit(1).unwrap();
        let g2 = b.try_admit(2).unwrap();
        assert_eq!(g2.current(), 500);
        // A third share would be 333 < 400: refused, residents intact.
        let denied = b.try_admit(3).unwrap_err();
        assert_eq!(denied.active, 2);
        assert_eq!(g2.current(), 500);
        assert_eq!(b.active(), 2);
        // Space frees up: the next admission succeeds again.
        b.finish(1);
        assert!(b.can_admit());
        b.try_admit(3).unwrap();
    }

    #[test]
    fn sum_of_grants_never_exceeds_budget() {
        let mut b = broker(997, 1); // prime: floor rounding bites
        for q in 0..9 {
            b.try_admit(q).unwrap();
            assert!(b.outstanding() <= 997, "after admit {q}: {}", b.outstanding());
        }
        for q in [3u64, 7, 0] {
            b.finish(q);
            assert!(b.outstanding() <= 997, "after finish {q}: {}", b.outstanding());
        }
    }

    #[test]
    fn double_admit_and_unknown_finish_are_refused_or_ignored() {
        let mut b = broker(100, 1);
        b.try_admit(7).unwrap();
        assert!(b.try_admit(7).is_err());
        b.finish(99); // never admitted: no-op
        assert_eq!(b.active(), 1);
    }

    #[test]
    fn budget_resize_reshapes_live_grants() {
        let mut b = broker(800, 10);
        let g1 = b.try_admit(1).unwrap();
        let g2 = b.try_admit(2).unwrap();
        b.set_budget(200);
        assert_eq!(g1.current(), 100);
        assert_eq!(g2.current(), 100);
        // Clamped: shrinking below one entry per query is refused.
        b.set_budget(0);
        assert!(g1.current() >= 1 && g2.current() >= 1);
        assert!(b.outstanding() <= b.budget());
    }

    #[test]
    fn cluster_broker_is_all_or_nothing_in_node_order() {
        let mut mb = MemoryBroker::new(4, BrokerConfig::new(600, 300));
        let grants = mb.try_admit(1).unwrap();
        assert_eq!(grants.len(), 4);
        let g2 = mb.try_admit(2).unwrap();
        assert!(grants.iter().all(|g| g.current() == 300));
        assert!(g2.iter().all(|g| g.current() == 300));
        assert!(mb.try_admit(3).is_err());
        assert_eq!(mb.active(), 2);
        mb.finish(1);
        assert_eq!(mb.outstanding(), vec![600; 4]);
    }
}
