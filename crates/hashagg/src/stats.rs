//! Hash-aggregation statistics.

/// Counters describing one aggregation's behaviour. The adaptive
/// algorithms' tests assert on these (e.g. "A2P must not spill; plain 2P
/// at this selectivity must").
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HashAggStats {
    /// Raw tuples pushed.
    pub raw_in: u64,
    /// Partial rows pushed.
    pub partial_in: u64,
    /// Rows emitted (groups out).
    pub groups_out: u64,
    /// Tuples that did not fit the first-pass table and were spooled.
    pub spilled_tuples: u64,
    /// Overflow buckets processed (all recursion levels).
    pub overflow_buckets: u64,
    /// Deepest overflow recursion level reached (0 = no overflow).
    pub max_level: u32,
    /// Slots examined by insert-path probes across all tables (first
    /// pass + overflow buckets); the excess over `rows_in` measures
    /// collision chains.
    pub probe_slots: u64,
    /// Largest number of groups resident in any one table at drain time.
    pub peak_resident: u64,
}

impl HashAggStats {
    /// Whether any intermediate I/O happened.
    pub fn spilled(&self) -> bool {
        self.spilled_tuples > 0
    }

    /// Total rows pushed.
    pub fn rows_in(&self) -> u64 {
        self.raw_in + self.partial_in
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &HashAggStats) {
        self.raw_in += other.raw_in;
        self.partial_in += other.partial_in;
        self.groups_out += other.groups_out;
        self.spilled_tuples += other.spilled_tuples;
        self.overflow_buckets += other.overflow_buckets;
        self.max_level = self.max_level.max(other.max_level);
        self.probe_slots += other.probe_slots;
        self.peak_resident = self.peak_resident.max(other.peak_resident);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spilled_flag_and_totals() {
        let mut s = HashAggStats::default();
        assert!(!s.spilled());
        s.raw_in = 10;
        s.partial_in = 5;
        s.spilled_tuples = 1;
        assert!(s.spilled());
        assert_eq!(s.rows_in(), 15);
    }

    #[test]
    fn add_takes_max_level() {
        let mut a = HashAggStats {
            max_level: 1,
            ..Default::default()
        };
        let b = HashAggStats {
            max_level: 3,
            raw_in: 2,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.max_level, 3);
        assert_eq!(a.raw_in, 2);
    }
}
