//! # adaptagg-hashagg
//!
//! The paper's uniprocessor hash aggregation (§2), memory-bounded:
//!
//! 1. tuples are read and a hash table is built on the GROUP BY
//!    attributes; the first tuple of a new group adds an entry, subsequent
//!    matches update the cumulative state;
//! 2. if the table would exceed its memory allocation (`M` entries),
//!    further *new-group* tuples are hash-partitioned into overflow
//!    buckets and spooled to disk (existing groups keep updating in
//!    place — the in-memory table is the resident "first bucket");
//! 3. overflow buckets are processed one by one as in step 1, recursively
//!    with a fresh bucket hash per level.
//!
//! Every insert accepts either **raw tuples** or **partial rows**
//! ([`adaptagg_model::RowKind`]): the same table merges both, which is what
//! lets the Adaptive Two Phase merge phase work (§3.2). Every structure
//! here emits [`adaptagg_model::CostEvent`]s so the virtual clock sees
//! exactly the per-tuple CPU and per-page overflow I/O the paper charges.
//!
//! This crate is single-node; the parallel algorithms in `adaptagg-algos`
//! compose it with the exchange operators.

//!
//! The `parallel` module adds the intra-node morsel engine: three
//! physical table strategies (shared-striped, thread-local,
//! partitioned) behind an adaptive picker, with logical-order stamps so
//! the parallel drain is bit-identical to the serial one.

pub mod aggregate;
pub mod overflow;
pub mod parallel;
pub mod stats;
pub mod table;

pub use aggregate::{EmitMode, HashAggregator};
pub use overflow::OverflowSet;
pub use parallel::{IntraCause, IntraEvent, IntraMode, IntraStrategy, ParOutcome, ParTables};
pub use stats::HashAggStats;
pub use table::{AggTable, Inserted};
