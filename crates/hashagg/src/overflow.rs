//! Overflow bucket sets.
//!
//! When the in-memory table is full, tuples of non-resident groups are
//! hash-partitioned into `fanout` spill buckets (paper §2 step 2: "the
//! tuples are hash partitioned into multiple … buckets, and all but the
//! first bucket are spooled to disk" — our resident table *is* the first
//! bucket). The bucket hash uses `Seed::OverflowBucket(level)` so it is
//! independent of both the table hash and the node-partitioning hash, and
//! of the bucket hash of any enclosing recursion level.
//!
//! Each spooled tuple is tagged with its [`RowKind`] (raw or partial) by
//! prepending a tag column, because an A2P merge-phase table can overflow
//! while receiving both kinds.

use adaptagg_model::hash::Seed;
use adaptagg_model::{AggQuery, CostEvent, CostTracker, ModelError, RowKind, Value};
use adaptagg_storage::{SpillFile, StorageError};

const TAG_RAW: i64 = 0;
const TAG_PARTIAL: i64 = 1;

/// The kind tag stored as a row's first column.
fn kind_tag(kind: RowKind) -> Value {
    Value::Int(match kind {
        RowKind::Raw => TAG_RAW,
        RowKind::Partial => TAG_PARTIAL,
    })
}

/// Split a tagged row back into kind + values (borrowed).
fn untag_row(tagged: &[Value]) -> Result<(RowKind, &[Value]), ModelError> {
    let Some((tag, values)) = tagged.split_first() else {
        return Err(ModelError::Corrupt("empty spilled row"));
    };
    let kind = match tag.as_i64() {
        Some(TAG_RAW) => RowKind::Raw,
        Some(TAG_PARTIAL) => RowKind::Partial,
        _ => return Err(ModelError::Corrupt("bad spill kind tag")),
    };
    Ok((kind, values))
}

/// A set of spill buckets at one recursion level.
#[derive(Debug)]
pub struct OverflowSet {
    buckets: Vec<SpillFile>,
    level: u32,
    group_by_len: usize,
    spooled: u64,
    /// Reused tag-prepend buffer so spooling allocates nothing per tuple.
    tag_scratch: Vec<Value>,
}

impl OverflowSet {
    /// `fanout` buckets of `page_bytes` pages at recursion `level`.
    /// `group_by_len` is the number of leading key columns of every row
    /// (identical for raw and partial rows in projected form).
    pub fn new(fanout: usize, page_bytes: usize, level: u32, group_by_len: usize) -> Self {
        assert!(fanout >= 2, "overflow fanout must be at least 2");
        OverflowSet {
            buckets: (0..fanout).map(|_| SpillFile::new(page_bytes)).collect(),
            level,
            group_by_len,
            spooled: 0,
            tag_scratch: Vec::new(),
        }
    }

    /// This set's recursion level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Tuples spooled so far.
    pub fn spooled(&self) -> u64 {
        self.spooled
    }

    /// Spool one row of either kind into its bucket. Charges `t_w` for the
    /// tuple write plus page I/O when pages seal (via the spill file).
    /// The bucket hash (`t_h`) is *not* charged: the insert attempt that
    /// rejected this tuple already hashed the key, and the paper charges
    /// one hash per tuple.
    pub fn spool<T: CostTracker>(
        &mut self,
        kind: RowKind,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        let key = &values[..self.group_by_len.min(values.len())];
        let b = (adaptagg_model::hash::hash_values(Seed::OverflowBucket(self.level), key)
            % self.buckets.len() as u64) as usize;
        tracker.record(CostEvent::TupleWrite, 1);
        self.tag_scratch.clear();
        self.tag_scratch.push(kind_tag(kind));
        self.tag_scratch.extend_from_slice(values);
        self.buckets[b].spool(&self.tag_scratch, tracker)?;
        self.spooled += 1;
        Ok(())
    }

    /// Finish writing and return the non-empty buckets for processing.
    pub fn into_buckets<T: CostTracker>(self, tracker: &mut T) -> Vec<SpillFile> {
        self.buckets
            .into_iter()
            .filter_map(|mut b| {
                if b.is_empty() {
                    None
                } else {
                    b.finish(tracker);
                    Some(b)
                }
            })
            .collect()
    }

    /// Drain one bucket, handing `(kind, values)` rows to `consume` as
    /// borrowed slices (the spill file's decode scratch is reused across
    /// tuples). Charges `t_r` per tuple read back plus page reads (via
    /// the spill file).
    pub fn drain_bucket<T, F>(
        bucket: SpillFile,
        tracker: &mut T,
        mut consume: F,
    ) -> Result<usize, StorageError>
    where
        T: CostTracker,
        F: FnMut(&mut T, RowKind, &[Value]) -> Result<(), StorageError>,
    {
        bucket.drain(tracker, |tracker, tagged| {
            tracker.record(CostEvent::TupleRead, 1);
            let (kind, values) = untag_row(tagged).map_err(StorageError::from)?;
            consume(tracker, kind, values)
        })
    }

    /// The spill bucket a key's row would land in at this level (tests and
    /// diagnostics).
    pub fn bucket_of(&self, query: &AggQuery, values: &[Value]) -> Result<usize, ModelError> {
        let key = query.key_of_values(values)?;
        Ok(
            (adaptagg_model::hash::hash_values(Seed::OverflowBucket(self.level), key.values())
                % self.buckets.len() as u64) as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{CountingTracker, NullTracker};

    fn row(g: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(g), Value::Int(v)]
    }

    #[test]
    fn tag_untag_round_trips() {
        for kind in [RowKind::Raw, RowKind::Partial] {
            let mut tagged = vec![kind_tag(kind)];
            tagged.extend_from_slice(&row(3, 4));
            let (k, vals) = untag_row(&tagged).unwrap();
            assert_eq!(k, kind);
            assert_eq!(vals, row(3, 4));
        }
    }

    #[test]
    fn untag_rejects_garbage() {
        assert!(untag_row(&[]).is_err());
        assert!(untag_row(&[Value::Int(9), Value::Int(1)]).is_err());
        assert!(untag_row(&[Value::Str("x".into())]).is_err());
    }

    #[test]
    fn same_group_lands_in_same_bucket_any_kind() {
        let mut set = OverflowSet::new(4, 256, 0, 1);
        let mut tr = NullTracker;
        // Spool the same group as raw and partial plus other groups.
        for i in 0..32 {
            set.spool(RowKind::Raw, &row(i % 8, i), &mut tr).unwrap();
            set.spool(RowKind::Partial, &row(i % 8, i), &mut tr).unwrap();
        }
        assert_eq!(set.spooled(), 64);
        let buckets = set.into_buckets(&mut tr);
        // Rows of one group must be confined to one bucket.
        let mut group_bucket: std::collections::HashMap<i64, usize> = Default::default();
        for (bi, b) in buckets.into_iter().enumerate() {
            OverflowSet::drain_bucket(b, &mut tr, |_t, _, vals| {
                let g = vals[0].as_i64().unwrap();
                let prev = group_bucket.insert(g, bi);
                if let Some(p) = prev {
                    assert_eq!(p, bi, "group {g} split across buckets {p} and {bi}");
                }
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(group_bucket.len(), 8);
    }

    #[test]
    fn no_rows_lost_across_spool_and_drain() {
        let mut set = OverflowSet::new(3, 128, 1, 1);
        let mut tr = CountingTracker::new();
        for i in 0..100 {
            set.spool(RowKind::Raw, &row(i, i), &mut tr).unwrap();
        }
        assert_eq!(tr.count(CostEvent::TupleWrite), 100);
        let buckets = set.into_buckets(&mut tr);
        let mut n = 0;
        for b in buckets {
            n += OverflowSet::drain_bucket(b, &mut tr, |_t, _, _| Ok(())).unwrap();
        }
        assert_eq!(n, 100);
        assert_eq!(tr.count(CostEvent::TupleRead), 100);
        // Spilled pages are written once and read once.
        assert_eq!(
            tr.count(CostEvent::PageWriteSeq),
            tr.count(CostEvent::PageReadSeq)
        );
        assert!(tr.count(CostEvent::PageWriteSeq) > 0);
    }

    #[test]
    fn empty_buckets_are_dropped() {
        let mut set = OverflowSet::new(8, 128, 0, 1);
        let mut tr = NullTracker;
        set.spool(RowKind::Raw, &row(1, 1), &mut tr).unwrap();
        let buckets = set.into_buckets(&mut tr);
        assert_eq!(buckets.len(), 1);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn fanout_below_two_is_rejected() {
        let _ = OverflowSet::new(1, 128, 0, 1);
    }
}
