//! The memory-bounded aggregation hash table.
//!
//! Keys are [`GroupKey`]s, values are [`AggStates`]. Capacity is counted in
//! *entries* (groups), matching Table 1's `M = 10K entries`: the paper's
//! memory requirement "is proportional to the number of distinct group
//! values seen".
//!
//! Cost charging per insert attempt: `t_r` (reading the tuple) + `t_h`
//! (hashing the key), plus `t_a` (updating the cumulative value) when the
//! tuple lands in the table. A rejected insert (`Inserted::Full`) charges
//! only `t_r + t_h` — the caller then spools the tuple (which charges its
//! own `t_w`) or forwards it (A2P).

use adaptagg_model::{
    AggQuery, AggStates, CostEvent, CostTracker, FxBuildHasher, GroupKey, ModelError, ResultRow,
    RowKind, Value,
};
use std::collections::HashMap;

/// Outcome of an insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inserted {
    /// The key existed; its states were updated.
    Updated,
    /// A new entry was created (capacity permitting).
    New,
    /// The key is new but the table is at capacity; nothing was stored.
    Full,
}

/// A bounded hash table from group keys to aggregate states.
#[derive(Debug)]
pub struct AggTable {
    query: AggQuery,
    map: HashMap<GroupKey, AggStates, FxBuildHasher>,
    max_entries: usize,
    charge_hash: bool,
    /// Lifetime distinct-group high-water mark (excludes rejected keys).
    inserts: u64,
    updates: u64,
}

impl AggTable {
    /// An empty table for `query` (which must be in projected form: group
    /// columns first — see [`AggQuery::remapped_to_projection`]) holding at
    /// most `max_entries` groups.
    pub fn new(query: AggQuery, max_entries: usize) -> Self {
        AggTable {
            query,
            map: HashMap::default(),
            max_entries,
            charge_hash: true,
            inserts: 0,
            updates: 0,
        }
    }

    /// Control whether inserts charge `t_h`. Local (first-touch) phases
    /// charge it (`|R_i|·(t_r+t_h+t_a)`, §2.1); merge phases receiving
    /// already-partitioned rows do not (`|G_i|·(t_r+t_a)`, §2.2–2.3 — the
    /// hash was charged at the partitioning side).
    pub fn with_charge_hash(mut self, charge_hash: bool) -> Self {
        self.charge_hash = charge_hash;
        self
    }

    /// The query this table aggregates for.
    pub fn query(&self) -> &AggQuery {
        &self.query
    }

    /// Number of groups currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table holds no groups.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the table is at its entry budget.
    pub fn is_full(&self) -> bool {
        self.map.len() >= self.max_entries
    }

    /// The entry budget.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Raw-tuple updates + new entries accepted so far.
    pub fn accepted(&self) -> u64 {
        self.inserts + self.updates
    }

    /// Insert a row of either kind.
    pub fn insert<T: CostTracker>(
        &mut self,
        kind: RowKind,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<Inserted, ModelError> {
        match kind {
            RowKind::Raw => self.insert_raw(values, tracker),
            RowKind::Partial => self.insert_partial(values, tracker),
        }
    }

    /// Insert a raw (projected) tuple: group columns at the query's
    /// `group_by` positions, aggregate inputs at the specs' positions.
    pub fn insert_raw<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<Inserted, ModelError> {
        tracker.record(CostEvent::TupleRead, 1);
        if self.charge_hash {
            tracker.record(CostEvent::TupleHash, 1);
        }
        let key = self.query.key_of_values(values)?;
        if let Some(states) = self.map.get_mut(&key) {
            states.update_from_tuple(&self.query.aggs, values)?;
            tracker.record(CostEvent::TupleAgg, 1);
            self.updates += 1;
            return Ok(Inserted::Updated);
        }
        if self.map.len() >= self.max_entries {
            return Ok(Inserted::Full);
        }
        let mut states = AggStates::new(&self.query.aggs);
        states.update_from_tuple(&self.query.aggs, values)?;
        tracker.record(CostEvent::TupleAgg, 1);
        self.map.insert(key, states);
        self.inserts += 1;
        Ok(Inserted::New)
    }

    /// Insert a partial row: group-key columns first, then the encoded
    /// partial-state columns ([`AggQuery::partial_row_arity`] total).
    pub fn insert_partial<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<Inserted, ModelError> {
        tracker.record(CostEvent::TupleRead, 1);
        if self.charge_hash {
            tracker.record(CostEvent::TupleHash, 1);
        }
        let k = self.query.group_by.len();
        if values.len() != self.query.partial_row_arity() {
            return Err(ModelError::PartialArityMismatch {
                expected: self.query.partial_row_arity(),
                found: values.len(),
            });
        }
        let key = GroupKey::new(values[..k].to_vec());
        if let Some(states) = self.map.get_mut(&key) {
            states.merge_partial_values(&values[k..])?;
            tracker.record(CostEvent::TupleAgg, 1);
            self.updates += 1;
            return Ok(Inserted::Updated);
        }
        if self.map.len() >= self.max_entries {
            return Ok(Inserted::Full);
        }
        let mut states = AggStates::new(&self.query.aggs);
        states.merge_partial_values(&values[k..])?;
        tracker.record(CostEvent::TupleAgg, 1);
        self.map.insert(key, states);
        self.inserts += 1;
        Ok(Inserted::New)
    }

    /// Whether a raw tuple's group is already resident (A2P forwarding
    /// checks, Graefe's optimized 2P).
    pub fn contains_key_of(&self, values: &[Value]) -> Result<bool, ModelError> {
        Ok(self.map.contains_key(&self.query.key_of_values(values)?))
    }

    /// Drain the table as **partial rows** (key columns ++ partial-state
    /// columns), charging `t_w` per row. Used by local phases to ship
    /// their results and by A2P's overflow flush.
    pub fn drain_partial_rows<T: CostTracker>(&mut self, tracker: &mut T) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(self.map.len());
        for (key, states) in self.map.drain() {
            let mut row = key.into_values();
            row.extend(states.to_partial_values());
            out.push(row);
        }
        tracker.record(CostEvent::TupleWrite, out.len() as u64);
        out
    }

    /// Drain the table as **finalized result rows**, charging `t_w` per
    /// row. Used by merge phases and single-phase aggregation.
    pub fn drain_result_rows<T: CostTracker>(&mut self, tracker: &mut T) -> Vec<ResultRow> {
        let mut out = Vec::with_capacity(self.map.len());
        for (key, states) in self.map.drain() {
            out.push(ResultRow::new(key, states.finalize()));
        }
        tracker.record(CostEvent::TupleWrite, out.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec, CountingTracker, NullTracker};

    fn query() -> AggQuery {
        // Projected form: col0 = group, col1 = value.
        AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)])
    }

    fn raw(g: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(g), Value::Int(v)]
    }

    #[test]
    fn builds_groups_and_updates() {
        let mut t = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        assert_eq!(t.insert_raw(&raw(1, 10), &mut tr).unwrap(), Inserted::New);
        assert_eq!(t.insert_raw(&raw(1, 5), &mut tr).unwrap(), Inserted::Updated);
        assert_eq!(t.insert_raw(&raw(2, 1), &mut tr).unwrap(), Inserted::New);
        assert_eq!(t.len(), 2);

        let mut rows = t.drain_result_rows(&mut tr);
        adaptagg_model::query::sort_rows(&mut rows);
        assert_eq!(rows[0].key.values(), &[Value::Int(1)]);
        assert_eq!(rows[0].aggs, vec![Value::Int(15)]);
        assert_eq!(rows[1].aggs, vec![Value::Int(1)]);
        assert!(t.is_empty(), "drain empties the table");
    }

    #[test]
    fn capacity_rejects_new_groups_but_updates_resident_ones() {
        let mut t = AggTable::new(query(), 2);
        let mut tr = NullTracker;
        t.insert_raw(&raw(1, 1), &mut tr).unwrap();
        t.insert_raw(&raw(2, 1), &mut tr).unwrap();
        assert!(t.is_full());
        // New group: rejected, not stored.
        assert_eq!(t.insert_raw(&raw(3, 1), &mut tr).unwrap(), Inserted::Full);
        assert_eq!(t.len(), 2);
        // Resident group: still updates in place.
        assert_eq!(t.insert_raw(&raw(1, 9), &mut tr).unwrap(), Inserted::Updated);
    }

    #[test]
    fn partial_rows_merge_with_raw_rows() {
        // §3.2's requirement: raw and partial interleaved in one table.
        let mut t = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        t.insert_raw(&raw(1, 10), &mut tr).unwrap();
        // Partial row for group 1 carrying SUM partial = 32.
        t.insert_partial(&[Value::Int(1), Value::Int(32)], &mut tr).unwrap();
        // Partial row for a brand-new group 2.
        t.insert_partial(&[Value::Int(2), Value::Int(7)], &mut tr).unwrap();
        t.insert_raw(&raw(2, 3), &mut tr).unwrap();

        let mut rows = t.drain_result_rows(&mut tr);
        adaptagg_model::query::sort_rows(&mut rows);
        assert_eq!(rows[0].aggs, vec![Value::Int(42)]);
        assert_eq!(rows[1].aggs, vec![Value::Int(10)]);
    }

    #[test]
    fn partial_arity_mismatch_is_error() {
        let mut t = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        assert!(t
            .insert_partial(&[Value::Int(1)], &mut tr)
            .is_err());
    }

    #[test]
    fn cost_charges_match_paper_formula() {
        // Local aggregation: |R| * (t_r + t_h + t_a); result gen: |G| * t_w.
        let mut t = AggTable::new(query(), 100);
        let mut tr = CountingTracker::new();
        for i in 0..50 {
            t.insert_raw(&raw(i % 5, i), &mut tr).unwrap();
        }
        assert_eq!(tr.count(CostEvent::TupleRead), 50);
        assert_eq!(tr.count(CostEvent::TupleHash), 50);
        assert_eq!(tr.count(CostEvent::TupleAgg), 50);
        assert_eq!(tr.count(CostEvent::TupleWrite), 0);
        let rows = t.drain_result_rows(&mut tr);
        assert_eq!(rows.len(), 5);
        assert_eq!(tr.count(CostEvent::TupleWrite), 5);
    }

    #[test]
    fn charge_hash_false_skips_t_h() {
        // Merge phases receive pre-partitioned rows: §2.2 charges them
        // t_r + t_a only.
        let mut t = AggTable::new(query(), 100).with_charge_hash(false);
        let mut tr = CountingTracker::new();
        t.insert_raw(&raw(1, 1), &mut tr).unwrap();
        t.insert_partial(&[Value::Int(2), Value::Int(5)], &mut tr).unwrap();
        assert_eq!(tr.count(CostEvent::TupleHash), 0);
        assert_eq!(tr.count(CostEvent::TupleRead), 2);
        assert_eq!(tr.count(CostEvent::TupleAgg), 2);
    }

    #[test]
    fn rejected_insert_charges_no_agg() {
        let mut t = AggTable::new(query(), 1);
        let mut tr = CountingTracker::new();
        t.insert_raw(&raw(1, 1), &mut tr).unwrap();
        let agg_before = tr.count(CostEvent::TupleAgg);
        t.insert_raw(&raw(2, 1), &mut tr).unwrap(); // Full
        assert_eq!(tr.count(CostEvent::TupleAgg), agg_before);
        assert_eq!(tr.count(CostEvent::TupleHash), 2);
    }

    #[test]
    fn duplicate_elimination_table() {
        let q = AggQuery::distinct(vec![0]);
        let mut t = AggTable::new(q, 10);
        let mut tr = NullTracker;
        for g in [1, 2, 1, 3, 2, 1] {
            t.insert_raw(&[Value::Int(g)], &mut tr).unwrap();
        }
        assert_eq!(t.len(), 3);
        let rows = t.drain_result_rows(&mut tr);
        assert!(rows.iter().all(|r| r.aggs.is_empty()));
    }

    #[test]
    fn drain_partial_rows_round_trip_through_second_table() {
        let mut t1 = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        t1.insert_raw(&raw(1, 10), &mut tr).unwrap();
        t1.insert_raw(&raw(1, 20), &mut tr).unwrap();
        t1.insert_raw(&raw(2, 5), &mut tr).unwrap();

        let partials = t1.drain_partial_rows(&mut tr);
        assert_eq!(partials.len(), 2);
        let mut t2 = AggTable::new(query(), 10);
        for p in &partials {
            t2.insert_partial(p, &mut tr).unwrap();
        }
        let mut rows = t2.drain_result_rows(&mut tr);
        adaptagg_model::query::sort_rows(&mut rows);
        assert_eq!(rows[0].aggs, vec![Value::Int(30)]);
        assert_eq!(rows[1].aggs, vec![Value::Int(5)]);
    }

    #[test]
    fn contains_key_of_sees_resident_groups() {
        let mut t = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        t.insert_raw(&raw(7, 1), &mut tr).unwrap();
        assert!(t.contains_key_of(&raw(7, 99)).unwrap());
        assert!(!t.contains_key_of(&raw(8, 0)).unwrap());
    }

    #[test]
    fn accepted_counts_updates_and_inserts() {
        let mut t = AggTable::new(query(), 1);
        let mut tr = NullTracker;
        t.insert_raw(&raw(1, 1), &mut tr).unwrap();
        t.insert_raw(&raw(1, 2), &mut tr).unwrap();
        t.insert_raw(&raw(2, 3), &mut tr).unwrap(); // Full → not accepted
        assert_eq!(t.accepted(), 2);
    }
}
