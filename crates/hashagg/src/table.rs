//! The memory-bounded aggregation hash table.
//!
//! Keys are [`GroupKey`]s, values are [`AggStates`]. Capacity is counted in
//! *entries* (groups), matching Table 1's `M = 10K entries`: the paper's
//! memory requirement "is proportional to the number of distinct group
//! values seen".
//!
//! Cost charging per insert attempt: `t_r` (reading the tuple) + `t_h`
//! (hashing the key), plus `t_a` (updating the cumulative value) when the
//! tuple lands in the table. A rejected insert (`Inserted::Full`) charges
//! only `t_r + t_h` — the caller then spools the tuple (which charges its
//! own `t_w`) or forwards it (A2P).
//!
//! # Layout
//!
//! The table is open-addressed: a power-of-two `slots` array of entry
//! indices (linear probing) over parallel `hashes`/`keys`/`states`
//! columns. The probe hashes the key *columns in place* (`&[Value]`, one
//! [`Seed::Table`] hash) and compares stored hashes before keys, so the
//! dominant resident-group update allocates nothing: a heap [`GroupKey`]
//! is built only when a genuinely new group is admitted. The slot array
//! is pre-sized from a capped `max_entries` hint, so the paper-default
//! budget never rehashes; growth (uncapped deep-overflow tables only)
//! rebuilds slots from the stored hashes without touching the keys.
//!
//! Entries drain in insertion order — deterministic and independent of
//! any hash-map iteration order.

use adaptagg_model::hash::{
    hash_batch_finish, hash_batch_init, hash_batch_ints, hash_batch_values, hash_values,
};
use adaptagg_model::{
    AggFunc, AggQuery, AggStates, CostEvent, CostTracker, GroupKey, MemoryGrant, ModelError,
    ResultRow, RowKind, Seed, Value,
};
use adaptagg_storage::{Page, StorageError, StripView};

/// Outcome of an insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inserted {
    /// The key existed; its states were updated.
    Updated,
    /// A new entry was created (capacity permitting).
    New,
    /// The key is new but the table is at capacity; nothing was stored.
    Full,
}

/// Empty-slot sentinel in the probe array.
const EMPTY: u32 = u32::MAX;

/// Pre-sizing cap: slot arrays are sized for `min(max_entries, this)`
/// entries up front. Covers the paper's `M` budgets (10 K–12.5 K) with
/// zero growth while keeping uncapped deep-overflow tables from
/// allocating absurd slot arrays.
const PRESIZE_CAP: usize = 1 << 14;

/// Batched cost template for an accepted insert with hash charging.
const ACCEPT_WITH_HASH: [CostEvent; 3] =
    [CostEvent::TupleRead, CostEvent::TupleHash, CostEvent::TupleAgg];
/// Batched cost template for an accepted insert without hash charging.
const ACCEPT_NO_HASH: [CostEvent; 2] = [CostEvent::TupleRead, CostEvent::TupleAgg];

/// A bounded hash table from group keys to aggregate states.
#[derive(Debug)]
pub struct AggTable {
    query: AggQuery,
    /// Whether `group_by` is exactly `0..k` (always true for queries in
    /// projected form): the key is then probed as `&values[..k]` with no
    /// column gather.
    key_is_prefix: bool,
    key_len: usize,
    /// Power-of-two probe array of entry indices (`EMPTY` = vacant).
    slots: Vec<u32>,
    mask: usize,
    /// Parallel entry columns, in insertion order.
    hashes: Vec<u64>,
    keys: Vec<GroupKey>,
    states: Vec<AggStates>,
    /// Per-entry logical stamps, parallel to `keys` — populated only by
    /// [`AggTable::insert_stamped`] (the intra-node parallel engine);
    /// empty and untouched on every serial path.
    stamps: Vec<u64>,
    max_entries: usize,
    /// Live, broker-revocable cap on top of `max_entries` (unlimited by
    /// default — single-query runs never consult it).
    grant: MemoryGrant,
    charge_hash: bool,
    /// Lifetime distinct-group high-water mark (excludes rejected keys).
    inserts: u64,
    updates: u64,
    /// Slots examined by insert-path probes (observability; a plain
    /// counter — never recorded as a cost event, never allocating).
    probe_slots: u64,
    /// Column gather scratch for non-prefix `group_by` (cold path).
    key_scratch: Vec<Value>,
    /// Tuple decode scratch for [`AggTable::insert_page`].
    row_scratch: Vec<Value>,
    /// Pooled per-page key-hash vector for the batched probe.
    batch_hashes: Vec<u64>,
    /// Pooled per-page group-index vector (`EMPTY` = row rejected) the
    /// batched probe hands to the deferred column-at-a-time update pass.
    batch_gix: Vec<u32>,
}

impl AggTable {
    /// An empty table for `query` (which must be in projected form: group
    /// columns first — see [`AggQuery::remapped_to_projection`]) holding at
    /// most `max_entries` groups.
    pub fn new(query: AggQuery, max_entries: usize) -> Self {
        let hint = max_entries.min(PRESIZE_CAP);
        Self::new_with_hint(query, max_entries, hint)
    }

    /// [`AggTable::new`] with an explicit pre-size hint, for callers that
    /// build many tables over the same budget (the intra-node parallel
    /// engine's stripes and partitions): a small hint keeps each table's
    /// slot array tiny and lets it grow on demand.
    pub fn new_with_hint(query: AggQuery, max_entries: usize, hint: usize) -> Self {
        let hint = hint.min(max_entries).min(PRESIZE_CAP);
        // 7/8 max load factor, never fewer than 16 slots.
        let slots = (hint * 8 / 7 + 1).next_power_of_two().max(16);
        let key_len = query.group_by.len();
        let key_is_prefix = query.group_by.iter().enumerate().all(|(i, &c)| c == i);
        AggTable {
            query,
            key_is_prefix,
            key_len,
            slots: vec![EMPTY; slots],
            mask: slots - 1,
            hashes: Vec::with_capacity(hint),
            keys: Vec::with_capacity(hint),
            states: Vec::with_capacity(hint),
            stamps: Vec::new(),
            max_entries,
            grant: MemoryGrant::unlimited(),
            charge_hash: true,
            inserts: 0,
            updates: 0,
            probe_slots: 0,
            key_scratch: Vec::new(),
            row_scratch: Vec::new(),
            batch_hashes: Vec::new(),
            batch_gix: Vec::new(),
        }
    }

    /// Control whether inserts charge `t_h`. Local (first-touch) phases
    /// charge it (`|R_i|·(t_r+t_h+t_a)`, §2.1); merge phases receiving
    /// already-partitioned rows do not (`|G_i|·(t_r+t_a)`, §2.2–2.3 — the
    /// hash was charged at the partitioning side).
    pub fn with_charge_hash(mut self, charge_hash: bool) -> Self {
        self.charge_hash = charge_hash;
        self
    }

    /// Attach a live [`MemoryGrant`]: the effective entry budget becomes
    /// `min(max_entries, grant)` re-read at every new-group admission, so
    /// a broker shrinking the grant mid-scan makes the table report full
    /// (and the operator spill or switch) without evicting anything
    /// already resident.
    pub fn with_grant(mut self, grant: MemoryGrant) -> Self {
        self.grant = grant;
        self
    }

    /// In-place form of [`AggTable::with_grant`] for tables embedded in
    /// larger state machines.
    pub fn set_grant(&mut self, grant: MemoryGrant) {
        self.grant = grant;
    }

    /// The query this table aggregates for.
    pub fn query(&self) -> &AggQuery {
        &self.query
    }

    /// Number of groups currently held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table holds no groups.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether the table is at its effective entry budget.
    pub fn is_full(&self) -> bool {
        self.keys.len() >= self.effective_max()
    }

    /// The entry budget.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// The budget after clamping by the live grant.
    #[inline]
    fn effective_max(&self) -> usize {
        self.grant.cap(self.max_entries)
    }

    /// Raw-tuple updates + new entries accepted so far.
    pub fn accepted(&self) -> u64 {
        self.inserts + self.updates
    }

    /// Total slots examined by insert-path probes (≥ one per attempt;
    /// the excess over attempts measures collision chains).
    pub fn probe_slots(&self) -> u64 {
        self.probe_slots
    }

    /// Fraction of the slot array currently occupied.
    pub fn occupancy(&self) -> f64 {
        self.keys.len() as f64 / self.slots.len() as f64
    }

    /// The batched cost template of one accepted insert (what
    /// [`AggTable::insert_page`] replays per admitted tuple).
    fn accept_template(&self) -> &'static [CostEvent] {
        if self.charge_hash {
            &ACCEPT_WITH_HASH
        } else {
            &ACCEPT_NO_HASH
        }
    }

    /// Charge the fixed per-attempt costs (`t_r` + optional `t_h`).
    fn charge_attempt<T: CostTracker>(&self, tracker: &mut T) {
        tracker.record(CostEvent::TupleRead, 1);
        if self.charge_hash {
            tracker.record(CostEvent::TupleHash, 1);
        }
    }

    /// Insert a row of either kind.
    pub fn insert<T: CostTracker>(
        &mut self,
        kind: RowKind,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<Inserted, ModelError> {
        match kind {
            RowKind::Raw => self.insert_raw(values, tracker),
            RowKind::Partial => self.insert_partial(values, tracker),
        }
    }

    /// Insert a raw (projected) tuple: group columns at the query's
    /// `group_by` positions, aggregate inputs at the specs' positions.
    pub fn insert_raw<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<Inserted, ModelError> {
        self.charge_attempt(tracker);
        let (outcome, _) = self.insert_quiet(RowKind::Raw, values, None)?;
        if outcome != Inserted::Full {
            tracker.record(CostEvent::TupleAgg, 1);
        }
        Ok(outcome)
    }

    /// [`AggTable::insert_raw`] with the key's [`Seed::Table`] hash
    /// already computed by the caller (who hashed the same columns for
    /// its own purposes — e.g. A-Rep's distinct tracking). Charges
    /// exactly what `insert_raw` charges: sharing the hash is a
    /// wall-clock optimization, not a cost-model change.
    pub fn insert_raw_prehashed<T: CostTracker>(
        &mut self,
        values: &[Value],
        hash: u64,
        tracker: &mut T,
    ) -> Result<Inserted, ModelError> {
        self.charge_attempt(tracker);
        let (outcome, _) = self.insert_quiet(RowKind::Raw, values, Some(hash))?;
        if outcome != Inserted::Full {
            tracker.record(CostEvent::TupleAgg, 1);
        }
        Ok(outcome)
    }

    /// Insert a partial row: group-key columns first, then the encoded
    /// partial-state columns ([`AggQuery::partial_row_arity`] total).
    pub fn insert_partial<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<Inserted, ModelError> {
        self.charge_attempt(tracker);
        let (outcome, _) = self.insert_quiet(RowKind::Partial, values, None)?;
        if outcome != Inserted::Full {
            tracker.record(CostEvent::TupleAgg, 1);
        }
        Ok(outcome)
    }

    /// Insert every tuple of a page, batching the cost recording: runs of
    /// accepted tuples are charged through
    /// [`CostTracker::record_tuples`] (bit-identical to the per-tuple
    /// loop by that method's contract), while rejected tuples flush the
    /// run, charge `t_r`(+`t_h`) inline and are handed to `on_full`
    /// (which spools or forwards, charging its own costs, exactly as the
    /// per-tuple caller would). Returns the number of rejected tuples.
    pub fn insert_page<T, F>(
        &mut self,
        kind: RowKind,
        page: &Page,
        tracker: &mut T,
        mut on_full: F,
    ) -> Result<u64, StorageError>
    where
        T: CostTracker,
        F: FnMut(&mut T, RowKind, &[Value]) -> Result<(), StorageError>,
    {
        let template = self.accept_template();
        let mut scratch = std::mem::take(&mut self.row_scratch);
        let mut pending = 0u64;
        let mut rejected = 0u64;
        let mut cursor = page.cursor();
        let result = loop {
            match cursor.next_into(&mut scratch) {
                Ok(false) => break Ok(()),
                Err(e) => break Err(e),
                Ok(true) => {}
            }
            match self.insert_quiet(kind, &scratch, None) {
                Ok((Inserted::Updated, _)) | Ok((Inserted::New, _)) => pending += 1,
                Ok((Inserted::Full, _)) => {
                    tracker.record_tuples(template, pending);
                    pending = 0;
                    self.charge_attempt(tracker);
                    rejected += 1;
                    if let Err(e) = on_full(tracker, kind, &scratch) {
                        break Err(e);
                    }
                }
                Err(e) => {
                    tracker.record_tuples(template, pending);
                    pending = 0;
                    self.charge_attempt(tracker);
                    break Err(StorageError::from(e));
                }
            }
        };
        tracker.record_tuples(template, pending);
        self.row_scratch = scratch;
        result.map(|()| rejected)
    }

    /// The vectorized form of [`AggTable::insert_page`]: hashes whole key
    /// columns through the batch kernels, probes row-ordered with the
    /// precomputed hashes, and — when every aggregate input is an `Int`
    /// strip — defers state updates behind a group-index vector replayed
    /// column-at-a-time. Charges, counters, outcomes, errors and final
    /// states are bit-identical to `insert_page`; pages the strips cannot
    /// serve (ragged arity, non-prefix keys, wrong partial arity) fall
    /// back to it wholesale so error semantics never fork.
    pub fn insert_page_batched<T, F>(
        &mut self,
        kind: RowKind,
        page: &Page,
        tracker: &mut T,
        on_full: F,
    ) -> Result<u64, StorageError>
    where
        T: CostTracker,
        F: FnMut(&mut T, RowKind, &[Value]) -> Result<(), StorageError>,
    {
        let k = self.key_len;
        let eligible = match page.uniform_arity() {
            None => false, // ragged or empty: the row loop handles it
            Some(arity) => {
                arity >= k
                    && match kind {
                        // Non-prefix keys need the gather path; wrong
                        // partial arity must surface insert_quiet's error.
                        RowKind::Raw => self.key_is_prefix,
                        RowKind::Partial => arity == self.query.partial_row_arity(),
                    }
            }
        };
        if !eligible {
            return self.insert_page(kind, page, tracker, on_full);
        }
        let n = page.tuple_count();

        // Phase 1: one vectorized Seed::Table hash per row, folding the
        // key columns in order (bit-identical to hash_values on the row's
        // key prefix by the batch kernels' contract).
        let mut hashes = std::mem::take(&mut self.batch_hashes);
        hash_batch_init(Seed::Table, n, &mut hashes);
        for j in 0..k {
            match page.column(j).expect("uniform-arity page has dense strips") {
                StripView::Ints(xs) => hash_batch_ints(&mut hashes, xs),
                StripView::Values(vs) => hash_batch_values(&mut hashes, vs),
            }
        }
        hash_batch_finish(&mut hashes);

        // Raw pages whose every aggregate input is an Int strip take the
        // deferred-update fast path; everything else probes row-by-row
        // with the batch hashes (still skipping the per-row hash).
        let fast = kind == RowKind::Raw
            && self.query.aggs.iter().all(|spec| match spec.input {
                None => spec.func == AggFunc::Count,
                Some(c) => matches!(page.column(c), Some(StripView::Ints(_))),
            });
        let result = if fast {
            self.insert_batched_fast(page, &hashes, tracker, on_full)
        } else {
            self.insert_batched_rows(kind, page, &hashes, tracker, on_full)
        };
        self.batch_hashes = hashes;
        result
    }

    /// Fast arm of [`AggTable::insert_page_batched`]: probe every row
    /// against the strips (no tuple materialization), collect accepted
    /// rows' entry indices, then replay the aggregate updates
    /// column-at-a-time. Update order per (spec, entry) is row order —
    /// exactly the row loop's — so order-sensitive accumulator promotion
    /// is preserved.
    fn insert_batched_fast<T, F>(
        &mut self,
        page: &Page,
        hashes: &[u64],
        tracker: &mut T,
        mut on_full: F,
    ) -> Result<u64, StorageError>
    where
        T: CostTracker,
        F: FnMut(&mut T, RowKind, &[Value]) -> Result<(), StorageError>,
    {
        let k = self.key_len;
        let template = self.accept_template();
        let mut gix = std::mem::take(&mut self.batch_gix);
        gix.clear();
        let mut pending = 0u64;
        let mut rejected = 0u64;
        let mut result = Ok(());
        for (r, &hash) in hashes.iter().enumerate() {
            let (slot, found, examined) = self.find_row(hash, page, r);
            self.probe_slots += examined;
            if let Some(entry) = found {
                self.updates += 1;
                gix.push(entry as u32);
                pending += 1;
                continue;
            }
            if self.keys.len() >= self.effective_max() {
                gix.push(EMPTY);
                tracker.record_tuples(template, pending);
                pending = 0;
                self.charge_attempt(tracker);
                rejected += 1;
                // Materialize the overflow row only now, on the cold path.
                let mut scratch = std::mem::take(&mut self.row_scratch);
                scratch.clear();
                let arity = page.uniform_arity().expect("eligibility checked");
                for j in 0..arity {
                    scratch.push(match page.column(j).expect("dense strips") {
                        StripView::Ints(xs) => Value::Int(xs[r]),
                        StripView::Values(vs) => vs[r].clone(),
                    });
                }
                let spooled = on_full(tracker, RowKind::Raw, &scratch);
                self.row_scratch = scratch;
                if let Err(e) = spooled {
                    result = Err(e);
                    break;
                }
                continue;
            }
            // New group: admit with empty states — this row's update is
            // applied by the deferred pass like any other accepted row.
            let mut key_vec = Vec::with_capacity(k);
            for j in 0..k {
                key_vec.push(match page.column(j).expect("dense strips") {
                    StripView::Ints(xs) => Value::Int(xs[r]),
                    StripView::Values(vs) => vs[r].clone(),
                });
            }
            let entry = u32::try_from(self.keys.len()).expect("table exceeds u32 entries");
            self.keys.push(GroupKey::new(key_vec));
            self.hashes.push(hash);
            self.states.push(AggStates::new(&self.query.aggs));
            self.slots[slot] = entry;
            self.inserts += 1;
            if (self.keys.len() + 1) * 8 > self.slots.len() * 7 {
                self.grow();
            }
            gix.push(entry);
            pending += 1;
        }
        tracker.record_tuples(template, pending);

        // Deferred updates, column-at-a-time over the group-index vector
        // (covers exactly the rows probed above, including the partial
        // prefix before an on_full error).
        let Self {
            ref mut states,
            ref query,
            ..
        } = *self;
        for (j, spec) in query.aggs.iter().enumerate() {
            match spec.input {
                None => {
                    for &e in gix.iter() {
                        if e != EMPTY {
                            states[e as usize].update_star_at(j);
                        }
                    }
                }
                Some(c) => {
                    let Some(StripView::Ints(xs)) = page.column(c) else {
                        unreachable!("fast arm requires Int input strips")
                    };
                    for (r, &e) in gix.iter().enumerate() {
                        if e != EMPTY {
                            states[e as usize].update_int_at(j, xs[r]);
                        }
                    }
                }
            }
        }
        self.batch_gix = gix;
        result.map(|()| rejected)
    }

    /// Slow arm of [`AggTable::insert_page_batched`]: rows are
    /// materialized and inserted one at a time (partial rows, or raw
    /// pages with non-`Int` aggregate inputs), reusing the vectorized key
    /// hashes. Identical to [`AggTable::insert_page`] except for where
    /// the hash comes from.
    fn insert_batched_rows<T, F>(
        &mut self,
        kind: RowKind,
        page: &Page,
        hashes: &[u64],
        tracker: &mut T,
        mut on_full: F,
    ) -> Result<u64, StorageError>
    where
        T: CostTracker,
        F: FnMut(&mut T, RowKind, &[Value]) -> Result<(), StorageError>,
    {
        let template = self.accept_template();
        let mut scratch = std::mem::take(&mut self.row_scratch);
        let mut pending = 0u64;
        let mut rejected = 0u64;
        let mut cursor = page.cursor();
        let mut result = Ok(());
        for &hash in hashes {
            match cursor.next_into(&mut scratch) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
            match self.insert_quiet(kind, &scratch, Some(hash)) {
                Ok((Inserted::Updated, _)) | Ok((Inserted::New, _)) => pending += 1,
                Ok((Inserted::Full, _)) => {
                    tracker.record_tuples(template, pending);
                    pending = 0;
                    self.charge_attempt(tracker);
                    rejected += 1;
                    if let Err(e) = on_full(tracker, kind, &scratch) {
                        result = Err(e);
                        break;
                    }
                }
                Err(e) => {
                    tracker.record_tuples(template, pending);
                    pending = 0;
                    self.charge_attempt(tracker);
                    result = Err(StorageError::from(e));
                    break;
                }
            }
        }
        tracker.record_tuples(template, pending);
        self.row_scratch = scratch;
        result.map(|()| rejected)
    }

    /// [`AggTable::find`] against a page row's key prefix read straight
    /// from the column strips — no row materialization, no allocation.
    #[inline]
    fn find_row(&self, hash: u64, page: &Page, r: usize) -> (usize, Option<usize>, u64) {
        let mut i = (hash as usize) & self.mask;
        let mut examined = 1u64;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return (i, None, examined);
            }
            let e = s as usize;
            if self.hashes[e] == hash && self.key_matches_row(e, page, r) {
                return (i, Some(e), examined);
            }
            i = (i + 1) & self.mask;
            examined += 1;
        }
    }

    /// Whether entry's stored key equals row `r`'s key prefix, comparing
    /// cell-by-cell against the strips.
    #[inline]
    fn key_matches_row(&self, entry: usize, page: &Page, r: usize) -> bool {
        let stored = self.keys[entry].values();
        debug_assert_eq!(stored.len(), self.key_len);
        stored.iter().enumerate().all(|(j, kv)| match page.column(j) {
            Some(StripView::Ints(xs)) => matches!(kv, Value::Int(x) if *x == xs[r]),
            Some(StripView::Values(vs)) => kv == &vs[r],
            None => false,
        })
    }

    /// Insert with a logical **stamp** and no cost recording: the
    /// intra-node parallel engine's entry point. The stamp identifies the
    /// row's position in the logical (single-threaded) scan order; each
    /// entry remembers the *minimum* stamp over all rows that touched it,
    /// which is exactly the stamp of the group's logically-first row —
    /// [`AggTable::drain_stamped`] then lets the engine reconstruct the
    /// serial insertion order no matter how the physical threads
    /// interleaved. Costs are charged separately by replaying the scan
    /// journal in logical order (see `adaptagg-hashagg::parallel`).
    ///
    /// Must not be mixed with unstamped inserts on the same table.
    pub fn insert_stamped(
        &mut self,
        kind: RowKind,
        values: &[Value],
        prehashed: Option<u64>,
        stamp: u64,
    ) -> Result<Inserted, ModelError> {
        let (outcome, entry) = self.insert_quiet(kind, values, prehashed)?;
        match outcome {
            Inserted::New => {
                debug_assert_eq!(entry, self.stamps.len());
                self.stamps.push(stamp);
            }
            Inserted::Updated => {
                let s = &mut self.stamps[entry];
                if stamp < *s {
                    *s = stamp;
                }
            }
            Inserted::Full => {}
        }
        Ok(outcome)
    }

    /// Drain a stamped table as `(stamp, partial row)` pairs, cost-free.
    /// The stamp of each entry is the logical position of the group's
    /// first row (see [`AggTable::insert_stamped`]).
    pub fn drain_stamped(&mut self) -> Vec<(u64, Vec<Value>)> {
        let stamps = std::mem::take(&mut self.stamps);
        let mut out = Vec::with_capacity(self.keys.len());
        for ((key, states), stamp) in self.keys.drain(..).zip(self.states.drain(..)).zip(stamps) {
            let mut row = key.into_values();
            row.extend(states.to_partial_values());
            out.push((stamp, row));
        }
        self.reset();
        out
    }

    /// The probe-and-mutate core, with no cost recording: callers charge
    /// per the charging contract (see module docs). `prehashed` must be
    /// `hash_values(Seed::Table, key_columns)` when provided. Returns the
    /// outcome plus the touched entry index (meaningless on `Full`).
    fn insert_quiet(
        &mut self,
        kind: RowKind,
        values: &[Value],
        prehashed: Option<u64>,
    ) -> Result<(Inserted, usize), ModelError> {
        let k = self.key_len;
        if kind == RowKind::Partial && values.len() != self.query.partial_row_arity() {
            return Err(ModelError::PartialArityMismatch {
                expected: self.query.partial_row_arity(),
                found: values.len(),
            });
        }
        // Locate the key columns without allocating. Partial rows always
        // lead with the key; raw rows do too in projected form
        // (`key_is_prefix`), with a gather-into-scratch fallback.
        let use_prefix = kind == RowKind::Partial || self.key_is_prefix;
        if use_prefix {
            if values.len() < k {
                return Err(ModelError::ColumnOutOfRange {
                    column: values.len(),
                    arity: values.len(),
                });
            }
        } else {
            self.key_scratch.clear();
            for &c in &self.query.group_by {
                self.key_scratch.push(
                    values
                        .get(c)
                        .ok_or(ModelError::ColumnOutOfRange {
                            column: c,
                            arity: values.len(),
                        })?
                        .clone(),
                );
            }
        }
        let key: &[Value] = if use_prefix {
            &values[..k]
        } else {
            &self.key_scratch
        };
        let hash = prehashed.unwrap_or_else(|| hash_values(Seed::Table, key));
        debug_assert_eq!(hash, hash_values(Seed::Table, key), "stale precomputed hash");

        let (slot, found, examined) = self.find(hash, key);
        self.probe_slots += examined;
        if let Some(entry) = found {
            match kind {
                RowKind::Raw => {
                    self.states[entry].update_from_tuple(&self.query.aggs, values)?
                }
                RowKind::Partial => self.states[entry].merge_partial_values(&values[k..])?,
            }
            self.updates += 1;
            return Ok((Inserted::Updated, entry));
        }
        if self.keys.len() >= self.effective_max() {
            return Ok((Inserted::Full, usize::MAX));
        }
        let mut states = AggStates::new(&self.query.aggs);
        match kind {
            RowKind::Raw => states.update_from_tuple(&self.query.aggs, values)?,
            RowKind::Partial => states.merge_partial_values(&values[k..])?,
        }
        let key_vec = if use_prefix {
            values[..k].to_vec()
        } else {
            self.key_scratch.clone()
        };
        let entry = u32::try_from(self.keys.len()).expect("table exceeds u32 entries");
        self.keys.push(GroupKey::new(key_vec));
        self.hashes.push(hash);
        self.states.push(states);
        self.slots[slot] = entry;
        self.inserts += 1;
        if (self.keys.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        Ok((Inserted::New, entry as usize))
    }

    /// Linear-probe for `key`: the matching entry index (or the vacant
    /// slot where it would go) plus the number of slots examined.
    #[inline]
    fn find(&self, hash: u64, key: &[Value]) -> (usize, Option<usize>, u64) {
        let mut i = (hash as usize) & self.mask;
        let mut examined = 1u64;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return (i, None, examined);
            }
            let e = s as usize;
            if self.hashes[e] == hash && self.keys[e].values() == key {
                return (i, Some(e), examined);
            }
            i = (i + 1) & self.mask;
            examined += 1;
        }
    }

    /// Double the slot array and re-seat every entry from its stored
    /// hash (keys are not re-hashed and never move).
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(new_len, EMPTY);
        self.mask = new_len - 1;
        for (entry, &hash) in self.hashes.iter().enumerate() {
            let mut i = (hash as usize) & self.mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = entry as u32;
        }
    }

    /// Whether a raw tuple's group is already resident (A2P forwarding
    /// checks, Graefe's optimized 2P).
    pub fn contains_key_of(&self, values: &[Value]) -> Result<bool, ModelError> {
        let k = self.key_len;
        if self.key_is_prefix {
            if values.len() < k {
                return Err(ModelError::ColumnOutOfRange {
                    column: values.len(),
                    arity: values.len(),
                });
            }
            let key = &values[..k];
            let hash = hash_values(Seed::Table, key);
            Ok(self.find(hash, key).1.is_some())
        } else {
            let key = self.query.key_of_values(values)?;
            let hash = hash_values(Seed::Table, key.values());
            Ok(self.find(hash, key.values()).1.is_some())
        }
        // Read-only lookups intentionally leave `probe_slots` untouched:
        // it measures insert-path collision chains only.
    }

    /// Reset the probe array and entry columns (post-drain).
    fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = EMPTY);
        self.hashes.clear();
        self.keys.clear();
        self.states.clear();
        self.stamps.clear();
    }

    /// Drain the table as **partial rows** (key columns ++ partial-state
    /// columns) in insertion order, charging `t_w` per row. Used by local
    /// phases to ship their results and by A2P's overflow flush.
    pub fn drain_partial_rows<T: CostTracker>(&mut self, tracker: &mut T) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(self.keys.len());
        for (key, states) in self.keys.drain(..).zip(self.states.drain(..)) {
            let mut row = key.into_values();
            row.extend(states.to_partial_values());
            out.push(row);
        }
        self.reset();
        tracker.record(CostEvent::TupleWrite, out.len() as u64);
        out
    }

    /// Drain the table as **finalized result rows** in insertion order,
    /// charging `t_w` per row. Used by merge phases and single-phase
    /// aggregation.
    pub fn drain_result_rows<T: CostTracker>(&mut self, tracker: &mut T) -> Vec<ResultRow> {
        let mut out = Vec::with_capacity(self.keys.len());
        for (key, states) in self.keys.drain(..).zip(self.states.drain(..)) {
            out.push(ResultRow::new(key, states.finalize()));
        }
        self.reset();
        tracker.record(CostEvent::TupleWrite, out.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec, CountingTracker, NullTracker};

    fn query() -> AggQuery {
        // Projected form: col0 = group, col1 = value.
        AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)])
    }

    fn raw(g: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(g), Value::Int(v)]
    }

    #[test]
    fn builds_groups_and_updates() {
        let mut t = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        assert_eq!(t.insert_raw(&raw(1, 10), &mut tr).unwrap(), Inserted::New);
        assert_eq!(t.insert_raw(&raw(1, 5), &mut tr).unwrap(), Inserted::Updated);
        assert_eq!(t.insert_raw(&raw(2, 1), &mut tr).unwrap(), Inserted::New);
        assert_eq!(t.len(), 2);

        let mut rows = t.drain_result_rows(&mut tr);
        adaptagg_model::query::sort_rows(&mut rows);
        assert_eq!(rows[0].key.values(), &[Value::Int(1)]);
        assert_eq!(rows[0].aggs, vec![Value::Int(15)]);
        assert_eq!(rows[1].aggs, vec![Value::Int(1)]);
        assert!(t.is_empty(), "drain empties the table");
    }

    #[test]
    fn capacity_rejects_new_groups_but_updates_resident_ones() {
        let mut t = AggTable::new(query(), 2);
        let mut tr = NullTracker;
        t.insert_raw(&raw(1, 1), &mut tr).unwrap();
        t.insert_raw(&raw(2, 1), &mut tr).unwrap();
        assert!(t.is_full());
        // New group: rejected, not stored.
        assert_eq!(t.insert_raw(&raw(3, 1), &mut tr).unwrap(), Inserted::Full);
        assert_eq!(t.len(), 2);
        // Resident group: still updates in place.
        assert_eq!(t.insert_raw(&raw(1, 9), &mut tr).unwrap(), Inserted::Updated);
    }

    #[test]
    fn partial_rows_merge_with_raw_rows() {
        // §3.2's requirement: raw and partial interleaved in one table.
        let mut t = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        t.insert_raw(&raw(1, 10), &mut tr).unwrap();
        // Partial row for group 1 carrying SUM partial = 32.
        t.insert_partial(&[Value::Int(1), Value::Int(32)], &mut tr).unwrap();
        // Partial row for a brand-new group 2.
        t.insert_partial(&[Value::Int(2), Value::Int(7)], &mut tr).unwrap();
        t.insert_raw(&raw(2, 3), &mut tr).unwrap();

        let mut rows = t.drain_result_rows(&mut tr);
        adaptagg_model::query::sort_rows(&mut rows);
        assert_eq!(rows[0].aggs, vec![Value::Int(42)]);
        assert_eq!(rows[1].aggs, vec![Value::Int(10)]);
    }

    #[test]
    fn partial_arity_mismatch_is_error() {
        let mut t = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        assert!(t
            .insert_partial(&[Value::Int(1)], &mut tr)
            .is_err());
    }

    #[test]
    fn cost_charges_match_paper_formula() {
        // Local aggregation: |R| * (t_r + t_h + t_a); result gen: |G| * t_w.
        let mut t = AggTable::new(query(), 100);
        let mut tr = CountingTracker::new();
        for i in 0..50 {
            t.insert_raw(&raw(i % 5, i), &mut tr).unwrap();
        }
        assert_eq!(tr.count(CostEvent::TupleRead), 50);
        assert_eq!(tr.count(CostEvent::TupleHash), 50);
        assert_eq!(tr.count(CostEvent::TupleAgg), 50);
        assert_eq!(tr.count(CostEvent::TupleWrite), 0);
        let rows = t.drain_result_rows(&mut tr);
        assert_eq!(rows.len(), 5);
        assert_eq!(tr.count(CostEvent::TupleWrite), 5);
    }

    #[test]
    fn charge_hash_false_skips_t_h() {
        // Merge phases receive pre-partitioned rows: §2.2 charges them
        // t_r + t_a only.
        let mut t = AggTable::new(query(), 100).with_charge_hash(false);
        let mut tr = CountingTracker::new();
        t.insert_raw(&raw(1, 1), &mut tr).unwrap();
        t.insert_partial(&[Value::Int(2), Value::Int(5)], &mut tr).unwrap();
        assert_eq!(tr.count(CostEvent::TupleHash), 0);
        assert_eq!(tr.count(CostEvent::TupleRead), 2);
        assert_eq!(tr.count(CostEvent::TupleAgg), 2);
    }

    #[test]
    fn rejected_insert_charges_no_agg() {
        let mut t = AggTable::new(query(), 1);
        let mut tr = CountingTracker::new();
        t.insert_raw(&raw(1, 1), &mut tr).unwrap();
        let agg_before = tr.count(CostEvent::TupleAgg);
        t.insert_raw(&raw(2, 1), &mut tr).unwrap(); // Full
        assert_eq!(tr.count(CostEvent::TupleAgg), agg_before);
        assert_eq!(tr.count(CostEvent::TupleHash), 2);
    }

    #[test]
    fn duplicate_elimination_table() {
        let q = AggQuery::distinct(vec![0]);
        let mut t = AggTable::new(q, 10);
        let mut tr = NullTracker;
        for g in [1, 2, 1, 3, 2, 1] {
            t.insert_raw(&[Value::Int(g)], &mut tr).unwrap();
        }
        assert_eq!(t.len(), 3);
        let rows = t.drain_result_rows(&mut tr);
        assert!(rows.iter().all(|r| r.aggs.is_empty()));
    }

    #[test]
    fn drain_partial_rows_round_trip_through_second_table() {
        let mut t1 = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        t1.insert_raw(&raw(1, 10), &mut tr).unwrap();
        t1.insert_raw(&raw(1, 20), &mut tr).unwrap();
        t1.insert_raw(&raw(2, 5), &mut tr).unwrap();

        let partials = t1.drain_partial_rows(&mut tr);
        assert_eq!(partials.len(), 2);
        let mut t2 = AggTable::new(query(), 10);
        for p in &partials {
            t2.insert_partial(p, &mut tr).unwrap();
        }
        let mut rows = t2.drain_result_rows(&mut tr);
        adaptagg_model::query::sort_rows(&mut rows);
        assert_eq!(rows[0].aggs, vec![Value::Int(30)]);
        assert_eq!(rows[1].aggs, vec![Value::Int(5)]);
    }

    #[test]
    fn contains_key_of_sees_resident_groups() {
        let mut t = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        t.insert_raw(&raw(7, 1), &mut tr).unwrap();
        assert!(t.contains_key_of(&raw(7, 99)).unwrap());
        assert!(!t.contains_key_of(&raw(8, 0)).unwrap());
    }

    #[test]
    fn accepted_counts_updates_and_inserts() {
        let mut t = AggTable::new(query(), 1);
        let mut tr = NullTracker;
        t.insert_raw(&raw(1, 1), &mut tr).unwrap();
        t.insert_raw(&raw(1, 2), &mut tr).unwrap();
        t.insert_raw(&raw(2, 3), &mut tr).unwrap(); // Full → not accepted
        assert_eq!(t.accepted(), 2);
    }

    #[test]
    fn prehashed_insert_matches_plain_insert() {
        let mut a = AggTable::new(query(), 10);
        let mut b = AggTable::new(query(), 10);
        let mut ta = CountingTracker::new();
        let mut tb = CountingTracker::new();
        for i in 0..40i64 {
            let row = raw(i % 7, i);
            let ra = a.insert_raw(&row, &mut ta).unwrap();
            let hash = hash_values(Seed::Table, &row[..1]);
            let rb = b.insert_raw_prehashed(&row, hash, &mut tb).unwrap();
            assert_eq!(ra, rb);
        }
        assert_eq!(ta, tb, "prehashed path charges identical costs");
        let mut ra = a.drain_result_rows(&mut ta);
        let mut rb = b.drain_result_rows(&mut tb);
        adaptagg_model::query::sort_rows(&mut ra);
        adaptagg_model::query::sort_rows(&mut rb);
        assert_eq!(ra, rb);
    }

    /// Run the same pages through `insert_page` and `insert_page_batched`
    /// on twin tables and assert identical costs, counters, spooled rows
    /// and drained results.
    fn assert_batched_matches_row(
        query: AggQuery,
        max_entries: usize,
        kind: RowKind,
        pages: &[Page],
    ) {
        let mut a = AggTable::new(query.clone(), max_entries);
        let mut b = AggTable::new(query, max_entries);
        let mut ta = CountingTracker::new();
        let mut tb = CountingTracker::new();
        let mut spill_a: Vec<Vec<Value>> = Vec::new();
        let mut spill_b: Vec<Vec<Value>> = Vec::new();
        for page in pages {
            let ra = a
                .insert_page(kind, page, &mut ta, |tr, _, row| {
                    tr.record(CostEvent::TupleWrite, 1);
                    spill_a.push(row.to_vec());
                    Ok(())
                })
                .unwrap();
            let rb = b
                .insert_page_batched(kind, page, &mut tb, |tr, _, row| {
                    tr.record(CostEvent::TupleWrite, 1);
                    spill_b.push(row.to_vec());
                    Ok(())
                })
                .unwrap();
            assert_eq!(ra, rb, "rejected counts diverge");
        }
        assert_eq!(ta, tb, "cost charges diverge");
        assert_eq!(spill_a, spill_b, "spooled rows diverge");
        assert_eq!(a.probe_slots(), b.probe_slots(), "probe counters diverge");
        assert_eq!(a.accepted(), b.accepted());
        let ra = a.drain_result_rows(&mut ta);
        let rb = b.drain_result_rows(&mut tb);
        assert_eq!(ra, rb, "drained rows diverge (order included)");
    }

    fn page_of(rows: &[Vec<Value>]) -> Page {
        let mut p = Page::new(1 << 16);
        for row in rows {
            assert!(p.try_push(row).unwrap());
        }
        p
    }

    #[test]
    fn batched_fast_path_matches_row_path() {
        // All-Int page: key strip and input strip both fixed-width.
        let rows: Vec<Vec<Value>> = (0..200).map(|i| raw(i % 23, i)).collect();
        assert_batched_matches_row(query(), 100, RowKind::Raw, &[page_of(&rows)]);
    }

    #[test]
    fn batched_overflow_matches_row_path() {
        // Budget of 8 groups over 23 distinct keys: rejects interleave
        // with accepts, exercising the pending-run flush and the spool.
        let rows: Vec<Vec<Value>> = (0..300).map(|i| raw((i * 7) % 23, i)).collect();
        assert_batched_matches_row(query(), 8, RowKind::Raw, &[page_of(&rows)]);
    }

    #[test]
    fn batched_value_keys_match_row_path() {
        // Str keys promote the key strip to general values: the probe
        // compares against a Values strip, the input stays Int.
        let rows: Vec<Vec<Value>> = (0..120)
            .map(|i| vec![Value::Str(format!("g{}", i % 11).into()), Value::Int(i)])
            .collect();
        assert_batched_matches_row(query(), 100, RowKind::Raw, &[page_of(&rows)]);
    }

    #[test]
    fn batched_non_int_inputs_take_row_arm() {
        // Float inputs: vectorized hash + per-row updates (slow arm).
        let rows: Vec<Vec<Value>> = (0..120)
            .map(|i| vec![Value::Int(i % 7), Value::Float(i as f64 / 2.0)])
            .collect();
        assert_batched_matches_row(query(), 100, RowKind::Raw, &[page_of(&rows)]);
        // Nulls sprinkled in promote the input strip too (NULL-skipping
        // SUM semantics must survive batching).
        let rows: Vec<Vec<Value>> = (0..120)
            .map(|i| {
                let v = if i % 5 == 0 { Value::Null } else { Value::Int(i) };
                vec![Value::Int(i % 7), v]
            })
            .collect();
        assert_batched_matches_row(query(), 100, RowKind::Raw, &[page_of(&rows)]);
    }

    #[test]
    fn batched_partial_pages_match_row_path() {
        let rows: Vec<Vec<Value>> = (0..90)
            .map(|i| vec![Value::Int(i % 13), Value::Int(i * 10)])
            .collect();
        assert_batched_matches_row(query(), 100, RowKind::Partial, &[page_of(&rows)]);
    }

    #[test]
    fn batched_multi_function_page_matches_row_path() {
        let q = AggQuery::new(
            vec![0],
            vec![
                AggSpec::count_star(),
                AggSpec::over(AggFunc::Sum, 1),
                AggSpec::over(AggFunc::Avg, 2),
                AggSpec::over(AggFunc::Min, 1),
                AggSpec::over(AggFunc::Max, 2),
                AggSpec::over(AggFunc::VarPop, 1),
            ],
        );
        let rows: Vec<Vec<Value>> = (0..150)
            .map(|i| vec![Value::Int(i % 17), Value::Int(i * 3 - 40), Value::Int(-i)])
            .collect();
        assert_batched_matches_row(q, 100, RowKind::Raw, &[page_of(&rows)]);
    }

    #[test]
    fn batched_ragged_page_falls_back_to_row_path() {
        // Mixed arities defeat the strip layout; the batched entry point
        // must route to insert_page and match it exactly (here: the
        // 1-column rows hit COUNT(*) + SUM over a missing column → the
        // same ColumnOutOfRange error as the row path).
        let mut p = Page::new(1 << 16);
        assert!(p.try_push(&raw(1, 10)).unwrap());
        assert!(p.try_push(&[Value::Int(2)]).unwrap());
        let mut a = AggTable::new(query(), 10);
        let mut b = AggTable::new(query(), 10);
        let mut ta = CountingTracker::new();
        let mut tb = CountingTracker::new();
        let ra = a.insert_page(RowKind::Raw, &p, &mut ta, |_, _, _| Ok(()));
        let rb = b.insert_page_batched(RowKind::Raw, &p, &mut tb, |_, _, _| Ok(()));
        assert!(ra.is_err() && rb.is_err(), "both paths surface the error");
        assert_eq!(ta, tb, "error-path charges match");
    }

    #[test]
    fn batched_steady_state_reuses_scratch_across_pages() {
        // Same page twice: the second pass is all resident-group updates
        // and must not regrow the pooled hash/group-index vectors.
        let rows: Vec<Vec<Value>> = (0..100).map(|i| raw(i % 11, i)).collect();
        let p = page_of(&rows);
        let mut t = AggTable::new(query(), 100);
        let mut tr = NullTracker;
        t.insert_page_batched(RowKind::Raw, &p, &mut tr, |_, _, _| Ok(()))
            .unwrap();
        let cap_h = t.batch_hashes.capacity();
        let cap_g = t.batch_gix.capacity();
        t.insert_page_batched(RowKind::Raw, &p, &mut tr, |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(t.batch_hashes.capacity(), cap_h);
        assert_eq!(t.batch_gix.capacity(), cap_g);
        assert_eq!(t.len(), 11);
    }

    #[test]
    fn grows_past_presize_without_losing_entries() {
        // Budget far past the pre-size cap forces slot-array growth.
        let mut t = AggTable::new(query(), usize::MAX);
        let mut tr = NullTracker;
        let n = (super::PRESIZE_CAP * 2) as i64;
        for g in 0..n {
            assert_eq!(t.insert_raw(&raw(g, 1), &mut tr).unwrap(), Inserted::New);
        }
        assert_eq!(t.len(), n as usize);
        for g in 0..n {
            assert!(t.contains_key_of(&raw(g, 0)).unwrap(), "group {g} lost in growth");
        }
    }

    #[test]
    fn non_prefix_group_by_still_works() {
        // group_by = [1]: key is not a leading prefix → gather path.
        let q = AggQuery::new(vec![1], vec![AggSpec::over(AggFunc::Sum, 0)]);
        let mut t = AggTable::new(q, 10);
        let mut tr = NullTracker;
        t.insert_raw(&[Value::Int(100), Value::Int(7)], &mut tr).unwrap();
        t.insert_raw(&[Value::Int(11), Value::Int(7)], &mut tr).unwrap();
        t.insert_raw(&[Value::Int(1), Value::Int(8)], &mut tr).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.contains_key_of(&[Value::Int(0), Value::Int(7)]).unwrap());
        let mut rows = t.drain_result_rows(&mut tr);
        adaptagg_model::query::sort_rows(&mut rows);
        assert_eq!(rows[0].key.values(), &[Value::Int(7)]);
        assert_eq!(rows[0].aggs, vec![Value::Int(111)]);
    }

    #[test]
    fn drain_is_insertion_ordered() {
        let mut t = AggTable::new(query(), 10);
        let mut tr = NullTracker;
        for g in [5i64, 3, 9, 1] {
            t.insert_raw(&raw(g, 1), &mut tr).unwrap();
        }
        t.insert_raw(&raw(3, 1), &mut tr).unwrap(); // update: order unchanged
        let rows = t.drain_partial_rows(&mut tr);
        let keys: Vec<i64> = rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(g) => g,
                _ => panic!("int key"),
            })
            .collect();
        assert_eq!(keys, vec![5, 3, 9, 1]);
    }

    #[test]
    fn live_grant_shrink_rejects_new_groups_mid_stream() {
        let grant = MemoryGrant::bounded(100);
        let mut t = AggTable::new(query(), 10).with_grant(grant.clone());
        let mut tr = NullTracker;
        for g in 0..4i64 {
            assert_eq!(t.insert_raw(&raw(g, 1), &mut tr).unwrap(), Inserted::New);
        }
        assert!(!t.is_full());
        grant.set(2); // broker revokes below the resident count
        assert!(t.is_full());
        // New groups bounce; resident groups still update (no eviction,
        // no wrong answer).
        assert_eq!(t.insert_raw(&raw(9, 1), &mut tr).unwrap(), Inserted::Full);
        assert_eq!(t.insert_raw(&raw(0, 5), &mut tr).unwrap(), Inserted::Updated);
        assert_eq!(t.len(), 4);
        grant.set(100); // regrant reopens admission
        assert!(!t.is_full());
        assert_eq!(t.insert_raw(&raw(9, 1), &mut tr).unwrap(), Inserted::New);
    }

    #[test]
    fn stamped_inserts_remember_first_logical_touch() {
        let mut t = AggTable::new(query(), 10);
        // Physical arrival order deliberately scrambled vs the stamps.
        t.insert_stamped(RowKind::Raw, &raw(5, 1), None, 30).unwrap();
        t.insert_stamped(RowKind::Raw, &raw(1, 1), None, 10).unwrap();
        t.insert_stamped(RowKind::Raw, &raw(5, 2), None, 0).unwrap(); // earlier touch of 5
        t.insert_stamped(RowKind::Raw, &raw(9, 1), None, 20).unwrap();
        let mut drained = t.drain_stamped();
        drained.sort_unstable_by_key(|(s, _)| *s);
        let keys: Vec<i64> = drained
            .iter()
            .map(|(_, r)| match r[0] {
                Value::Int(g) => g,
                _ => panic!("int key"),
            })
            .collect();
        // Stamp order = logical order: 5 (min stamp 0), 1, 9.
        assert_eq!(keys, vec![5, 1, 9]);
        assert_eq!(drained[0].1, vec![Value::Int(5), Value::Int(3)]);
        assert!(t.is_empty());
    }

    #[test]
    fn table_is_reusable_after_drain() {
        let mut t = AggTable::new(query(), 4);
        let mut tr = NullTracker;
        for g in 0..4i64 {
            t.insert_raw(&raw(g, 1), &mut tr).unwrap();
        }
        assert!(t.is_full());
        t.drain_partial_rows(&mut tr);
        assert!(t.is_empty() && !t.is_full());
        assert_eq!(t.insert_raw(&raw(9, 2), &mut tr).unwrap(), Inserted::New);
        assert!(t.contains_key_of(&raw(9, 0)).unwrap());
        assert!(!t.contains_key_of(&raw(0, 0)).unwrap(), "drained groups are gone");
    }
}
