//! Intra-node parallel aggregation: the shared table-strategy engine.
//!
//! A node's scan is split into fixed-size **morsels** consumed by a
//! worker pool (the driver lives in `adaptagg-algos`); every worker
//! feeds rows into one [`ParTables`], which routes them into one of
//! three physical table modes:
//!
//! * **Shared** — one logical global table striped into
//!   [`STRIPES`] lock-guarded sub-tables keyed by the high bits of the
//!   group hash (fine-grained locking on a contended shared table);
//! * **ThreadLocal** — one private table per worker, merged at drain
//!   (zero synchronization, duplicated groups across workers);
//! * **Partitioned** — workers scatter rows into per-(worker,
//!   partition) byte buffers by group hash; after the scan a second
//!   phase aggregates each partition into its own exclusively-owned
//!   table (no locks on the hot path, no duplication).
//!
//! An adaptive **picker** observes the distinct-rate (new groups per
//! row) over the first morsels and picks the mode the way A-2P picks
//! its inter-node strategy; it can switch again mid-scan on rising
//! cardinality or memory pressure. Switching never migrates data: rows
//! before the switch stay where they landed, and the drain unifies all
//! structures.
//!
//! # The logical-order contract
//!
//! The virtual cost model must stay **bit-identical** to the
//! single-threaded execution no matter how threads interleave. Two
//! mechanisms deliver that:
//!
//! 1. Every row carries a **stamp** — its position in the logical
//!    (serial) scan order. Inserts are cost-free
//!    ([`AggTable::insert_stamped`]); each entry remembers the minimum
//!    stamp that touched it, i.e. the stamp of the group's logically
//!    first row. [`ParTables::finish`] drains every structure, sorts by
//!    stamp, and re-merges into one table — reproducing the exact
//!    serial insertion order (and therefore the serial drain order)
//!    regardless of physical interleaving. Integer aggregate states
//!    merge associatively, so the values are exact; rows containing
//!    floats abort to the serial path instead (float addition is
//!    order-sensitive).
//! 2. Cost charging is deferred: the driver journals each morsel's
//!    pass/fail pattern and, on commit, replays the charges in morsel
//!    order on the node's clock — the same event sequence the serial
//!    scan would have recorded.
//!
//! # Budget and abort
//!
//! The memory broker's grant caps the **sum** of all structures'
//! resident entries (`admitted`), re-read from the live grant at every
//! admission, so serving degradation semantics are unchanged. Whenever
//! that budget would be exceeded — or a float value or any error shows
//! up — the engine aborts: nothing was charged, so the driver simply
//! runs the unchanged serial path (which spills, errors, or switches
//! exactly as it always did). Parallelism is an optimistic fast path;
//! the serial path remains the single source of truth.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};

use adaptagg_model::encode::{decode_tuple_into, encode_tuple};
use adaptagg_model::hash::hash_values;
use adaptagg_model::{AggQuery, MemoryGrant, NullTracker, RowKind, Seed, Value};
use parking_lot::Mutex;

use crate::table::{AggTable, Inserted};

/// Stripe count of the shared global table (power of two).
pub const STRIPES: usize = 64;
/// Partition count of the partitioned mode (power of two).
pub const PARTITIONS: usize = 32;
/// Rows the picker observes before deciding.
pub const OBSERVE_ROWS: u64 = 2048;
/// Distinct-rate at or below which thread-local tables win (duplication
/// is bounded by `threads × groups`, both small).
pub const LOW_RATE: f64 = 0.05;
/// Distinct-rate at or above which partitioning wins (most rows create
/// groups; locks and duplication both hurt).
pub const HIGH_RATE: f64 = 0.25;

/// One of the three physical table modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraStrategy {
    /// Per-worker private tables merged at drain.
    ThreadLocal,
    /// One striped, lock-guarded global table.
    Shared,
    /// Hash-partitioned scatter + per-partition exclusive aggregation.
    Partitioned,
}

impl IntraStrategy {
    /// Stable lowercase name (trace events, bench columns, env knob).
    pub fn name(&self) -> &'static str {
        match self {
            IntraStrategy::ThreadLocal => "thread-local",
            IntraStrategy::Shared => "shared",
            IntraStrategy::Partitioned => "partitioned",
        }
    }

    /// Parse the `ADAPTAGG_INTRA` / bench column spelling.
    pub fn parse(s: &str) -> Option<IntraStrategy> {
        match s {
            "thread-local" | "local" => Some(IntraStrategy::ThreadLocal),
            "shared" => Some(IntraStrategy::Shared),
            "partitioned" | "partition" => Some(IntraStrategy::Partitioned),
            _ => None,
        }
    }
}

/// How the strategy is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraMode {
    /// Observe the distinct-rate, then pick (and keep watching).
    Adaptive,
    /// Pin one strategy for the whole scan (bench columns, tests).
    Fixed(IntraStrategy),
}

impl IntraMode {
    /// Resolve the `ADAPTAGG_INTRA` environment knob (`adaptive`,
    /// `shared`, `local`, `partitioned`); unset or unknown = adaptive.
    pub fn from_env() -> IntraMode {
        match std::env::var("ADAPTAGG_INTRA") {
            Ok(v) => match IntraStrategy::parse(&v) {
                Some(s) => IntraMode::Fixed(s),
                None => IntraMode::Adaptive,
            },
            Err(_) => IntraMode::Adaptive,
        }
    }
}

/// Why the picker switched strategies mid-scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraCause {
    /// The observed distinct-rate rose past [`HIGH_RATE`] after the pick.
    HighDistinctRate,
    /// Summed table entries approached the budget (thread-local
    /// duplication); the shared table deduplicates globally.
    MemoryPressure,
}

impl IntraCause {
    /// Stable kebab-case name for trace events.
    pub fn name(&self) -> &'static str {
        match self {
            IntraCause::HighDistinctRate => "high-distinct-rate",
            IntraCause::MemoryPressure => "memory-pressure",
        }
    }
}

/// A picker decision, reported to the driver for tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraEvent {
    /// The initial pick after the observation window.
    Pick {
        /// The chosen mode.
        strategy: IntraStrategy,
        /// Morsel offset at which the decision landed.
        at_morsel: u64,
    },
    /// A mid-scan strategy change.
    Switch {
        /// Mode rows were routed to before.
        from: IntraStrategy,
        /// Mode rows route to now.
        to: IntraStrategy,
        /// What forced the change.
        cause: IntraCause,
        /// Morsel offset at which the change landed.
        at_morsel: u64,
    },
}

/// Routing states packed into an `AtomicU8`. `OBSERVE` routes like
/// thread-local while the picker is still measuring.
const ROUTE_OBSERVE: u8 = 0;
const ROUTE_LOCAL: u8 = 1;
const ROUTE_SHARED: u8 = 2;
const ROUTE_PARTITIONED: u8 = 3;

fn route_strategy(route: u8) -> IntraStrategy {
    match route {
        ROUTE_SHARED => IntraStrategy::Shared,
        ROUTE_PARTITIONED => IntraStrategy::Partitioned,
        _ => IntraStrategy::ThreadLocal,
    }
}

/// Per-(worker, partition) scatter buffer: `[stamp u64][kind u8][tuple]`
/// records, appended lock-free from the owning worker's perspective (its
/// mutex is uncontended during the scan) and drained by the partition's
/// exclusive owner after the scan barrier.
#[derive(Default)]
struct ScatterBuf {
    bytes: Vec<u8>,
    rows: usize,
}

impl ScatterBuf {
    fn push(&mut self, stamp: u64, kind: RowKind, values: &[Value]) {
        self.bytes.extend_from_slice(&stamp.to_le_bytes());
        self.bytes.push(match kind {
            RowKind::Raw => 0,
            RowKind::Partial => 1,
        });
        encode_tuple(values, &mut self.bytes);
        self.rows += 1;
    }
}

/// The picker's bookkeeping, guarded by one mutex (touched once per
/// morsel, not per row).
struct Picker {
    decided: bool,
    /// Rows/new-groups in the current observation window.
    window_rows: u64,
    window_news: u64,
    events: Vec<IntraEvent>,
}

/// The shared strategy layer all workers of one node feed.
pub struct ParTables {
    query: AggQuery,
    key_len: usize,
    budget: usize,
    grant: MemoryGrant,
    /// Current routing mode (one relaxed load per row).
    route: AtomicU8,
    aborted: AtomicBool,
    /// Entries resident across **all** structures — the quantity the
    /// memory grant caps.
    admitted: AtomicUsize,
    /// Partition-phase work queue.
    part_cursor: AtomicUsize,
    raw_rows: AtomicUsize,
    partial_rows: AtomicUsize,
    locals: Vec<Mutex<AggTable>>,
    stripes: Vec<Mutex<AggTable>>,
    scatter: Vec<Vec<Mutex<ScatterBuf>>>,
    partitions: Vec<Mutex<AggTable>>,
    picker: Mutex<Picker>,
}

/// What a committed parallel aggregation hands back to the driver.
pub struct ParOutcome {
    /// All groups, merged in exact logical (serial) insertion order;
    /// drain it with the real cost tracker to charge the serial `t_w`s.
    pub table: AggTable,
    /// Raw rows inserted.
    pub raw_in: u64,
    /// Partial rows inserted.
    pub partial_in: u64,
    /// Picker decisions, in order.
    pub events: Vec<IntraEvent>,
    /// The mode rows were routed to when the scan ended.
    pub strategy: IntraStrategy,
}

impl ParTables {
    /// A strategy layer for `threads` workers over `query` (projected
    /// form). Returns `None` when the query's key is not a column
    /// prefix — the engine's in-place hashing requires projected form,
    /// and every planner-produced query has it.
    pub fn new(
        query: AggQuery,
        max_entries: usize,
        grant: MemoryGrant,
        threads: usize,
        mode: IntraMode,
    ) -> Option<ParTables> {
        if threads < 2 {
            return None;
        }
        let key_is_prefix = query.group_by.iter().enumerate().all(|(i, &c)| c == i);
        if !key_is_prefix {
            return None;
        }
        let key_len = query.group_by.len();
        let small = |q: &AggQuery| AggTable::new_with_hint(q.clone(), usize::MAX, 64);
        let locals = (0..threads).map(|_| Mutex::new(small(&query))).collect();
        let stripes = (0..STRIPES).map(|_| Mutex::new(small(&query))).collect();
        let partitions = (0..PARTITIONS).map(|_| Mutex::new(small(&query))).collect();
        let scatter = (0..threads)
            .map(|_| (0..PARTITIONS).map(|_| Mutex::new(ScatterBuf::default())).collect())
            .collect();
        let (route, picker) = match mode {
            IntraMode::Adaptive => (
                ROUTE_OBSERVE,
                Picker {
                    decided: false,
                    window_rows: 0,
                    window_news: 0,
                    events: Vec::new(),
                },
            ),
            IntraMode::Fixed(s) => (
                match s {
                    IntraStrategy::ThreadLocal => ROUTE_LOCAL,
                    IntraStrategy::Shared => ROUTE_SHARED,
                    IntraStrategy::Partitioned => ROUTE_PARTITIONED,
                },
                Picker {
                    decided: true,
                    window_rows: 0,
                    window_news: 0,
                    events: vec![IntraEvent::Pick {
                        strategy: s,
                        at_morsel: 0,
                    }],
                },
            ),
        };
        Some(ParTables {
            query,
            key_len,
            budget: max_entries,
            grant,
            route: AtomicU8::new(route),
            aborted: AtomicBool::new(false),
            admitted: AtomicUsize::new(0),
            part_cursor: AtomicUsize::new(0),
            raw_rows: AtomicUsize::new(0),
            partial_rows: AtomicUsize::new(0),
            locals,
            stripes,
            scatter,
            partitions,
            picker: Mutex::new(picker),
        })
    }

    /// Whether the engine gave up (budget, float, or error). Workers
    /// poll this between rows and bail out early.
    pub fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Give up on the parallel attempt (drivers call this on any scan
    /// error so sibling workers stop promptly; nothing was charged, the
    /// serial rerun surfaces the error bit-identically).
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
    }

    /// Account one freshly created entry against the live grant; aborts
    /// (and reports failure) when the summed resident entries would
    /// exceed it.
    fn admit_new(&self) -> bool {
        let n = self.admitted.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.grant.cap(self.budget) {
            self.abort();
            return false;
        }
        true
    }

    /// Insert one row from `worker` with its logical `stamp`. Returns
    /// `Some(is_new_group)` on success, `None` when the engine aborted —
    /// the worker must stop and the driver falls back to the serial
    /// path (nothing has been charged).
    pub fn insert(
        &self,
        worker: usize,
        kind: RowKind,
        values: &[Value],
        stamp: u64,
    ) -> Option<bool> {
        self.insert_inner(worker, kind, values, stamp, None)
    }

    /// [`ParTables::insert`] with the key's [`Seed::Table`] hash already
    /// computed (the driver batch-hashes whole key strips per page).
    /// Routing and results are identical — the hash feeds the same
    /// stripe/partition selection and table probe.
    pub fn insert_prehashed(
        &self,
        worker: usize,
        kind: RowKind,
        values: &[Value],
        stamp: u64,
        hash: u64,
    ) -> Option<bool> {
        self.insert_inner(worker, kind, values, stamp, Some(hash))
    }

    fn insert_inner(
        &self,
        worker: usize,
        kind: RowKind,
        values: &[Value],
        stamp: u64,
        prehashed: Option<u64>,
    ) -> Option<bool> {
        if self.aborted() {
            return None;
        }
        // Float accumulation is order-sensitive; the serial path is the
        // only bit-exact order.
        if values.iter().any(|v| matches!(v, Value::Float(_))) {
            self.abort();
            return None;
        }
        match kind {
            RowKind::Raw => self.raw_rows.fetch_add(1, Ordering::Relaxed),
            RowKind::Partial => self.partial_rows.fetch_add(1, Ordering::Relaxed),
        };
        let key_hash = |values: &[Value]| {
            prehashed
                .unwrap_or_else(|| hash_values(Seed::Table, &values[..self.key_len.min(values.len())]))
        };
        let route = self.route.load(Ordering::Relaxed);
        let outcome = match route {
            ROUTE_SHARED => {
                let hash = key_hash(values);
                let stripe = (hash >> 58) as usize & (STRIPES - 1);
                self.stripes[stripe]
                    .lock()
                    .insert_stamped(kind, values, Some(hash), stamp)
            }
            ROUTE_PARTITIONED => {
                let hash = key_hash(values);
                let p = (hash >> 59) as usize & (PARTITIONS - 1);
                self.scatter[worker][p].lock().push(stamp, kind, values);
                // Group creation is discovered in the partition phase.
                return Some(false);
            }
            _ => self.locals[worker].lock().insert_stamped(kind, values, prehashed, stamp),
        };
        match outcome {
            Ok(Inserted::New) => {
                if !self.admit_new() {
                    return None;
                }
                Some(true)
            }
            Ok(Inserted::Updated) => Some(false),
            // Structure tables are uncapped; Full cannot happen.
            Ok(Inserted::Full) | Err(_) => {
                self.abort();
                None
            }
        }
    }

    /// Report a finished morsel's row/new-group counts to the picker.
    pub fn report_morsel(&self, morsel: u64, rows: u64, news: u64) {
        if rows == 0 {
            return;
        }
        let mut p = self.picker.lock();
        p.window_rows += rows;
        p.window_news += news;
        if p.window_rows < OBSERVE_ROWS {
            // Below the window even the memory-pressure rule waits: too
            // little signal.
            return;
        }
        let rate = p.window_news as f64 / p.window_rows as f64;
        let current = self.route.load(Ordering::Relaxed);
        if !p.decided {
            let pick = if rate <= LOW_RATE {
                IntraStrategy::ThreadLocal
            } else if rate >= HIGH_RATE {
                IntraStrategy::Partitioned
            } else {
                IntraStrategy::Shared
            };
            p.decided = true;
            p.events.push(IntraEvent::Pick {
                strategy: pick,
                at_morsel: morsel,
            });
            self.route.store(
                match pick {
                    IntraStrategy::ThreadLocal => ROUTE_LOCAL,
                    IntraStrategy::Shared => ROUTE_SHARED,
                    IntraStrategy::Partitioned => ROUTE_PARTITIONED,
                },
                Ordering::Relaxed,
            );
            p.window_rows = 0;
            p.window_news = 0;
            return;
        }
        // Post-pick monitoring: only forward switches, so the scan can't
        // flap. Thread-local duplication nearing the budget flips to the
        // globally-deduplicating shared table; a rising distinct-rate
        // flips to partitioned.
        if current == ROUTE_LOCAL
            && self.admitted.load(Ordering::Relaxed) * 2 > self.grant.cap(self.budget)
        {
            p.events.push(IntraEvent::Switch {
                from: IntraStrategy::ThreadLocal,
                to: IntraStrategy::Shared,
                cause: IntraCause::MemoryPressure,
                at_morsel: morsel,
            });
            self.route.store(ROUTE_SHARED, Ordering::Relaxed);
        } else if (current == ROUTE_LOCAL || current == ROUTE_SHARED) && rate >= HIGH_RATE {
            p.events.push(IntraEvent::Switch {
                from: route_strategy(current),
                to: IntraStrategy::Partitioned,
                cause: IntraCause::HighDistinctRate,
                at_morsel: morsel,
            });
            self.route.store(ROUTE_PARTITIONED, Ordering::Relaxed);
        }
        p.window_rows = 0;
        p.window_news = 0;
    }

    /// Aggregate scattered partitions, each claimed exclusively by one
    /// worker. Every worker calls this once **after** the scan barrier
    /// (all scatter buffers quiescent); it is a no-op when nothing was
    /// scattered or the engine aborted. `scratch` is the worker's reused
    /// decode buffer.
    pub fn run_partition_phase(&self, scratch: &mut Vec<Value>) {
        loop {
            let p = self.part_cursor.fetch_add(1, Ordering::Relaxed);
            if p >= PARTITIONS || self.aborted() {
                return;
            }
            let mut table = self.partitions[p].lock();
            for bufs in &self.scatter {
                let mut buf = bufs[p].lock();
                if buf.rows == 0 {
                    continue;
                }
                let bytes = std::mem::take(&mut buf.bytes);
                buf.rows = 0;
                drop(buf);
                let mut off = 0usize;
                while off < bytes.len() {
                    let stamp = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                    let kind = if bytes[off + 8] == 0 {
                        RowKind::Raw
                    } else {
                        RowKind::Partial
                    };
                    off += 9;
                    let consumed = match decode_tuple_into(&bytes[off..], scratch) {
                        Ok(n) => n,
                        Err(_) => {
                            self.abort();
                            return;
                        }
                    };
                    off += consumed;
                    match table.insert_stamped(kind, scratch, None, stamp) {
                        Ok(Inserted::New) => {
                            if !self.admit_new() {
                                return;
                            }
                        }
                        Ok(Inserted::Updated) => {}
                        Ok(Inserted::Full) | Err(_) => {
                            self.abort();
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Unify every structure into one table in exact logical order.
    /// `None` when the engine aborted — the driver runs the serial path.
    pub fn finish(self) -> Option<ParOutcome> {
        if self.aborted() {
            return None;
        }
        let strategy = route_strategy(self.route.load(Ordering::Relaxed));
        let mut picker = self.picker.into_inner();
        if !picker.decided {
            // The scan ended inside the observation window; rows sit in
            // the thread-local tables. Record the de-facto pick so every
            // parallel run traces one.
            picker.events.push(IntraEvent::Pick {
                strategy: IntraStrategy::ThreadLocal,
                at_morsel: 0,
            });
        }
        let mut pairs: Vec<(u64, Vec<Value>)> = Vec::new();
        for table in self
            .locals
            .into_iter()
            .chain(self.stripes)
            .chain(self.partitions)
        {
            pairs.extend(table.into_inner().drain_stamped());
        }
        // Stamps are per-row unique, so the sort is total and the merge
        // order is exactly the serial first-touch order.
        pairs.sort_unstable_by_key(|(stamp, _)| *stamp);
        let mut table =
            AggTable::new_with_hint(self.query, usize::MAX, pairs.len()).with_grant(self.grant);
        for (_, row) in &pairs {
            match table.insert_partial(row, &mut NullTracker) {
                Ok(Inserted::New) | Ok(Inserted::Updated) => {}
                // A grant shrink between scan and drain can make the merge
                // table report full; dropping the row would corrupt the
                // result, so abort to the serial path instead.
                Ok(Inserted::Full) | Err(_) => return None,
            }
        }
        Some(ParOutcome {
            table,
            raw_in: self.raw_rows.into_inner() as u64,
            partial_in: self.partial_rows.into_inner() as u64,
            events: picker.events,
            strategy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec};

    fn query() -> AggQuery {
        AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)])
    }

    fn row(g: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(g), Value::Int(v)]
    }

    /// Serial reference: same rows in stamp order through one table.
    fn serial_partials(rows: &[(u64, Vec<Value>)]) -> Vec<Vec<Value>> {
        let mut ordered: Vec<_> = rows.to_vec();
        ordered.sort_unstable_by_key(|(s, _)| *s);
        let mut t = AggTable::new(query(), usize::MAX);
        for (_, r) in &ordered {
            t.insert_raw(r, &mut NullTracker).unwrap();
        }
        t.drain_partial_rows(&mut NullTracker)
    }

    fn drive(mode: IntraMode, rows: &[(u64, Vec<Value>)]) -> ParOutcome {
        let pt = ParTables::new(query(), 10_000, MemoryGrant::unlimited(), 2, mode).unwrap();
        // Interleave rows across the two "workers" in scrambled order.
        for (i, (stamp, r)) in rows.iter().enumerate().rev() {
            assert!(pt.insert(i % 2, RowKind::Raw, r, *stamp).is_some());
        }
        pt.report_morsel(0, rows.len() as u64, 0);
        let mut scratch = Vec::new();
        pt.run_partition_phase(&mut scratch);
        pt.run_partition_phase(&mut scratch); // second worker's call: drained queue
        pt.finish().expect("no abort")
    }

    fn dataset() -> Vec<(u64, Vec<Value>)> {
        (0..500u64).map(|i| (i, row((i % 37) as i64, i as i64))).collect()
    }

    #[test]
    fn every_fixed_strategy_reproduces_serial_order_and_values() {
        let rows = dataset();
        let expect = serial_partials(&rows);
        for s in [
            IntraStrategy::ThreadLocal,
            IntraStrategy::Shared,
            IntraStrategy::Partitioned,
        ] {
            let mut out = drive(IntraMode::Fixed(s), &rows);
            let got = out.table.drain_partial_rows(&mut NullTracker);
            assert_eq!(got, expect, "strategy {:?}", s);
            assert_eq!(out.raw_in, 500);
        }
    }

    #[test]
    fn prehashed_inserts_match_plain_inserts_on_every_strategy() {
        let rows = dataset();
        for s in [
            IntraStrategy::ThreadLocal,
            IntraStrategy::Shared,
            IntraStrategy::Partitioned,
        ] {
            let plain = drive(IntraMode::Fixed(s), &rows);
            let pt = ParTables::new(query(), 10_000, MemoryGrant::unlimited(), 2, IntraMode::Fixed(s))
                .unwrap();
            for (i, (stamp, r)) in rows.iter().enumerate().rev() {
                let hash = hash_values(Seed::Table, &r[..1]);
                assert!(pt.insert_prehashed(i % 2, RowKind::Raw, r, *stamp, hash).is_some());
            }
            pt.report_morsel(0, rows.len() as u64, 0);
            let mut scratch = Vec::new();
            pt.run_partition_phase(&mut scratch);
            pt.run_partition_phase(&mut scratch);
            let prehashed = pt.finish().expect("no abort");
            let mut a = plain.table;
            let mut b = prehashed.table;
            assert_eq!(
                a.drain_partial_rows(&mut NullTracker),
                b.drain_partial_rows(&mut NullTracker),
                "strategy {s:?}"
            );
        }
    }

    #[test]
    fn budget_overflow_aborts_instead_of_exceeding_the_grant() {
        let pt = ParTables::new(query(), 8, MemoryGrant::unlimited(), 2, IntraMode::Adaptive)
            .unwrap();
        let mut aborted = false;
        for g in 0..50i64 {
            if pt.insert(0, RowKind::Raw, &row(g, 1), g as u64).is_none() {
                aborted = true;
                break;
            }
        }
        assert!(aborted, "51 groups into an 8-entry budget must abort");
        assert!(pt.aborted());
        assert!(pt.finish().is_none());
    }

    #[test]
    fn live_grant_shrink_aborts_mid_scan() {
        let grant = MemoryGrant::bounded(1000);
        let pt = ParTables::new(query(), 10_000, grant.clone(), 2, IntraMode::Adaptive).unwrap();
        assert!(pt.insert(0, RowKind::Raw, &row(1, 1), 0).is_some());
        grant.set(1); // broker revokes below resident+1
        assert!(pt.insert(0, RowKind::Raw, &row(2, 1), 1).is_none());
        assert!(pt.aborted());
    }

    #[test]
    fn float_values_abort_to_serial() {
        let pt = ParTables::new(query(), 100, MemoryGrant::unlimited(), 2, IntraMode::Adaptive)
            .unwrap();
        assert!(pt
            .insert(0, RowKind::Raw, &[Value::Int(1), Value::Float(1.5)], 0)
            .is_none());
        assert!(pt.aborted());
    }

    #[test]
    fn adaptive_picker_goes_thread_local_on_low_cardinality() {
        let pt = ParTables::new(query(), 10_000, MemoryGrant::unlimited(), 2, IntraMode::Adaptive)
            .unwrap();
        for i in 0..OBSERVE_ROWS {
            pt.insert(0, RowKind::Raw, &row((i % 4) as i64, 1), i).unwrap();
        }
        pt.report_morsel(3, OBSERVE_ROWS, 4);
        let out = pt.finish().unwrap();
        assert_eq!(
            out.events,
            vec![IntraEvent::Pick {
                strategy: IntraStrategy::ThreadLocal,
                at_morsel: 3
            }]
        );
    }

    #[test]
    fn adaptive_picker_partitions_on_high_cardinality() {
        let pt = ParTables::new(query(), 100_000, MemoryGrant::unlimited(), 2, IntraMode::Adaptive)
            .unwrap();
        for i in 0..OBSERVE_ROWS {
            pt.insert(0, RowKind::Raw, &row(i as i64, 1), i).unwrap();
        }
        pt.report_morsel(5, OBSERVE_ROWS, OBSERVE_ROWS);
        assert_eq!(pt.route.load(Ordering::Relaxed), ROUTE_PARTITIONED);
        let out = pt.finish().unwrap();
        assert_eq!(out.strategy, IntraStrategy::Partitioned);
        assert!(matches!(
            out.events[0],
            IntraEvent::Pick {
                strategy: IntraStrategy::Partitioned,
                ..
            }
        ));
    }

    #[test]
    fn memory_pressure_switches_thread_local_to_shared() {
        let pt = ParTables::new(query(), 100, MemoryGrant::unlimited(), 2, IntraMode::Adaptive)
            .unwrap();
        // Low-rate window first → picks ThreadLocal.
        for i in 0..OBSERVE_ROWS {
            pt.insert(0, RowKind::Raw, &row((i % 30) as i64, 1), i).unwrap();
        }
        pt.report_morsel(0, OBSERVE_ROWS, 30);
        // Duplicate those 30 groups into the second worker's local table:
        // admitted doubles past budget/2 without any new global group.
        for i in 0..OBSERVE_ROWS {
            pt.insert(1, RowKind::Raw, &row((i % 30) as i64, 1), OBSERVE_ROWS + i).unwrap();
        }
        pt.report_morsel(1, OBSERVE_ROWS, 30);
        let out = pt.finish().unwrap();
        assert!(
            out.events.contains(&IntraEvent::Switch {
                from: IntraStrategy::ThreadLocal,
                to: IntraStrategy::Shared,
                cause: IntraCause::MemoryPressure,
                at_morsel: 1,
            }),
            "events: {:?}",
            out.events
        );
        // Rows are still exact despite the mid-scan switch.
        let mut t = out.table;
        assert_eq!(t.len(), 30);
        let rows = t.drain_partial_rows(&mut NullTracker);
        // Group 0 appears at i = 0, 30, …, 2040 → 69 rows per worker.
        assert_eq!(rows[0], vec![Value::Int(0), Value::Int(138)]);
    }

    #[test]
    fn partial_rows_merge_across_strategies() {
        let pt = ParTables::new(query(), 1000, MemoryGrant::unlimited(), 2, IntraMode::Adaptive)
            .unwrap();
        pt.insert(0, RowKind::Partial, &[Value::Int(7), Value::Int(10)], 1).unwrap();
        pt.insert(1, RowKind::Partial, &[Value::Int(7), Value::Int(32)], 0).unwrap();
        let mut out = pt.finish().unwrap();
        let rows = out.table.drain_partial_rows(&mut NullTracker);
        assert_eq!(rows, vec![vec![Value::Int(7), Value::Int(42)]]);
        assert_eq!(out.partial_in, 2);
    }
}
