//! The complete memory-bounded hash aggregation driver.
//!
//! [`HashAggregator`] composes the bounded [`AggTable`] with
//! [`OverflowSet`] spill handling into the paper's three-step uniprocessor
//! algorithm (§2): build, spill non-resident groups, process buckets
//! recursively. It accepts raw tuples and partial rows interleaved and can
//! emit either finalized results (merge phases) or partial rows (local
//! phases) — see [`EmitMode`].

use crate::overflow::OverflowSet;
use crate::stats::HashAggStats;
use crate::table::{AggTable, Inserted};
use adaptagg_model::{AggQuery, CostTracker, MemoryGrant, ResultRow, RowKind, Value};
use adaptagg_storage::{Page, SpillFile, StorageError};

/// What [`HashAggregator::finish`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitMode {
    /// Finalized result rows (key columns ++ one column per aggregate).
    Finalized,
    /// Partial rows (key columns ++ encoded partial-state columns), for
    /// shipping to a downstream merge phase.
    Partial,
}

/// Safety valve: beyond this overflow recursion depth the table is allowed
/// to exceed its budget rather than recurse further. With independent
/// per-level bucket hashes this is unreachable in practice; it bounds the
/// worst case.
const MAX_OVERFLOW_LEVEL: u32 = 32;

/// Default overflow fanout (buckets per overflow set). The paper says "as
/// many as necessary to ensure no future memory overflow"; a fixed fanout
/// with recursion achieves the same I/O asymptotics and needs no group
/// estimate.
pub const DEFAULT_OVERFLOW_FANOUT: usize = 8;

/// A memory-bounded hash aggregator.
#[derive(Debug)]
pub struct HashAggregator {
    query: AggQuery,
    table: AggTable,
    overflow: Option<OverflowSet>,
    max_entries: usize,
    fanout: usize,
    page_bytes: usize,
    charge_hash: bool,
    grant: MemoryGrant,
    /// Whether [`HashAggregator::push_page`] takes the vectorized probe
    /// ([`AggTable::insert_page_batched`]) or the row loop. Both are
    /// bit-identical in results and cost events; the knob exists so the
    /// oracle tests and the bench harness can pin either path.
    columnar: bool,
    stats: HashAggStats,
}

/// Read the `ADAPTAGG_COLUMNAR` knob: `"row"` forces the row-at-a-time
/// page path, anything else (or unset) selects the batched columnar path.
/// Read per aggregator construction (not cached) so benches can flip it
/// in-process.
fn columnar_default() -> bool {
    std::env::var("ADAPTAGG_COLUMNAR").map(|v| v != "row").unwrap_or(true)
}

impl HashAggregator {
    /// An aggregator for `query` (projected form) with an `max_entries`
    /// table budget, spilling to `page_bytes` pages with the given bucket
    /// fanout.
    pub fn new(query: AggQuery, max_entries: usize, page_bytes: usize, fanout: usize) -> Self {
        HashAggregator {
            table: AggTable::new(query.clone(), max_entries),
            query,
            overflow: None,
            max_entries,
            fanout: fanout.max(2),
            page_bytes,
            charge_hash: true,
            grant: MemoryGrant::unlimited(),
            columnar: columnar_default(),
            stats: HashAggStats::default(),
        }
    }

    /// Pin the page-path choice programmatically (overriding the
    /// `ADAPTAGG_COLUMNAR` environment default): `true` = batched
    /// columnar probe, `false` = row-at-a-time loop.
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Control whether inserts charge `t_h` (see
    /// [`AggTable::with_charge_hash`]); merge phases receiving
    /// pre-partitioned rows set this to `false`.
    pub fn with_charge_hash(mut self, charge_hash: bool) -> Self {
        self.charge_hash = charge_hash;
        self.table = AggTable::new(self.query.clone(), self.max_entries)
            .with_charge_hash(charge_hash)
            .with_grant(self.grant.clone());
        self
    }

    /// Attach a live, broker-revocable [`MemoryGrant`] (see
    /// [`AggTable::with_grant`]). Applies to the first-pass table and to
    /// every overflow-bucket table below the deep-recursion safety valve.
    pub fn with_grant(mut self, grant: MemoryGrant) -> Self {
        self.table = AggTable::new(self.query.clone(), self.max_entries)
            .with_charge_hash(self.charge_hash)
            .with_grant(grant.clone());
        self.grant = grant;
        self
    }

    /// An aggregator with the default overflow fanout.
    pub fn with_defaults(query: AggQuery, max_entries: usize, page_bytes: usize) -> Self {
        HashAggregator::new(query, max_entries, page_bytes, DEFAULT_OVERFLOW_FANOUT)
    }

    /// Statistics so far (final after [`HashAggregator::finish`]).
    pub fn stats(&self) -> &HashAggStats {
        &self.stats
    }

    /// Distinct groups currently resident in the first-pass table.
    pub fn resident_groups(&self) -> usize {
        self.table.len()
    }

    /// Whether the first-pass table has filled (the A2P switch signal).
    pub fn is_full(&self) -> bool {
        self.table.is_full()
    }

    /// Whether any tuple has been spooled.
    pub fn has_spilled(&self) -> bool {
        self.overflow.is_some()
    }

    /// Push a row of either kind.
    pub fn push<T: CostTracker>(
        &mut self,
        kind: RowKind,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        match kind {
            RowKind::Raw => self.stats.raw_in += 1,
            RowKind::Partial => self.stats.partial_in += 1,
        }
        match self.table.insert(kind, values, tracker)? {
            Inserted::Updated | Inserted::New => Ok(()),
            Inserted::Full => {
                let set = self.overflow.get_or_insert_with(|| {
                    OverflowSet::new(self.fanout, self.page_bytes, 0, self.query.group_by.len())
                });
                set.spool(kind, values, tracker)?;
                self.stats.spilled_tuples += 1;
                Ok(())
            }
        }
    }

    /// Push every tuple of a received page — the page-batched form of
    /// [`HashAggregator::push`], equivalent row by row (same mutations,
    /// same cost events in the same order; runs of accepted tuples are
    /// recorded through [`CostTracker::record_tuples`], which is
    /// bit-identical to the per-tuple loop by contract). Decodes into a
    /// reused scratch, so resident-group updates allocate nothing.
    pub fn push_page<T: CostTracker>(
        &mut self,
        kind: RowKind,
        page: &Page,
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        let n = page.tuple_count() as u64;
        match kind {
            RowKind::Raw => self.stats.raw_in += n,
            RowKind::Partial => self.stats.partial_in += n,
        }
        let overflow = &mut self.overflow;
        let fanout = self.fanout;
        let page_bytes = self.page_bytes;
        let group_by_len = self.query.group_by.len();
        let on_full = |tracker: &mut T, kind: RowKind, values: &[Value]| {
            let set = overflow.get_or_insert_with(|| {
                OverflowSet::new(fanout, page_bytes, 0, group_by_len)
            });
            set.spool(kind, values, tracker)
        };
        let spilled = if self.columnar {
            self.table.insert_page_batched(kind, page, tracker, on_full)?
        } else {
            self.table.insert_page(kind, page, tracker, on_full)?
        };
        self.stats.spilled_tuples += spilled;
        Ok(())
    }

    /// Push a raw tuple.
    pub fn push_raw<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        self.push(RowKind::Raw, values, tracker)
    }

    /// Push a partial row.
    pub fn push_partial<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        self.push(RowKind::Partial, values, tracker)
    }

    /// Finish: drain the first-pass table, then process overflow buckets
    /// one by one (recursively), emitting per `mode`. Returns flattened
    /// rows; use [`HashAggregator::finish_rows`] for typed result rows.
    pub fn finish<T: CostTracker>(
        self,
        mode: EmitMode,
        tracker: &mut T,
    ) -> Result<(Vec<Vec<Value>>, HashAggStats), StorageError> {
        let mut out = Vec::new();
        let mut stats = self.finish_impl(tracker, |table, tracker| {
            Self::drain_table(table, mode, tracker, &mut out)
        })?;
        stats.groups_out += out.len() as u64;
        Ok((out, stats))
    }

    /// Finish in [`EmitMode::Finalized`], draining typed [`ResultRow`]s
    /// straight out of each table — no flatten-and-reparse round trip, so
    /// the merge-phase epilogue allocates one vector per group instead of
    /// three. Cost events are identical to [`HashAggregator::finish`].
    pub fn finish_rows<T: CostTracker>(
        self,
        tracker: &mut T,
    ) -> Result<(Vec<ResultRow>, HashAggStats), StorageError> {
        let mut rows = Vec::new();
        let mut stats = self.finish_impl(tracker, |table, tracker| {
            rows.extend(table.drain_result_rows(tracker))
        })?;
        stats.groups_out += rows.len() as u64;
        Ok((rows, stats))
    }

    /// The shared finish loop: drain the first-pass table via `drain`,
    /// then process overflow buckets recursively, draining each bucket's
    /// table the same way. `groups_out` is left for the caller to add
    /// (only it knows how many rows the drains emitted).
    fn finish_impl<T, D>(
        mut self,
        tracker: &mut T,
        mut drain: D,
    ) -> Result<HashAggStats, StorageError>
    where
        T: CostTracker,
        D: FnMut(&mut AggTable, &mut T),
    {
        self.stats.probe_slots += self.table.probe_slots();
        self.stats.peak_resident = self.stats.peak_resident.max(self.table.len() as u64);
        drain(&mut self.table, tracker);

        // Stack of (bucket, level) still to process.
        let mut pending: Vec<(SpillFile, u32)> = Vec::new();
        if let Some(set) = self.overflow.take() {
            let level = set.level();
            pending.extend(set.into_buckets(tracker).into_iter().map(|b| (b, level)));
        }

        while let Some((bucket, level)) = pending.pop() {
            self.stats.overflow_buckets += 1;
            self.stats.max_level = self.stats.max_level.max(level + 1);
            // Per §2 step 3: each bucket is processed "as in step 1", with
            // the same memory budget. At extreme depth, uncap (see
            // MAX_OVERFLOW_LEVEL).
            let budget = if level + 1 > MAX_OVERFLOW_LEVEL {
                usize::MAX
            } else {
                self.max_entries
            };
            let mut table =
                AggTable::new(self.query.clone(), budget).with_charge_hash(self.charge_hash);
            if budget != usize::MAX {
                // Past the safety valve the table must be truly uncapped;
                // a live grant would defeat it.
                table = table.with_grant(self.grant.clone());
            }
            let mut deeper: Option<OverflowSet> = None;
            let fanout = self.fanout;
            let page_bytes = self.page_bytes;
            let group_by_len = self.query.group_by.len();
            let mut spilled_here = 0u64;
            OverflowSet::drain_bucket(bucket, tracker, |tracker, kind, values| {
                match table.insert(kind, values, tracker)? {
                    Inserted::Updated | Inserted::New => Ok(()),
                    Inserted::Full => {
                        let set = deeper.get_or_insert_with(|| {
                            OverflowSet::new(fanout, page_bytes, level + 1, group_by_len)
                        });
                        set.spool(kind, values, tracker)?;
                        spilled_here += 1;
                        Ok(())
                    }
                }
            })?;
            self.stats.spilled_tuples += spilled_here;
            self.stats.probe_slots += table.probe_slots();
            self.stats.peak_resident = self.stats.peak_resident.max(table.len() as u64);
            drain(&mut table, tracker);
            if let Some(set) = deeper {
                let l = set.level();
                pending.extend(set.into_buckets(tracker).into_iter().map(|b| (b, l)));
            }
        }

        Ok(self.stats)
    }

    fn drain_table<T: CostTracker>(
        table: &mut AggTable,
        mode: EmitMode,
        tracker: &mut T,
        out: &mut Vec<Vec<Value>>,
    ) {
        match mode {
            EmitMode::Partial => out.extend(table.drain_partial_rows(tracker)),
            EmitMode::Finalized => out.extend(
                table
                    .drain_result_rows(tracker)
                    .into_iter()
                    .map(|r| r.into_values()),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec, CostEvent, CountingTracker, NullTracker};

    fn query() -> AggQuery {
        AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)])
    }

    fn raw(g: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(g), Value::Int(v)]
    }

    /// Reference: unbounded aggregation via a plain HashMap.
    fn reference(rows: &[(i64, i64)]) -> Vec<(i64, i64)> {
        let mut m = std::collections::BTreeMap::new();
        for &(g, v) in rows {
            *m.entry(g).or_insert(0) += v;
        }
        m.into_iter().collect()
    }

    fn run_bounded(rows: &[(i64, i64)], max_entries: usize) -> (Vec<(i64, i64)>, HashAggStats) {
        let mut agg = HashAggregator::new(query(), max_entries, 256, 4);
        let mut tr = NullTracker;
        for &(g, v) in rows {
            agg.push_raw(&raw(g, v), &mut tr).unwrap();
        }
        let (rows_out, stats) = agg.finish_rows(&mut tr).unwrap();
        let mut got: Vec<(i64, i64)> = rows_out
            .into_iter()
            .map(|r| {
                (
                    r.key.values()[0].as_i64().unwrap(),
                    r.aggs[0].as_i64().unwrap(),
                )
            })
            .collect();
        got.sort_unstable();
        (got, stats)
    }

    #[test]
    fn push_page_matches_per_tuple_push() {
        // Same rows via per-tuple push vs one page-batched push, across a
        // capacity boundary (8 groups into a 4-entry budget → spills):
        // identical results, stats and cost-event counts.
        let rows: Vec<Vec<Value>> = (0..120).map(|i| raw(i % 8, i)).collect();
        let mut page = Page::new(1 << 16);
        for r in &rows {
            assert!(page.try_push(r).unwrap());
        }

        let mut a = HashAggregator::new(query(), 4, 256, 4);
        let mut ta = CountingTracker::new();
        for r in &rows {
            a.push(RowKind::Raw, r, &mut ta).unwrap();
        }

        let mut b = HashAggregator::new(query(), 4, 256, 4);
        let mut tb = CountingTracker::new();
        b.push_page(RowKind::Raw, &page, &mut tb).unwrap();

        assert_eq!(a.stats().raw_in, b.stats().raw_in);
        assert_eq!(a.stats().spilled_tuples, b.stats().spilled_tuples);
        assert_eq!(ta, tb, "cost events diverge between paths");

        let (ra, _) = a.finish_rows(&mut ta).unwrap();
        let (rb, _) = b.finish_rows(&mut tb).unwrap();
        let mut ra = ra;
        let mut rb = rb;
        adaptagg_model::query::sort_rows(&mut ra);
        adaptagg_model::query::sort_rows(&mut rb);
        assert_eq!(ra, rb);
        assert_eq!(ta, tb, "finish cost events diverge between paths");
    }

    #[test]
    fn columnar_page_path_matches_row_page_path() {
        // Same page, forced columnar vs forced row: identical results,
        // stats and cost events, across a spilling budget.
        let rows: Vec<Vec<Value>> = (0..200).map(|i| raw(i % 12, i)).collect();
        let mut page = Page::new(1 << 16);
        for r in &rows {
            assert!(page.try_push(r).unwrap());
        }
        let mut a = HashAggregator::new(query(), 6, 256, 4).with_columnar(true);
        let mut b = HashAggregator::new(query(), 6, 256, 4).with_columnar(false);
        let mut ta = CountingTracker::new();
        let mut tb = CountingTracker::new();
        a.push_page(RowKind::Raw, &page, &mut ta).unwrap();
        b.push_page(RowKind::Raw, &page, &mut tb).unwrap();
        assert_eq!(a.stats().spilled_tuples, b.stats().spilled_tuples);
        assert_eq!(ta, tb, "cost events diverge between page paths");
        let (ra, _) = a.finish_rows(&mut ta).unwrap();
        let (rb, _) = b.finish_rows(&mut tb).unwrap();
        assert_eq!(ra, rb, "results diverge (order included)");
        assert_eq!(ta, tb, "finish cost events diverge between page paths");
    }

    #[test]
    fn no_overflow_when_groups_fit() {
        let rows: Vec<(i64, i64)> = (0..100).map(|i| (i % 10, i)).collect();
        let (got, stats) = run_bounded(&rows, 16);
        assert_eq!(got, reference(&rows));
        assert!(!stats.spilled());
        assert_eq!(stats.max_level, 0);
        assert_eq!(stats.groups_out, 10);
    }

    #[test]
    fn overflow_single_level_is_exact() {
        // 64 groups, budget 16 → spills, one level suffices (fanout 4:
        // ~12 groups per bucket < 16).
        let rows: Vec<(i64, i64)> = (0..640).map(|i| (i % 64, 1)).collect();
        let (got, stats) = run_bounded(&rows, 16);
        assert_eq!(got, reference(&rows));
        assert!(stats.spilled());
        assert!(stats.overflow_buckets > 0);
    }

    #[test]
    fn overflow_recursion_is_exact() {
        // 4096 groups, budget 8, fanout 4 → multiple levels.
        let rows: Vec<(i64, i64)> = (0..8192).map(|i| (i % 4096, 1)).collect();
        let (got, stats) = run_bounded(&rows, 8);
        assert_eq!(got.len(), 4096);
        assert_eq!(got, reference(&rows));
        assert!(stats.max_level >= 2, "expected recursion, got {stats:?}");
    }

    #[test]
    fn tiny_budget_one_group_never_spills() {
        let rows: Vec<(i64, i64)> = (0..50).map(|i| (7, i)).collect();
        let (got, stats) = run_bounded(&rows, 1);
        assert_eq!(got, vec![(7, (0..50).sum())]);
        assert!(!stats.spilled());
    }

    #[test]
    fn partial_and_raw_interleaved_with_overflow() {
        // Half the input arrives pre-aggregated as partial rows.
        let mut agg = HashAggregator::new(query(), 4, 256, 4);
        let mut tr = NullTracker;
        for g in 0..32 {
            agg.push_raw(&raw(g, 1), &mut tr).unwrap();
            // partial row: key + SUM partial (value 10).
            agg.push_partial(&[Value::Int(g), Value::Int(10)], &mut tr).unwrap();
        }
        let (rows, stats) = agg.finish_rows(&mut tr).unwrap();
        assert_eq!(rows.len(), 32);
        assert!(rows.iter().all(|r| r.aggs[0] == Value::Int(11)));
        assert!(stats.spilled());
        assert_eq!(stats.raw_in, 32);
        assert_eq!(stats.partial_in, 32);
    }

    #[test]
    fn emit_partial_mode_round_trips_through_merge() {
        // Local phase: emit partials (with overflow); merge phase: final.
        let rows: Vec<(i64, i64)> = (0..200).map(|i| (i % 50, i)).collect();
        let mut local = HashAggregator::new(query(), 8, 256, 4);
        let mut tr = NullTracker;
        for &(g, v) in &rows {
            local.push_raw(&raw(g, v), &mut tr).unwrap();
        }
        let (partials, _) = local.finish(EmitMode::Partial, &mut tr).unwrap();
        assert!(partials.len() >= 50, "overflow may duplicate groups across passes");

        let mut merge = HashAggregator::new(query(), 1000, 256, 4);
        for p in &partials {
            merge.push_partial(p, &mut tr).unwrap();
        }
        let (got, _) = merge.finish_rows(&mut tr).unwrap();
        let mut got: Vec<(i64, i64)> = got
            .into_iter()
            .map(|r| {
                (
                    r.key.values()[0].as_i64().unwrap(),
                    r.aggs[0].as_i64().unwrap(),
                )
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, reference(&rows));
    }

    #[test]
    fn spill_io_is_symmetric_and_counted() {
        let rows: Vec<(i64, i64)> = (0..1000).map(|i| (i % 100, 1)).collect();
        let mut agg = HashAggregator::new(query(), 10, 128, 4);
        let mut tr = CountingTracker::new();
        for &(g, v) in &rows {
            agg.push_raw(&raw(g, v), &mut tr).unwrap();
        }
        let (_, stats) = agg.finish_rows(&mut tr).unwrap();
        assert!(stats.spilled_tuples > 0);
        assert_eq!(
            tr.count(CostEvent::PageWriteSeq),
            tr.count(CostEvent::PageReadSeq),
            "every spilled page is written once and read once"
        );
        // Every input tuple is hashed at least once.
        assert!(tr.count(CostEvent::TupleHash) >= 1000);
    }

    #[test]
    fn duplicate_elimination_with_overflow() {
        let q = AggQuery::distinct(vec![0]);
        let mut agg = HashAggregator::new(q, 4, 128, 4);
        let mut tr = NullTracker;
        for i in 0..300 {
            agg.push_raw(&[Value::Int(i % 30)], &mut tr).unwrap();
        }
        let (rows, stats) = agg.finish_rows(&mut tr).unwrap();
        assert_eq!(rows.len(), 30);
        assert!(stats.spilled());
    }

    #[test]
    fn shrinking_grant_mid_stream_spills_but_stays_exact() {
        use adaptagg_model::MemoryGrant;
        let rows: Vec<(i64, i64)> = (0..600).map(|i| (i % 40, i)).collect();
        let grant = MemoryGrant::bounded(1000);
        let mut agg = HashAggregator::new(query(), 64, 256, 4).with_grant(grant.clone());
        let mut tr = NullTracker;
        for (i, &(g, v)) in rows.iter().enumerate() {
            if i == 20 {
                // Revoke mid-scan, while half the groups are still unseen:
                // the rest must spill rather than grow the table.
                grant.set(6);
            }
            agg.push_raw(&raw(g, v), &mut tr).unwrap();
        }
        assert!(agg.is_full(), "shrunk grant must read as full");
        let (got, stats) = agg.finish_rows(&mut tr).unwrap();
        assert!(stats.spilled(), "post-revocation tuples must spill");
        let mut got: Vec<(i64, i64)> = got
            .into_iter()
            .map(|r| {
                (
                    r.key.values()[0].as_i64().unwrap(),
                    r.aggs[0].as_i64().unwrap(),
                )
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, reference(&rows), "revocation must never change the answer");
    }

    #[test]
    fn scalar_aggregation_single_group() {
        let q = AggQuery::new(vec![], vec![AggSpec::over(AggFunc::Max, 0)]);
        let mut agg = HashAggregator::new(q, 4, 128, 4);
        let mut tr = NullTracker;
        for i in [3i64, 9, 1] {
            agg.push_raw(&[Value::Int(i)], &mut tr).unwrap();
        }
        let (rows, _) = agg.finish_rows(&mut tr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].aggs, vec![Value::Int(9)]);
        assert_eq!(rows[0].key.arity(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec, NullTracker};
    use proptest::prelude::*;

    proptest! {
        /// The bounded aggregator must agree with an unbounded reference
        /// for any input and any memory budget — the invariant every
        /// parallel algorithm ultimately rests on.
        #[test]
        fn prop_bounded_equals_unbounded(
            rows in proptest::collection::vec((0i64..64, -100i64..100), 0..400),
            budget in 1usize..40,
            fanout in 2usize..6,
        ) {
            let query = AggQuery::new(
                vec![0],
                vec![AggSpec::over(AggFunc::Sum, 1), AggSpec::count_star()],
            );
            let mut agg = HashAggregator::new(query, budget, 128, fanout);
            let mut tr = NullTracker;
            for &(g, v) in &rows {
                agg.push_raw(&[Value::Int(g), Value::Int(v)], &mut tr).unwrap();
            }
            let (got, _) = agg.finish_rows(&mut tr).unwrap();

            let mut expect: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
            for &(g, v) in &rows {
                let e = expect.entry(g).or_insert((0, 0));
                e.0 += v;
                e.1 += 1;
            }
            prop_assert_eq!(got.len(), expect.len());
            for r in got {
                let g = r.key.values()[0].as_i64().unwrap();
                let (sum, count) = expect[&g];
                prop_assert_eq!(&r.aggs[0], &Value::Int(sum));
                prop_assert_eq!(&r.aggs[1], &Value::Int(count));
            }
        }
    }
}
