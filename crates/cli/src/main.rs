//! `adaptagg` — run the paper's adaptive parallel aggregation algorithms
//! from the command line. See `adaptagg help`.

mod args;
mod commands;

use args::Command;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match args::parse(&argv) {
        Ok(Command::Help) => {
            print!("{}", args::USAGE);
            Ok(())
        }
        Ok(Command::Run(a)) => commands::cmd_run(&a),
        Ok(Command::Sweep(a)) => commands::cmd_sweep(&a),
        Ok(Command::Explain(a)) => commands::cmd_explain(&a),
        Ok(Command::Serve(a)) => commands::cmd_serve(&a),
        Err(e) => Err(commands::CmdError::from(e.to_string())),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        // Exit-code contract (shared with the cluster binaries):
        // 0 success, 2 recovery honestly exhausted, 1 anything else.
        std::process::exit(e.exit_code);
    }
}
