//! Command implementations.

use crate::args::{RunArgs, ServeArgs, TraceFormat, Workload};
use adaptagg_algos::{run_algorithm, AlgorithmKind};
use adaptagg_cost::{recommend, CostAlgorithm, ModelConfig};
use adaptagg_exec::{ClusterConfig, ExecError, FaultPlan, RecoveryPolicy};
use adaptagg_model::{CostParams, DataType, Field, Schema};
use adaptagg_sql::compile;
use adaptagg_storage::HeapFile;
use adaptagg_workload::{generate_partitions, RelationSpec, TpcdWorkload, ZipfSpec};

/// A command failure plus the process exit code it maps to. The exit
/// codes are a contract shared with the cluster binaries
/// (`adaptagg-coordinator` / `adaptagg-worker`): `0` success, `2` a
/// query that ran but exhausted fault recovery
/// ([`ExecError::RecoveryExhausted`]) — the cluster did its job and the
/// failure budget was genuinely spent — and `1` every other failure
/// (bad arguments, I/O, protocol bugs). Scripts and CI can therefore
/// tell "infrastructure broke" from "recovery was honestly exhausted".
#[derive(Debug)]
pub struct CmdError {
    /// Human-readable description, printed to stderr.
    pub message: String,
    /// Process exit code (1 or 2; 0 is never an error).
    pub exit_code: i32,
}

impl From<String> for CmdError {
    fn from(message: String) -> Self {
        CmdError {
            message,
            exit_code: 1,
        }
    }
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Map an execution failure to its exit code: recovery exhaustion is
/// the distinguished outcome (2), everything else is 1.
pub fn exec_error(e: ExecError) -> CmdError {
    let exit_code = if matches!(e, ExecError::RecoveryExhausted { .. }) {
        2
    } else {
        1
    };
    CmdError {
        message: e.to_string(),
        exit_code,
    }
}

/// The schema the selected workload generates.
pub fn schema(workload: Workload) -> Schema {
    match workload {
        Workload::Uniform | Workload::Zipf(_) => Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
            Field::new("pad", DataType::Str),
        ]),
        Workload::Tpcd => Schema::new(vec![
            Field::new("flag_status", DataType::Int),
            Field::new("orderkey", DataType::Int),
            Field::new("quantity", DataType::Int),
            Field::new("extendedprice", DataType::Int),
            Field::new("pad", DataType::Str),
        ]),
    }
}

/// Generate (or load) the partitions the selected workload describes,
/// honouring `--save-workload`/`--load-workload`.
fn partitions(args: &RunArgs) -> Result<Vec<HeapFile>, String> {
    if let Some(prefix) = &args.load_workload {
        let mut parts = Vec::with_capacity(args.nodes);
        for n in 0..args.nodes {
            let path = format!("{prefix}.node{n}.ahf");
            parts.push(
                adaptagg_storage::persist::load(&path)
                    .map_err(|e| format!("loading {path}: {e}"))?,
            );
        }
        return Ok(parts);
    }
    let parts = generate(args);
    if let Some(prefix) = &args.save_workload {
        for (n, part) in parts.iter().enumerate() {
            let path = format!("{prefix}.node{n}.ahf");
            adaptagg_storage::persist::save(part, &path)
                .map_err(|e| format!("saving {path}: {e}"))?;
        }
    }
    Ok(parts)
}

fn generate(args: &RunArgs) -> Vec<HeapFile> {
    match args.workload {
        Workload::Uniform => {
            let spec = RelationSpec::uniform(args.tuples, args.groups).with_seed(args.seed);
            generate_partitions(&spec, args.nodes)
        }
        Workload::Zipf(exponent) => {
            let mut spec = ZipfSpec::new(args.tuples, args.groups, exponent);
            spec.seed = args.seed;
            spec.generate_partitions(args.nodes)
        }
        Workload::Tpcd => {
            let mut w = TpcdWorkload::new(args.tuples);
            w.seed = args.seed;
            w.generate_partitions(args.nodes)
        }
    }
}

fn describe_workload(args: &RunArgs) -> String {
    match args.workload {
        Workload::Uniform => format!(
            "uniform: {} tuples, {} groups (S = {:.2e})",
            args.tuples,
            args.groups,
            args.groups as f64 / args.tuples.max(1) as f64
        ),
        Workload::Zipf(s) => format!(
            "zipf(s={s}): {} tuples, {} groups",
            args.tuples, args.groups
        ),
        Workload::Tpcd => format!(
            "tpcd: {} lineitems over {} orders",
            args.tuples,
            (args.tuples / 4).max(1)
        ),
    }
}

fn cost_params(args: &RunArgs) -> CostParams {
    CostParams {
        network: args.network,
        max_hash_entries: args.memory,
        ..CostParams::paper_default()
    }
}

/// Map the cost model's pick onto the execution engine's kinds.
fn to_engine(algo: CostAlgorithm) -> AlgorithmKind {
    match algo {
        CostAlgorithm::CentralizedTwoPhase => AlgorithmKind::CentralizedTwoPhase,
        CostAlgorithm::TwoPhase => AlgorithmKind::TwoPhase,
        CostAlgorithm::Repartitioning => AlgorithmKind::Repartitioning,
        CostAlgorithm::Sampling => AlgorithmKind::Sampling,
        CostAlgorithm::AdaptiveTwoPhase => AlgorithmKind::AdaptiveTwoPhase,
        CostAlgorithm::AdaptiveRepartitioning => AlgorithmKind::AdaptiveRepartitioning,
    }
}

/// Pick the strategy: the user's `--algo`, or §7's recommendation fed
/// with the workload's (known) group count.
fn pick_algorithm(args: &RunArgs) -> (AlgorithmKind, Option<&'static str>) {
    if let Some(kind) = args.algo {
        return (kind, None);
    }
    let model = ModelConfig {
        params: cost_params(args),
        nodes: args.nodes,
        tuples: args.tuples as f64,
        io_enabled: true,
    };
    let rec = recommend(&model, Some(args.groups as f64));
    (to_engine(rec.algorithm), Some(rec.rationale))
}

/// Build the fault plan `--fault-seed`/`--crash-node` describe.
fn fault_plan(args: &RunArgs) -> Option<FaultPlan> {
    let mut plan = match args.fault_seed {
        Some(seed) => FaultPlan::random(seed, args.nodes),
        None => {
            args.crash_node?;
            FaultPlan::none()
        }
    };
    if let Some(node) = args.crash_node {
        // Crash partway through the node's share of the scan.
        let at_tuple = (args.tuples / args.nodes.max(1) / 2).max(1) as u64;
        plan = plan.with_crash(node, at_tuple);
    }
    Some(plan)
}

/// `adaptagg run`.
pub fn cmd_run(args: &RunArgs) -> Result<(), CmdError> {
    let bound = compile(&args.sql, &schema(args.workload)).map_err(|e| e.to_string())?;
    let mut cluster = ClusterConfig::new(args.nodes, cost_params(args)).with_threads(args.threads);
    let plan = fault_plan(args);
    if let Some(plan) = &plan {
        cluster = cluster.with_fault_plan(plan.clone());
    }
    if args.recovery {
        cluster = cluster.with_recovery(RecoveryPolicy::default());
    }
    if args.trace.is_some() {
        cluster = cluster.with_tracing();
    }
    let parts = partitions(args)?;

    let (kind, rationale) = pick_algorithm(args);
    println!("query     : {}", args.sql);
    println!("workload  : {} (seed {})", describe_workload(args), args.seed);
    println!(
        "cluster   : {} nodes, {:?}, M = {} entries",
        args.nodes, cluster.params.network, args.memory
    );
    if plan.is_some() || args.recovery {
        println!(
            "faults    : fault-seed {:?}, crash-node {:?}, recovery {}",
            args.fault_seed,
            args.crash_node,
            if args.recovery { "on" } else { "off (fail-stop)" }
        );
    }
    print!("algorithm : {kind}");
    match rationale {
        Some(r) => println!("  (auto: {r})"),
        None => println!(),
    }

    let out = run_algorithm(kind, &cluster, &parts, &bound.query).map_err(exec_error)?;

    println!("\n{}", bound.output_names.join(" | "));
    for row in out.rows.iter().take(10) {
        println!("{row}");
    }
    if out.rows.len() > 10 {
        println!("… {} more rows", out.rows.len() - 10);
    }
    let b = out.run.total_breakdown();
    println!(
        "\n{} rows in {:.1} virtual ms  (cluster totals: cpu {:.1}, io {:.1}, net {:.1}, wait {:.1})",
        out.rows.len(),
        out.elapsed_ms(),
        b.cpu_ms,
        b.io_ms,
        b.net_ms,
        b.wait_ms
    );
    if !out.adapted_nodes().is_empty() {
        println!("adapted nodes: {:?}", out.adapted_nodes());
    }
    let rec = &out.run.recovery;
    let work = out.run.total_recovery();
    if rec.recovered() || work.any() {
        println!(
            "recovery  : {} attempts, lost {:.1} ms + backoff {:.1} ms \
             (with recovery: {:.1} virtual ms)",
            rec.attempts,
            rec.lost_ms,
            rec.backoff_ms,
            out.run.elapsed_with_recovery_ms()
        );
        if !rec.dead_nodes.is_empty() {
            println!(
                "            dead nodes {:?}, {} partitions reassigned",
                rec.dead_nodes, rec.reassigned_partitions
            );
        }
        println!(
            "            checkpoints: {} pages / {} partial rows written, \
             {} rows restored, {} pages replayed",
            work.checkpoint_pages,
            work.checkpoint_partials,
            work.restored_partials,
            work.replayed_pages
        );
        let retries = out.run.total_net().send_retries;
        if retries > 0 {
            println!("            link sends retried: {retries}");
        }
    }
    if let (Some(fmt), Some(trace)) = (args.trace, &out.trace) {
        match fmt {
            TraceFormat::Json => println!("\n{}", trace.to_json()),
            TraceFormat::Text => println!("\ntrace\n{}", trace.to_text()),
        }
    }
    Ok(())
}

/// `adaptagg serve` — bind the listen address and run the multi-query
/// server until a client sends `shutdown`.
pub fn cmd_serve(args: &ServeArgs) -> Result<(), CmdError> {
    use adaptagg_serve::{serve, Dataset, Scheduler, ServeConfig};
    use std::sync::Arc;

    // The shared dataset every query runs over: immutable partitions,
    // generated once.
    let run_equiv = RunArgs {
        workload: args.workload,
        nodes: args.nodes,
        tuples: args.tuples,
        groups: args.groups,
        seed: args.seed,
        network: args.network,
        memory: args.memory,
        ..RunArgs::default()
    };
    let data = Arc::new(Dataset {
        schema: schema(args.workload),
        partitions: generate(&run_equiv),
    });

    let mut cfg = ServeConfig::new(args.memory);
    cfg.queue_capacity = args.queue;
    cfg.concurrency = args.concurrency;
    if args.min_grant > 0 {
        cfg.min_grant = args.min_grant.min(args.memory);
    }
    cfg.default_deadline = args.deadline_ms.map(std::time::Duration::from_millis);
    cfg.params = cost_params(&run_equiv);
    cfg.threads = args.threads;

    let proc = match &args.proc_cluster {
        Some(list) => {
            let cluster: Vec<std::net::SocketAddr> = list
                .split(',')
                .map(|a| {
                    a.parse()
                        .map_err(|e| format!("--proc-cluster: bad address {a:?}: {e}"))
                })
                .collect::<Result<_, String>>()?;
            let backend = adaptagg_serve::ProcBackend::connect(
                &cluster,
                args.tuples,
                args.groups,
                args.seed,
                adaptagg_cluster::CoordinatorOpts::default(),
            )
            .map_err(|e| format!("joining process mesh: {e}"))?;
            eprintln!(
                "[serve] process mesh established: {} workers",
                backend.spec().workers()
            );
            Some(Arc::new(backend))
        }
        None => None,
    };

    let listener = std::net::TcpListener::bind(&args.listen)
        .map_err(|e| format!("binding {}: {e}", args.listen))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // The loadgen (and CI) parse this line to learn the bound port.
    println!("adaptagg serve listening on {local}");
    println!(
        "dataset   : {} (seed {}), {} nodes, M = {} entries/node",
        describe_workload(&run_equiv),
        args.seed,
        args.nodes,
        args.memory
    );
    println!(
        "admission : queue {}, concurrency {}, min-grant {}, deadline {}",
        args.queue,
        args.concurrency,
        cfg.min_grant,
        match args.deadline_ms {
            Some(ms) => format!("{ms} ms"),
            None => "none".to_string(),
        }
    );

    let sched = Arc::new(Scheduler::new(cfg, data));
    let summary = serve(listener, sched, proc, |line| eprintln!("[serve] {line}"))
        .map_err(|e| e.to_string())?;
    let m = &summary.metrics;
    println!(
        "served    : {} submitted, {} completed, {} failed over {} connection(s)",
        m.submitted, m.completed, m.failed, summary.connections
    );
    println!(
        "shed      : {} queue_full, {} deadline_unmeetable, {} memory_exhausted",
        m.rejected_queue_full, m.rejected_deadline, m.rejected_memory
    );
    println!(
        "degraded  : {} admissions below full budget, {} recovered, {} deadline misses",
        m.degraded_admissions, m.recovered_queries, m.deadlines_missed
    );
    Ok(())
}

/// `adaptagg sweep`.
pub fn cmd_sweep(args: &RunArgs) -> Result<(), CmdError> {
    let bound = compile(&args.sql, &schema(args.workload)).map_err(|e| e.to_string())?;
    let cluster = ClusterConfig::new(args.nodes, cost_params(args)).with_threads(args.threads);
    let kinds = AlgorithmKind::FIGURE8;

    println!(
        "sweep     : {} tuples, {} nodes, {:?}, M = {}",
        args.tuples, args.nodes, cluster.params.network, args.memory
    );
    print!("{:>10}", "groups");
    for k in kinds {
        print!(" {:>10}", k.label());
    }
    println!(" {:>8}", "winner");

    let mut g = 1usize;
    while g <= args.tuples / 2 {
        let spec = RelationSpec::uniform(args.tuples, g).with_seed(args.seed);
        let parts = generate_partitions(&spec, cluster.nodes);
        let mut times = Vec::new();
        for kind in kinds {
            let out =
                run_algorithm(kind, &cluster, &parts, &bound.query).map_err(exec_error)?;
            times.push(out.elapsed_ms());
        }
        let (wi, _) = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("nonempty");
        print!("{g:>10}");
        for t in &times {
            print!(" {t:>10.1}");
        }
        println!(" {:>8}", kinds[wi].label());
        g *= 16;
    }
    Ok(())
}

/// `adaptagg explain`.
pub fn cmd_explain(args: &RunArgs) -> Result<(), CmdError> {
    let bound = compile(&args.sql, &schema(args.workload)).map_err(|e| e.to_string())?;
    let model = ModelConfig {
        params: cost_params(args),
        nodes: args.nodes,
        tuples: args.tuples as f64,
        io_enabled: true,
    };
    let rec = recommend(&model, Some(args.groups as f64));

    println!("query         : {}", args.sql);
    println!("bound         : {}", bound.query);
    println!(
        "assumptions   : {} tuples, {} groups, {} nodes, {:?}, M = {}",
        args.tuples, args.groups, args.nodes, model.params.network, args.memory
    );
    println!("\npredicted cost (analytical model, §2–3):");
    for (algo, ms) in &rec.candidates {
        let marker = if *algo == rec.algorithm { " ← chosen" } else { "" };
        println!("  {:<6} {:>12.1} ms{marker}", algo.label(), ms);
    }
    println!("\nrecommendation: {} — {}", rec.algorithm.label(), rec.rationale);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_args() -> RunArgs {
        RunArgs {
            tuples: 4_000,
            groups: 50,
            nodes: 4,
            ..RunArgs::default()
        }
    }

    #[test]
    fn run_executes_end_to_end() {
        cmd_run(&small_args()).expect("run succeeds");
    }

    #[test]
    fn crashed_run_fails_fast_without_recovery_and_completes_with_it() {
        let mut a = small_args();
        a.crash_node = Some(1);
        let e = cmd_run(&a).unwrap_err();
        assert!(e.message.contains("crash"), "unexpected error: {e}");
        assert_eq!(e.exit_code, 1, "fail-stop crash is an ordinary failure");
        a.recovery = true;
        cmd_run(&a).expect("recovery must complete the crashed query");
    }

    #[test]
    fn seeded_fault_schedule_runs_under_recovery() {
        let mut a = small_args();
        a.fault_seed = Some(3);
        a.recovery = true;
        // Random schedules may legitimately exhaust recovery; anything
        // else (hang, panic, wrong attribution) fails the test harness.
        let _ = cmd_run(&a);
    }

    #[test]
    fn traced_run_executes_in_both_formats() {
        let mut a = small_args();
        a.memory = 16; // force an A2P switch so events render
        a.algo = Some(AlgorithmKind::AdaptiveTwoPhase);
        a.trace = Some(TraceFormat::Text);
        cmd_run(&a).expect("traced text run succeeds");
        a.trace = Some(TraceFormat::Json);
        cmd_run(&a).expect("traced json run succeeds");
    }

    #[test]
    fn explain_prints_candidates() {
        cmd_explain(&small_args()).expect("explain succeeds");
    }

    #[test]
    fn sweep_covers_the_range() {
        let mut a = small_args();
        a.tuples = 2_000;
        cmd_sweep(&a).expect("sweep succeeds");
    }

    #[test]
    fn save_then_load_workload_round_trips() {
        let dir = std::env::temp_dir().join("adaptagg_cli_workload");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("w").to_string_lossy().to_string();

        let mut a = small_args();
        a.save_workload = Some(prefix.clone());
        let generated = partitions(&a).unwrap();

        let mut b = small_args();
        b.load_workload = Some(prefix.clone());
        b.tuples = 1; // ignored on load
        let loaded = partitions(&b).unwrap();

        assert_eq!(generated.len(), loaded.len());
        for (g, l) in generated.iter().zip(&loaded) {
            assert_eq!(g.tuple_count(), l.tuple_count());
        }
        // And the loaded partitions run.
        cmd_run(&b).expect("run from loaded workload succeeds");
        for n in 0..a.nodes {
            let _ = std::fs::remove_file(format!("{prefix}.node{n}.ahf"));
        }
    }

    #[test]
    fn load_missing_workload_is_a_clean_error() {
        let mut a = small_args();
        a.load_workload = Some("/nonexistent/prefix".into());
        let e = cmd_run(&a).unwrap_err();
        assert!(e.message.contains("loading"));
    }

    #[test]
    fn tpcd_workload_binds_its_own_schema() {
        let mut a = small_args();
        a.workload = Workload::Tpcd;
        a.sql = "SELECT flag_status, SUM(quantity) FROM lineitem GROUP BY flag_status".into();
        cmd_run(&a).expect("tpcd run succeeds");
        // Uniform-schema SQL must fail against the tpcd schema.
        a.sql = "SELECT g, SUM(v) FROM r GROUP BY g".into();
        assert!(cmd_run(&a).is_err());
    }

    #[test]
    fn zipf_workload_runs() {
        let mut a = small_args();
        a.workload = Workload::Zipf(1.0);
        cmd_run(&a).expect("zipf run succeeds");
    }

    #[test]
    fn bad_sql_is_a_clean_error() {
        let mut a = small_args();
        a.sql = "SELECT nope FROM r GROUP BY nope".into();
        let e = cmd_run(&a).unwrap_err();
        assert!(e.message.contains("nope"));
    }

    #[test]
    fn auto_pick_small_groups_is_adaptive_two_phase() {
        let (kind, rationale) = pick_algorithm(&small_args());
        assert_eq!(kind, AlgorithmKind::AdaptiveTwoPhase);
        assert!(rationale.is_some());
    }

    #[test]
    fn recovery_exhaustion_maps_to_exit_code_2() {
        let exhausted = ExecError::RecoveryExhausted {
            attempts: 3,
            last: Box::new(ExecError::Protocol("boom")),
        };
        assert_eq!(exec_error(exhausted).exit_code, 2);
        assert_eq!(exec_error(ExecError::Protocol("boom")).exit_code, 1);
    }

    #[test]
    fn explicit_algo_is_respected() {
        let mut a = small_args();
        a.algo = Some(AlgorithmKind::Broadcast);
        let (kind, rationale) = pick_algorithm(&a);
        assert_eq!(kind, AlgorithmKind::Broadcast);
        assert!(rationale.is_none());
    }
}
