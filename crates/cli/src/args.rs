//! Hand-rolled argument parsing (the offline dependency set has no CLI
//! parser; the grammar is small enough that one is not missed).

use adaptagg_algos::AlgorithmKind;
use adaptagg_model::NetworkKind;
use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run` — execute one query on the simulated cluster.
    Run(RunArgs),
    /// `sweep` — run the figure-8-style group-count sweep.
    Sweep(RunArgs),
    /// `explain` — evaluate the cost model and print the recommendation.
    Explain(RunArgs),
    /// `serve` — run the long-lived multi-query server.
    Serve(ServeArgs),
    /// `help` — print usage.
    Help,
}

/// Knobs for `adaptagg serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// TCP listen address for the line protocol.
    pub listen: String,
    /// Virtual cluster size each query runs over.
    pub nodes: usize,
    /// Relation size in tuples.
    pub tuples: usize,
    /// Group count (uniform workload).
    pub groups: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// The data generator.
    pub workload: Workload,
    /// Per-node hash budget M the broker divides among active queries.
    pub memory: usize,
    /// Network model.
    pub network: NetworkKind,
    /// Admission queue capacity; beyond it queries are shed
    /// (`queue_full`).
    pub queue: usize,
    /// Executor threads (queries running concurrently).
    pub concurrency: usize,
    /// Admission floor: reject (`memory_exhausted`) rather than grant
    /// less than this. 0 means memory/8.
    pub min_grant: usize,
    /// Default per-query deadline, applied when the request sets none.
    pub deadline_ms: Option<u64>,
    /// Comma-separated mesh addresses: attach a real-process worker
    /// cluster and answer `proc` commands over it.
    pub proc_cluster: Option<String>,
    /// Intra-node worker threads per simulated node (morsel engine).
    pub threads: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            listen: "127.0.0.1:7878".to_string(),
            nodes: 8,
            tuples: 100_000,
            groups: 1_000,
            seed: 0x5eed,
            workload: Workload::Uniform,
            memory: 10_000,
            network: NetworkKind::ethernet_default(),
            queue: 32,
            concurrency: 4,
            min_grant: 0,
            deadline_ms: None,
            proc_cluster: None,
            threads: default_threads(),
        }
    }
}

/// The `--threads` default: one morsel worker per available core.
/// Results and virtual-time figures are identical at every thread
/// count (the engine's bit-identity contract), so defaulting to the
/// machine width only moves wall-clock.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Which generator feeds the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Uniform group frequencies over `--groups` groups (schema
    /// `g, v, pad`).
    Uniform,
    /// Zipf(s)-distributed group frequencies (same schema).
    Zipf(f64),
    /// TPC-D-flavoured lineitem slice (schema `flag_status, orderkey,
    /// quantity, extendedprice, pad`); `--groups` is ignored.
    Tpcd,
}

/// How to print the run trace (`--trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The `adaptagg-trace/v1` JSON document.
    Json,
    /// A per-node, per-phase text breakdown.
    Text,
}

/// The shared knob set.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// SQL text (defaults to the study's standard query).
    pub sql: String,
    /// The data generator.
    pub workload: Workload,
    /// Cluster size.
    pub nodes: usize,
    /// Relation size in tuples.
    pub tuples: usize,
    /// Group count (uniform workload).
    pub groups: usize,
    /// Strategy, or `None` for the §7 recommendation.
    pub algo: Option<AlgorithmKind>,
    /// Network model.
    pub network: NetworkKind,
    /// Hash-table budget `M` in entries.
    pub memory: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Save the generated partitions to `<prefix>.nodeN.ahf` files.
    pub save_workload: Option<String>,
    /// Load partitions from `<prefix>.nodeN.ahf` files instead of
    /// generating (`--workload`/`--tuples`/`--groups` are then ignored).
    pub load_workload: Option<String>,
    /// Seed a randomized fault schedule over the cluster.
    pub fault_seed: Option<u64>,
    /// Crash this node partway through its scan.
    pub crash_node: Option<usize>,
    /// Enable query-level fault recovery (checkpoint + retry).
    pub recovery: bool,
    /// Run with tracing enabled and print the trace (`run` only).
    pub trace: Option<TraceFormat>,
    /// Intra-node worker threads per simulated node (morsel engine).
    pub threads: usize,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            sql: "SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g".to_string(),
            workload: Workload::Uniform,
            nodes: 8,
            tuples: 100_000,
            groups: 1_000,
            algo: None,
            network: NetworkKind::ethernet_default(),
            memory: 10_000,
            seed: 0x5eed,
            save_workload: None,
            load_workload: None,
            fault_seed: None,
            crash_node: None,
            recovery: false,
            trace: None,
            threads: default_threads(),
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Usage text.
pub const USAGE: &str = "\
adaptagg — adaptive parallel aggregation on a simulated shared-nothing cluster

USAGE:
  adaptagg run     [OPTIONS]   execute one query, print results + timing
  adaptagg sweep   [OPTIONS]   sweep group counts, compare all strategies
  adaptagg explain [OPTIONS]   cost-model prediction + recommendation
  adaptagg serve   [OPTIONS]   long-lived multi-query server (see below)
  adaptagg help                this text

OPTIONS:
  --sql <QUERY>       SQL over schema (g INT, v INT, pad STR)
                      [default: SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g]
  --nodes <N>         cluster size                    [default: 8]
  --tuples <N>        relation size                   [default: 100000]
  --groups <N>        distinct groups                 [default: 1000]
  --algo <A>          c2p|2p|rep|samp|a2p|arep|opt2p|sort2p|bcast
                      [default: the §7 recommendation]
  --workload <W>      uniform | zipf:<s> | tpcd       [default: uniform]
                      (tpcd schema: flag_status, orderkey, quantity,
                       extendedprice, pad)
  --network <NET>     fast | ethernet                 [default: ethernet]
  --memory <N>        hash-table budget M, entries    [default: 10000]
  --threads <N>       morsel worker threads per node  [default: all cores]
                      (results and virtual times are identical at every
                       thread count; threads only move wall-clock)
  --seed <N>          workload seed                   [default: 24301]
  --save-workload <P> save generated partitions to <P>.nodeN.ahf
  --load-workload <P> load partitions from <P>.nodeN.ahf (skips generation)
  --fault-seed <N>    inject a seeded random fault schedule (run only)
  --crash-node <N>    crash node N partway through its scan (run only)
  --recovery          recover from node failures instead of failing fast
  --trace <FMT>       json | text — run with tracing on and print the
                      phase spans, switch events, metrics and per-link
                      traffic (run only)

SERVE OPTIONS (adaptagg serve):
  --listen <ADDR>     TCP listen address               [default: 127.0.0.1:7878]
  --nodes, --tuples, --groups, --workload, --memory, --network, --seed,
  --threads           as above: the shared dataset, per-node budget M
                      and per-query morsel workers
  --queue <N>         admission queue capacity         [default: 32]
  --concurrency <N>   queries running at once          [default: 4]
  --min-grant <N>     admission floor in entries       [default: memory/8]
  --deadline-ms <N>   default per-query deadline       [default: none]
  --proc-cluster <A0,A1,...>
                      attach a real-process worker mesh (workers started
                      with adaptagg-worker --serve) and answer 'proc'
                      commands over it

  Protocol: one request per line — optional 'key=value;' options
  (deadline_ms, stall_ms, algo, trace, fault_seed, crash_node,
  recovery) then SQL; or the bare commands ping / metrics / proc /
  shutdown. One JSON response line per request with \"status\":
  \"ok\" | \"rejected\" | \"failed\"; rejected responses carry a typed
  reason: queue_full | deadline_unmeetable | memory_exhausted.

EXIT CODES:
  0  success
  2  the query ran but fault recovery was exhausted (--recovery)
  1  any other failure (arguments, I/O, execution)
";

/// Parse `argv[1..]`.
pub fn parse(args: &[String]) -> Result<Command, ArgError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "run" => Ok(Command::Run(parse_run_args(&args[1..])?)),
        "sweep" => Ok(Command::Sweep(parse_run_args(&args[1..])?)),
        "explain" => Ok(Command::Explain(parse_run_args(&args[1..])?)),
        "serve" => Ok(Command::Serve(parse_serve_args(&args[1..])?)),
        other => Err(ArgError(format!("unknown command '{other}'; try 'adaptagg help'"))),
    }
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, ArgError> {
    let mut out = RunArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&str, ArgError> {
            args.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| ArgError(format!("{flag} needs a value")))
        };
        match flag {
            "--sql" => out.sql = value(i)?.to_string(),
            "--nodes" => out.nodes = parse_num(flag, value(i)?)?,
            "--tuples" => out.tuples = parse_num(flag, value(i)?)?,
            "--groups" => out.groups = parse_num(flag, value(i)?)?,
            "--memory" => out.memory = parse_num(flag, value(i)?)?,
            "--seed" => out.seed = parse_num(flag, value(i)?)? as u64,
            "--algo" => out.algo = Some(parse_algo(value(i)?)?),
            "--workload" => out.workload = parse_workload(value(i)?)?,
            "--save-workload" => out.save_workload = Some(value(i)?.to_string()),
            "--load-workload" => out.load_workload = Some(value(i)?.to_string()),
            "--fault-seed" => out.fault_seed = Some(parse_num(flag, value(i)?)? as u64),
            "--crash-node" => out.crash_node = Some(parse_num(flag, value(i)?)?),
            "--threads" => out.threads = parse_num(flag, value(i)?)?,
            "--trace" => {
                out.trace = Some(match value(i)? {
                    "json" => TraceFormat::Json,
                    "text" => TraceFormat::Text,
                    other => {
                        return Err(ArgError(format!(
                            "--trace must be 'json' or 'text', not '{other}'"
                        )))
                    }
                })
            }
            "--recovery" => {
                out.recovery = true;
                i += 1;
                continue;
            }
            "--network" => {
                out.network = match value(i)? {
                    "fast" => NetworkKind::high_speed_default(),
                    "ethernet" => NetworkKind::ethernet_default(),
                    other => {
                        return Err(ArgError(format!(
                            "--network must be 'fast' or 'ethernet', not '{other}'"
                        )))
                    }
                }
            }
            other => return Err(ArgError(format!("unknown option '{other}'"))),
        }
        i += 2;
    }
    if out.nodes == 0 {
        return Err(ArgError("--nodes must be at least 1".into()));
    }
    if out.threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    Ok(out)
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, ArgError> {
    let mut out = ServeArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&str, ArgError> {
            args.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| ArgError(format!("{flag} needs a value")))
        };
        match flag {
            "--listen" => out.listen = value(i)?.to_string(),
            "--nodes" => out.nodes = parse_num(flag, value(i)?)?,
            "--tuples" => out.tuples = parse_num(flag, value(i)?)?,
            "--groups" => out.groups = parse_num(flag, value(i)?)?,
            "--memory" => out.memory = parse_num(flag, value(i)?)?,
            "--seed" => out.seed = parse_num(flag, value(i)?)? as u64,
            "--workload" => out.workload = parse_workload(value(i)?)?,
            "--queue" => out.queue = parse_num(flag, value(i)?)?,
            "--concurrency" => out.concurrency = parse_num(flag, value(i)?)?,
            "--min-grant" => out.min_grant = parse_num(flag, value(i)?)?,
            "--deadline-ms" => out.deadline_ms = Some(parse_num(flag, value(i)?)? as u64),
            "--proc-cluster" => out.proc_cluster = Some(value(i)?.to_string()),
            "--threads" => out.threads = parse_num(flag, value(i)?)?,
            "--network" => {
                out.network = match value(i)? {
                    "fast" => NetworkKind::high_speed_default(),
                    "ethernet" => NetworkKind::ethernet_default(),
                    other => {
                        return Err(ArgError(format!(
                            "--network must be 'fast' or 'ethernet', not '{other}'"
                        )))
                    }
                }
            }
            other => return Err(ArgError(format!("unknown option '{other}'"))),
        }
        i += 2;
    }
    if out.nodes == 0 {
        return Err(ArgError("--nodes must be at least 1".into()));
    }
    if out.memory == 0 {
        return Err(ArgError("--memory must be at least 1".into()));
    }
    if out.concurrency == 0 {
        return Err(ArgError("--concurrency must be at least 1".into()));
    }
    if out.threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    Ok(out)
}

fn parse_num(flag: &str, s: &str) -> Result<usize, ArgError> {
    s.replace('_', "")
        .parse()
        .map_err(|_| ArgError(format!("{flag}: '{s}' is not a number")))
}

fn parse_workload(s: &str) -> Result<Workload, ArgError> {
    match s {
        "uniform" => Ok(Workload::Uniform),
        "tpcd" => Ok(Workload::Tpcd),
        other => {
            if let Some(exp) = other.strip_prefix("zipf:") {
                let exp: f64 = exp
                    .parse()
                    .map_err(|_| ArgError(format!("zipf exponent '{exp}' is not a number")))?;
                if exp < 0.0 {
                    return Err(ArgError("zipf exponent must be non-negative".into()));
                }
                Ok(Workload::Zipf(exp))
            } else {
                Err(ArgError(format!(
                    "--workload must be uniform, zipf:<s>, or tpcd, not '{other}'"
                )))
            }
        }
    }
}

fn parse_algo(s: &str) -> Result<AlgorithmKind, ArgError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "c2p" | "c-2p" => AlgorithmKind::CentralizedTwoPhase,
        "2p" => AlgorithmKind::TwoPhase,
        "rep" => AlgorithmKind::Repartitioning,
        "samp" | "sampling" => AlgorithmKind::Sampling,
        "a2p" | "a-2p" => AlgorithmKind::AdaptiveTwoPhase,
        "arep" | "a-rep" => AlgorithmKind::AdaptiveRepartitioning,
        "opt2p" | "opt-2p" => AlgorithmKind::OptimizedTwoPhase,
        "sort2p" | "sort-2p" => AlgorithmKind::SortTwoPhase,
        "bcast" | "broadcast" => AlgorithmKind::Broadcast,
        other => {
            return Err(ArgError(format!(
                "unknown algorithm '{other}'; see 'adaptagg help'"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn run_with_defaults() {
        match parse(&argv("run")).unwrap() {
            Command::Run(a) => {
                assert_eq!(a.nodes, 8);
                assert_eq!(a.tuples, 100_000);
                assert!(a.algo.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_flag_set() {
        let cmd = parse(&argv(
            "run --nodes 4 --tuples 50_000 --groups 77 --algo arep --network fast --memory 512 --seed 9",
        ))
        .unwrap();
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.nodes, 4);
                assert_eq!(a.tuples, 50_000);
                assert_eq!(a.groups, 77);
                assert_eq!(a.algo, Some(AlgorithmKind::AdaptiveRepartitioning));
                assert!(!a.network.is_shared());
                assert_eq!(a.memory, 512);
                assert_eq!(a.seed, 9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn threads_flag_on_run_and_serve() {
        match parse(&argv("run --threads 6")).unwrap() {
            Command::Run(a) => assert_eq!(a.threads, 6),
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve --threads 2")).unwrap() {
            Command::Serve(a) => assert_eq!(a.threads, 2),
            other => panic!("{other:?}"),
        }
        match parse(&argv("run")).unwrap() {
            Command::Run(a) => assert_eq!(a.threads, default_threads()),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("run --threads 0")).unwrap_err().0.contains("at least 1"));
        assert!(parse(&argv("serve --threads 0")).unwrap_err().0.contains("at least 1"));
    }

    #[test]
    fn sql_flag_takes_one_argument() {
        // The shell would keep a quoted query as one argv entry.
        let args = vec![
            "run".to_string(),
            "--sql".to_string(),
            "SELECT DISTINCT g FROM r".to_string(),
        ];
        match parse(&args).unwrap() {
            Command::Run(a) => assert_eq!(a.sql, "SELECT DISTINCT g FROM r"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_algo_spellings() {
        for (s, k) in [
            ("c2p", AlgorithmKind::CentralizedTwoPhase),
            ("2p", AlgorithmKind::TwoPhase),
            ("rep", AlgorithmKind::Repartitioning),
            ("samp", AlgorithmKind::Sampling),
            ("A2P", AlgorithmKind::AdaptiveTwoPhase),
            ("a-rep", AlgorithmKind::AdaptiveRepartitioning),
            ("opt2p", AlgorithmKind::OptimizedTwoPhase),
            ("sort-2p", AlgorithmKind::SortTwoPhase),
            ("broadcast", AlgorithmKind::Broadcast),
        ] {
            assert_eq!(parse_algo(s).unwrap(), k, "{s}");
        }
    }

    #[test]
    fn workload_flag_parses() {
        match parse(&argv("run --workload zipf:1.2")).unwrap() {
            Command::Run(a) => assert_eq!(a.workload, Workload::Zipf(1.2)),
            other => panic!("{other:?}"),
        }
        match parse(&argv("run --workload tpcd")).unwrap() {
            Command::Run(a) => assert_eq!(a.workload, Workload::Tpcd),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("run --workload zipf:x")).is_err());
        assert!(parse(&argv("run --workload zipf:-1")).is_err());
        assert!(parse(&argv("run --workload pareto")).is_err());
    }

    #[test]
    fn fault_flags_parse() {
        match parse(&argv("run --fault-seed 42 --crash-node 2 --recovery --nodes 4")).unwrap() {
            Command::Run(a) => {
                assert_eq!(a.fault_seed, Some(42));
                assert_eq!(a.crash_node, Some(2));
                assert!(a.recovery);
                // --recovery is a boolean: the flag after it still parses.
                assert_eq!(a.nodes, 4);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("run")).unwrap() {
            Command::Run(a) => {
                assert_eq!(a.fault_seed, None);
                assert_eq!(a.crash_node, None);
                assert!(!a.recovery);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_flag_parses() {
        match parse(&argv("run --trace json")).unwrap() {
            Command::Run(a) => assert_eq!(a.trace, Some(TraceFormat::Json)),
            other => panic!("{other:?}"),
        }
        match parse(&argv("run --trace text --nodes 2")).unwrap() {
            Command::Run(a) => {
                assert_eq!(a.trace, Some(TraceFormat::Text));
                assert_eq!(a.nodes, 2);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("run")).unwrap() {
            Command::Run(a) => assert_eq!(a.trace, None),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("run --trace xml")).unwrap_err().0.contains("xml"));
        assert!(parse(&argv("run --trace")).unwrap_err().0.contains("--trace"));
    }

    #[test]
    fn serve_args_parse() {
        match parse(&argv("serve")).unwrap() {
            Command::Serve(a) => {
                assert_eq!(a.listen, "127.0.0.1:7878");
                assert_eq!(a.queue, 32);
                assert_eq!(a.concurrency, 4);
                assert_eq!(a.min_grant, 0);
                assert_eq!(a.deadline_ms, None);
                assert!(a.proc_cluster.is_none());
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "serve --listen 127.0.0.1:0 --nodes 4 --memory 800 --queue 2 \
             --concurrency 2 --min-grant 100 --deadline-ms 5000 \
             --proc-cluster 127.0.0.1:9000,127.0.0.1:9001",
        ))
        .unwrap()
        {
            Command::Serve(a) => {
                assert_eq!(a.listen, "127.0.0.1:0");
                assert_eq!(a.nodes, 4);
                assert_eq!(a.memory, 800);
                assert_eq!(a.queue, 2);
                assert_eq!(a.concurrency, 2);
                assert_eq!(a.min_grant, 100);
                assert_eq!(a.deadline_ms, Some(5000));
                assert_eq!(
                    a.proc_cluster.as_deref(),
                    Some("127.0.0.1:9000,127.0.0.1:9001")
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve --memory 0")).is_err());
        assert!(parse(&argv("serve --concurrency 0")).is_err());
        assert!(parse(&argv("serve --sql x")).is_err());
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse(&argv("frobnicate")).unwrap_err().0.contains("frobnicate"));
        assert!(parse(&argv("run --nodes")).unwrap_err().0.contains("--nodes"));
        assert!(parse(&argv("run --nodes zero")).unwrap_err().0.contains("zero"));
        assert!(parse(&argv("run --algo quantum")).unwrap_err().0.contains("quantum"));
        assert!(parse(&argv("run --network token-ring")).unwrap_err().0.contains("token-ring"));
        assert!(parse(&argv("run --nodes 0")).unwrap_err().0.contains("at least 1"));
    }
}
