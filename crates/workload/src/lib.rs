//! # adaptagg-workload
//!
//! Generators for the paper's experimental data:
//!
//! * [`RelationSpec`] — uniform relations parameterized by tuple count,
//!   group count (grouping selectivity `S = groups/tuples`), tuple width
//!   (100-byte tuples in the study), and RNG seed.
//! * [`placement`] — how base tuples land on nodes; the study used
//!   round-robin ("The 2 Million 100 byte tuples were partitioned in a
//!   round-robin fashion", §5).
//! * [`skew`] — §6's two skew families: *input skew* (same groups per
//!   node, different tuple counts) and *output skew* (same tuple counts,
//!   different group counts; Figure 9's configuration assigns four of the
//!   eight nodes one group each and spreads the rest).
//! * [`tpcd`] — TPC-D-flavoured workloads covering the selectivity
//!   spectrum the introduction cites (result sizes from 2 tuples to
//!   ~1.4 M on a 100 GB database).
//!
//! Base tuples have the fixed layout `(group: Int, value: Int, pad: Str)`;
//! the default aggregation query groups on column 0 and aggregates
//! column 1, giving a projectivity close to Table 1's 16 %.

pub mod placement;
pub mod relation;
pub mod skew;
pub mod tpcd;
pub mod zipf;

pub use placement::{round_robin_partitions, Placement};
pub use relation::{default_query, generate_partitions, RelationSpec};
pub use skew::{InputSkewSpec, OutputSkewSpec};
pub use tpcd::TpcdWorkload;
pub use zipf::ZipfSpec;
