//! Data-skew generators (paper §6).
//!
//! Two skew families, contrasted with join skew taxonomies (\[WDJ91\]):
//!
//! * **input skew** — "the number of groups/node is same but number of
//!   tuples/node is different" (placement-skew analogue);
//! * **output skew** — "the number of tuples/node is same but number of
//!   groups/node is different" (product-skew analogue).
//!
//! Figure 9's configuration is [`OutputSkewSpec::paper_figure9`]: on an
//! 8-node cluster, four nodes hold one group each and the remaining four
//! share all the other groups. Output skew is where the adaptive
//! algorithms *beat the best static algorithm*, because each node picks
//! its strategy independently.

use adaptagg_model::Value;
use adaptagg_storage::HeapFile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Input skew: same group diversity everywhere, uneven tuple counts.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSkewSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Tuples on a *normal* node.
    pub tuples_per_node: usize,
    /// Multiplier for the skewed nodes' tuple count (e.g. 3.0 → 3× the
    /// tuples of a normal node).
    pub skew_factor: f64,
    /// How many nodes are skewed.
    pub skewed_nodes: usize,
    /// Total distinct groups; every node draws from all of them.
    pub groups: usize,
    /// Encoded tuple width in bytes.
    pub tuple_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl InputSkewSpec {
    /// A default input-skew scenario on the paper's 8-node cluster.
    pub fn new(nodes: usize, tuples_per_node: usize, groups: usize) -> Self {
        InputSkewSpec {
            nodes,
            tuples_per_node,
            skew_factor: 3.0,
            skewed_nodes: 1,
            groups: groups.max(1),
            tuple_bytes: 100,
            seed: 0x15ed,
        }
    }

    /// Generate per-node partitions.
    pub fn generate_partitions(&self) -> Vec<HeapFile> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pad_len = self.tuple_bytes.saturating_sub(crate::relation::FIXED_BYTES);
        let pad: Box<str> = "x".repeat(pad_len).into_boxed_str();
        (0..self.nodes)
            .map(|node| {
                let count = if node < self.skewed_nodes {
                    (self.tuples_per_node as f64 * self.skew_factor).round() as usize
                } else {
                    self.tuples_per_node
                };
                let mut file = HeapFile::new(4096);
                for _ in 0..count {
                    let g = rng.gen_range(0..self.groups) as i64;
                    file.append(&[
                        Value::Int(g),
                        Value::Int(rng.gen_range(0..1000)),
                        Value::Str(pad.clone()),
                    ])
                    .expect("tuple fits page");
                }
                file
            })
            .collect()
    }
}

/// Output skew: even tuple counts, uneven group diversity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSkewSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Tuples on every node (identical — that is the definition).
    pub tuples_per_node: usize,
    /// Total distinct groups across the relation.
    pub groups: usize,
    /// Nodes that hold **one group each** ("four nodes have only one
    /// group value each"). The remaining nodes share the other
    /// `groups - poor_nodes` groups.
    pub poor_nodes: usize,
    /// Encoded tuple width in bytes.
    pub tuple_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl OutputSkewSpec {
    /// Figure 9's configuration: 8 nodes, 4 of them single-group.
    pub fn paper_figure9(tuples_per_node: usize, groups: usize) -> Self {
        OutputSkewSpec {
            nodes: 8,
            tuples_per_node,
            groups: groups.max(8),
            poor_nodes: 4,
            tuple_bytes: 100,
            seed: 0x05ed,
        }
    }

    /// General output-skew scenario.
    pub fn new(nodes: usize, tuples_per_node: usize, groups: usize, poor_nodes: usize) -> Self {
        assert!(poor_nodes < nodes, "at least one rich node required");
        assert!(
            groups > poor_nodes,
            "need more groups than poor nodes so rich nodes have some"
        );
        OutputSkewSpec {
            nodes,
            tuples_per_node,
            groups,
            poor_nodes,
            tuple_bytes: 100,
            seed: 0x05ed,
        }
    }

    /// Generate per-node partitions. Poor node `i` holds only group `i`;
    /// rich nodes draw uniformly from groups `poor_nodes..groups`.
    pub fn generate_partitions(&self) -> Vec<HeapFile> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pad_len = self.tuple_bytes.saturating_sub(crate::relation::FIXED_BYTES);
        let pad: Box<str> = "x".repeat(pad_len).into_boxed_str();
        (0..self.nodes)
            .map(|node| {
                let mut file = HeapFile::new(4096);
                // Rich nodes must collectively cover all rich groups: give
                // node its "own" shard of rich groups first, then fill
                // randomly.
                let rich_groups: Vec<i64> =
                    (self.poor_nodes as i64..self.groups as i64).collect();
                let mut plan: Vec<i64> = Vec::with_capacity(self.tuples_per_node);
                if node < self.poor_nodes {
                    plan.resize(self.tuples_per_node, node as i64);
                } else {
                    let rich_rank = node - self.poor_nodes;
                    let rich_nodes = self.nodes - self.poor_nodes;
                    // Deterministic coverage: every rich group assigned to
                    // exactly one rich node appears at least once there.
                    for (gi, &g) in rich_groups.iter().enumerate() {
                        if gi % rich_nodes == rich_rank && plan.len() < self.tuples_per_node {
                            plan.push(g);
                        }
                    }
                    while plan.len() < self.tuples_per_node {
                        plan.push(*rich_groups.choose(&mut rng).expect("nonempty"));
                    }
                    plan.shuffle(&mut rng);
                }
                for g in plan {
                    file.append(&[
                        Value::Int(g),
                        Value::Int(rng.gen_range(0..1000)),
                        Value::Str(pad.clone()),
                    ])
                    .expect("tuple fits page");
                }
                file
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn groups_of(file: &HeapFile) -> HashSet<i64> {
        file.iter_untracked()
            .map(|t| t.unwrap()[0].as_i64().unwrap())
            .collect()
    }

    #[test]
    fn output_skew_poor_nodes_have_one_group() {
        let spec = OutputSkewSpec::paper_figure9(1000, 100);
        let parts = spec.generate_partitions();
        assert_eq!(parts.len(), 8);
        for (i, p) in parts.iter().enumerate().take(4) {
            assert_eq!(p.tuple_count(), 1000);
            let gs = groups_of(p);
            assert_eq!(gs.len(), 1, "poor node {i} has {} groups", gs.len());
            assert_eq!(gs.into_iter().next().unwrap(), i as i64);
        }
    }

    #[test]
    fn output_skew_rich_nodes_cover_remaining_groups() {
        let spec = OutputSkewSpec::paper_figure9(1000, 100);
        let parts = spec.generate_partitions();
        let mut rich: HashSet<i64> = HashSet::new();
        for p in &parts[4..] {
            assert_eq!(p.tuple_count(), 1000);
            let gs = groups_of(p);
            assert!(gs.len() > 10, "rich node should be group-diverse");
            rich.extend(gs);
        }
        // All groups 4..100 appear somewhere on the rich nodes.
        assert_eq!(rich.len(), 96);
        assert!(rich.iter().all(|&g| g >= 4));
    }

    #[test]
    fn output_skew_tuple_counts_are_equal() {
        let spec = OutputSkewSpec::new(4, 500, 20, 2);
        let parts = spec.generate_partitions();
        assert!(parts.iter().all(|p| p.tuple_count() == 500));
    }

    #[test]
    #[should_panic(expected = "rich node")]
    fn output_skew_rejects_all_poor() {
        let _ = OutputSkewSpec::new(4, 10, 10, 4);
    }

    #[test]
    fn input_skew_counts_differ_groups_match() {
        let spec = InputSkewSpec::new(4, 1000, 50);
        let parts = spec.generate_partitions();
        assert_eq!(parts[0].tuple_count(), 3000, "skewed node has 3x tuples");
        assert_eq!(parts[1].tuple_count(), 1000);
        // Group diversity is statistically similar everywhere (uniform
        // draws from the same 50 groups).
        for p in &parts {
            let gs = groups_of(p);
            assert!(gs.len() > 40, "node should see most groups, saw {}", gs.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = OutputSkewSpec::paper_figure9(100, 50).generate_partitions();
        let b = OutputSkewSpec::paper_figure9(100, 50).generate_partitions();
        for (x, y) in a.iter().zip(&b) {
            let xs: Vec<_> = x.iter_untracked().map(|t| t.unwrap()).collect();
            let ys: Vec<_> = y.iter_untracked().map(|t| t.unwrap()).collect();
            assert_eq!(xs, ys);
        }
    }
}
