//! Uniform base relations.

use adaptagg_model::{AggFunc, AggQuery, AggSpec, DataType, Field, Schema, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Fixed per-tuple encoding overhead of the `(Int, Int, Str)` layout:
/// arity u16 + two tagged ints + str tag and length prefix.
pub(crate) const FIXED_BYTES: usize = 2 + (1 + 8) + (1 + 8) + (1 + 4);

/// Specification of a uniform relation.
///
/// The grouping selectivity is `S = groups / tuples`; sweeping `groups`
/// from 1 to `tuples / 2` covers the paper's whole evaluation range
/// (scalar aggregation → duplicate elimination).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSpec {
    /// Total tuples `|R|`.
    pub tuples: usize,
    /// Distinct groups (each is guaranteed to appear at least once when
    /// `groups <= tuples`).
    pub groups: usize,
    /// Bytes per encoded tuple (the study uses 100-byte tuples). Values
    /// below the fixed layout overhead are clamped up.
    pub tuple_bytes: usize,
    /// RNG seed: generation is fully deterministic.
    pub seed: u64,
    /// Aggregate-input values are drawn uniformly from this range.
    pub value_range: std::ops::Range<i64>,
}

impl RelationSpec {
    /// A uniform relation of `tuples` tuples in `groups` groups with the
    /// study's 100-byte tuples.
    pub fn uniform(tuples: usize, groups: usize) -> Self {
        RelationSpec {
            tuples,
            groups: groups.max(1),
            tuple_bytes: 100,
            seed: 0x5eed,
            value_range: 0..1000,
        }
    }

    /// Same spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same spec with a different tuple width.
    pub fn with_tuple_bytes(mut self, bytes: usize) -> Self {
        self.tuple_bytes = bytes;
        self
    }

    /// The grouping selectivity `S`.
    pub fn selectivity(&self) -> f64 {
        self.groups as f64 / self.tuples.max(1) as f64
    }

    /// The base schema: `(g INT, v INT, pad STR)`.
    pub fn schema(&self) -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
            Field::new("pad", DataType::Str),
        ])
    }

    /// Padding length that makes each encoded tuple `tuple_bytes` long.
    pub fn pad_len(&self) -> usize {
        self.tuple_bytes.saturating_sub(FIXED_BYTES)
    }

    /// Generate the relation's tuples in a shuffled order (group ids are
    /// dealt round-robin over `0..groups` so every group appears, then the
    /// sequence is permuted so group order carries no information —
    /// matching the paper's uniform-distribution assumption).
    pub fn generate_tuples(&self) -> Vec<Vec<Value>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pad: String = "x".repeat(self.pad_len());
        let mut tuples: Vec<Vec<Value>> = (0..self.tuples)
            .map(|i| {
                vec![
                    Value::Int((i % self.groups) as i64),
                    Value::Int(rng.gen_range(self.value_range.clone())),
                    Value::Str(pad.clone().into_boxed_str()),
                ]
            })
            .collect();
        tuples.shuffle(&mut rng);
        tuples
    }
}

/// The study's default query over the base layout:
/// `SELECT g, SUM(v), COUNT(*) … GROUP BY g`.
pub fn default_query() -> AggQuery {
    AggQuery::new(
        vec![0],
        vec![AggSpec::over(AggFunc::Sum, 1), AggSpec::count_star()],
    )
}

/// Generate a relation and deal it round-robin across `nodes` partitions
/// (the paper's §5 setup), each a heap file of 4 KB pages.
pub fn generate_partitions(
    spec: &RelationSpec,
    nodes: usize,
) -> Vec<adaptagg_storage::HeapFile> {
    crate::placement::round_robin_partitions(&spec.generate_tuples(), nodes, 4096)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::encoded_len;
    use std::collections::HashSet;

    #[test]
    fn generates_exact_counts_and_groups() {
        let spec = RelationSpec::uniform(1000, 37);
        let tuples = spec.generate_tuples();
        assert_eq!(tuples.len(), 1000);
        let groups: HashSet<i64> = tuples.iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(groups.len(), 37, "every group must appear");
        assert!((spec.selectivity() - 0.037).abs() < 1e-12);
    }

    #[test]
    fn tuples_are_exactly_the_requested_width() {
        let spec = RelationSpec::uniform(10, 3);
        for t in spec.generate_tuples() {
            assert_eq!(encoded_len(&t), 100);
        }
        let narrow = RelationSpec::uniform(10, 3).with_tuple_bytes(40);
        for t in narrow.generate_tuples() {
            assert_eq!(encoded_len(&t), 40);
        }
    }

    #[test]
    fn width_clamps_to_layout_minimum() {
        let spec = RelationSpec::uniform(5, 1).with_tuple_bytes(1);
        assert_eq!(spec.pad_len(), 0);
        for t in spec.generate_tuples() {
            assert_eq!(encoded_len(&t), FIXED_BYTES);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RelationSpec::uniform(100, 10).with_seed(7).generate_tuples();
        let b = RelationSpec::uniform(100, 10).with_seed(7).generate_tuples();
        let c = RelationSpec::uniform(100, 10).with_seed(8).generate_tuples();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shuffle_breaks_group_runs() {
        // Without the shuffle, groups would arrive strictly round-robin;
        // check the first groups are not simply 0,1,2,...
        let tuples = RelationSpec::uniform(1000, 100).generate_tuples();
        let firsts: Vec<i64> = tuples[..10].iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_ne!(firsts, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn scalar_aggregation_special_case() {
        let spec = RelationSpec::uniform(50, 1);
        let tuples = spec.generate_tuples();
        assert!(tuples.iter().all(|t| t[0] == Value::Int(0)));
    }

    #[test]
    fn more_groups_than_tuples_caps_at_tuples() {
        // groups > tuples: every tuple its own group id (i % groups = i).
        let spec = RelationSpec::uniform(10, 100);
        let tuples = spec.generate_tuples();
        let groups: HashSet<i64> = tuples.iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(groups.len(), 10);
    }

    #[test]
    fn default_query_projects_group_and_value() {
        let q = default_query();
        assert_eq!(q.projection_columns(), vec![0, 1]);
        assert_eq!(q.result_row_arity(), 3);
    }

    #[test]
    fn partitions_cover_relation() {
        let spec = RelationSpec::uniform(997, 12);
        let parts = generate_partitions(&spec, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.tuple_count()).sum();
        assert_eq!(total, 997);
        // Round-robin: counts differ by at most 1.
        let counts: Vec<usize> = parts.iter().map(|p| p.tuple_count()).collect();
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }
}
