//! TPC-D-flavoured workloads.
//!
//! The paper motivates adaptivity with TPC-D: "15 out of 17 queries
//! contain aggregate operations" and result sizes "varying from 2 tuples
//! to as large as 0.28 million and 1.4 million tuples". These generators
//! reproduce that *selectivity spectrum* on a synthetic lineitem-like
//! table so the examples exercise realistic shapes without the 100 GB
//! dataset (see DESIGN.md's substitution table).
//!
//! Layout: `(returnflag_linestatus: Int, orderkey: Int, quantity: Int,
//! extendedprice: Int, pad: Str)` — a flattened slice of TPC-D `lineitem`.

use adaptagg_model::{AggFunc, AggQuery, AggSpec, Value};
use adaptagg_storage::HeapFile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Column indexes of the synthetic lineitem layout.
pub mod columns {
    /// Combined `l_returnflag`/`l_linestatus` code (6 distinct values, as
    /// in TPC-D Q1's result).
    pub const FLAG_STATUS: usize = 0;
    /// `l_orderkey` — high cardinality (duplicate-elimination regime).
    pub const ORDERKEY: usize = 1;
    /// `l_quantity`.
    pub const QUANTITY: usize = 2;
    /// `l_extendedprice` (in cents; Int to keep sums exact).
    pub const EXTENDEDPRICE: usize = 3;
    /// Padding to reach the configured tuple width.
    pub const PAD: usize = 4;
}

/// A TPC-D-flavoured lineitem slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpcdWorkload {
    /// Number of lineitem rows.
    pub rows: usize,
    /// Distinct order keys (controls the duplicate-elimination regime's
    /// selectivity; TPC-D has ~4 lineitems per order).
    pub orders: usize,
    /// Encoded tuple width in bytes.
    pub tuple_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TpcdWorkload {
    /// A workload with `rows` lineitems over `rows/4` orders.
    pub fn new(rows: usize) -> Self {
        TpcdWorkload {
            rows,
            orders: (rows / 4).max(1),
            tuple_bytes: 120,
            seed: 0x7bcd,
        }
    }

    /// TPC-D Q1's aggregation: a handful of groups, several aggregates —
    /// the *low-selectivity* end where Two Phase shines.
    ///
    /// `SELECT flag_status, SUM(quantity), SUM(extendedprice),
    ///  AVG(quantity), COUNT(*) … GROUP BY flag_status`.
    pub fn q1_query() -> AggQuery {
        AggQuery::new(
            vec![columns::FLAG_STATUS],
            vec![
                AggSpec::over(AggFunc::Sum, columns::QUANTITY),
                AggSpec::over(AggFunc::Sum, columns::EXTENDEDPRICE),
                AggSpec::over(AggFunc::Avg, columns::QUANTITY),
                AggSpec::count_star(),
            ],
        )
    }

    /// A per-order aggregation (Q18-flavoured): one group per order —
    /// the *high-selectivity* end where Repartitioning shines.
    ///
    /// `SELECT orderkey, SUM(quantity) … GROUP BY orderkey`.
    pub fn per_order_query() -> AggQuery {
        AggQuery::new(
            vec![columns::ORDERKEY],
            vec![AggSpec::over(AggFunc::Sum, columns::QUANTITY)],
        )
    }

    /// Duplicate elimination over order keys:
    /// `SELECT DISTINCT orderkey …` — result can approach input size.
    pub fn distinct_orders_query() -> AggQuery {
        AggQuery::distinct(vec![columns::ORDERKEY])
    }

    /// Number of distinct `flag_status` codes generated (TPC-D Q1 yields
    /// at most 6 rows: A/F, N/F, N/O, R/F plus rarities; we generate 6).
    pub const FLAG_STATUS_CARDINALITY: usize = 6;

    /// Generate the lineitem rows.
    pub fn generate_tuples(&self) -> Vec<Vec<Value>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Fixed layout bytes: arity(2) + 4 tagged ints (9 each) + str(5+len).
        let pad_len = self.tuple_bytes.saturating_sub(2 + 4 * 9 + 5);
        let pad: Box<str> = "x".repeat(pad_len).into_boxed_str();
        (0..self.rows)
            .map(|i| {
                // Skewed flag distribution, as in real lineitem data.
                let flag = match rng.gen_range(0..100) {
                    0..=48 => 0,  // N/O ~ half
                    49..=73 => 1, // A/F
                    74..=98 => 2, // R/F
                    _ => rng.gen_range(3..6), // rare codes
                };
                vec![
                    Value::Int(flag),
                    Value::Int((i % self.orders) as i64),
                    Value::Int(rng.gen_range(1..51)),
                    Value::Int(rng.gen_range(10_000..1_000_000)),
                    Value::Str(pad.clone()),
                ]
            })
            .collect()
    }

    /// Generate and deal round-robin across `nodes`.
    pub fn generate_partitions(&self, nodes: usize) -> Vec<HeapFile> {
        crate::placement::round_robin_partitions(&self.generate_tuples(), nodes, 4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::encoded_len;
    use std::collections::HashSet;

    #[test]
    fn q1_groups_are_few() {
        let w = TpcdWorkload::new(10_000);
        let tuples = w.generate_tuples();
        let flags: HashSet<i64> = tuples
            .iter()
            .map(|t| t[columns::FLAG_STATUS].as_i64().unwrap())
            .collect();
        assert!(flags.len() <= TpcdWorkload::FLAG_STATUS_CARDINALITY);
        assert!(flags.len() >= 3, "common codes must all appear");
    }

    #[test]
    fn per_order_groups_are_many() {
        let w = TpcdWorkload::new(1000);
        let tuples = w.generate_tuples();
        let orders: HashSet<i64> = tuples
            .iter()
            .map(|t| t[columns::ORDERKEY].as_i64().unwrap())
            .collect();
        assert_eq!(orders.len(), 250);
    }

    #[test]
    fn tuple_width_is_exact() {
        let w = TpcdWorkload::new(50);
        for t in w.generate_tuples() {
            assert_eq!(encoded_len(&t), 120);
        }
    }

    #[test]
    fn queries_reference_valid_columns() {
        let w = TpcdWorkload::new(10);
        let tuples = w.generate_tuples();
        for q in [
            TpcdWorkload::q1_query(),
            TpcdWorkload::per_order_query(),
            TpcdWorkload::distinct_orders_query(),
        ] {
            for &c in &q.projection_columns() {
                assert!(c < tuples[0].len(), "query column {c} out of layout");
            }
        }
    }

    #[test]
    fn partitions_cover_rows() {
        let w = TpcdWorkload::new(101);
        let parts = w.generate_partitions(8);
        let total: usize = parts.iter().map(|p| p.tuple_count()).sum();
        assert_eq!(total, 101);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TpcdWorkload::new(100).generate_tuples();
        let b = TpcdWorkload::new(100).generate_tuples();
        assert_eq!(a, b);
    }
}
