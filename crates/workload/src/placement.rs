//! Tuple placement across nodes.

use adaptagg_model::hash::{hash_values, Seed};
use adaptagg_model::Value;
use adaptagg_storage::HeapFile;

/// How base tuples are assigned to nodes before the query runs. The
/// algorithms never rely on placement (that is the point of
/// repartitioning), but skew studies do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Deal tuples to nodes in rotation (the paper's §5 setup). Balances
    /// tuple counts exactly; groups land everywhere.
    RoundRobin,
    /// Place by hash of the group column — pre-aligned with the
    /// aggregation partitioning (an ablation: makes Repartitioning's
    /// network work redundant).
    HashOnGroup {
        /// Column holding the group id.
        column: usize,
    },
}

/// Deal `tuples` round-robin into `nodes` heap files of `page_bytes` pages.
pub fn round_robin_partitions(
    tuples: &[Vec<Value>],
    nodes: usize,
    page_bytes: usize,
) -> Vec<HeapFile> {
    assert!(nodes > 0);
    let mut files: Vec<HeapFile> = (0..nodes).map(|_| HeapFile::new(page_bytes)).collect();
    for (i, t) in tuples.iter().enumerate() {
        files[i % nodes]
            .append(t)
            .expect("generated tuple exceeds page size");
    }
    files
}

/// Place tuples under any [`Placement`] policy.
pub fn place(
    tuples: &[Vec<Value>],
    nodes: usize,
    page_bytes: usize,
    placement: Placement,
) -> Vec<HeapFile> {
    match placement {
        Placement::RoundRobin => round_robin_partitions(tuples, nodes, page_bytes),
        Placement::HashOnGroup { column } => {
            assert!(nodes > 0);
            let mut files: Vec<HeapFile> = (0..nodes).map(|_| HeapFile::new(page_bytes)).collect();
            for t in tuples {
                let key = std::slice::from_ref(&t[column]);
                let node = (hash_values(Seed::Partition, key) % nodes as u64) as usize;
                files[node].append(t).expect("generated tuple exceeds page size");
            }
            files
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(n: usize, groups: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![Value::Int((i % groups) as i64), Value::Int(i as i64)])
            .collect()
    }

    #[test]
    fn round_robin_balances_counts() {
        let parts = round_robin_partitions(&tuples(103, 10), 4, 4096);
        let counts: Vec<usize> = parts.iter().map(|p| p.tuple_count()).collect();
        assert_eq!(counts, vec![26, 26, 26, 25]);
    }

    #[test]
    fn hash_placement_collocates_groups() {
        let parts = place(
            &tuples(400, 20),
            4,
            4096,
            Placement::HashOnGroup { column: 0 },
        );
        // Every group must live on exactly one node.
        let mut group_node = std::collections::HashMap::new();
        for (ni, part) in parts.iter().enumerate() {
            for t in part.iter_untracked() {
                let g = t.unwrap()[0].as_i64().unwrap();
                let prev = group_node.insert(g, ni);
                if let Some(p) = prev {
                    assert_eq!(p, ni, "group {g} split across nodes");
                }
            }
        }
        assert_eq!(group_node.len(), 20);
    }

    #[test]
    fn placement_preserves_every_tuple() {
        let ts = tuples(250, 7);
        for placement in [Placement::RoundRobin, Placement::HashOnGroup { column: 0 }] {
            let parts = place(&ts, 3, 4096, placement);
            let total: usize = parts.iter().map(|p| p.tuple_count()).sum();
            assert_eq!(total, 250, "{placement:?}");
        }
    }
}
