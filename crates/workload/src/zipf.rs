//! Zipfian group-frequency skew (extension).
//!
//! The paper's §6 varies how groups and tuples are *placed across nodes*;
//! group **frequencies** stay uniform. Real GROUP BY columns are rarely
//! uniform — a few heavy-hitter groups dominate. This generator draws
//! group ids from a Zipf(s) distribution so the experiments can probe the
//! dimension the paper leaves open: under Repartitioning, the node that
//! owns a heavy group receives a disproportionate share of the relation
//! (receiver skew), while the Two Phase family collapses the heavy group
//! locally before anything crosses the wire.

use adaptagg_model::Value;
use adaptagg_storage::HeapFile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A relation whose group ids follow a Zipf distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSpec {
    /// Total tuples.
    pub tuples: usize,
    /// Distinct group ids (ranks `0..groups`; rank 0 is the heaviest).
    pub groups: usize,
    /// The Zipf exponent `s ≥ 0`: 0 = uniform; 1 ≈ classic web-like skew;
    /// larger = heavier head.
    pub exponent: f64,
    /// Encoded tuple width in bytes.
    pub tuple_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ZipfSpec {
    /// A Zipf(s) relation.
    pub fn new(tuples: usize, groups: usize, exponent: f64) -> Self {
        assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
        ZipfSpec {
            tuples,
            groups: groups.max(1),
            exponent,
            tuple_bytes: 100,
            seed: 0x21bf,
        }
    }

    /// The cumulative distribution over ranks (normalized).
    fn cdf(&self) -> Vec<f64> {
        let mut cum = Vec::with_capacity(self.groups);
        let mut total = 0.0f64;
        for rank in 0..self.groups {
            total += 1.0 / ((rank + 1) as f64).powf(self.exponent);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        cum
    }

    /// Generate tuples `(group, value, pad)`.
    pub fn generate_tuples(&self) -> Vec<Vec<Value>> {
        let cdf = self.cdf();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pad_len = self.tuple_bytes.saturating_sub(crate::relation::FIXED_BYTES);
        let pad: Box<str> = "x".repeat(pad_len).into_boxed_str();
        (0..self.tuples)
            .map(|_| {
                let u: f64 = rng.gen();
                let rank = cdf.partition_point(|&c| c < u).min(self.groups - 1);
                vec![
                    Value::Int(rank as i64),
                    Value::Int(rng.gen_range(0..1000)),
                    Value::Str(pad.clone()),
                ]
            })
            .collect()
    }

    /// Generate and deal round-robin across `nodes`.
    pub fn generate_partitions(&self, nodes: usize) -> Vec<HeapFile> {
        crate::placement::round_robin_partitions(&self.generate_tuples(), nodes, 4096)
    }

    /// The expected share of the heaviest group (diagnostics/tests).
    pub fn head_share(&self) -> f64 {
        let total: f64 = (0..self.groups)
            .map(|r| 1.0 / ((r + 1) as f64).powf(self.exponent))
            .sum();
        1.0 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn frequencies(spec: &ZipfSpec) -> HashMap<i64, usize> {
        let mut f = HashMap::new();
        for t in spec.generate_tuples() {
            *f.entry(t[0].as_i64().unwrap()).or_insert(0) += 1;
        }
        f
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let spec = ZipfSpec::new(40_000, 10, 0.0);
        let f = frequencies(&spec);
        for g in 0..10 {
            let c = f[&g];
            assert!(
                (3_400..=4_600).contains(&c),
                "group {g}: {c} of 40000 (expected ~4000)"
            );
        }
    }

    #[test]
    fn heavy_head_emerges_with_exponent() {
        let spec = ZipfSpec::new(40_000, 100, 1.2);
        let f = frequencies(&spec);
        let head = f[&0];
        let expected = spec.head_share() * 40_000.0;
        assert!(
            (head as f64 - expected).abs() < expected * 0.15,
            "head {head} vs expected {expected}"
        );
        // Rank 0 dominates rank 50 by at least an order of magnitude.
        let mid = f.get(&50).copied().unwrap_or(0);
        assert!(head > mid * 10, "head {head}, rank-50 {mid}");
    }

    #[test]
    fn frequencies_are_monotone_in_rank() {
        let spec = ZipfSpec::new(60_000, 20, 1.0);
        let f = frequencies(&spec);
        // Allow sampling noise: compare rank i to rank i+4.
        for g in 0..15 {
            let hi = f.get(&g).copied().unwrap_or(0);
            let lo = f.get(&(g + 4)).copied().unwrap_or(0);
            assert!(hi + 500 > lo, "rank {g}: {hi} vs rank {}: {lo}", g + 4);
        }
    }

    #[test]
    fn deterministic_and_full_width() {
        let a = ZipfSpec::new(500, 10, 1.0).generate_tuples();
        let b = ZipfSpec::new(500, 10, 1.0).generate_tuples();
        assert_eq!(a, b);
        assert_eq!(adaptagg_model::encoded_len(&a[0]), 100);
    }

    #[test]
    fn partitions_cover_everything() {
        let spec = ZipfSpec::new(1_001, 50, 0.8);
        let parts = spec.generate_partitions(8);
        let total: usize = parts.iter().map(|p| p.tuple_count()).sum();
        assert_eq!(total, 1_001);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_exponent_rejected() {
        let _ = ZipfSpec::new(10, 10, -1.0);
    }
}
