//! # adaptagg-bench
//!
//! The figure-regeneration harness: one binary per table/figure of the
//! paper (see DESIGN.md §4 for the experiment index), sharing the
//! reporting helpers here, plus Criterion micro/macro benchmarks under
//! `benches/`.
//!
//! Figures 1–7 evaluate the analytical model (`adaptagg-cost`); Figures
//! 8–9 *run* the algorithms on the simulated cluster (`adaptagg-algos`)
//! and report elapsed **virtual** milliseconds. Absolute values are not
//! expected to match a 1995 SPARC cluster; the shapes and orderings are.
//!
//! Every binary accepts `--full` to use the paper's full data sizes
//! (2 M tuples for the implementation figures); the default is a scaled
//! run that finishes in seconds. `--help` prints usage.

pub mod ablations;
pub mod figures;
pub mod measured;
pub mod report;
pub mod serving;
pub mod throughput;

pub use report::{Series, Table};

/// Flags shared by every figure binary.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cli {
    /// Use the paper's full data sizes.
    pub full: bool,
    /// Emit CSV instead of the aligned table (for plotting tools).
    pub csv: bool,
}

impl Cli {
    /// Print a table per the `--csv` flag.
    pub fn print(&self, table: &report::Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}

/// Parse the common CLI convention used by every figure binary
/// (`--full`, `--csv`, `--help`).
pub fn parse_args(usage: &str) -> Cli {
    let mut cli = Cli::default();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--full" => cli.full = true,
            "--csv" => cli.csv = true,
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    cli
}
