//! Measured figures (8–9): run the algorithms on the simulated cluster.
//!
//! These are the paper's *implementation results*: real hash tables, real
//! message traffic, real per-node adaptive decisions — timed in virtual
//! milliseconds (see DESIGN.md §3's substitution table).

use crate::report::{Series, Table};
use adaptagg_algos::{run_algorithm_with, AlgoConfig, AlgorithmKind};
use adaptagg_exec::ClusterConfig;
use adaptagg_model::CostParams;
use adaptagg_workload::{default_query, generate_partitions, OutputSkewSpec, RelationSpec};

/// The paper's implementation platform: 8 nodes, 10 Mbit shared bus.
pub fn cluster_8nodes(max_hash_entries: usize) -> ClusterConfig {
    let params = CostParams {
        max_hash_entries,
        ..CostParams::cluster_default()
    };
    ClusterConfig::new(8, params)
}

/// Group counts swept by the measured figures (log-spaced from scalar
/// aggregation toward duplicate elimination).
pub fn group_grid(tuples: usize) -> Vec<usize> {
    let mut out = vec![1];
    let mut g = 8usize;
    while g <= tuples / 2 {
        out.push(g);
        g *= 8;
    }
    out.push(tuples / 2);
    out.dedup();
    out
}

/// Figure 8: the five algorithms of the implementation study on uniform
/// data. `tuples` is the relation size (2 M in the paper; the default
/// binary uses a scaled size). The hash-table budget `m` scales with the
/// relation so the memory knee lands inside the sweep, as it does in the
/// paper (10 K entries against 250 K tuples/node).
pub fn fig8(tuples: usize, m: usize) -> Table {
    let cluster = cluster_8nodes(m);
    let cfg = AlgoConfig::default_for(cluster.nodes);
    let query = default_query();
    let groups = group_grid(tuples);

    let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); AlgorithmKind::FIGURE8.len()];
    for &g in &groups {
        let spec = RelationSpec::uniform(tuples, g);
        let parts = generate_partitions(&spec, cluster.nodes);
        for (i, &kind) in AlgorithmKind::FIGURE8.iter().enumerate() {
            let out = run_algorithm_with(kind, &cluster, &parts, &query, &cfg)
                .expect("algorithm run succeeds");
            assert_eq!(out.rows.len(), g.min(tuples), "{kind} wrong result size");
            per_algo[i].push(out.elapsed_ms());
        }
    }

    Table::new(
        format!(
            "Figure 8: implementation, 8 nodes, shared bus, {tuples} x 100B tuples, M={m}"
        ),
        "groups",
        groups.iter().map(|&g| g as f64).collect(),
        AlgorithmKind::FIGURE8
            .iter()
            .zip(per_algo)
            .map(|(k, v)| Series::new(k.label(), v))
            .collect(),
    )
}

/// Figure 9: output skew — four of the eight nodes hold one group each,
/// the other four share the rest. Sweeps the total group count.
pub fn fig9(tuples_per_node: usize, m: usize) -> Table {
    let cluster = cluster_8nodes(m);
    let cfg = AlgoConfig::default_for(cluster.nodes);
    let query = default_query();
    // Group counts from below the memory knee up to the regime where the
    // rich nodes approach duplicate elimination — §6's interesting zone:
    // there 2P ships as much as A2P *and* pays the spill, so the
    // per-node-adaptive algorithms beat both statics.
    let groups = [
        m,
        4 * m,
        tuples_per_node,
        2 * tuples_per_node,
        8 * tuples_per_node,
    ];

    let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); AlgorithmKind::FIGURE8.len()];
    for &g in &groups {
        let spec = OutputSkewSpec::paper_figure9(tuples_per_node, g.max(8));
        let parts = spec.generate_partitions();
        for (i, &kind) in AlgorithmKind::FIGURE8.iter().enumerate() {
            let out = run_algorithm_with(kind, &cluster, &parts, &query, &cfg)
                .expect("algorithm run succeeds");
            per_algo[i].push(out.elapsed_ms());
        }
    }

    Table::new(
        format!(
            "Figure 9: output skew, 8 nodes (4 single-group), {tuples_per_node} tuples/node, M={m}"
        ),
        "groups",
        groups.iter().map(|&g| g as f64).collect(),
        AlgorithmKind::FIGURE8
            .iter()
            .zip(per_algo)
            .map(|(k, v)| Series::new(k.label(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_grid_covers_the_range() {
        let g = group_grid(200_000);
        assert_eq!(g[0], 1);
        assert_eq!(*g.last().unwrap(), 100_000);
        assert!(g.len() >= 5);
    }

    // Small smoke runs; the full figures are exercised by the binaries.

    #[test]
    fn fig8_small_has_expected_shape() {
        let t = fig8(16_000, 200);
        let idx = |label: &str| t.series.iter().position(|s| s.label == label).unwrap();
        let (tp, rep, a2p) = (idx("2P"), idx("Rep"), idx("A-2P"));
        // Low groups: 2P beats Rep, and A-2P behaves exactly like 2P
        // (never switches).
        assert!(
            t.series[tp].values[0] < t.series[rep].values[0],
            "2P should win at 1 group"
        );
        let ratio = t.series[a2p].values[0] / t.series[tp].values[0];
        assert!((0.9..=1.1).contains(&ratio), "A-2P/2P at 1 group = {ratio}");
        // High groups (duplicate-elimination end): partials stop
        // compressing, so 2P ships as much as Rep *plus* spills — Rep and
        // A-2P win.
        let last = t.xs.len() - 1;
        assert!(t.series[rep].values[last] < t.series[tp].values[last]);
        assert!(t.series[a2p].values[last] < t.series[tp].values[last]);
        // A-2P never does much worse than full Repartitioning (it ships
        // at most what Rep ships; right after its switch the burst can
        // cost slightly more bus time). The headroom also absorbs
        // run-to-run virtual-clock jitter: which arrived message a
        // receiver observes first depends on thread scheduling, and at
        // 8 nodes the post-switch burst makes A-2P's measured time vary
        // by ~10% (Rep stays near-constant). Observed ratios reach
        // ~1.32 under load; 1.5 still cleanly separates A-2P from a
        // genuinely losing algorithm (Broadcast runs >3x Rep).
        for i in 0..t.xs.len() {
            assert!(
                t.series[a2p].values[i] <= t.series[rep].values[i] * 1.5,
                "A-2P {} vs Rep {} at {} groups",
                t.series[a2p].values[i],
                t.series[rep].values[i],
                t.xs[i]
            );
        }
    }

    #[test]
    fn fig9_small_adaptives_beat_statics() {
        let t = fig9(2_000, 100);
        let idx = |label: &str| t.series.iter().position(|s| s.label == label).unwrap();
        // §6's headline: at the high-skew end the per-node decisions of
        // A-2P (poor nodes compress, rich nodes repartition) beat both
        // static algorithms.
        let last = t.xs.len() - 1;
        let a2p = t.series[idx("A-2P")].values[last];
        let tp = t.series[idx("2P")].values[last];
        let rep = t.series[idx("Rep")].values[last];
        assert!(a2p < tp, "A-2P {a2p} >= 2P {tp}");
        assert!(a2p < rep, "A-2P {a2p} >= Rep {rep}");
    }
}
