//! Aligned-table reporting for figure data.

use std::fmt;

/// One curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (algorithm name).
    pub label: String,
    /// y-values, aligned with the table's x-values.
    pub values: Vec<f64>,
}

impl Series {
    /// Build a series.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }
}

/// A figure as a table: an x-column plus one column per series.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Figure title.
    pub title: String,
    /// x-axis name.
    pub x_label: String,
    /// x-values.
    pub xs: Vec<f64>,
    /// The curves.
    pub series: Vec<Series>,
    /// Whether larger values win (scaleup figures) instead of smaller
    /// (time figures).
    pub higher_is_better: bool,
}

impl Table {
    /// Build a time table (lower is better); every series must match the
    /// x length.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        xs: Vec<f64>,
        series: Vec<Series>,
    ) -> Self {
        let t = Table {
            title: title.into(),
            x_label: x_label.into(),
            xs,
            series,
            higher_is_better: false,
        };
        for s in &t.series {
            assert_eq!(
                s.values.len(),
                t.xs.len(),
                "series '{}' length mismatch",
                s.label
            );
        }
        t
    }

    /// Mark the table as higher-is-better (scaleup ratios).
    pub fn higher_is_better(mut self) -> Self {
        self.higher_is_better = true;
        self
    }

    /// Render as CSV (header row, then one row per x) for plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_field(&self.x_label));
        for s in &self.series {
            out.push(',');
            out.push_str(&csv_field(&s.label));
        }
        out.push('\n');
        for (i, x) in self.xs.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push_str(&format!(",{}", s.values[i]));
            }
            out.push('\n');
        }
        out
    }

    /// The winner (series index) at row `i`.
    pub fn winner_at(&self, i: usize) -> usize {
        let best = self.series.iter().enumerate().min_by(|(_, a), (_, b)| {
            let ord = a.values[i].total_cmp(&b.values[i]);
            if self.higher_is_better {
                ord.reverse()
            } else {
                ord
            }
        });
        best.map(|(idx, _)| idx).unwrap_or(0)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.title)?;
        write!(f, "{:>14}", self.x_label)?;
        for s in &self.series {
            write!(f, " {:>12}", s.label)?;
        }
        writeln!(f, " {:>8}", "winner")?;
        let precision = if self.higher_is_better { 3 } else { 1 };
        for (i, x) in self.xs.iter().enumerate() {
            write!(f, "{x:>14.6e}")?;
            for s in &self.series {
                write!(f, " {:>12.prec$}", s.values[i], prec = precision)?;
            }
            writeln!(f, " {:>8}", self.series[self.winner_at(i)].label)?;
        }
        Ok(())
    }
}

/// Quote a CSV field if needed (labels may contain commas in principle).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "Fig X",
            "S",
            vec![0.1, 0.2],
            vec![
                Series::new("A", vec![5.0, 1.0]),
                Series::new("B", vec![2.0, 3.0]),
            ],
        )
    }

    #[test]
    fn winners_are_minima() {
        let t = table();
        assert_eq!(t.winner_at(0), 1);
        assert_eq!(t.winner_at(1), 0);
    }

    #[test]
    fn display_has_header_rows_and_winner() {
        let s = table().to_string();
        assert!(s.contains("# Fig X"));
        assert!(s.lines().count() >= 4);
        assert!(s.contains("winner"));
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "S,A,B");
        assert_eq!(lines[1], "0.1,5,2");
        assert_eq!(lines[2], "0.2,1,3");
    }

    #[test]
    fn csv_quotes_awkward_labels() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let _ = Table::new(
            "t",
            "x",
            vec![1.0],
            vec![Series::new("A", vec![1.0, 2.0])],
        );
    }
}
