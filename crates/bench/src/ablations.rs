//! Extension experiments beyond the paper's figures: the §6.1 input-skew
//! study (discussed but not plotted in the paper) and ablations of the
//! design knobs DESIGN.md calls out.

use crate::measured::cluster_8nodes;
use crate::report::{Series, Table};
use adaptagg_algos::{run_algorithm_with, AlgoConfig, AlgorithmKind};
use adaptagg_exec::ClusterConfig;
use adaptagg_model::CostParams;
use adaptagg_workload::{default_query, generate_partitions, InputSkewSpec, RelationSpec};

/// §6.1 — input skew: sweep the skew factor (how many times a normal
/// node's tuples the skewed node holds) and measure all five algorithms.
/// The paper predicts the effect is mostly additional input I/O on the
/// skewed node, for every algorithm.
pub fn input_skew(tuples_per_node: usize, groups: usize, m: usize) -> Table {
    let cluster = cluster_8nodes(m);
    let cfg = AlgoConfig::default_for(cluster.nodes);
    let query = default_query();
    let factors = [1.0f64, 1.5, 2.0, 3.0, 4.0];

    let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); AlgorithmKind::FIGURE8.len()];
    for &f in &factors {
        let mut spec = InputSkewSpec::new(cluster.nodes, tuples_per_node, groups);
        spec.skew_factor = f;
        let parts = spec.generate_partitions();
        for (i, &kind) in AlgorithmKind::FIGURE8.iter().enumerate() {
            let out = run_algorithm_with(kind, &cluster, &parts, &query, &cfg)
                .expect("algorithm run succeeds");
            per_algo[i].push(out.elapsed_ms());
        }
    }
    Table::new(
        format!(
            "Input skew (§6.1): 8 nodes, {tuples_per_node} tuples on normal nodes, {groups} groups, M={m}"
        ),
        "skew factor",
        factors.to_vec(),
        AlgorithmKind::FIGURE8
            .iter()
            .zip(per_algo)
            .map(|(k, v)| Series::new(k.label(), v))
            .collect(),
    )
}

/// Ablation: the hash-table memory budget `M`. Sweeps `M` at a fixed
/// mid-range workload; locates each algorithm's knee.
pub fn ablate_memory(tuples: usize, groups: usize) -> Table {
    let cfg_algos = [
        AlgorithmKind::TwoPhase,
        AlgorithmKind::Repartitioning,
        AlgorithmKind::AdaptiveTwoPhase,
        AlgorithmKind::OptimizedTwoPhase,
    ];
    let ms = [64usize, 256, 1_024, 4_096, 16_384];
    let spec = RelationSpec::uniform(tuples, groups);

    let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); cfg_algos.len()];
    for &m in &ms {
        let cluster = cluster_8nodes(m);
        let cfg = AlgoConfig::default_for(cluster.nodes);
        let parts = generate_partitions(&spec, cluster.nodes);
        for (i, &kind) in cfg_algos.iter().enumerate() {
            let out = run_algorithm_with(kind, &cluster, &parts, &default_query(), &cfg)
                .expect("algorithm run succeeds");
            per_algo[i].push(out.elapsed_ms());
        }
    }
    Table::new(
        format!("Ablation: hash-table budget M ({tuples} tuples, {groups} groups, 8 nodes, shared bus)"),
        "M entries",
        ms.iter().map(|&m| m as f64).collect(),
        cfg_algos
            .iter()
            .zip(per_algo)
            .map(|(k, v)| Series::new(k.label(), v))
            .collect(),
    )
}

/// Ablation: Adaptive Repartitioning's `initSeg`. Small segments judge
/// group counts from too little evidence; large segments repartition most
/// of the relation before deciding. Run at a *low*-group workload where
/// fallback is the right call.
pub fn ablate_initseg(tuples: usize, groups: usize, m: usize) -> Table {
    let cluster = cluster_8nodes(m);
    let query = default_query();
    let spec = RelationSpec::uniform(tuples, groups);
    let segs = [256usize, 1_024, 4_096, 8_192];

    let mut times = Vec::new();
    let mut fell_back = Vec::new();
    for &seg in &segs {
        let mut cfg = AlgoConfig::default_for(cluster.nodes);
        cfg.arep_init_seg = seg;
        let parts = generate_partitions(&spec, cluster.nodes);
        let out = run_algorithm_with(
            AlgorithmKind::AdaptiveRepartitioning,
            &cluster,
            &parts,
            &query,
            &cfg,
        )
        .expect("algorithm run succeeds");
        times.push(out.elapsed_ms());
        fell_back.push(out.adapted_nodes().len() as f64);
    }
    Table::new(
        format!("Ablation: ARep initSeg ({tuples} tuples, {groups} groups — fallback is correct)"),
        "initSeg",
        segs.iter().map(|&s| s as f64).collect(),
        vec![
            Series::new("A-Rep ms", times),
            Series::new("fellback", fell_back),
        ],
    )
}

/// Ablation: the message block size (§5 "blocked the messages into 2 KB
/// pages"). Tiny blocks multiply per-page protocol and transfer charges;
/// huge blocks only help marginally past the paper's 2 KB choice.
pub fn ablate_msgblock(tuples: usize, groups: usize) -> Table {
    let query = default_query();
    let spec = RelationSpec::uniform(tuples, groups);
    let sizes = [256usize, 512, 2_048, 8_192];

    // Scale m_l with the block size so the modelled *bandwidth* is
    // constant (2 ms per 2 KB page = ~1 MB/s): otherwise bigger blocks
    // would trivially win by carrying free bytes.
    let mut per_size = Vec::new();
    for &bytes in &sizes {
        let params = CostParams {
            message_bytes: bytes,
            network: adaptagg_model::NetworkKind::SharedBus {
                ms_per_page: 2.0 * bytes as f64 / 2048.0,
            },
            max_hash_entries: 1_250,
            ..CostParams::cluster_default()
        };
        let cluster = ClusterConfig::new(8, params);
        let cfg = AlgoConfig::default_for(cluster.nodes);
        let parts = generate_partitions(&spec, cluster.nodes);
        let out = run_algorithm_with(
            AlgorithmKind::Repartitioning,
            &cluster,
            &parts,
            &query,
            &cfg,
        )
        .expect("algorithm run succeeds");
        per_size.push(out.elapsed_ms());
    }
    Table::new(
        format!("Ablation: message block size, Repartitioning ({tuples} tuples, {groups} groups, fixed bandwidth)"),
        "block bytes",
        sizes.iter().map(|&s| s as f64).collect(),
        vec![Series::new("Rep ms", per_size)],
    )
}

/// Extension: Zipfian group-frequency skew. Sweeps the Zipf exponent at
/// a fixed high group count — the regime where uniform data would say
/// "repartition" — and shows the heavy head eroding Repartitioning's
/// advantage (the owner of group 0 becomes a receiver hotspot) while the
/// Two Phase family collapses the head locally.
pub fn zipf_sweep(tuples: usize, groups: usize, m: usize) -> Table {
    let cluster = cluster_8nodes(m);
    let cfg = AlgoConfig::default_for(cluster.nodes);
    let query = default_query();
    let exponents = [0.0f64, 0.5, 1.0, 1.5];
    let algos = [
        AlgorithmKind::TwoPhase,
        AlgorithmKind::Repartitioning,
        AlgorithmKind::AdaptiveTwoPhase,
    ];

    let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
    for &s in &exponents {
        let spec = adaptagg_workload::ZipfSpec::new(tuples, groups, s);
        let parts = spec.generate_partitions(cluster.nodes);
        for (i, &kind) in algos.iter().enumerate() {
            let out = run_algorithm_with(kind, &cluster, &parts, &query, &cfg)
                .expect("algorithm run succeeds");
            per_algo[i].push(out.elapsed_ms());
        }
    }
    Table::new(
        format!("Extension: Zipfian group frequencies ({tuples} tuples, {groups} groups, M={m})"),
        "zipf s",
        exponents.to_vec(),
        algos
            .iter()
            .zip(per_algo)
            .map(|(k, v)| Series::new(k.label(), v))
            .collect(),
    )
}

/// Extension: all nine strategies (the paper's six plus the three
/// related-work baselines) on one uniform workload per regime.
pub fn baselines(tuples: usize, m: usize) -> Table {
    let cluster = cluster_8nodes(m);
    let cfg = AlgoConfig::default_for(cluster.nodes);
    let query = default_query();
    let group_counts = [8usize, tuples / 40, tuples / 2];

    let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); AlgorithmKind::ALL.len()];
    for &g in &group_counts {
        let spec = RelationSpec::uniform(tuples, g);
        let parts = generate_partitions(&spec, cluster.nodes);
        for (i, &kind) in AlgorithmKind::ALL.iter().enumerate() {
            let out = run_algorithm_with(kind, &cluster, &parts, &query, &cfg)
                .expect("algorithm run succeeds");
            per_algo[i].push(out.elapsed_ms());
        }
    }
    Table::new(
        format!("All nine strategies ({tuples} tuples, 8 nodes, shared bus, M={m})"),
        "groups",
        group_counts.iter().map(|&g| g as f64).collect(),
        AlgorithmKind::ALL
            .iter()
            .zip(per_algo)
            .map(|(k, v)| Series::new(k.label(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_skew_hurts_everyone_monotonically_ish() {
        let t = input_skew(3_000, 100, 1_000);
        for s in &t.series {
            let first = s.values[0];
            let last = *s.values.last().unwrap();
            assert!(
                last > first,
                "{}: 4x input skew should cost more than none ({first} -> {last})",
                s.label
            );
        }
    }

    #[test]
    fn memory_ablation_finds_the_knee() {
        let t = ablate_memory(16_000, 4_000);
        let idx = |l: &str| t.series.iter().position(|s| s.label == l).unwrap();
        // 2P's cost falls steeply as M grows past G_local; Rep's barely
        // moves (its per-node tables hold G/N).
        let tp = &t.series[idx("2P")].values;
        let rep = &t.series[idx("Rep")].values;
        assert!(tp[0] > tp[4] * 1.3, "2P should improve with memory: {tp:?}");
        let rep_span = (rep[0] - rep[4]).abs() / rep[4];
        assert!(rep_span < 0.25, "Rep should be flat-ish: {rep:?}");
    }

    #[test]
    fn initseg_ablation_always_falls_back_in_range() {
        // 10 K tuples/node so every swept initSeg fires mid-scan.
        let t = ablate_initseg(80_000, 20, 1_000);
        let fb = &t.series[1].values;
        assert!(
            fb.iter().all(|&n| n == 8.0),
            "all nodes should fall back at 20 groups: {fb:?}"
        );
        // Larger segments repartition more tuples before deciding: the
        // largest in-range segment must not beat the smallest.
        let ms = &t.series[0].values;
        assert!(
            *ms.last().unwrap() >= ms[0] * 0.9,
            "unexpectedly large win from a bigger initSeg: {ms:?}"
        );
    }

    #[test]
    fn zipf_skew_erodes_repartitionings_advantage() {
        // At uniform (s=0) and many groups, Rep beats 2P on this slow
        // bus only mildly or not at all; what must hold robustly: the
        // *gap between Rep and 2P* moves in 2P's favour as s grows,
        // because the heavy head compresses locally.
        let t = zipf_sweep(16_000, 4_000, 200);
        let idx = |l: &str| t.series.iter().position(|s| s.label == l).unwrap();
        let tp = &t.series[idx("2P")].values;
        let rep = &t.series[idx("Rep")].values;
        let gap_uniform = rep[0] / tp[0];
        let gap_skewed = rep[3] / tp[3];
        assert!(
            gap_skewed > gap_uniform,
            "Rep/2P ratio should grow with skew: uniform {gap_uniform}, s=1.5 {gap_skewed}"
        );
    }

    #[test]
    fn baselines_table_has_expected_order() {
        let t = baselines(8_000, 200);
        let idx = |l: &str| t.series.iter().position(|s| s.label == l).unwrap();
        // Broadcast is the worst strategy at every point (N× volume on a
        // shared bus).
        for i in 0..t.xs.len() {
            let bcast = t.series[idx("Bcast")].values[i];
            for s in &t.series {
                if s.label != "Bcast" {
                    assert!(
                        bcast >= s.values[i],
                        "{} beat by Bcast at {} groups",
                        s.label,
                        t.xs[i]
                    );
                }
            }
        }
        // Sort-2P lands within 2x of hash 2P everywhere.
        for i in 0..t.xs.len() {
            let ratio = t.series[idx("Sort-2P")].values[i] / t.series[idx("2P")].values[i];
            assert!((0.5..2.0).contains(&ratio), "Sort-2P/2P = {ratio}");
        }
    }

    #[test]
    fn oversized_message_blocks_pay_for_unfilled_capacity() {
        // Transfer is priced per page: a block that seals half-empty (or
        // flushes at end-of-stream) still occupies the bus for its full
        // size. Oversized blocks therefore lose; the protocol saving
        // (m_p per page) is too small to compensate at Table 1 rates.
        let t = ablate_msgblock(8_000, 2_000);
        let v = &t.series[0].values;
        assert!(
            *v.last().unwrap() > v[2] * 1.2,
            "8KB blocks should cost clearly more than 2KB: {v:?}"
        );
        // And the curve is not trivially monotone-decreasing toward tiny
        // blocks either — the minimum sits in the small-to-2KB band.
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(v[..3].contains(&min), "minimum at {v:?}");
    }
}
