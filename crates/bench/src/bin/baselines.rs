//! All nine strategies (paper's six + Graefe's Opt-2P + Bitton's Sort-2P
//! and Broadcast) side by side on one workload per selectivity regime.

fn main() {
    let cli = adaptagg_bench::parse_args("usage: baselines [--full]");
    let (tuples, m) = if cli.full { (2_000_000, 12_500) } else { (160_000, 1_250) };
    cli.print(&adaptagg_bench::ablations::baselines(tuples, m));
}
