//! Ablation: message block size at fixed bandwidth — oversized blocks pay
//! for unfilled capacity; the minimum sits in the small-to-2KB band (§5).

fn main() {
    let cli = adaptagg_bench::parse_args("usage: ablate_msgblock [--full]");
    let (tuples, groups) = if cli.full { (2_000_000, 500_000) } else { (80_000, 20_000) };
    cli.print(&adaptagg_bench::ablations::ablate_msgblock(tuples, groups));
}
