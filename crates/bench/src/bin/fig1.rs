//! Regenerate Figure 1 (analytical model). See DESIGN.md §4.

fn main() {
    let cli = adaptagg_bench::parse_args("usage: fig1 [--csv]");
    cli.print(&adaptagg_bench::figures::fig1());
}
