//! Regenerate Figure 4 (analytical model). See DESIGN.md §4.

fn main() {
    let cli = adaptagg_bench::parse_args("usage: fig4 [--csv]");
    cli.print(&adaptagg_bench::figures::fig4());
}
