//! Regenerate Figure 7 (analytical model). See DESIGN.md §4.

fn main() {
    let cli = adaptagg_bench::parse_args("usage: fig7 [--csv]");
    cli.print(&adaptagg_bench::figures::fig7());
}
