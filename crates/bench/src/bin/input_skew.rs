//! §6.1's input-skew experiment (discussed but not plotted in the paper).

fn main() {
    let cli = adaptagg_bench::parse_args("usage: input_skew [--full]");
    let (per_node, groups, m) = if cli.full { (250_000, 1_000, 12_500) } else { (25_000, 500, 1_250) };
    cli.print(&adaptagg_bench::ablations::input_skew(per_node, groups, m));
}
