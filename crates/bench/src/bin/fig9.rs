//! Regenerate Figure 9 (implementation results under output skew).
//!
//! 8 nodes, four of which hold a single group each (§6). Default:
//! 25 K tuples/node with M = 1 250; `--full`: the paper's 250 K
//! tuples/node with M = 12 500.

fn main() {
    let cli = adaptagg_bench::parse_args(
        "usage: fig9 [--full]\n  --full  run the paper-scale 250K-tuples/node study",
    );
    let (per_node, m) = if cli.full { (250_000, 12_500) } else { (25_000, 1_250) };
    cli.print(&adaptagg_bench::measured::fig9(per_node, m));
}
