//! Regenerate Figure 5 (analytical model). See DESIGN.md §4.

fn main() {
    let cli = adaptagg_bench::parse_args("usage: fig5 [--csv]");
    cli.print(&adaptagg_bench::figures::fig5());
}
