//! Regenerate Figure 3 (analytical model). See DESIGN.md §4.

fn main() {
    let cli = adaptagg_bench::parse_args("usage: fig3 [--csv]");
    cli.print(&adaptagg_bench::figures::fig3());
}
