//! Regenerate Figure 2 (analytical model). See DESIGN.md §4.

fn main() {
    let cli = adaptagg_bench::parse_args("usage: fig2 [--csv]");
    cli.print(&adaptagg_bench::figures::fig2());
}
