//! Extension: Zipfian group-frequency skew (a dimension the paper leaves
//! open): heavy-hitter groups erode Repartitioning's high-selectivity win.

fn main() {
    let cli = adaptagg_bench::parse_args("usage: zipf_skew [--full]");
    let (tuples, groups, m) = if cli.full { (2_000_000, 500_000, 12_500) } else { (160_000, 40_000, 1_250) };
    cli.print(&adaptagg_bench::ablations::zipf_sweep(tuples, groups, m));
}
