//! Regenerate Figure 8 (implementation results, uniform data).
//!
//! Default: 200 K tuples with M = 1 250 (same groups-to-memory geometry
//! as the paper's 2 M tuples against M = 12 500 per the Table 1 scale).
//! `--full`: the paper's 2 M tuples with M = 12 500 — expect minutes.

fn main() {
    let cli = adaptagg_bench::parse_args(
        "usage: fig8 [--full]\n  --full  run the paper-scale 2M-tuple study",
    );
    let (tuples, m) = if cli.full { (2_000_000, 12_500) } else { (200_000, 1_250) };
    cli.print(&adaptagg_bench::measured::fig8(tuples, m));
}
