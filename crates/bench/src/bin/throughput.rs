//! Wall-clock throughput per algorithm → `BENCH_throughput.json`.
//!
//! Measures real (not virtual) end-to-end tuples/sec for every algorithm
//! on the fixed seeded grid (low/high cardinality × 1/8 nodes). See
//! DESIGN.md §10 for the schema and the cost-model-invariance rule.
//!
//! Typical flows:
//!   throughput --label baseline --out /tmp/before.json   # old binary
//!   throughput --before /tmp/before.json                 # new binary
//!   throughput --quick --out smoke.json                  # CI smoke

use adaptagg_bench::throughput::{
    columnar_to_json, extract_object, measure, measure_columnar_sweep, measure_thread_sweep,
    report_json, sweep_to_json, ThroughputCfg,
};

const USAGE: &str = "usage: throughput [--quick] [--label NAME] [--before PATH] [--out PATH]
  --quick        small relation, one repeat (CI smoke)
  --label NAME   label for this measurement set (default: current)
  --before PATH  embed a previous run's `after` object as `before`
  --out PATH     output file (default: BENCH_throughput.json)";

fn main() {
    let mut quick = false;
    let mut label = String::from("current");
    let mut before_path: Option<String> = None;
    let mut out_path = String::from("BENCH_throughput.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--label" => label = args.next().unwrap_or_else(|| die("--label needs a value")),
            "--before" => {
                before_path = Some(args.next().unwrap_or_else(|| die("--before needs a path")))
            }
            "--out" => out_path = args.next().unwrap_or_else(|| die("--out needs a path")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let before = before_path.map(|p| {
        let doc = std::fs::read_to_string(&p)
            .unwrap_or_else(|e| die(&format!("cannot read {p}: {e}")));
        extract_object(&doc, "after")
            .unwrap_or_else(|| die(&format!("{p} has no `after` object")))
    });

    let cfg = if quick { ThroughputCfg::quick() } else { ThroughputCfg::full() };
    let mode = if quick { "quick" } else { "full" };
    let measures = measure(cfg, true);
    let sweeps = measure_thread_sweep(cfg, true);
    let columnar_sweeps = measure_columnar_sweep(cfg, true);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let intra = sweep_to_json(host_cores, &sweeps);
    let columnar = columnar_to_json(host_cores, &columnar_sweeps);
    let doc = report_json(
        mode,
        cfg,
        before.as_deref(),
        &label,
        &measures,
        Some(&intra),
        Some(&columnar),
    );
    std::fs::write(&out_path, &doc)
        .unwrap_or_else(|e| die(&format!("cannot write {out_path}: {e}")));
    eprintln!("wrote {out_path}");
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}
