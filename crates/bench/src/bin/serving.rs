//! Open-loop serving load generator → `BENCH_serving.json`.
//!
//! Default: build an in-process scheduler, fire the seeded open-loop
//! schedule at three pressure levels, and write the committed baseline.
//! With `--server ADDR` it instead drives a running `adaptagg serve`
//! over TCP (the CI serve-smoke job's client), optionally mixing `proc`
//! mesh queries into the burst.
//!
//! Typical flows:
//!   serving                         # full baseline → BENCH_serving.json
//!   serving --quick --out /dev/null # CI smoke
//!   serving --quick --server 127.0.0.1:7878 --proc-every 4

use adaptagg_bench::serving::{
    report_json, run_inprocess, run_remote, ServingCfg, SERVE_SQL,
};

const USAGE: &str = "usage: serving [--quick] [--server ADDR] [--proc-every N] [--out PATH]
  --quick         small schedule (CI smoke)
  --server ADDR   drive a running `adaptagg serve` over TCP instead of
                  an in-process scheduler
  --proc-every N  (with --server) make every Nth request a `proc` mesh
                  query instead of SQL
  --out PATH      output file (default: BENCH_serving.json)";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(1)
}

fn main() {
    let mut quick = false;
    let mut server: Option<String> = None;
    let mut proc_every: usize = 0;
    let mut out_path = String::from("BENCH_serving.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--server" => {
                server = Some(args.next().unwrap_or_else(|| die("--server needs an address")))
            }
            "--proc-every" => {
                proc_every = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--proc-every needs a number"))
            }
            "--out" => out_path = args.next().unwrap_or_else(|| die("--out needs a path")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let mode = if quick { "quick" } else { "full" };
    let base = if quick { ServingCfg::quick() } else { ServingCfg::full() };

    if let Some(addr) = server {
        // Remote mode: one scenario against the live server. The mix
        // closure injects proc queries for the smoke job.
        eprintln!("driving {addr} ({mode}): {} queries", base.queries);
        let m = run_remote(&base, &addr, |i| {
            if proc_every > 0 && i % proc_every == proc_every - 1 {
                "proc".to_string()
            } else {
                SERVE_SQL.to_string()
            }
        })
        .unwrap_or_else(|e| die(&format!("load run failed: {e}")));
        let doc = report_json(mode, &[("remote_open_loop", m.clone())]);
        print!("{doc}");
        let accounted = m.completed
            + m.failed
            + m.rejected_queue_full
            + m.rejected_deadline
            + m.rejected_memory;
        if accounted != m.cfg.queries {
            die(&format!(
                "{} of {} queries unaccounted for (transport errors?)",
                m.cfg.queries - accounted,
                m.cfg.queries
            ));
        }
        return;
    }

    // In-process baseline: three pressure levels on the same dataset —
    // uncontended, broker-degraded, and queue-shedding.
    let light = ServingCfg {
        offered_qps: base.offered_qps / 8.0,
        concurrency: 2,
        ..base.clone()
    };
    let heavy = ServingCfg {
        offered_qps: base.offered_qps * 2.0,
        queue: 2,
        ..base.clone()
    };
    eprintln!("serving baseline ({mode}):");
    let scenarios = [
        ("light_load", run_inprocess(&light, true)),
        ("broker_pressure", run_inprocess(&base, true)),
        ("overload_shed", run_inprocess(&heavy, true)),
    ];
    let named: Vec<(&str, _)> = scenarios.iter().map(|(n, m)| (*n, m.clone())).collect();
    let doc = report_json(mode, &named);
    if out_path != "/dev/null" {
        std::fs::write(&out_path, &doc)
            .unwrap_or_else(|e| die(&format!("writing {out_path}: {e}")));
        eprintln!("wrote {out_path}");
    }
    print!("{doc}");
}
