//! Ablation: Adaptive Repartitioning's initSeg decision window.

fn main() {
    let cli = adaptagg_bench::parse_args("usage: ablate_initseg [--full]");
    let (tuples, groups, m) = if cli.full { (2_000_000, 100, 12_500) } else { (160_000, 50, 1_250) };
    cli.print(&adaptagg_bench::ablations::ablate_initseg(tuples, groups, m));
}
