//! Ablation: the hash-table memory budget M (locates each algorithm's knee).

fn main() {
    let cli = adaptagg_bench::parse_args("usage: ablate_memory [--full]");
    let (tuples, groups) = if cli.full { (2_000_000, 500_000) } else { (160_000, 40_000) };
    cli.print(&adaptagg_bench::ablations::ablate_memory(tuples, groups));
}
