//! Analytical figures (1–7): evaluate `adaptagg-cost` and tabulate.

use crate::report::{Series, Table};
use adaptagg_cost::sampling::SamplingModel;
use adaptagg_cost::sweep::{selectivity_sweep, CostAlgorithm};
use adaptagg_cost::{scaleup_curve, ModelConfig};
use adaptagg_model::NetworkKind;

/// Points per decade of selectivity for the sweeps.
pub const DENSITY: usize = 3;

fn sweep_table(title: &str, cfg: &ModelConfig, algos: &[CostAlgorithm]) -> Table {
    let rows = selectivity_sweep(cfg, algos, DENSITY);
    let xs: Vec<f64> = rows.iter().map(|r| r.selectivity).collect();
    let series = algos
        .iter()
        .enumerate()
        .map(|(i, a)| Series::new(a.label(), rows.iter().map(|r| r.times_ms[i]).collect()))
        .collect();
    Table::new(title, "selectivity", xs, series)
}

/// Figure 1: the traditional algorithms, 32 nodes. The paper's plot
/// includes Repartitioning under both networks; we add the shared-bus Rep
/// as a fourth curve.
pub fn fig1() -> Table {
    let fast = ModelConfig::paper_standard();
    let mut table = sweep_table(
        "Figure 1: traditional algorithms (32 nodes, 8M tuples, fast network)",
        &fast,
        &CostAlgorithm::TRADITIONAL,
    );
    let mut slow = ModelConfig::paper_standard();
    slow.params.network = NetworkKind::ethernet_default();
    let rep_slow = sweep_table("", &slow, &[CostAlgorithm::Repartitioning]);
    table.series.push(Series::new(
        "Rep-slow",
        rep_slow.series[0].values.clone(),
    ));
    table
}

/// Figure 2: the same comparison inside an operator pipeline (no scan or
/// store I/O) — the case that motivates keeping Repartitioning around.
pub fn fig2() -> Table {
    let mut cfg = ModelConfig::paper_standard();
    cfg.io_enabled = false;
    sweep_table(
        "Figure 2: operator pipeline (no scan/store I/O), 32 nodes",
        &cfg,
        &CostAlgorithm::TRADITIONAL,
    )
}

/// Figure 3: the proposed algorithms on the standard fast-network
/// configuration.
pub fn fig3() -> Table {
    sweep_table(
        "Figure 3: proposed algorithms (32 nodes, 8M tuples, fast network)",
        &ModelConfig::paper_standard(),
        &CostAlgorithm::PROPOSED,
    )
}

/// Figure 4: the proposed algorithms on the 8-node shared-bus
/// configuration matching the implementation platform.
pub fn fig4() -> Table {
    sweep_table(
        "Figure 4: proposed algorithms (8 nodes, 2M tuples, 10Mbit shared bus)",
        &ModelConfig::paper_cluster(),
        &CostAlgorithm::PROPOSED,
    )
}

/// The cluster sizes Figures 5–6 sweep.
pub const SCALEUP_NODES: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn scaleup_table(title: &str, s: f64) -> Table {
    let base = ModelConfig::paper_standard();
    let per_node = 250_000.0;
    let series = CostAlgorithm::PROPOSED
        .iter()
        .map(|&a| {
            let curve = scaleup_curve(&base, a, s, &SCALEUP_NODES, per_node);
            Series::new(a.label(), curve.into_iter().map(|(_, _, su)| su).collect())
        })
        .collect();
    Table::new(
        title,
        "nodes",
        SCALEUP_NODES.iter().map(|&n| n as f64).collect(),
        series,
    )
    .higher_is_better()
}

/// Figure 5: scaleup at selectivity 2.0e-6 (few groups).
pub fn fig5() -> Table {
    scaleup_table(
        "Figure 5: scaleup, selectivity 2.0e-6 (250K tuples/node; 1.0 = ideal)",
        2.0e-6,
    )
}

/// Figure 6: scaleup at selectivity 0.25 (duplicate-elimination regime).
pub fn fig6() -> Table {
    scaleup_table(
        "Figure 6: scaleup, selectivity 0.25 (250K tuples/node; 1.0 = ideal)",
        0.25,
    )
}

/// Figure 7: the sample-size / performance trade-off, 32 nodes. One curve
/// per sample size (with its matching crossover threshold at 1/10th),
/// swept over selectivity.
pub fn fig7() -> Table {
    let cfg = ModelConfig::paper_standard();
    let sample_sizes: [f64; 4] = [800.0, 3_200.0, 12_800.0, 51_200.0];
    let grid = adaptagg_cost::sweep::selectivity_grid(&cfg, DENSITY);
    let series = sample_sizes
        .iter()
        .map(|&n| {
            let knobs = SamplingModel {
                threshold: n / 10.0,
                sample_tuples: n,
            };
            Series::new(
                format!("samp={n}"),
                grid.iter()
                    .map(|&s| adaptagg_cost::sampling::cost_with(&cfg, s, &knobs).total_ms())
                    .collect(),
            )
        })
        .collect();
    Table::new(
        "Figure 7: Sampling's sample-size trade-off (32 nodes, fast network)",
        "selectivity",
        grid,
        series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_two_phase_then_repartitioning() {
        let t = fig1();
        // Left end: a Two Phase variant wins; right end: Rep wins.
        let first_winner = t.series[t.winner_at(0)].label.clone();
        let last_winner = t.series[t.winner_at(t.xs.len() - 1)].label.clone();
        assert!(
            first_winner.contains("2P"),
            "left-end winner was {first_winner}"
        );
        assert_eq!(last_winner, "Rep");
        // The slow-network Rep curve sits above the fast one everywhere.
        let rep = &t.series[2];
        let rep_slow = &t.series[3];
        assert_eq!(rep.label, "Rep");
        for (a, b) in rep.values.iter().zip(&rep_slow.values) {
            assert!(b >= a);
        }
    }

    #[test]
    fn fig2_pipeline_favours_repartitioning_earlier() {
        // Without scan/store I/O the 2P/Rep crossover moves left: count
        // the rows where Rep wins and require strictly more than in fig1.
        let f1 = fig1();
        let f2 = fig2();
        let rep_wins = |t: &Table| {
            (0..t.xs.len())
                .filter(|&i| t.series[t.winner_at(i)].label == "Rep")
                .count()
        };
        assert!(rep_wins(&f2) >= rep_wins(&f1));
        assert!(rep_wins(&f2) > 0);
    }

    #[test]
    fn fig3_adaptives_track_the_envelope() {
        let t = fig3();
        let idx = |label: &str| t.series.iter().position(|s| s.label == label).unwrap();
        let (tp, rep, a2p) = (idx("2P"), idx("Rep"), idx("A-2P"));
        for i in 0..t.xs.len() {
            let envelope = t.series[tp].values[i].min(t.series[rep].values[i]);
            assert!(
                t.series[a2p].values[i] <= envelope * 1.35,
                "A-2P off the envelope at S={}",
                t.xs[i]
            );
        }
    }

    #[test]
    fn fig4_shared_bus_punishes_repartitioning() {
        let t = fig4();
        let idx = |label: &str| t.series.iter().position(|s| s.label == label).unwrap();
        // At low selectivity, Rep's bus cost makes it far worse than 2P.
        let i = 0;
        assert!(t.series[idx("Rep")].values[i] > 2.0 * t.series[idx("2P")].values[i]);
        // A-2P switches only at the memory knee, so it stays near 2P.
        assert!(t.series[idx("A-2P")].values[i] < 1.2 * t.series[idx("2P")].values[i]);
    }

    #[test]
    fn fig5_fig6_adaptives_scale_well() {
        for t in [fig5(), fig6()] {
            let idx = |label: &str| t.series.iter().position(|s| s.label == label).unwrap();
            for a in ["A-2P", "A-Rep"] {
                let last = *t.series[idx(a)].values.last().unwrap();
                assert!(last > 0.8, "{a} scaleup {last} at N=32 in {}", t.title);
            }
            // Sampling's per-node overhead grows with N: visibly
            // sub-ideal scaleup at N=32 (§4).
            let samp = *t.series[idx("Samp")].values.last().unwrap();
            let a2p = *t.series[idx("A-2P")].values.last().unwrap();
            assert!(samp < a2p, "Samp {samp} >= A-2P {a2p} in {}", t.title);
        }
    }

    #[test]
    fn sampling_pays_a_visible_absolute_overhead_at_scale() {
        // §4's Samp observation, in absolute time at N=32: the sampling
        // phase is pure overhead relative to A-2P.
        use adaptagg_cost::sweep::scaleup_curve;
        let base = ModelConfig::paper_standard();
        for s in [2.0e-6, 0.25] {
            let samp = scaleup_curve(&base, CostAlgorithm::Sampling, s, &[32], 250_000.0);
            let a2p =
                scaleup_curve(&base, CostAlgorithm::AdaptiveTwoPhase, s, &[32], 250_000.0);
            assert!(
                samp[0].1 > a2p[0].1,
                "S={s}: Samp {} <= A-2P {}",
                samp[0].1,
                a2p[0].1
            );
        }
    }

    #[test]
    fn fig7_bigger_samples_cost_more_at_low_selectivity() {
        let t = fig7();
        // First row = scalar aggregation: sampling overhead dominates the
        // difference between curves.
        let first: Vec<f64> = t.series.iter().map(|s| s.values[0]).collect();
        for w in first.windows(2) {
            assert!(w[1] > w[0], "larger sample should cost more: {first:?}");
        }
    }
}
