//! Open-loop serving load generator → `BENCH_serving.json`.
//!
//! Fires a seeded arrival schedule of GROUP-BY queries at the
//! multi-query scheduler and reports what a serving system is judged
//! on: achieved qps, completion-latency percentiles (p50/p99), and the
//! honest-shedding counters (`queue_full` / `deadline_unmeetable` /
//! `memory_exhausted`). Open-loop means arrivals do not wait for
//! completions — overload shows up as shed queries, not as a silently
//! slowed generator.
//!
//! Two backends share the schedule and the report:
//!
//! - **in-process** (default): a [`Scheduler`] built here, used by the
//!   `serving` binary to commit the baseline;
//! - **remote** (`--server ADDR`): one TCP connection per in-flight
//!   query against a running `adaptagg serve`, used by the CI
//!   serve-smoke job (optionally mixing in `proc` mesh queries).

use adaptagg_serve::scheduler::{Dataset, QueryOutcome, QueryRequest, Scheduler, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// The study's standard serving query.
pub const SERVE_SQL: &str = "SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g";

/// One load-generation scenario.
#[derive(Debug, Clone)]
pub struct ServingCfg {
    /// Total queries to fire.
    pub queries: usize,
    /// Offered arrival rate, queries/sec (open loop).
    pub offered_qps: f64,
    /// Virtual cluster size per query.
    pub nodes: usize,
    /// Relation size.
    pub tuples: usize,
    /// Distinct groups.
    pub groups: usize,
    /// Workload seed (also seeds the arrival jitter).
    pub seed: u64,
    /// Per-node hash budget `M` the broker divides.
    pub memory: usize,
    /// Executor pool size.
    pub concurrency: usize,
    /// Admission queue capacity.
    pub queue: usize,
    /// Per-query deadline, if any.
    pub deadline_ms: Option<u64>,
}

impl ServingCfg {
    /// CI smoke scale: finishes in a few seconds.
    pub fn quick() -> Self {
        ServingCfg {
            queries: 48,
            offered_qps: 120.0,
            nodes: 4,
            tuples: 12_000,
            groups: 600,
            seed: 7,
            memory: 800,
            concurrency: 3,
            queue: 4,
            deadline_ms: None,
        }
    }

    /// Baseline scale: long enough for stable percentiles, hot enough
    /// that the broker visibly degrades and the queue visibly sheds.
    pub fn full() -> Self {
        ServingCfg {
            queries: 240,
            offered_qps: 160.0,
            nodes: 4,
            tuples: 48_000,
            groups: 2_400,
            seed: 7,
            memory: 3_200,
            concurrency: 3,
            queue: 6,
            deadline_ms: None,
        }
    }
}

/// What one fired query came back as.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Wall latency from submission to the report, milliseconds.
    pub latency_ms: f64,
    /// `ok` / `rejected:<reason>` / `failed`.
    pub status: String,
    /// The query ran below the full per-node budget.
    pub degraded: bool,
}

/// Aggregated scenario results.
#[derive(Debug, Clone)]
pub struct ServingMeasure {
    pub cfg: ServingCfg,
    /// Wall-clock seconds from first submission to last report.
    pub wall_s: f64,
    /// Completed queries per wall second.
    pub achieved_qps: f64,
    pub completed: usize,
    pub failed: usize,
    pub rejected_queue_full: usize,
    pub rejected_deadline: usize,
    pub rejected_memory: usize,
    /// Completions that ran below the full budget.
    pub degraded: usize,
    /// Completion-latency percentiles over completed queries, ms.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

fn percentile(sorted: &[f64], pct: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx]
}

fn summarize(cfg: &ServingCfg, samples: &[Sample], wall_s: f64) -> ServingMeasure {
    let mut lat: Vec<f64> = samples
        .iter()
        .filter(|s| s.status == "ok")
        .map(|s| s.latency_ms)
        .collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let count = |status: &str| samples.iter().filter(|s| s.status == status).count();
    ServingMeasure {
        cfg: cfg.clone(),
        wall_s,
        achieved_qps: lat.len() as f64 / wall_s.max(1e-9),
        completed: lat.len(),
        failed: count("failed"),
        rejected_queue_full: count("rejected:queue_full"),
        rejected_deadline: count("rejected:deadline_unmeetable"),
        rejected_memory: count("rejected:memory_exhausted"),
        degraded: samples.iter().filter(|s| s.degraded).count(),
        p50_ms: percentile(&lat, 50),
        p99_ms: percentile(&lat, 99),
        max_ms: lat.last().copied().unwrap_or(0.0),
    }
}

/// Seeded arrival jitter: ±40% of the mean gap, from a splitmix64
/// stream — the same schedule on every run of the same seed.
fn arrival_gaps(cfg: &ServingCfg) -> Vec<Duration> {
    let mean = 1.0 / cfg.offered_qps.max(1e-9);
    let mut state = cfg.seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..cfg.queries)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let unit = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
            Duration::from_secs_f64(mean * (0.6 + 0.8 * unit))
        })
        .collect()
}

/// Fire the schedule at an in-process scheduler and summarize.
pub fn run_inprocess(cfg: &ServingCfg, verbose: bool) -> ServingMeasure {
    let data = Arc::new(Dataset::uniform(cfg.nodes, cfg.tuples, cfg.groups, cfg.seed));
    let mut scfg = ServeConfig::new(cfg.memory);
    scfg.queue_capacity = cfg.queue;
    scfg.concurrency = cfg.concurrency;
    scfg.default_deadline = cfg.deadline_ms.map(Duration::from_millis);
    scfg.trace = false; // latency runs don't pay the observer
    let sched = Scheduler::new(scfg, data);

    let start = Instant::now();
    let mut tickets = Vec::new();
    let mut samples = Vec::new();
    for gap in arrival_gaps(cfg) {
        std::thread::sleep(gap);
        match sched.submit(QueryRequest::new(SERVE_SQL)) {
            Ok(ticket) => tickets.push(ticket),
            Err(report) => samples.push(Sample {
                latency_ms: report.total_ms,
                status: match &report.outcome {
                    QueryOutcome::Rejected(r) => format!("rejected:{}", r.reason.label()),
                    _ => "failed".to_string(),
                },
                degraded: false,
            }),
        }
    }
    for ticket in tickets {
        let report = ticket.wait();
        samples.push(match &report.outcome {
            QueryOutcome::Complete(q) => Sample {
                latency_ms: report.total_ms,
                status: "ok".to_string(),
                degraded: q.degraded,
            },
            QueryOutcome::Rejected(r) => Sample {
                latency_ms: report.total_ms,
                status: format!("rejected:{}", r.reason.label()),
                degraded: false,
            },
            QueryOutcome::Failed { .. } => Sample {
                latency_ms: report.total_ms,
                status: "failed".to_string(),
                degraded: false,
            },
        });
    }
    let wall_s = start.elapsed().as_secs_f64();
    sched.shutdown();
    let m = summarize(cfg, &samples, wall_s);
    if verbose {
        eprintln!(
            "  {} queries @ {:.0} qps offered → {:.1} qps achieved, \
             p50 {:.1} ms, p99 {:.1} ms, shed {}/{}/{}, degraded {}",
            cfg.queries,
            cfg.offered_qps,
            m.achieved_qps,
            m.p50_ms,
            m.p99_ms,
            m.rejected_queue_full,
            m.rejected_deadline,
            m.rejected_memory,
            m.degraded
        );
    }
    m
}

/// Classify one server response line by its `status` (and `reason`).
pub fn classify_response(line: &str) -> Sample {
    let status = if line.contains("\"status\": \"ok\"") {
        "ok".to_string()
    } else if line.contains("\"status\": \"rejected\"") {
        for reason in ["queue_full", "deadline_unmeetable", "memory_exhausted"] {
            if line.contains(&format!("\"reason\": \"{reason}\"")) {
                return Sample {
                    latency_ms: 0.0,
                    status: format!("rejected:{reason}"),
                    degraded: false,
                };
            }
        }
        "rejected:unknown".to_string()
    } else {
        "failed".to_string()
    };
    Sample {
        latency_ms: 0.0,
        status,
        degraded: line.contains("\"degraded\": true"),
    }
}

/// Fire the schedule at a running `adaptagg serve` over TCP: one
/// connection per in-flight query (the scheduler, not the socket count,
/// bounds concurrency). `request_for(i)` builds each request line —
/// the serve-smoke job uses it to mix `proc` mesh queries and crash
/// injections into the burst.
pub fn run_remote(
    cfg: &ServingCfg,
    addr: &str,
    request_for: impl Fn(usize) -> String,
) -> std::io::Result<ServingMeasure> {
    let (tx, rx) = mpsc::channel::<Sample>();
    let start = Instant::now();
    let mut fired = 0usize;
    for (i, gap) in arrival_gaps(cfg).into_iter().enumerate() {
        std::thread::sleep(gap);
        let addr = addr.to_string();
        let line = request_for(i);
        let tx = tx.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let sample = match query_once(&addr, &line) {
                Ok(response) => {
                    let mut s = classify_response(&response);
                    s.latency_ms = t0.elapsed().as_secs_f64() * 1e3;
                    s
                }
                Err(e) => Sample {
                    latency_ms: t0.elapsed().as_secs_f64() * 1e3,
                    status: format!("transport:{e}"),
                    degraded: false,
                },
            };
            let _ = tx.send(sample);
        });
        fired += 1;
    }
    drop(tx);
    let mut samples = Vec::with_capacity(fired);
    for _ in 0..fired {
        match rx.recv() {
            Ok(s) => samples.push(s),
            Err(_) => break,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    Ok(summarize(cfg, &samples, wall_s))
}

/// One request/response round trip on a fresh connection.
pub fn query_once(addr: &str, line: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response)?;
    Ok(response)
}

/// Render measurements as the committed `adaptagg-serving/v1` document.
pub fn report_json(mode: &str, measures: &[(&str, ServingMeasure)]) -> String {
    let mut s = format!(
        "{{\n  \"schema\": \"adaptagg-serving/v1\",\n  \"mode\": \"{mode}\",\n  \"scenarios\": [\n"
    );
    for (i, (name, m)) in measures.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&format!(
            "    {{\n      \"name\": \"{name}\",\n      \"queries\": {},\n      \
             \"offered_qps\": {:.1},\n      \"nodes\": {},\n      \"tuples\": {},\n      \
             \"groups\": {},\n      \"memory\": {},\n      \"concurrency\": {},\n      \
             \"queue\": {},\n      \"achieved_qps\": {:.2},\n      \"completed\": {},\n      \
             \"failed\": {},\n      \"rejected_queue_full\": {},\n      \
             \"rejected_deadline\": {},\n      \"rejected_memory\": {},\n      \
             \"degraded\": {},\n      \"p50_ms\": {:.2},\n      \"p99_ms\": {:.2},\n      \
             \"max_ms\": {:.2},\n      \"wall_s\": {:.2}\n    }}",
            m.cfg.queries,
            m.cfg.offered_qps,
            m.cfg.nodes,
            m.cfg.tuples,
            m.cfg.groups,
            m.cfg.memory,
            m.cfg.concurrency,
            m.cfg.queue,
            m.achieved_qps,
            m.completed,
            m.failed,
            m.rejected_queue_full,
            m.rejected_deadline,
            m.rejected_memory,
            m.degraded,
            m.p50_ms,
            m.p99_ms,
            m.max_ms,
            m.wall_s,
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_schedule_is_deterministic_and_jittered() {
        let cfg = ServingCfg::quick();
        let a = arrival_gaps(&cfg);
        let b = arrival_gaps(&cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), cfg.queries);
        let mean = Duration::from_secs_f64(1.0 / cfg.offered_qps);
        assert!(a.iter().any(|g| *g != mean), "jitter must vary the gaps");
        for g in &a {
            assert!(*g >= mean.mul_f64(0.59) && *g <= mean.mul_f64(1.41));
        }
    }

    #[test]
    fn classify_reads_the_wire_statuses() {
        assert_eq!(
            classify_response("{\"status\": \"ok\", \"degraded\": true}").status,
            "ok"
        );
        assert!(classify_response("{\"status\": \"ok\", \"degraded\": true}").degraded);
        assert_eq!(
            classify_response(
                "{\"status\": \"rejected\", \"reason\": \"queue_full\", \"detail\": \"x\"}"
            )
            .status,
            "rejected:queue_full"
        );
        assert_eq!(
            classify_response("{\"status\": \"failed\", \"error\": \"boom\"}").status,
            "failed"
        );
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&lat, 50), 51.0);
        assert_eq!(percentile(&lat, 99), 100.0);
        assert_eq!(percentile(&[], 99), 0.0);
    }

    #[test]
    fn quick_scenario_completes_and_sheds_honestly() {
        let m = run_inprocess(&ServingCfg::quick(), false);
        let total = m.completed
            + m.failed
            + m.rejected_queue_full
            + m.rejected_deadline
            + m.rejected_memory;
        assert_eq!(total, m.cfg.queries, "every query is accounted for");
        assert_eq!(m.failed, 0, "no dishonest failures under pure overload");
        assert!(m.completed > 0, "some queries must complete");
        let json = report_json("quick", &[("open_loop", m)]);
        assert!(json.contains("\"schema\": \"adaptagg-serving/v1\""));
        assert!(json.contains("\"rejected_queue_full\""));
    }
}
