//! Wall-clock throughput harness (the perf trajectory).
//!
//! Every figure binary reports **virtual** milliseconds; this module is
//! the one place that measures *real* time: end-to-end wall-clock
//! tuples/sec per algorithm on fixed seeded workloads (low/high
//! cardinality × 1/8 nodes). The `throughput` binary writes the
//! machine-readable `BENCH_throughput.json` at the repo root so future
//! optimisation PRs extend a committed baseline instead of a vibe.
//!
//! The cost model is the correctness contract: wall-clock optimisations
//! must leave every `CostEvent` count and virtual-time figure
//! bit-identical, so each measurement also records the run's virtual
//! milliseconds — a cheap drift tripwire alongside the pinned
//! regression tests.

use adaptagg_algos::{run_algorithm_with, AlgoConfig, AlgorithmKind};
use adaptagg_exec::ClusterConfig;
use adaptagg_model::CostParams;
use adaptagg_workload::{default_query, generate_partitions, RelationSpec};
use std::time::Instant;

/// One algorithm's measurement on one workload.
#[derive(Debug, Clone)]
pub struct AlgoMeasure {
    /// Paper label (`2P`, `Rep`, …).
    pub label: &'static str,
    /// Best-of-`repeats` wall-clock time for the end-to-end run.
    pub wall_ms: f64,
    /// `tuples / wall_seconds` for the best run.
    pub tuples_per_sec: f64,
    /// Virtual elapsed milliseconds (must not move under perf work).
    pub virtual_ms: f64,
    /// Result rows produced (sanity: equals the group count).
    pub rows: usize,
    /// Cluster-wide phase totals `(phase name, spans, virt_ms, wall_us)`
    /// from one *extra* traced run — never from a timed repeat, so the
    /// wall figures above stay untouched by the observer.
    pub phases: Vec<(&'static str, u64, f64, u64)>,
}

/// All algorithms measured on one seeded workload.
#[derive(Debug, Clone)]
pub struct WorkloadMeasure {
    /// Stable workload name (`high_card_8n`, …).
    pub name: &'static str,
    /// Cluster size.
    pub nodes: usize,
    /// Relation size `|R|`.
    pub tuples: usize,
    /// Distinct groups `|G|`.
    pub groups: usize,
    /// Per-algorithm measurements, in [`AlgorithmKind::ALL`] order.
    pub algorithms: Vec<AlgoMeasure>,
}

/// Scale knobs for one harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputCfg {
    /// Relation size per workload.
    pub tuples: usize,
    /// Runs per (workload, algorithm); the best wall time is kept.
    pub repeats: usize,
}

impl ThroughputCfg {
    /// CI smoke scale: finishes in seconds.
    pub fn quick() -> Self {
        ThroughputCfg { tuples: 12_000, repeats: 1 }
    }

    /// Baseline scale: large enough that per-tuple costs dominate.
    pub fn full() -> Self {
        ThroughputCfg { tuples: 120_000, repeats: 3 }
    }
}

/// The fixed workload grid: low/high cardinality × 1/8 nodes. High
/// cardinality is `|R|/4` groups — past the 10 K-entry table budget, so
/// the overflow and shipping paths are exercised, as in Figure 8's
/// right-hand side.
pub fn workload_grid(tuples: usize) -> Vec<(&'static str, usize, usize)> {
    vec![
        ("low_card_1n", 1, 64),
        ("high_card_1n", 1, tuples / 4),
        ("low_card_8n", 8, 64),
        ("high_card_8n", 8, tuples / 4),
    ]
}

/// Run the full grid and return measurements for every algorithm.
pub fn measure(cfg: ThroughputCfg, verbose: bool) -> Vec<WorkloadMeasure> {
    let query = default_query();
    let mut out = Vec::new();
    for (name, nodes, groups) in workload_grid(cfg.tuples) {
        let spec = RelationSpec::uniform(cfg.tuples, groups);
        let parts = generate_partitions(&spec, nodes);
        let cluster = ClusterConfig::new(nodes, CostParams::paper_default());
        let algo_cfg = AlgoConfig::default_for(nodes);
        let mut algos = Vec::new();
        for kind in AlgorithmKind::ALL {
            let mut best_ms = f64::INFINITY;
            let mut virtual_ms = 0.0;
            let mut rows = 0;
            for _ in 0..cfg.repeats {
                let t0 = Instant::now();
                let run = run_algorithm_with(kind, &cluster, &parts, &query, &algo_cfg)
                    .expect("throughput run succeeds");
                let wall = t0.elapsed().as_secs_f64() * 1e3;
                best_ms = best_ms.min(wall);
                virtual_ms = run.elapsed_ms();
                rows = run.rows.len();
            }
            let tuples_per_sec = cfg.tuples as f64 / (best_ms / 1e3);
            // One traced run, after (and outside) the timed repeats.
            let traced = run_algorithm_with(
                kind,
                &cluster.clone().with_tracing(),
                &parts,
                &query,
                &algo_cfg,
            )
            .expect("traced throughput run succeeds");
            let phases = traced
                .trace
                .as_ref()
                .map(|t| {
                    t.phase_totals()
                        .into_iter()
                        .map(|(p, tot)| (p.name(), tot.spans, tot.virt_ms, tot.wall_us))
                        .collect()
                })
                .unwrap_or_default();
            if verbose {
                eprintln!(
                    "{name:14} {label:8} {best_ms:9.1} ms wall  {tps:12.0} tuples/s  {virtual_ms:11.1} ms virtual",
                    label = kind.label(),
                    tps = tuples_per_sec,
                );
            }
            algos.push(AlgoMeasure {
                label: kind.label(),
                wall_ms: best_ms,
                tuples_per_sec,
                virtual_ms,
                rows,
                phases,
            });
        }
        out.push(WorkloadMeasure { name, nodes, tuples: cfg.tuples, groups, algorithms: algos });
    }
    out
}

/// One (thread count × physical table strategy) cell of the intra-node
/// sweep.
#[derive(Debug, Clone)]
pub struct ThreadMeasure {
    /// Morsel worker threads (`--threads`).
    pub threads: usize,
    /// Intra-node strategy the run was pinned to (`adaptive` lets the
    /// picker decide; `serial` is the threads=1 reference).
    pub strategy: &'static str,
    /// Best-of-`repeats` wall-clock time for the end-to-end run.
    pub wall_ms: f64,
    /// `tuples / wall_seconds` for the best run.
    pub tuples_per_sec: f64,
    /// Virtual elapsed ms — identical across every cell of a workload
    /// (the engine's bit-identity contract; asserted by the harness).
    pub virtual_ms: f64,
}

/// The intra-node thread sweep on one workload.
#[derive(Debug, Clone)]
pub struct ThreadSweep {
    /// Stable workload name (`low_card_intra`, `high_card_intra`).
    pub name: &'static str,
    /// Cluster size (1: the sweep isolates intra-node parallelism).
    pub nodes: usize,
    /// Relation size `|R|`.
    pub tuples: usize,
    /// Distinct groups `|G|`.
    pub groups: usize,
    /// `(threads × strategy)` cells, threads ascending.
    pub cells: Vec<ThreadMeasure>,
}

/// Thread counts the sweep measures.
pub const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Strategy columns measured at each multi-threaded point. `adaptive`
/// is the default picker; the fixed pins show the shared-vs-partitioned
/// crossover by cardinality.
pub const SWEEP_STRATEGIES: [&str; 4] = ["adaptive", "thread-local", "shared", "partitioned"];

/// Single-node workloads for the intra-node sweep. High cardinality is
/// capped below the 10 K-entry table budget: the morsel engine refuses
/// regimes it cannot charge bit-identically (spill), so past the budget
/// every thread count would silently measure the serial path.
pub fn thread_sweep_grid(tuples: usize) -> Vec<(&'static str, usize)> {
    vec![
        ("low_card_intra", 64),
        ("high_card_intra", (tuples / 4).min(8_000)),
    ]
}

/// Run the intra-node sweep: thread counts × strategies per workload,
/// asserting along the way that no cell moves the virtual clock.
pub fn measure_thread_sweep(cfg: ThroughputCfg, verbose: bool) -> Vec<ThreadSweep> {
    let query = default_query();
    let mut out = Vec::new();
    for (name, groups) in thread_sweep_grid(cfg.tuples) {
        let spec = RelationSpec::uniform(cfg.tuples, groups);
        let parts = generate_partitions(&spec, 1);
        let algo_cfg = AlgoConfig::default_for(1);
        let mut cells: Vec<ThreadMeasure> = Vec::new();
        for threads in SWEEP_THREADS {
            let strategies: &[&'static str] =
                if threads == 1 { &["serial"] } else { &SWEEP_STRATEGIES };
            for &strategy in strategies {
                if matches!(strategy, "thread-local" | "shared" | "partitioned") {
                    std::env::set_var("ADAPTAGG_INTRA", strategy);
                }
                let cluster = ClusterConfig::new(1, CostParams::paper_default())
                    .with_threads(threads);
                let mut best_ms = f64::INFINITY;
                let mut virtual_ms = 0.0;
                for _ in 0..cfg.repeats {
                    let t0 = Instant::now();
                    let run = run_algorithm_with(
                        AlgorithmKind::TwoPhase,
                        &cluster,
                        &parts,
                        &query,
                        &algo_cfg,
                    )
                    .expect("sweep run succeeds");
                    let wall = t0.elapsed().as_secs_f64() * 1e3;
                    best_ms = best_ms.min(wall);
                    virtual_ms = run.elapsed_ms();
                    assert_eq!(run.rows.len(), groups, "{name}: wrong result cardinality");
                }
                std::env::remove_var("ADAPTAGG_INTRA");
                if let Some(reference) = cells.first() {
                    assert_eq!(
                        reference.virtual_ms.to_bits(),
                        virtual_ms.to_bits(),
                        "{name}: {strategy} × {threads} threads moved the virtual clock"
                    );
                }
                let tuples_per_sec = cfg.tuples as f64 / (best_ms / 1e3);
                if verbose {
                    eprintln!(
                        "{name:16} t={threads} {strategy:12} {best_ms:9.1} ms wall  {tuples_per_sec:12.0} tuples/s"
                    );
                }
                cells.push(ThreadMeasure {
                    threads,
                    strategy,
                    wall_ms: best_ms,
                    tuples_per_sec,
                    virtual_ms,
                });
            }
        }
        out.push(ThreadSweep { name, nodes: 1, tuples: cfg.tuples, groups, cells });
    }
    out
}

/// One (workload × algorithm) cell of the columnar sweep: the same run
/// measured with the row-at-a-time path forced (`ADAPTAGG_COLUMNAR=row`)
/// and with the batched columnar path (the default).
#[derive(Debug, Clone)]
pub struct ColumnarMeasure {
    /// Paper label (`2P`, `Rep`, …).
    pub algo: &'static str,
    /// Best-of-`repeats` wall-clock, row-at-a-time path.
    pub row_wall_ms: f64,
    /// Best-of-`repeats` wall-clock, batched columnar path.
    pub batch_wall_ms: f64,
    /// `row_wall_ms / batch_wall_ms` (>1: the batch path is faster).
    pub speedup: f64,
    /// Virtual elapsed ms — bit-identical across both paths (asserted).
    pub virtual_ms: f64,
}

/// The row-vs-batch sweep on one workload.
#[derive(Debug, Clone)]
pub struct ColumnarSweep {
    /// Stable workload name (`low_card_columnar`, `high_card_columnar`).
    pub name: &'static str,
    /// Cluster size (1: single-node clocks are deterministic, so the
    /// bit-identity assert holds for every algorithm including the
    /// decision-racing ones).
    pub nodes: usize,
    /// Relation size `|R|`.
    pub tuples: usize,
    /// Distinct groups `|G|`.
    pub groups: usize,
    /// One cell per algorithm, in [`AlgorithmKind::ALL`] order.
    pub cells: Vec<ColumnarMeasure>,
}

/// Single-node workloads for the columnar sweep: the same low/high
/// cardinality split as the main grid, high cardinality past the table
/// budget so the batched spool interleaving is on the measured path.
pub fn columnar_sweep_grid(tuples: usize) -> Vec<(&'static str, usize)> {
    vec![
        ("low_card_columnar", 64),
        ("high_card_columnar", tuples / 4),
    ]
}

/// Run the columnar sweep: every algorithm, row path vs batch path,
/// asserting per cell that the virtual clock does not move a bit.
pub fn measure_columnar_sweep(cfg: ThroughputCfg, verbose: bool) -> Vec<ColumnarSweep> {
    let query = default_query();
    let mut out = Vec::new();
    for (name, groups) in columnar_sweep_grid(cfg.tuples) {
        let spec = RelationSpec::uniform(cfg.tuples, groups);
        let parts = generate_partitions(&spec, 1);
        let cluster = ClusterConfig::new(1, CostParams::paper_default());
        let algo_cfg = AlgoConfig::default_for(1);
        let mut cells = Vec::new();
        for kind in AlgorithmKind::ALL {
            let mut walls = [f64::INFINITY; 2];
            let mut virtuals = [0.0f64; 2];
            // path 0: row-at-a-time; path 1: batched columnar.
            for (path, wall) in walls.iter_mut().enumerate() {
                if path == 0 {
                    std::env::set_var("ADAPTAGG_COLUMNAR", "row");
                } else {
                    std::env::remove_var("ADAPTAGG_COLUMNAR");
                }
                for _ in 0..cfg.repeats {
                    let t0 = Instant::now();
                    let run = run_algorithm_with(kind, &cluster, &parts, &query, &algo_cfg)
                        .expect("columnar sweep run succeeds");
                    *wall = wall.min(t0.elapsed().as_secs_f64() * 1e3);
                    virtuals[path] = run.elapsed_ms();
                    assert_eq!(run.rows.len(), groups, "{name}: wrong result cardinality");
                }
            }
            assert_eq!(
                virtuals[0].to_bits(),
                virtuals[1].to_bits(),
                "{name}: {} batch path moved the virtual clock ({} vs {})",
                kind.label(),
                virtuals[0],
                virtuals[1]
            );
            let speedup = walls[0] / walls[1];
            if verbose {
                eprintln!(
                    "{name:20} {label:8} row {row:9.1} ms  batch {batch:9.1} ms  {speedup:5.2}x",
                    label = kind.label(),
                    row = walls[0],
                    batch = walls[1],
                );
            }
            cells.push(ColumnarMeasure {
                algo: kind.label(),
                row_wall_ms: walls[0],
                batch_wall_ms: walls[1],
                speedup,
                virtual_ms: virtuals[1],
            });
        }
        out.push(ColumnarSweep { name, nodes: 1, tuples: cfg.tuples, groups, cells });
    }
    out
}

/// Render the columnar sweep (the value of the `columnar` key) as JSON,
/// stamped with the measuring host's core count — on a 1-core container
/// the two paths often measure near parity, and a reader must be able to
/// tell that from the artifact alone.
pub fn columnar_to_json(host_cores: usize, sweeps: &[ColumnarSweep]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{{\n    \"host_cores\": {host_cores},\n    \"workloads\": [\n"));
    for (wi, w) in sweeps.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"name\": \"{}\", \"nodes\": {}, \"tuples\": {}, \"groups\": {}, \"cells\": [\n",
            w.name, w.nodes, w.tuples, w.groups
        ));
        for (ci, c) in w.cells.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"algo\": \"{}\", \"row_wall_ms\": {:.3}, \"batch_wall_ms\": {:.3}, \"speedup\": {:.3}, \"virtual_ms\": {:.6}}}{}\n",
                c.algo,
                c.row_wall_ms,
                c.batch_wall_ms,
                c.speedup,
                c.virtual_ms,
                if ci + 1 < w.cells.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "      ]}}{}\n",
            if wi + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

/// Render the intra-node sweep (the value of the `intra` key) as JSON,
/// stamped with the measuring host's core count: on a 1-core runner the
/// wall columns cannot show real scaling, and a reader must be able to
/// tell that from the artifact alone.
pub fn sweep_to_json(host_cores: usize, sweeps: &[ThreadSweep]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{{\n    \"host_cores\": {host_cores},\n    \"workloads\": [\n"));
    for (wi, w) in sweeps.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"name\": \"{}\", \"nodes\": {}, \"tuples\": {}, \"groups\": {}, \"cells\": [\n",
            w.name, w.nodes, w.tuples, w.groups
        ));
        for (ci, c) in w.cells.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"threads\": {}, \"strategy\": \"{}\", \"wall_ms\": {:.3}, \"tuples_per_sec\": {:.1}, \"virtual_ms\": {:.6}}}{}\n",
                c.threads,
                c.strategy,
                c.wall_ms,
                c.tuples_per_sec,
                c.virtual_ms,
                if ci + 1 < w.cells.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "      ]}}{}\n",
            if wi + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

/// Render one measurement set (the value of the `before`/`after` keys)
/// as a JSON object. Hand-written: the workspace carries no JSON
/// dependency, and every value here is a number or a known-safe label.
pub fn measures_to_json(label: &str, measures: &[WorkloadMeasure]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{{\n    \"label\": \"{label}\",\n    \"workloads\": [\n"));
    for (wi, w) in measures.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"name\": \"{}\", \"nodes\": {}, \"tuples\": {}, \"groups\": {}, \"algorithms\": [\n",
            w.name, w.nodes, w.tuples, w.groups
        ));
        for (ai, a) in w.algorithms.iter().enumerate() {
            let mut phases = String::new();
            for (pi, &(name, spans, virt_ms, wall_us)) in a.phases.iter().enumerate() {
                if pi > 0 {
                    phases.push_str(", ");
                }
                phases.push_str(&format!(
                    "{{\"phase\": \"{name}\", \"spans\": {spans}, \"virt_ms\": {virt_ms:.6}, \"wall_us\": {wall_us}}}"
                ));
            }
            s.push_str(&format!(
                "        {{\"algo\": \"{}\", \"wall_ms\": {:.3}, \"tuples_per_sec\": {:.1}, \"virtual_ms\": {:.6}, \"rows\": {}, \"phases\": [{}]}}{}\n",
                a.label,
                a.wall_ms,
                a.tuples_per_sec,
                a.virtual_ms,
                a.rows,
                phases,
                if ai + 1 < w.algorithms.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "      ]}}{}\n",
            if wi + 1 < measures.len() { "," } else { "" }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

/// Assemble the full `BENCH_throughput.json` document. `before` is a
/// previously rendered measurement object (see [`extract_object`]), or
/// `None` on a fresh baseline run.
pub fn report_json(
    mode: &str,
    cfg: ThroughputCfg,
    before: Option<&str>,
    after_label: &str,
    after: &[WorkloadMeasure],
    intra: Option<&str>,
    columnar: Option<&str>,
) -> String {
    format!(
        "{{\n  \"schema\": \"adaptagg-throughput/v1\",\n  \"mode\": \"{mode}\",\n  \"tuples\": {tuples},\n  \"repeats\": {repeats},\n  \"before\": {before},\n  \"after\": {after},\n  \"intra\": {intra},\n  \"columnar\": {columnar}\n}}\n",
        tuples = cfg.tuples,
        repeats = cfg.repeats,
        before = before.unwrap_or("null"),
        after = measures_to_json(after_label, after),
        intra = intra.unwrap_or("null"),
        columnar = columnar.unwrap_or("null"),
    )
}

/// Extract the JSON object value of a top-level `key` from a previous
/// harness output by balanced-brace scanning. Good enough for the
/// machine-written files this harness itself produces (no strings
/// containing braces); returns `None` when the key is absent or null.
pub fn extract_object(doc: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_extracts_after_object() {
        let measures = vec![WorkloadMeasure {
            name: "low_card_1n",
            nodes: 1,
            tuples: 100,
            groups: 4,
            algorithms: vec![AlgoMeasure {
                label: "2P",
                wall_ms: 1.5,
                tuples_per_sec: 66_666.7,
                virtual_ms: 12.25,
                rows: 4,
                phases: vec![("scan", 1, 10.5, 420)],
            }],
        }];
        let doc = report_json("quick", ThroughputCfg::quick(), None, "baseline", &measures, None, None);
        let after = extract_object(&doc, "after").expect("after object present");
        assert!(after.starts_with('{') && after.ends_with('}'));
        assert!(after.contains("\"label\": \"baseline\""));
        assert!(after.contains("\"algo\": \"2P\""));
        assert!(after.contains("\"phase\": \"scan\""));
        assert!(extract_object(&doc, "before").is_none(), "null before yields None");

        // Embedding the extracted object as `before` round-trips.
        let doc2 =
            report_json("quick", ThroughputCfg::quick(), Some(&after), "current", &measures, None, None);
        let before2 = extract_object(&doc2, "before").expect("embedded before");
        assert_eq!(before2, after);
    }

    #[test]
    fn intra_sweep_json_embeds_and_extracts() {
        let sweeps = vec![ThreadSweep {
            name: "low_card_intra",
            nodes: 1,
            tuples: 100,
            groups: 4,
            cells: vec![
                ThreadMeasure {
                    threads: 1,
                    strategy: "serial",
                    wall_ms: 2.0,
                    tuples_per_sec: 50_000.0,
                    virtual_ms: 12.25,
                },
                ThreadMeasure {
                    threads: 4,
                    strategy: "partitioned",
                    wall_ms: 1.0,
                    tuples_per_sec: 100_000.0,
                    virtual_ms: 12.25,
                },
            ],
        }];
        let intra = sweep_to_json(8, &sweeps);
        assert!(intra.contains("\"host_cores\": 8"));
        assert!(intra.contains("\"strategy\": \"partitioned\""));
        let doc = report_json("quick", ThroughputCfg::quick(), None, "x", &[], Some(&intra), None);
        let embedded = extract_object(&doc, "intra").expect("intra object present");
        assert_eq!(embedded, intra);
        let bare = report_json("quick", ThroughputCfg::quick(), None, "x", &[], None, None);
        assert!(extract_object(&bare, "intra").is_none(), "null intra yields None");
    }

    #[test]
    fn columnar_sweep_json_embeds_and_extracts() {
        let sweeps = vec![ColumnarSweep {
            name: "low_card_columnar",
            nodes: 1,
            tuples: 100,
            groups: 4,
            cells: vec![ColumnarMeasure {
                algo: "2P",
                row_wall_ms: 2.0,
                batch_wall_ms: 1.6,
                speedup: 1.25,
                virtual_ms: 12.25,
            }],
        }];
        let columnar = columnar_to_json(1, &sweeps);
        assert!(columnar.contains("\"host_cores\": 1"));
        assert!(columnar.contains("\"speedup\": 1.250"));
        let doc = report_json(
            "quick",
            ThroughputCfg::quick(),
            None,
            "x",
            &[],
            None,
            Some(&columnar),
        );
        let embedded = extract_object(&doc, "columnar").expect("columnar object present");
        assert_eq!(embedded, columnar);
        let bare = report_json("quick", ThroughputCfg::quick(), None, "x", &[], None, None);
        assert!(extract_object(&bare, "columnar").is_none(), "null columnar yields None");
    }

    #[test]
    fn thread_sweep_grid_stays_under_the_table_budget() {
        for tuples in [12_000usize, 120_000] {
            for (_, groups) in thread_sweep_grid(tuples) {
                assert!(
                    groups < CostParams::paper_default().max_hash_entries,
                    "{groups} groups would spill and silently serialize the sweep"
                );
            }
        }
    }

    #[test]
    fn grid_covers_both_cardinalities_and_cluster_sizes() {
        let grid = workload_grid(12_000);
        assert_eq!(grid.len(), 4);
        assert!(grid.iter().any(|&(_, n, _)| n == 1));
        assert!(grid.iter().any(|&(_, n, _)| n == 8));
        let gs: Vec<usize> = grid.iter().map(|&(_, _, g)| g).collect();
        assert!(gs.contains(&64) && gs.contains(&3000));
    }
}
