//! Criterion microbenchmarks for the memory-bounded hash aggregation —
//! the per-tuple hot path of every algorithm.

use adaptagg_hashagg::HashAggregator;
use adaptagg_model::{AggFunc, AggQuery, AggSpec, NullTracker, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn query() -> AggQuery {
    AggQuery::new(
        vec![0],
        vec![AggSpec::over(AggFunc::Sum, 1), AggSpec::count_star()],
    )
}

fn rows(n: usize, groups: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| vec![Value::Int((i % groups) as i64), Value::Int(i as i64)])
        .collect()
}

fn bench_in_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashagg_in_memory");
    let n = 100_000;
    for groups in [16usize, 1_024, 65_536] {
        let data = rows(n, groups);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(groups), &data, |b, data| {
            b.iter(|| {
                let mut agg = HashAggregator::with_defaults(query(), usize::MAX, 4096);
                let mut tr = NullTracker;
                for row in data {
                    agg.push_raw(row, &mut tr).unwrap();
                }
                agg.finish_rows(&mut tr).unwrap().0.len()
            })
        });
    }
    g.finish();
}

fn bench_with_overflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashagg_overflow");
    let n = 100_000;
    let groups = 16_384;
    let data = rows(n, groups);
    for budget in [1_024usize, 4_096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(budget), &data, |b, data| {
            b.iter(|| {
                let mut agg = HashAggregator::with_defaults(query(), budget, 4096);
                let mut tr = NullTracker;
                for row in data {
                    agg.push_raw(row, &mut tr).unwrap();
                }
                agg.finish_rows(&mut tr).unwrap().0.len()
            })
        });
    }
    g.finish();
}

fn bench_partial_merge(c: &mut Criterion) {
    // The merge-phase path: pre-aggregated partial rows.
    let n = 100_000;
    let partials: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                Value::Int((i % 4096) as i64),
                Value::Int(10),
                Value::Int(2),
            ]
        })
        .collect();
    let mut g = c.benchmark_group("hashagg_partial_merge");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("4096_groups", |b| {
        b.iter(|| {
            let mut agg =
                HashAggregator::with_defaults(query(), usize::MAX, 4096).with_charge_hash(false);
            let mut tr = NullTracker;
            for row in &partials {
                agg.push_partial(row, &mut tr).unwrap();
            }
            agg.finish_rows(&mut tr).unwrap().0.len()
        })
    });
    g.finish();
}

fn bench_sort_vs_hash(c: &mut Criterion) {
    // The two local-aggregation strategies head to head (host wall time;
    // the virtual-time comparison lives in the `baselines` binary).
    let n = 100_000;
    let groups = 4_096;
    let data = rows(n, groups);
    let mut g = c.benchmark_group("local_strategy");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("hash", |b| {
        b.iter(|| {
            let mut agg = HashAggregator::with_defaults(query(), 1_024, 4096);
            let mut tr = NullTracker;
            for row in &data {
                agg.push_raw(row, &mut tr).unwrap();
            }
            agg.finish_rows(&mut tr).unwrap().0.len()
        })
    });
    g.bench_function("sort", |b| {
        b.iter(|| {
            let mut agg = adaptagg_sortagg::SortAggregator::new(query(), 1_024, 4096);
            let mut tr = NullTracker;
            for row in &data {
                agg.push_raw(row, &mut tr).unwrap();
            }
            agg.finish_rows(&mut tr).unwrap().0.len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_in_memory,
    bench_with_overflow,
    bench_partial_merge,
    bench_sort_vs_hash
);
criterion_main!(benches);
