//! Criterion microbenchmarks for the data-movement substrate: tuple
//! encoding, group-key hashing, and message blocking.

use adaptagg_model::hash::{hash_values, Seed};
use adaptagg_model::{decode_tuple, encode_tuple, Value};
use adaptagg_net::Blocker;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn tuples(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64 % 1000),
                Value::Int(i as i64),
                Value::Str("xxxxxxxxxxxxxxxx".into()),
            ]
        })
        .collect()
}

fn bench_encode_decode(c: &mut Criterion) {
    let data = tuples(10_000);
    let mut g = c.benchmark_group("wire_format");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(64 * 10_000);
            for t in &data {
                encode_tuple(t, &mut buf);
            }
            buf.len()
        })
    });
    let mut buf = Vec::new();
    for t in &data {
        encode_tuple(t, &mut buf);
    }
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut pos = 0;
            let mut n = 0;
            while pos < buf.len() {
                let (t, used) = decode_tuple(&buf[pos..]).unwrap();
                pos += used;
                n += t.len();
            }
            n
        })
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let keys: Vec<Vec<Value>> = (0..10_000).map(|i| vec![Value::Int(i)]).collect();
    let mut g = c.benchmark_group("group_key_hash");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("int_keys", |b| {
        b.iter(|| {
            keys.iter()
                .map(|k| hash_values(Seed::Partition, k))
                .fold(0u64, u64::wrapping_add)
        })
    });
    g.finish();
}

fn bench_blocking(c: &mut Criterion) {
    let data = tuples(10_000);
    let mut g = c.benchmark_group("message_blocking");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("8_destinations_2kb", |b| {
        b.iter(|| {
            let mut blocker = Blocker::new(8, 2048);
            let mut sealed = 0usize;
            for (i, t) in data.iter().enumerate() {
                if blocker.add(i % 8, t).unwrap().is_some() {
                    sealed += 1;
                }
            }
            sealed + blocker.flush().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encode_decode, bench_hashing, bench_blocking);
criterion_main!(benches);
