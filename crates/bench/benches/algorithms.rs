//! Criterion end-to-end benchmarks: each parallel aggregation algorithm
//! on a 4-node cluster, at a low- and a high-selectivity workload.
//! These measure host wall time of the whole simulation (threads,
//! channels, hashing) — the virtual-time results live in the `fig8`/`fig9`
//! binaries.

use adaptagg_algos::{run_algorithm, AlgorithmKind};
use adaptagg_exec::ClusterConfig;
use adaptagg_model::CostParams;
use adaptagg_workload::{default_query, generate_partitions, RelationSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_algorithms(c: &mut Criterion) {
    const NODES: usize = 4;
    const TUPLES: usize = 40_000;
    let params = CostParams {
        max_hash_entries: 500,
        ..CostParams::paper_default()
    };
    let config = ClusterConfig::new(NODES, params);
    let query = default_query();

    for (regime, groups) in [("low_selectivity", 50usize), ("high_selectivity", 10_000)] {
        let spec = RelationSpec::uniform(TUPLES, groups);
        let parts = generate_partitions(&spec, NODES);
        let mut g = c.benchmark_group(format!("algorithms_{regime}"));
        g.throughput(Throughput::Elements(TUPLES as u64));
        g.sample_size(10);
        for kind in AlgorithmKind::ALL {
            g.bench_with_input(BenchmarkId::from_parameter(kind), &parts, |b, parts| {
                b.iter(|| {
                    run_algorithm(kind, &config, parts, &query)
                        .expect("run succeeds")
                        .rows
                        .len()
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
