//! Tokenizer.

use crate::error::SqlError;

/// What a token is.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or bare identifier; keywords are recognized
    /// case-insensitively at parse time via [`Token::keyword`].
    Ident(String),
    /// Integer literal (optionally negative).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` escaping).
    StrLit(String),
    /// A comparison operator (`=`, `<>`, `<`, `<=`, `>`, `>=`).
    Cmp(adaptagg_model::Compare),
    /// `*`.
    Star,
    /// `,`.
    Comma,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
}

/// A token plus its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub position: usize,
}

impl Token {
    /// The uppercase form of an identifier token, for keyword matching
    /// (SQL keywords are case-insensitive).
    pub fn keyword(&self) -> Option<String> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    position: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    position: i,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    position: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    position: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Cmp(adaptagg_model::Compare::Eq),
                    position: i,
                });
                i += 1;
            }
            '<' | '>' => {
                let start = i;
                let next = bytes.get(i + 1).map(|&b| b as char);
                let (op, len) = match (c, next) {
                    ('<', Some('>')) => (adaptagg_model::Compare::Ne, 2),
                    ('<', Some('=')) => (adaptagg_model::Compare::Le, 2),
                    ('>', Some('=')) => (adaptagg_model::Compare::Ge, 2),
                    ('<', _) => (adaptagg_model::Compare::Lt, 1),
                    ('>', _) => (adaptagg_model::Compare::Gt, 1),
                    _ => unreachable!(),
                };
                out.push(Token {
                    kind: TokenKind::Cmp(op),
                    position: start,
                });
                i += len;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i).map(|&b| b as char) {
                        Some('\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => {
                            return Err(SqlError::at(start, "unterminated string literal"))
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::StrLit(s),
                    position: start,
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let start = i;
                i += 1; // sign or first digit
                let mut is_float = false;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_digit() || c == '_' {
                        i += 1;
                    } else if c == '.' && !is_float {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = sql[start..i].replace('_', "");
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        SqlError::at(start, format!("bad float literal '{text}'"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        SqlError::at(start, format!("bad integer literal '{text}'"))
                    })?)
                };
                out.push(Token {
                    kind,
                    position: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_string()),
                    position: start,
                });
            }
            other => {
                return Err(SqlError::at(i, format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_a_query() {
        let ks = kinds("SELECT g, SUM(v) FROM r GROUP BY g");
        assert_eq!(ks.len(), 12);
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(ks[2], TokenKind::Comma);
        assert_eq!(ks[4], TokenKind::LParen);
        assert_eq!(ks[6], TokenKind::RParen);
    }

    #[test]
    fn star_and_underscored_idents() {
        let ks = kinds("count(*) flag_status");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("count".into()),
                TokenKind::LParen,
                TokenKind::Star,
                TokenKind::RParen,
                TokenKind::Ident("flag_status".into()),
            ]
        );
    }

    #[test]
    fn positions_point_at_tokens() {
        let ts = tokenize("a ,b").unwrap();
        assert_eq!(ts[0].position, 0);
        assert_eq!(ts[1].position, 2);
        assert_eq!(ts[2].position, 3);
    }

    #[test]
    fn rejects_stray_characters() {
        let err = tokenize("SELECT a;").unwrap_err();
        assert!(err.message.contains(';'));
        assert!(err.position.is_some());
    }

    #[test]
    fn numbers_and_strings_and_operators() {
        use adaptagg_model::Compare;
        let ks = kinds("v >= -1_000 and tag = 'it''s' or x < 2.5");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("v".into()),
                TokenKind::Cmp(Compare::Ge),
                TokenKind::Int(-1000),
                TokenKind::Ident("and".into()),
                TokenKind::Ident("tag".into()),
                TokenKind::Cmp(Compare::Eq),
                TokenKind::StrLit("it's".into()),
                TokenKind::Ident("or".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Cmp(Compare::Lt),
                TokenKind::Float(2.5),
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        use adaptagg_model::Compare;
        assert_eq!(kinds("<>"), vec![TokenKind::Cmp(Compare::Ne)]);
        assert_eq!(kinds("<="), vec![TokenKind::Cmp(Compare::Le)]);
        assert_eq!(kinds(">="), vec![TokenKind::Cmp(Compare::Ge)]);
        assert_eq!(
            kinds("< ="),
            vec![
                TokenKind::Cmp(Compare::Lt),
                TokenKind::Cmp(Compare::Eq)
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn keyword_is_case_insensitive() {
        let ts = tokenize("select").unwrap();
        assert_eq!(ts[0].keyword().unwrap(), "SELECT");
        assert_eq!(ts[0].ident().unwrap(), "select");
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(tokenize("   ").unwrap().is_empty());
    }
}
