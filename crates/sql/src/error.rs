//! SQL front-end errors, with byte positions into the source string.

use std::fmt;

/// A lexing, parsing, or binding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the SQL text, if known.
    pub position: Option<usize>,
}

impl SqlError {
    /// An error at a position.
    pub fn at(position: usize, message: impl Into<String>) -> Self {
        SqlError {
            message: message.into(),
            position: Some(position),
        }
    }

    /// An error with no specific position (binder-level).
    pub fn new(message: impl Into<String>) -> Self {
        SqlError {
            message: message.into(),
            position: None,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(p) => write!(f, "SQL error at byte {p}: {}", self.message),
            None => write!(f, "SQL error: {}", self.message),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_with_and_without_position() {
        assert_eq!(
            SqlError::at(5, "unexpected ','").to_string(),
            "SQL error at byte 5: unexpected ','"
        );
        assert_eq!(
            SqlError::new("no such column").to_string(),
            "SQL error: no such column"
        );
    }
}
