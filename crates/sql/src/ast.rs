//! The (deliberately small) abstract syntax tree.

use adaptagg_model::{AggFunc, Compare, Value};

/// One `column <op> literal` term of the WHERE conjunction.
#[derive(Debug, Clone, PartialEq)]
pub struct WhereTerm {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: Compare,
    /// Literal (Int, Float, or Str).
    pub literal: Value,
}

/// An aggregate function's argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggArg {
    /// `COUNT(*)`.
    Star,
    /// `FUNC(column)`.
    Column(String),
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemExpr {
    /// A bare column reference (must be grouped).
    Column(String),
    /// An aggregate call.
    Agg {
        /// The function.
        func: AggFunc,
        /// Its argument.
        arg: AggArg,
    },
}

/// A select-list item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectItem {
    /// The expression.
    pub expr: ItemExpr,
    /// `AS alias`, if given (names the output column).
    pub alias: Option<String>,
}

/// `SELECT [DISTINCT] <items> FROM <table> [WHERE <terms AND …>]
/// [GROUP BY <columns>]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Whether `DISTINCT` was given.
    pub distinct: bool,
    /// The select list, in order.
    pub items: Vec<SelectItem>,
    /// The (single) table name. The engine binds by schema, so the name
    /// is informational.
    pub table: String,
    /// WHERE conjunction (empty = no filter).
    pub where_clause: Vec<WhereTerm>,
    /// GROUP BY column names, in order.
    pub group_by: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_is_constructible_and_comparable() {
        let a = SelectStmt {
            distinct: false,
            items: vec![SelectItem {
                expr: ItemExpr::Agg {
                    func: AggFunc::Count,
                    arg: AggArg::Star,
                },
                alias: Some("n".into()),
            }],
            table: "r".into(),
            where_clause: vec![],
            group_by: vec![],
        };
        assert_eq!(a, a.clone());
    }
}
