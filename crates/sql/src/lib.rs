//! # adaptagg-sql
//!
//! A small SQL front-end for the aggregate queries the paper studies
//! (§2's basic form):
//!
//! ```sql
//! SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g
//! SELECT DISTINCT orderkey FROM lineitem
//! SELECT AVG(quantity) FROM lineitem          -- scalar aggregation
//! SELECT g, MAX(v) AS top FROM r WHERE v >= 100 AND tag = 'hot' GROUP BY g
//! ```
//!
//! Three stages:
//!
//! * [`lexer`] — tokenize with source positions;
//! * [`parser`] — recursive descent into the [`ast`];
//! * [`mod@bind`] — resolve column names against a
//!   [`adaptagg_model::Schema`], validate SQL grouping rules (every bare
//!   select column must be grouped, aggregate inputs must exist, DISTINCT
//!   takes no aggregates), and emit an executable
//!   [`adaptagg_model::AggQuery`] plus output column names.
//!
//! WHERE supports a conjunction of column-vs-literal comparisons, applied
//! by the scan before projection (the paper's `[where {predicates}]`).
//! HAVING is intentionally absent: the paper scopes it out ("a properly
//! constructed HAVING clause … does not directly affect the performance
//! of the aggregation algorithms", §2).
//!
//! ```
//! use adaptagg_model::{DataType, Field, Schema};
//! let schema = Schema::new(vec![
//!     Field::new("g", DataType::Int),
//!     Field::new("v", DataType::Int),
//! ]);
//! let bound = adaptagg_sql::compile("SELECT g, SUM(v) FROM r GROUP BY g", &schema).unwrap();
//! assert_eq!(bound.query.group_by, vec![0]);
//! assert_eq!(bound.output_names, vec!["g", "SUM(v)"]);
//! ```

pub mod ast;
pub mod bind;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{AggArg, ItemExpr, SelectItem, SelectStmt};
pub use bind::{bind, BoundQuery};
pub use error::SqlError;
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse;

use adaptagg_model::Schema;

/// Parse and bind a SQL string against a schema in one step.
pub fn compile(sql: &str, schema: &Schema) -> Result<BoundQuery, SqlError> {
    bind(&parse(sql)?, schema)
}
