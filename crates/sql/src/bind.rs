//! Binder: names → column indexes → [`AggQuery`], with SQL validation.

use crate::ast::{AggArg, ItemExpr, SelectStmt};
use crate::error::SqlError;
use adaptagg_model::{AggQuery, AggSpec, DataType, Predicate, Schema, Value};

/// A bound, executable query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundQuery {
    /// The executable form (column indexes into the schema).
    pub query: AggQuery,
    /// Output column names: group columns, then one per aggregate
    /// (`"SUM(v)"`-style).
    pub output_names: Vec<String>,
}

/// Bind a parsed statement against a schema.
pub fn bind(stmt: &SelectStmt, schema: &Schema) -> Result<BoundQuery, SqlError> {
    let col = |name: &str| -> Result<usize, SqlError> {
        schema
            .index_of(name)
            .ok_or_else(|| SqlError::new(format!("no such column: {name}")))
    };

    // Resolve GROUP BY (explicit or, for DISTINCT, the select list).
    let group_names: Vec<String> = if stmt.distinct {
        if !stmt.group_by.is_empty() {
            return Err(SqlError::new(
                "DISTINCT with GROUP BY is not supported; use one or the other",
            ));
        }
        stmt.items
            .iter()
            .map(|it| match &it.expr {
                ItemExpr::Column(c) => Ok(c.clone()),
                ItemExpr::Agg { .. } => Err(SqlError::new(
                    "DISTINCT select list must be plain columns",
                )),
            })
            .collect::<Result<_, _>>()?
    } else {
        stmt.group_by.clone()
    };

    let group_by: Vec<usize> = group_names
        .iter()
        .map(|n| col(n))
        .collect::<Result<_, _>>()?;

    // Resolve items: bare columns must be grouped; aggregates bind their
    // inputs and (for numeric functions) check the column type.
    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut output_names: Vec<String> = group_names.clone();
    for item in &stmt.items {
        match &item.expr {
            ItemExpr::Column(name) => {
                let Some(pos) = group_names.iter().position(|g| g == name) else {
                    return Err(SqlError::new(format!(
                        "column '{name}' must appear in GROUP BY or inside an aggregate"
                    )));
                };
                // Grouped columns are already in output_names, in
                // group-key order (the engine emits key columns first);
                // an alias renames that output column.
                if let Some(alias) = &item.alias {
                    output_names[pos] = alias.clone();
                }
            }
            ItemExpr::Agg { func, arg } => {
                let spec = match arg {
                    AggArg::Star => AggSpec::count_star(),
                    AggArg::Column(name) => {
                        let idx = col(name)?;
                        let needs_numeric = matches!(
                            func,
                            adaptagg_model::AggFunc::Sum
                                | adaptagg_model::AggFunc::Avg
                                | adaptagg_model::AggFunc::VarPop
                                | adaptagg_model::AggFunc::StddevPop
                        );
                        if needs_numeric {
                            let dt = schema.field(idx).expect("index from schema").data_type;
                            if dt == DataType::Str {
                                return Err(SqlError::new(format!(
                                    "{}({name}) needs a numeric column, {name} is STR",
                                    func.name()
                                )));
                            }
                        }
                        AggSpec::over(*func, idx)
                    }
                };
                output_names.push(item.alias.clone().unwrap_or_else(|| match arg {
                    AggArg::Star => format!("{}(*)", func.name()),
                    AggArg::Column(name) => format!("{}({name})", func.name()),
                }));
                aggs.push(spec);
            }
        }
    }

    if stmt.distinct && !aggs.is_empty() {
        return Err(SqlError::new("DISTINCT cannot be combined with aggregates"));
    }
    if group_by.is_empty() && aggs.is_empty() {
        return Err(SqlError::new(
            "query has neither GROUP BY columns nor aggregates",
        ));
    }

    // Resolve the WHERE conjunction: columns must exist and the literal's
    // type must be comparable with the column's.
    let mut filter = Vec::with_capacity(stmt.where_clause.len());
    for term in &stmt.where_clause {
        let idx = col(&term.column)?;
        let dt = schema.field(idx).expect("index from schema").data_type;
        let compatible = matches!(
            (dt, &term.literal),
            (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Float, Value::Int(_))
                | (DataType::Str, Value::Str(_))
        );
        if !compatible {
            return Err(SqlError::new(format!(
                "WHERE {} {} {}: literal type does not match column type {dt}",
                term.column, term.op, term.literal
            )));
        }
        filter.push(Predicate::new(idx, term.op, term.literal.clone()));
    }

    Ok(BoundQuery {
        query: AggQuery::new(group_by, aggs).with_filter(filter),
        output_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use adaptagg_model::{AggFunc, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Int),
            Field::new("tag", DataType::Str),
        ])
    }

    fn compile(sql: &str) -> Result<BoundQuery, SqlError> {
        bind(&parse(sql).unwrap(), &schema())
    }

    #[test]
    fn binds_group_by_query() {
        let b = compile("SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g").unwrap();
        assert_eq!(b.query.group_by, vec![0]);
        assert_eq!(b.query.aggs.len(), 2);
        assert_eq!(b.query.aggs[0], AggSpec::over(AggFunc::Sum, 1));
        assert_eq!(b.query.aggs[1], AggSpec::count_star());
        assert_eq!(b.output_names, vec!["g", "SUM(v)", "COUNT(*)"]);
    }

    #[test]
    fn binds_distinct_as_group_by() {
        let b = compile("SELECT DISTINCT g, tag FROM r").unwrap();
        assert_eq!(b.query.group_by, vec![0, 2]);
        assert!(b.query.aggs.is_empty());
        assert_eq!(b.output_names, vec!["g", "tag"]);
    }

    #[test]
    fn binds_scalar_aggregate() {
        let b = compile("SELECT MIN(tag) FROM r").unwrap();
        assert!(b.query.group_by.is_empty());
        assert_eq!(b.query.aggs, vec![AggSpec::over(AggFunc::Min, 2)]);
    }

    #[test]
    fn rejects_ungrouped_bare_column() {
        let e = compile("SELECT g, v FROM r GROUP BY g").unwrap_err();
        assert!(e.message.contains("'v'"));
    }

    #[test]
    fn rejects_unknown_column() {
        let e = compile("SELECT nope FROM r GROUP BY nope").unwrap_err();
        assert!(e.message.contains("nope"));
    }

    #[test]
    fn rejects_sum_over_string() {
        let e = compile("SELECT g, SUM(tag) FROM r GROUP BY g").unwrap_err();
        assert!(e.message.contains("STR"));
    }

    #[test]
    fn min_max_over_string_is_fine() {
        assert!(compile("SELECT g, MAX(tag) FROM r GROUP BY g").is_ok());
    }

    #[test]
    fn rejects_distinct_with_aggregates() {
        let e = compile("SELECT DISTINCT COUNT(*) FROM r").unwrap_err();
        assert!(e.message.contains("DISTINCT"));
    }

    #[test]
    fn rejects_empty_shape() {
        // Parses, but binds to nothing useful.
        let e = compile("SELECT g FROM r GROUP BY g");
        assert!(e.is_ok(), "grouped projection alone is duplicate elimination");
        // But a bare ungrouped column with no aggs is already rejected
        // by the grouping rule.
        assert!(compile("SELECT g FROM r").is_err());
    }

    #[test]
    fn where_binds_to_predicates() {
        use adaptagg_model::Compare;
        let b = compile("SELECT g, SUM(v) FROM r WHERE v > 100 AND tag = 'x' GROUP BY g")
            .unwrap();
        assert_eq!(b.query.filter.len(), 2);
        assert_eq!(b.query.filter[0], Predicate::new(1, Compare::Gt, Value::Int(100)));
        assert_eq!(
            b.query.filter[1],
            Predicate::new(2, Compare::Eq, Value::Str("x".into()))
        );
    }

    #[test]
    fn where_type_mismatch_is_rejected() {
        let e = compile("SELECT g, SUM(v) FROM r WHERE g = 'five' GROUP BY g").unwrap_err();
        assert!(e.message.contains("literal type"));
        let e = compile("SELECT g, SUM(v) FROM r WHERE tag > 3 GROUP BY g").unwrap_err();
        assert!(e.message.contains("literal type"));
    }

    #[test]
    fn where_unknown_column_is_rejected() {
        let e = compile("SELECT g, SUM(v) FROM r WHERE missing = 1 GROUP BY g").unwrap_err();
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn aliases_rename_output_columns() {
        let b =
            compile("SELECT g AS grp, SUM(v) AS total, COUNT(*) FROM r GROUP BY g").unwrap();
        assert_eq!(b.output_names, vec!["grp", "total", "COUNT(*)"]);
        // Aliases change names only, never the executable plan.
        let plain = compile("SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g").unwrap();
        assert_eq!(b.query, plain.query);
    }

    #[test]
    fn variance_binds() {
        let b = compile("SELECT g, VAR_POP(v), STDDEV_POP(v) FROM r GROUP BY g").unwrap();
        assert_eq!(b.query.aggs.len(), 2);
        assert_eq!(b.query.partial_arity(), 6);
    }
}
