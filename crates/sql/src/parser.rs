//! Recursive-descent parser.

use crate::ast::{AggArg, ItemExpr, SelectItem, SelectStmt};
use crate::error::SqlError;
use crate::lexer::{tokenize, Token, TokenKind};
use adaptagg_model::AggFunc;

/// Parse one `SELECT` statement.
pub fn parse(sql: &str) -> Result<SelectStmt, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        len: sql.len(),
    };
    let stmt = p.select()?;
    if let Some(t) = p.peek() {
        return Err(SqlError::at(t.position, "trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.peek().map(|t| t.position).unwrap_or(self.len)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(t) if t.keyword().as_deref() == Some(kw) => Ok(()),
            Some(t) => Err(SqlError::at(
                t.position,
                format!("expected {kw}, found '{}'", describe(&t.kind)),
            )),
            None => Err(SqlError::at(self.len, format!("expected {kw}, found end"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek()
            .and_then(|t| t.keyword())
            .is_some_and(|k| k == kw)
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.next() {
            Some(t) => match t.kind {
                TokenKind::Ident(s) => Ok(s),
                other => Err(SqlError::at(
                    t.position,
                    format!("expected {what}, found '{}'", describe(&other)),
                )),
            },
            None => Err(SqlError::at(self.len, format!("expected {what}, found end"))),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), SqlError> {
        let here = self.here();
        match self.next() {
            Some(t) if t.kind == kind => Ok(()),
            Some(t) => Err(SqlError::at(
                t.position,
                format!("expected {what}, found '{}'", describe(&t.kind)),
            )),
            None => Err(SqlError::at(here, format!("expected {what}, found end"))),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.peek_keyword("DISTINCT") {
            self.pos += 1;
            true
        } else {
            false
        };

        let mut items = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }

        self.expect_keyword("FROM")?;
        let table = self.expect_ident("a table name")?;

        let mut where_clause = Vec::new();
        if self.peek_keyword("WHERE") {
            self.pos += 1;
            where_clause.push(self.where_term()?);
            while self.peek_keyword("AND") {
                self.pos += 1;
                where_clause.push(self.where_term()?);
            }
        }

        let mut group_by = Vec::new();
        if self.peek_keyword("GROUP") {
            self.pos += 1;
            self.expect_keyword("BY")?;
            group_by.push(self.expect_ident("a grouping column")?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expect_ident("a grouping column")?);
            }
        }

        Ok(SelectStmt {
            distinct,
            items,
            table,
            where_clause,
            group_by,
        })
    }

    fn where_term(&mut self) -> Result<crate::ast::WhereTerm, SqlError> {
        let column = self.expect_ident("a filter column")?;
        let op = match self.next() {
            Some(Token {
                kind: TokenKind::Cmp(op),
                ..
            }) => op,
            Some(t) => {
                return Err(SqlError::at(
                    t.position,
                    format!("expected a comparison operator, found '{}'", describe(&t.kind)),
                ))
            }
            None => {
                return Err(SqlError::at(
                    self.len,
                    "expected a comparison operator, found end",
                ))
            }
        };
        let literal = match self.next() {
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => adaptagg_model::Value::Int(i),
            Some(Token {
                kind: TokenKind::Float(f),
                ..
            }) => adaptagg_model::Value::Float(f),
            Some(Token {
                kind: TokenKind::StrLit(s),
                ..
            }) => adaptagg_model::Value::Str(s.into_boxed_str()),
            Some(t) => {
                return Err(SqlError::at(
                    t.position,
                    format!("expected a literal, found '{}'", describe(&t.kind)),
                ))
            }
            None => return Err(SqlError::at(self.len, "expected a literal, found end")),
        };
        Ok(crate::ast::WhereTerm {
            column,
            op,
            literal,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let name_pos = self.here();
        let name = self.expect_ident("a column or aggregate")?;

        // `NAME(` means an aggregate call; bare `NAME` is a column ref.
        let expr = if self.eat(&TokenKind::LParen) {
            let func = agg_func(&name)
                .ok_or_else(|| SqlError::at(name_pos, format!("unknown aggregate '{name}'")))?;
            let arg = if self.eat(&TokenKind::Star) {
                if func != AggFunc::Count {
                    return Err(SqlError::at(
                        name_pos,
                        format!("{}(*) is not valid; only COUNT takes '*'", func.name()),
                    ));
                }
                AggArg::Star
            } else {
                AggArg::Column(self.expect_ident("an aggregate input column")?)
            };
            self.expect(TokenKind::RParen, "')'")?;
            ItemExpr::Agg { func, arg }
        } else {
            ItemExpr::Column(name)
        };

        // Optional `AS alias`.
        let alias = if self.peek_keyword("AS") {
            self.pos += 1;
            Some(self.expect_ident("an alias")?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }
}

fn describe(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(s) => s.clone(),
        TokenKind::Int(i) => i.to_string(),
        TokenKind::Float(f) => f.to_string(),
        TokenKind::StrLit(s) => format!("'{s}'"),
        TokenKind::Cmp(op) => op.symbol().into(),
        TokenKind::Star => "*".into(),
        TokenKind::Comma => ",".into(),
        TokenKind::LParen => "(".into(),
        TokenKind::RParen => ")".into(),
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        "VAR_POP" => Some(AggFunc::VarPop),
        "STDDEV_POP" => Some(AggFunc::StddevPop),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_group_by_with_aggregates() {
        let s = parse("SELECT g, SUM(v), COUNT(*) FROM r GROUP BY g").unwrap();
        assert!(!s.distinct);
        assert_eq!(s.table, "r");
        assert_eq!(s.group_by, vec!["g"]);
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.items[0].expr, ItemExpr::Column("g".into()));
        assert_eq!(
            s.items[1].expr,
            ItemExpr::Agg {
                func: AggFunc::Sum,
                arg: AggArg::Column("v".into())
            }
        );
        assert_eq!(
            s.items[2].expr,
            ItemExpr::Agg {
                func: AggFunc::Count,
                arg: AggArg::Star
            }
        );
    }

    #[test]
    fn parses_distinct() {
        let s = parse("select distinct a, b from t").unwrap();
        assert!(s.distinct);
        assert_eq!(s.items.len(), 2);
        assert!(s.group_by.is_empty());
    }

    #[test]
    fn parses_scalar_aggregate() {
        let s = parse("SELECT MAX(v) FROM r").unwrap();
        assert!(s.group_by.is_empty());
        assert_eq!(s.items.len(), 1);
    }

    #[test]
    fn parses_multi_column_group_by() {
        let s = parse("SELECT a, b, AVG(v) FROM r GROUP BY a, b").unwrap();
        assert_eq!(s.group_by, vec!["a", "b"]);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("Select Count(*) From r Group By g").is_ok());
    }

    #[test]
    fn parses_where_conjunction() {
        use adaptagg_model::{Compare, Value};
        let s =
            parse("SELECT g, SUM(v) FROM r WHERE v >= 10 AND tag = 'hot' GROUP BY g").unwrap();
        assert_eq!(s.where_clause.len(), 2);
        assert_eq!(s.where_clause[0].column, "v");
        assert_eq!(s.where_clause[0].op, Compare::Ge);
        assert_eq!(s.where_clause[0].literal, Value::Int(10));
        assert_eq!(s.where_clause[1].literal, Value::Str("hot".into()));
        assert_eq!(s.group_by, vec!["g"]);
    }

    #[test]
    fn where_without_group_by() {
        let s = parse("SELECT COUNT(*) FROM r WHERE v <> -3").unwrap();
        assert_eq!(s.where_clause.len(), 1);
        assert!(s.group_by.is_empty());
    }

    #[test]
    fn where_rejects_garbage() {
        assert!(parse("SELECT a FROM r WHERE").is_err());
        assert!(parse("SELECT a FROM r WHERE v").is_err());
        assert!(parse("SELECT a FROM r WHERE v =").is_err());
        assert!(parse("SELECT a FROM r WHERE v = w").is_err(), "col-vs-col unsupported");
        assert!(parse("SELECT a FROM r WHERE v = 1 AND").is_err());
    }

    #[test]
    fn rejects_unknown_aggregate() {
        let e = parse("SELECT MEDIAN(v) FROM r").unwrap_err();
        assert!(e.message.contains("MEDIAN"));
    }

    #[test]
    fn rejects_star_on_non_count() {
        let e = parse("SELECT SUM(*) FROM r").unwrap_err();
        assert!(e.message.contains("COUNT"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let e = parse("SELECT a FROM r GROUP BY a a").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse("SELECT a").is_err());
        assert!(parse("SELECT a GROUP BY a").is_err());
    }

    #[test]
    fn rejects_empty_group_by() {
        assert!(parse("SELECT a FROM r GROUP BY").is_err());
    }

    #[test]
    fn positions_are_reported() {
        let e = parse("SELECT a FROM r GROUP UP a").unwrap_err();
        assert_eq!(e.position, Some(22));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser returns errors, never panics, on arbitrary input.
        #[test]
        fn prop_parser_never_panics(input in ".{0,80}") {
            let _ = parse(&input);
        }

        /// Well-formed single-aggregate queries always parse.
        #[test]
        fn prop_well_formed_queries_parse(
            col in "[a-z][a-z0-9_]{0,10}",
            table in "[a-z][a-z0-9_]{0,10}",
            func in prop_oneof![
                Just("SUM"), Just("AVG"), Just("MIN"), Just("MAX"),
                Just("VAR_POP"), Just("STDDEV_POP"), Just("COUNT"),
            ],
        ) {
            let sql = format!("SELECT {col}, {func}({col}) FROM {table} GROUP BY {col}");
            let stmt = parse(&sql);
            // Keywords used as identifiers legitimately fail; everything
            // else must parse.
            let reserved = ["select", "distinct", "from", "group", "by"];
            if reserved.contains(&col.as_str()) || reserved.contains(&table.as_str()) {
                return Ok(());
            }
            let stmt = stmt.unwrap();
            prop_assert_eq!(stmt.group_by, vec![col.clone()]);
            prop_assert_eq!(stmt.table, table);
        }
    }
}
