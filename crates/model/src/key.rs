//! Group keys.
//!
//! A [`GroupKey`] is the projection of a tuple onto the GROUP BY columns.
//! It is the unit of hashing everywhere: partitioning decides `hash(key) % N`,
//! hash tables key their entries on it, and overflow bucketing hashes it with
//! an independent seed.

use crate::hash::{hash_values, Seed};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// The GROUP BY key of a tuple: an ordered list of the grouping values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupKey {
    values: Box<[Value]>,
}

impl GroupKey {
    /// A key over the given values.
    pub fn new(values: Vec<Value>) -> Self {
        GroupKey {
            values: values.into_boxed_slice(),
        }
    }

    /// Extract the key of `tuple` under the given grouping columns.
    /// Columns out of range yield an error at the tuple layer.
    pub fn from_tuple(tuple: &Tuple, group_by: &[usize]) -> Result<Self, crate::ModelError> {
        let mut vs = Vec::with_capacity(group_by.len());
        for &c in group_by {
            vs.push(tuple.get(c)?.clone());
        }
        Ok(GroupKey::new(vs))
    }

    /// The key's values in grouping order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of grouping columns (0 for scalar aggregation — the paper's
    /// "number of groups is 1" special case: every tuple has the same
    /// empty key).
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Hash under the given purpose-seed.
    pub fn hash_with(&self, seed: Seed) -> u64 {
        hash_values(seed, &self.values)
    }

    /// The node (or bucket) in `0..n` this key maps to under `seed`.
    pub fn bucket(&self, seed: Seed, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.hash_with(seed) % n as u64) as usize
    }

    /// Bytes the key occupies in the tuple encoding.
    pub fn encoded_len(&self) -> usize {
        crate::encode::encoded_len(&self.values)
    }

    /// Consume the key, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values.into_vec()
    }
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn from_tuple_projects_group_columns() {
        let t = tuple![10i64, 2.5f64, "a"];
        let k = GroupKey::from_tuple(&t, &[0, 2]).unwrap();
        assert_eq!(k.values(), &[Value::Int(10), Value::Str("a".into())]);
        assert_eq!(k.arity(), 2);
    }

    #[test]
    fn scalar_aggregation_key_is_empty_and_unique() {
        let t1 = tuple![1i64];
        let t2 = tuple![999i64];
        let k1 = GroupKey::from_tuple(&t1, &[]).unwrap();
        let k2 = GroupKey::from_tuple(&t2, &[]).unwrap();
        assert_eq!(k1, k2, "scalar aggregation: all tuples share one group");
        assert_eq!(k1.arity(), 0);
    }

    #[test]
    fn out_of_range_column_is_error() {
        let t = tuple![1i64];
        assert!(GroupKey::from_tuple(&t, &[3]).is_err());
    }

    #[test]
    fn same_key_same_node() {
        let a = GroupKey::new(vec![Value::Int(7)]);
        let b = GroupKey::new(vec![Value::Int(7)]);
        assert_eq!(a.bucket(Seed::Partition, 8), b.bucket(Seed::Partition, 8));
    }

    #[test]
    fn different_seeds_different_layout() {
        let keys: Vec<GroupKey> = (0..64).map(|i| GroupKey::new(vec![Value::Int(i)])).collect();
        let diff = keys
            .iter()
            .filter(|k| k.bucket(Seed::Partition, 8) != k.bucket(Seed::Table, 8))
            .count();
        assert!(diff > 32);
    }

    #[test]
    fn display_uses_angle_brackets() {
        let k = GroupKey::new(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(k.to_string(), "⟨1, x⟩");
    }

    #[test]
    fn encoded_len_matches_values() {
        let k = GroupKey::new(vec![Value::Int(1)]);
        assert_eq!(k.encoded_len(), 2 + 1 + 8);
    }
}
