//! Table 1 of the paper: the parameters of the study.
//!
//! Every simulated cost in the system — CPU work per tuple, page I/O,
//! message costs — is derived from these constants, so the implementation
//! study (Figures 8–9) and the analytical model (Figures 1–7) are costed in
//! the same currency: **virtual milliseconds**.
//!
//! Per-tuple CPU costs are given in *instructions* and divided by the
//! processor's MIPS rating: `300 instructions / 40 MIPS = 7.5 µs`.

use std::fmt;

/// Which network the paper is modelling (§2: "We model both high speed,
/// high bandwidth network as in commercial multiprocessors like IBM SP-2
/// and slow speed, limited bandwidth network like the Ethernet").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkKind {
    /// High-speed, high-bandwidth interconnect: "modeled only by the
    /// latency to send a message i.e. it has unlimited bandwidth".
    /// Sends from different nodes never contend.
    HighSpeed {
        /// Latency to send one message page, in ms.
        latency_ms: f64,
    },
    /// Limited-bandwidth shared medium (10 Mbit Ethernet): "a sequential
    /// resource where sending a fixed amount of data will take a fixed
    /// amount of time independent of the number of processors involved".
    SharedBus {
        /// Bus occupancy per message page, in ms.
        ms_per_page: f64,
    },
}

impl NetworkKind {
    /// The paper's fast-network default (SP-2-like). The paper does not
    /// print a separate latency constant for this case; 0.1 ms per page is
    /// small enough that repartitioning is "not a serious problem"
    /// (Figure 1's observation) while still being visible in breakdowns.
    pub fn high_speed_default() -> Self {
        NetworkKind::HighSpeed { latency_ms: 0.1 }
    }

    /// The paper's Ethernet: `m_l` = 2.0 ms per (2 KB message) page on a
    /// shared bus.
    pub fn ethernet_default() -> Self {
        NetworkKind::SharedBus { ms_per_page: 2.0 }
    }

    /// Time the medium is occupied per page sent.
    pub fn ms_per_page(&self) -> f64 {
        match self {
            NetworkKind::HighSpeed { latency_ms } => *latency_ms,
            NetworkKind::SharedBus { ms_per_page } => *ms_per_page,
        }
    }

    /// Whether sends contend on a shared sequential resource.
    pub fn is_shared(&self) -> bool {
        matches!(self, NetworkKind::SharedBus { .. })
    }
}

/// Table 1: parameters for the cost accounting. All times in milliseconds,
/// all sizes in bytes unless noted.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// `mips` — MIPS of each processor.
    pub mips: f64,
    /// `P` — disk page size in bytes.
    pub page_bytes: usize,
    /// Message block size in bytes (the implementation "blocked" messages
    /// into 2 KB pages, §5).
    pub message_bytes: usize,
    /// `IO` — time to read/write a page sequentially, ms.
    pub io_seq_ms: f64,
    /// `rIO` — time to read a random page, ms (page-level sampling pays
    /// this).
    pub io_rand_ms: f64,
    /// `p` — projectivity of the aggregation: fraction of the tuple
    /// relevant to the aggregate computation.
    pub projectivity: f64,
    /// `t_r` — instructions to read a tuple (get it off a page / out of a
    /// hash bucket).
    pub instr_read_tuple: f64,
    /// `t_w` — instructions to write a tuple.
    pub instr_write_tuple: f64,
    /// `t_h` — instructions to compute a hash value.
    pub instr_hash: f64,
    /// `t_a` — instructions to process a tuple through an aggregate
    /// (update the cumulative value).
    pub instr_agg: f64,
    /// `t_d` — instructions to compute a tuple's destination node.
    pub instr_dest: f64,
    /// `m_p` — message protocol instructions per message page (charged at
    /// both sender and receiver, per §2.3's `m_p + m_l + m_p`).
    pub instr_msg_protocol: f64,
    /// The network being modelled (`m_l` lives here).
    pub network: NetworkKind,
    /// `M` — maximum hash table size, in entries (groups).
    pub max_hash_entries: usize,
    /// `|R|`-scale default tuple width in bytes (the study uses 100-byte
    /// tuples).
    pub tuple_bytes: usize,
}

impl CostParams {
    /// Table 1 as printed: 40 MIPS CPUs, 4 KB pages, 1.15 ms sequential /
    /// 15 ms random I/O, 16 % projectivity, 10 K-entry hash tables,
    /// 100-byte tuples, 2 KB message blocks.
    pub fn paper_default() -> Self {
        CostParams {
            mips: 40.0,
            page_bytes: 4096,
            message_bytes: 2048,
            io_seq_ms: 1.15,
            io_rand_ms: 15.0,
            projectivity: 0.16,
            instr_read_tuple: 300.0,
            instr_write_tuple: 100.0,
            instr_hash: 400.0,
            instr_agg: 300.0,
            instr_dest: 10.0,
            instr_msg_protocol: 1000.0,
            network: NetworkKind::high_speed_default(),
            max_hash_entries: 10_000,
            tuple_bytes: 100,
        }
    }

    /// The paper's implementation platform (§5): 8 SPARCstations on a
    /// 10 Mbit Ethernet — same constants, shared-bus network.
    pub fn cluster_default() -> Self {
        CostParams {
            network: NetworkKind::ethernet_default(),
            ..CostParams::paper_default()
        }
    }

    /// Instructions → milliseconds under this CPU.
    /// `instr / (mips · 10⁶ instr/s) · 10³ ms/s = instr / (mips · 10³)`.
    #[inline]
    pub fn instr_ms(&self, instructions: f64) -> f64 {
        instructions / (self.mips * 1_000.0)
    }

    /// `t_r` in ms.
    #[inline]
    pub fn t_read(&self) -> f64 {
        self.instr_ms(self.instr_read_tuple)
    }

    /// `t_w` in ms.
    #[inline]
    pub fn t_write(&self) -> f64 {
        self.instr_ms(self.instr_write_tuple)
    }

    /// `t_h` in ms.
    #[inline]
    pub fn t_hash(&self) -> f64 {
        self.instr_ms(self.instr_hash)
    }

    /// `t_a` in ms.
    #[inline]
    pub fn t_agg(&self) -> f64 {
        self.instr_ms(self.instr_agg)
    }

    /// `t_d` in ms.
    #[inline]
    pub fn t_dest(&self) -> f64 {
        self.instr_ms(self.instr_dest)
    }

    /// `m_p` in ms.
    #[inline]
    pub fn t_msg_protocol(&self) -> f64 {
        self.instr_ms(self.instr_msg_protocol)
    }

    /// `m_l` in ms (per message page).
    #[inline]
    pub fn t_msg_transfer(&self) -> f64 {
        self.network.ms_per_page()
    }

    /// Pages needed for `bytes` of data under the disk page size.
    #[inline]
    pub fn pages_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.page_bytes.max(1))
    }

    /// Message pages needed for `bytes` of data on the wire.
    #[inline]
    pub fn message_pages_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.message_bytes.max(1))
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::paper_default()
    }
}

impl fmt::Display for CostParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mips          = {}", self.mips)?;
        writeln!(f, "page          = {} B", self.page_bytes)?;
        writeln!(f, "msg block     = {} B", self.message_bytes)?;
        writeln!(f, "IO            = {} ms", self.io_seq_ms)?;
        writeln!(f, "rIO           = {} ms", self.io_rand_ms)?;
        writeln!(f, "projectivity  = {}", self.projectivity)?;
        writeln!(f, "t_r,t_w,t_h   = {}/{}/{} instr", self.instr_read_tuple, self.instr_write_tuple, self.instr_hash)?;
        writeln!(f, "t_a,t_d,m_p   = {}/{}/{} instr", self.instr_agg, self.instr_dest, self.instr_msg_protocol)?;
        writeln!(f, "network       = {:?}", self.network)?;
        writeln!(f, "M             = {} entries", self.max_hash_entries)?;
        write!(f, "tuple         = {} B", self.tuple_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_convert_to_expected_times() {
        let p = CostParams::paper_default();
        // 300 instr on a 40 MIPS CPU = 7.5 µs = 0.0075 ms.
        assert!((p.t_read() - 0.0075).abs() < 1e-12);
        assert!((p.t_write() - 0.0025).abs() < 1e-12);
        assert!((p.t_hash() - 0.01).abs() < 1e-12);
        assert!((p.t_agg() - 0.0075).abs() < 1e-12);
        assert!((p.t_dest() - 0.00025).abs() < 1e-12);
        assert!((p.t_msg_protocol() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn page_math_rounds_up() {
        let p = CostParams::paper_default();
        assert_eq!(p.pages_for(0), 0);
        assert_eq!(p.pages_for(1), 1);
        assert_eq!(p.pages_for(4096), 1);
        assert_eq!(p.pages_for(4097), 2);
        assert_eq!(p.message_pages_for(2049), 2);
    }

    #[test]
    fn network_kinds() {
        let fast = NetworkKind::high_speed_default();
        assert!(!fast.is_shared());
        let slow = NetworkKind::ethernet_default();
        assert!(slow.is_shared());
        assert!((slow.ms_per_page() - 2.0).abs() < 1e-12);
        assert!(fast.ms_per_page() < slow.ms_per_page());
    }

    #[test]
    fn cluster_default_uses_ethernet() {
        let c = CostParams::cluster_default();
        assert!(c.network.is_shared());
        assert_eq!(c.page_bytes, 4096);
    }

    #[test]
    fn display_prints_all_sections() {
        let s = CostParams::paper_default().to_string();
        for needle in ["mips", "projectivity", "network", "entries"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
