//! # adaptagg-model
//!
//! The relational substrate shared by every other `adaptagg` crate:
//!
//! * [`Value`], [`Tuple`], [`Schema`] — a small dynamically-typed row model,
//!   sized in bytes so the cost model can account for pages and messages.
//! * [`GroupKey`] — the GROUP BY key of a tuple, hashable and orderable.
//! * [`AggFunc`] / [`AggSpec`] / [`AggQuery`] — the aggregate queries the
//!   paper studies (`SELECT g, agg(v) FROM r GROUP BY g`).
//! * [`AggStates`] — *mergeable* partial aggregation state. This is the
//!   linchpin of the Adaptive Two Phase algorithm: the global phase must
//!   accept **raw tuples and partially-aggregated rows in the same hash
//!   table** (paper §3.2), so every aggregate function here knows how to
//!   (a) fold in a raw input value, (b) fold in an encoded partial row, and
//!   (c) emit itself as an encoded partial row.
//! * [`hash`] — a fast, seedable non-cryptographic hasher used for
//!   partitioning, overflow-bucket selection, and hash-table placement
//!   (three *independent* seeds, the classic hybrid-hash requirement).
//! * [`params::CostParams`] — Table 1 of the paper: the constants that turn
//!   counted events (tuples touched, pages read, messages sent) into
//!   virtual milliseconds.
//!
//! Everything downstream — storage, network, the execution engine, the six
//! algorithms, and the analytical cost model — is expressed in these terms.

pub mod agg;
pub mod encode;
pub mod error;
pub mod event;
pub mod grant;
pub mod hash;
pub mod key;
pub mod params;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod tuple;
pub mod value;

pub use agg::{AggFunc, AggSpec, AggState, AggStates, RowKind};
pub use encode::{
    decode_tuple, decode_tuple_into, decode_tuple_select_into, encode_tuple, encode_value,
    encoded_len,
};
pub use error::ModelError;
pub use event::{CostEvent, CostTracker, CountingTracker, NullTracker};
pub use grant::MemoryGrant;
pub use hash::{FxBuildHasher, FxHasher, Seed, ValueHasher};
pub use key::GroupKey;
pub use params::{CostParams, NetworkKind};
pub use predicate::{matches_all, Compare, Predicate};
pub use query::{AggQuery, ResultRow};
pub use schema::{DataType, Field, Schema};
pub use tuple::Tuple;
pub use value::Value;
