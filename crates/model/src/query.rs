//! Aggregate query descriptions and result rows.

use crate::agg::AggSpec;
use crate::error::ModelError;
use crate::key::GroupKey;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// An aggregate query: `SELECT <group_by>, <aggs> FROM r GROUP BY <group_by>`.
///
/// Duplicate elimination (`SELECT DISTINCT g…`) is the `aggs: []` case; a
/// scalar aggregate (`SELECT SUM(v) FROM r`) is the `group_by: []` case —
/// the paper treats both as endpoints of the same selectivity spectrum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggQuery {
    /// Grouping column indexes into the *base* tuple.
    pub group_by: Vec<usize>,
    /// Aggregates over base-tuple columns.
    pub aggs: Vec<AggSpec>,
    /// WHERE conjunction over *base*-tuple columns, applied by the scan
    /// before projection (empty = no filter). The paper's §2 form allows
    /// a WHERE; it affects only the selectivity the aggregation sees.
    pub filter: Vec<crate::predicate::Predicate>,
}

impl AggQuery {
    /// A GROUP BY query.
    pub fn new(group_by: Vec<usize>, aggs: Vec<AggSpec>) -> Self {
        AggQuery {
            group_by,
            aggs,
            filter: Vec::new(),
        }
    }

    /// `SELECT DISTINCT <cols>` — duplicate elimination.
    pub fn distinct(group_by: Vec<usize>) -> Self {
        AggQuery {
            group_by,
            aggs: Vec::new(),
            filter: Vec::new(),
        }
    }

    /// Attach a WHERE conjunction.
    pub fn with_filter(mut self, filter: Vec<crate::predicate::Predicate>) -> Self {
        self.filter = filter;
        self
    }

    /// The columns the aggregation actually needs, in projected order:
    /// first the grouping columns, then each distinct aggregate input.
    /// This is the paper's "projectivity": only `p·|tuple|` bytes travel
    /// through the aggregation operators.
    pub fn projection_columns(&self) -> Vec<usize> {
        let mut cols = self.group_by.clone();
        for spec in &self.aggs {
            if let Some(c) = spec.input {
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
        }
        cols
    }

    /// The query rewritten against its own projection: grouping columns
    /// become `0..k`, aggregate inputs are remapped to their projected
    /// positions. Every operator downstream of the initial scan+project
    /// works with this form.
    pub fn remapped_to_projection(&self) -> AggQuery {
        let cols = self.projection_columns();
        let remap = |c: usize| cols.iter().position(|&x| x == c).expect("column in projection");
        AggQuery {
            group_by: (0..self.group_by.len()).collect(),
            aggs: self
                .aggs
                .iter()
                .map(|s| AggSpec {
                    func: s.func,
                    input: s.input.map(remap),
                })
                .collect(),
            // The filter references base columns and is consumed by the
            // scan; downstream operators see already-filtered tuples.
            filter: Vec::new(),
        }
    }

    /// Extract the group key of a tuple under this query.
    pub fn key_of(&self, tuple: &Tuple) -> Result<GroupKey, ModelError> {
        GroupKey::from_tuple(tuple, &self.group_by)
    }

    /// Extract the group key from a raw value slice.
    pub fn key_of_values(&self, values: &[Value]) -> Result<GroupKey, ModelError> {
        let mut vs = Vec::with_capacity(self.group_by.len());
        for &c in &self.group_by {
            vs.push(
                values
                    .get(c)
                    .ok_or(ModelError::ColumnOutOfRange {
                        column: c,
                        arity: values.len(),
                    })?
                    .clone(),
            );
        }
        Ok(GroupKey::new(vs))
    }

    /// Total arity of the partial-state columns for this query's aggregates.
    pub fn partial_arity(&self) -> usize {
        self.aggs.iter().map(|s| s.func.partial_arity()).sum()
    }

    /// Arity of a *partial row* on the wire: group key columns + partial
    /// state columns.
    pub fn partial_row_arity(&self) -> usize {
        self.group_by.len() + self.partial_arity()
    }

    /// Arity of a final result row: group key columns + one column per
    /// aggregate.
    pub fn result_row_arity(&self) -> usize {
        self.group_by.len() + self.aggs.len()
    }
}

impl fmt::Display for AggQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        let mut first = true;
        for c in &self.group_by {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "col{c}")?;
            first = false;
        }
        for a in &self.aggs {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        if first {
            write!(f, "*")?;
        }
        if !self.filter.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.filter.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        write!(f, " GROUP BY ")?;
        if self.group_by.is_empty() {
            write!(f, "()")?;
        } else {
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "col{c}")?;
            }
        }
        Ok(())
    }
}

/// One row of the final aggregation result: the group key plus the
/// finalized aggregate values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ResultRow {
    /// The group.
    pub key: GroupKey,
    /// Finalized aggregate values, in query spec order.
    pub aggs: Vec<Value>,
}

impl ResultRow {
    /// Build a row.
    pub fn new(key: GroupKey, aggs: Vec<Value>) -> Self {
        ResultRow { key, aggs }
    }

    /// Flatten into wire/tuple form: key columns then aggregate columns.
    pub fn into_values(self) -> Vec<Value> {
        let mut out = self.key.into_values();
        out.extend(self.aggs);
        out
    }

    /// Parse from wire form given the query (inverse of `into_values`).
    pub fn from_values(query: &AggQuery, values: Vec<Value>) -> Result<Self, ModelError> {
        let k = query.group_by.len();
        if values.len() != query.result_row_arity() {
            return Err(ModelError::PartialArityMismatch {
                expected: query.result_row_arity(),
                found: values.len(),
            });
        }
        let mut values = values;
        let aggs = values.split_off(k);
        Ok(ResultRow {
            key: GroupKey::new(values),
            aggs,
        })
    }
}

impl fmt::Display for ResultRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} →", self.key)?;
        for v in &self.aggs {
            write!(f, " {v}")?;
        }
        Ok(())
    }
}

/// Sort rows by key (canonical order for comparing algorithm outputs).
///
/// Group keys are unique within one result set, so the single-`Int`-key
/// fast path may sort unstably: with no equal keys the permutation is
/// identical to the stable general path.
pub fn sort_rows(rows: &mut [ResultRow]) {
    if rows
        .iter()
        .all(|r| matches!(r.key.values(), [Value::Int(_)]))
    {
        rows.sort_unstable_by_key(|r| match r.key.values() {
            [Value::Int(i)] => *i,
            _ => unreachable!("checked single-Int keys above"),
        });
    } else {
        rows.sort_by(|a, b| a.key.cmp(&b.key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::tuple;

    fn q() -> AggQuery {
        AggQuery::new(
            vec![2],
            vec![AggSpec::over(AggFunc::Sum, 0), AggSpec::over(AggFunc::Avg, 4)],
        )
    }

    #[test]
    fn projection_dedupes_and_orders() {
        let q = AggQuery::new(
            vec![1, 3],
            vec![
                AggSpec::over(AggFunc::Sum, 0),
                AggSpec::over(AggFunc::Min, 3), // duplicates a group col
                AggSpec::count_star(),          // no input
            ],
        );
        assert_eq!(q.projection_columns(), vec![1, 3, 0]);
    }

    #[test]
    fn remapping_points_into_projection() {
        let q = q();
        assert_eq!(q.projection_columns(), vec![2, 0, 4]);
        let r = q.remapped_to_projection();
        assert_eq!(r.group_by, vec![0]);
        assert_eq!(r.aggs[0].input, Some(1));
        assert_eq!(r.aggs[1].input, Some(2));
    }

    #[test]
    fn arities() {
        let q = q();
        assert_eq!(q.partial_arity(), 1 + 2);
        assert_eq!(q.partial_row_arity(), 1 + 3);
        assert_eq!(q.result_row_arity(), 1 + 2);
    }

    #[test]
    fn key_extraction() {
        let q = q();
        let t = tuple![1i64, 2i64, 7i64, 4i64, 5i64];
        assert_eq!(
            q.key_of(&t).unwrap(),
            GroupKey::new(vec![Value::Int(7)])
        );
        assert_eq!(
            q.key_of_values(t.values()).unwrap(),
            GroupKey::new(vec![Value::Int(7)])
        );
        assert!(q.key_of_values(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn result_row_wire_round_trip() {
        let q = q();
        let row = ResultRow::new(
            GroupKey::new(vec![Value::Int(7)]),
            vec![Value::Int(10), Value::Float(2.5)],
        );
        let vals = row.clone().into_values();
        assert_eq!(vals.len(), q.result_row_arity());
        let back = ResultRow::from_values(&q, vals).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn result_row_wrong_arity_rejected() {
        let q = q();
        assert!(ResultRow::from_values(&q, vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn sort_rows_orders_by_key() {
        let mk = |i: i64| ResultRow::new(GroupKey::new(vec![Value::Int(i)]), vec![]);
        let mut rows = vec![mk(3), mk(1), mk(2)];
        sort_rows(&mut rows);
        let keys: Vec<i64> = rows
            .iter()
            .map(|r| r.key.values()[0].as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn display_reads_like_sql() {
        let q = AggQuery::new(vec![0], vec![AggSpec::count_star()]);
        assert_eq!(q.to_string(), "SELECT col0, COUNT(*) GROUP BY col0");
        let d = AggQuery::distinct(vec![1]);
        assert_eq!(d.to_string(), "SELECT col1 GROUP BY col1");
        let s = AggQuery::new(vec![], vec![AggSpec::over(AggFunc::Sum, 0)]);
        assert_eq!(s.to_string(), "SELECT SUM(col0) GROUP BY ()");
        let w = AggQuery::distinct(vec![0]).with_filter(vec![
            crate::predicate::Predicate::new(
                1,
                crate::predicate::Compare::Gt,
                Value::Int(5),
            ),
        ]);
        assert_eq!(w.to_string(), "SELECT col0 WHERE col1 > 5 GROUP BY col0");
    }

    #[test]
    fn remapping_drops_the_consumed_filter() {
        let q = AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)]).with_filter(vec![
            crate::predicate::Predicate::new(
                2,
                crate::predicate::Compare::Eq,
                Value::Int(1),
            ),
        ]);
        assert!(q.remapped_to_projection().filter.is_empty());
    }
}
