//! Aggregate functions and *mergeable* partial states.
//!
//! The paper's algorithms hinge on partial aggregation: the Two Phase
//! family aggregates locally, ships *partial results*, and merges them; the
//! Adaptive Two Phase algorithm additionally requires the merge phase to
//! accept **raw tuples and partial rows interleaved in one hash table**
//! (§3.2: "Both kinds of tuples can be merged into the same hash table").
//!
//! Every function therefore defines three operations:
//!
//! * [`AggState::update`] — fold in a raw input value (SQL semantics:
//!   NULLs are skipped; `COUNT(*)` counts rows);
//! * [`AggState::merge`] / [`AggStates::merge_partial_values`] — fold in
//!   another partial state (associative & commutative — property-tested);
//! * [`AggState::finalize`] — emit the SQL result value.
//!
//! Partial states are encoded as plain [`Value`] columns
//! ([`AggState::to_partial_values`]) so they travel in ordinary tuples
//! through the same pages and messages as raw data — exactly how the
//! paper's implementation forwards "locally aggregated values".

use crate::error::ModelError;
use crate::value::Value;
use std::fmt;

/// Whether a row is a raw input tuple or an encoded partial-aggregate row.
///
/// The paper's merge phases receive "two kinds of tuples … locally
/// aggregated values and … raw (perhaps projected) tuples" (§3.2); this tag
/// travels with every data page on the wire and with every spilled tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowKind {
    /// A projected base tuple.
    Raw,
    /// Group-key columns followed by encoded partial-state columns.
    Partial,
}

impl fmt::Display for RowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowKind::Raw => write!(f, "raw"),
            RowKind::Partial => write!(f, "partial"),
        }
    }
}

/// The SQL aggregate functions the paper's workloads use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` (with `input: None`) or `COUNT(col)` (non-NULL count).
    Count,
    /// `SUM(col)` over a numeric column. NULL over empty input.
    Sum,
    /// `AVG(col)` over a numeric column. NULL over empty input.
    Avg,
    /// `MIN(col)` over any orderable column.
    Min,
    /// `MAX(col)` over any orderable column.
    Max,
    /// Population variance `VAR_POP(col)` — an extension beyond the
    /// paper's COUNT/SUM/AVG/MIN/MAX set, included because its partial
    /// state (count, sum, sum of squares) exercises multi-column
    /// mergeability beyond AVG's two columns.
    VarPop,
    /// Population standard deviation `STDDEV_POP(col)` (same state as
    /// [`AggFunc::VarPop`], square-rooted at finalize).
    StddevPop,
}

impl AggFunc {
    /// Number of columns this function's partial state occupies when
    /// encoded into a partial row (AVG needs `sum` and `count`; the
    /// variance family needs `sum`, `sum of squares`, and `count`).
    pub fn partial_arity(self) -> usize {
        match self {
            AggFunc::Avg => 2,
            AggFunc::VarPop | AggFunc::StddevPop => 3,
            _ => 1,
        }
    }

    /// SQL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::VarPop => "VAR_POP",
            AggFunc::StddevPop => "STDDEV_POP",
        }
    }

    /// All functions (test sweeps).
    pub const ALL: [AggFunc; 7] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::VarPop,
        AggFunc::StddevPop,
    ];
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One aggregate expression in a query: a function over an input column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// The input column index into the (projected) tuple, or `None` for
    /// `COUNT(*)`.
    pub input: Option<usize>,
}

impl AggSpec {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggSpec {
            func: AggFunc::Count,
            input: None,
        }
    }

    /// A function over a column.
    pub fn over(func: AggFunc, column: usize) -> Self {
        AggSpec {
            func,
            input: Some(column),
        }
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.input {
            Some(c) => write!(f, "{}(col{})", self.func, c),
            None => write!(f, "{}(*)", self.func),
        }
    }
}

/// Numeric accumulator that stays integral as long as inputs are integers
/// (i128 so 8M-row i64 sums cannot overflow) and promotes to float when a
/// float arrives.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NumAcc {
    Int(i128),
    Float(f64),
}

impl NumAcc {
    fn zero() -> Self {
        NumAcc::Int(0)
    }

    fn add_value(&mut self, v: &Value, context: &'static str) -> Result<(), ModelError> {
        match v {
            Value::Int(i) => match self {
                NumAcc::Int(acc) => *acc += *i as i128,
                NumAcc::Float(acc) => *acc += *i as f64,
            },
            Value::Float(f) => {
                let cur = self.as_f64();
                *self = NumAcc::Float(cur + f);
            }
            other => {
                return Err(ModelError::TypeMismatch {
                    expected: "numeric",
                    found: other.type_name(),
                    context,
                })
            }
        }
        Ok(())
    }

    fn add_int(&mut self, x: i64) {
        match self {
            NumAcc::Int(acc) => *acc += x as i128,
            NumAcc::Float(acc) => *acc += x as f64,
        }
    }

    fn add_acc(&mut self, other: NumAcc) {
        match (&mut *self, other) {
            (NumAcc::Int(a), NumAcc::Int(b)) => *a += b,
            (NumAcc::Float(a), NumAcc::Float(b)) => *a += b,
            (NumAcc::Int(_), NumAcc::Float(b)) => *self = NumAcc::Float(self.as_f64() + b),
            (NumAcc::Float(a), NumAcc::Int(b)) => *a += b as f64,
        }
    }

    fn as_f64(&self) -> f64 {
        match self {
            NumAcc::Int(i) => *i as f64,
            NumAcc::Float(f) => *f,
        }
    }

    fn to_value(self) -> Value {
        match self {
            NumAcc::Int(i) => i64::try_from(i)
                .map(Value::Int)
                .unwrap_or(Value::Float(i as f64)),
            NumAcc::Float(f) => Value::Float(f),
        }
    }

    fn from_value(v: &Value, context: &'static str) -> Result<Option<NumAcc>, ModelError> {
        match v {
            Value::Null => Ok(None),
            Value::Int(i) => Ok(Some(NumAcc::Int(*i as i128))),
            Value::Float(f) => Ok(Some(NumAcc::Float(*f))),
            other => Err(ModelError::TypeMismatch {
                expected: "numeric",
                found: other.type_name(),
                context,
            }),
        }
    }
}

/// The running state of one aggregate function for one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Row / non-NULL count.
    Count(u64),
    /// Running sum; `None` until the first non-NULL input (SQL: SUM of
    /// nothing is NULL, not 0).
    Sum(Option<NumAccState>),
    /// Running sum and count for AVG.
    Avg { sum: NumAccState, count: u64 },
    /// Current minimum; `None` until the first non-NULL input.
    Min(Option<Value>),
    /// Current maximum; `None` until the first non-NULL input.
    Max(Option<Value>),
    /// Running moments for the variance family: Σx, Σx², non-NULL count.
    /// `stddev` selects the square root at finalize.
    Var {
        /// Σx (floats: variance is inherently floating point).
        sum: f64,
        /// Σx².
        sum_sq: f64,
        /// Non-NULL inputs.
        count: u64,
        /// `true` for STDDEV_POP, `false` for VAR_POP.
        stddev: bool,
    },
}

/// Public opaque wrapper over the numeric accumulator (keeps `NumAcc`
/// private while letting `AggState` derive its traits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumAccState(NumAcc);

impl AggState {
    /// Fresh state for a function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(None),
            AggFunc::Avg => AggState::Avg {
                sum: NumAccState(NumAcc::zero()),
                count: 0,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::VarPop => AggState::Var {
                sum: 0.0,
                sum_sq: 0.0,
                count: 0,
                stddev: false,
            },
            AggFunc::StddevPop => AggState::Var {
                sum: 0.0,
                sum_sq: 0.0,
                count: 0,
                stddev: true,
            },
        }
    }

    /// The function this state belongs to.
    pub fn func(&self) -> AggFunc {
        match self {
            AggState::Count(_) => AggFunc::Count,
            AggState::Sum(_) => AggFunc::Sum,
            AggState::Avg { .. } => AggFunc::Avg,
            AggState::Min(_) => AggFunc::Min,
            AggState::Max(_) => AggFunc::Max,
            AggState::Var { stddev: false, .. } => AggFunc::VarPop,
            AggState::Var { stddev: true, .. } => AggFunc::StddevPop,
        }
    }

    /// Fold in a raw input value. `input` is `None` for `COUNT(*)`.
    /// SQL semantics: NULL inputs are skipped by every function except
    /// `COUNT(*)`.
    pub fn update(&mut self, input: Option<&Value>) -> Result<(), ModelError> {
        match self {
            AggState::Count(n) => match input {
                None => *n += 1,                    // COUNT(*)
                Some(Value::Null) => {}             // COUNT(col) skips NULL
                Some(_) => *n += 1,
            },
            AggState::Sum(acc) => {
                let v = input.ok_or(ModelError::TypeMismatch {
                    expected: "a column",
                    found: "COUNT(*)-style missing input",
                    context: "SUM update",
                })?;
                if !v.is_null() {
                    match acc {
                        Some(a) => a.0.add_value(v, "SUM update")?,
                        None => {
                            *acc = NumAcc::from_value(v, "SUM update")?.map(NumAccState);
                        }
                    }
                }
            }
            AggState::Avg { sum, count } => {
                let v = input.ok_or(ModelError::TypeMismatch {
                    expected: "a column",
                    found: "COUNT(*)-style missing input",
                    context: "AVG update",
                })?;
                if !v.is_null() {
                    sum.0.add_value(v, "AVG update")?;
                    *count += 1;
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = input.filter(|v| !v.is_null()) {
                    match cur {
                        Some(m) if &*m <= v => {}
                        _ => *cur = Some(v.clone()),
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = input.filter(|v| !v.is_null()) {
                    match cur {
                        Some(m) if &*m >= v => {}
                        _ => *cur = Some(v.clone()),
                    }
                }
            }
            AggState::Var {
                sum,
                sum_sq,
                count,
                ..
            } => {
                let v = input.ok_or(ModelError::TypeMismatch {
                    expected: "a column",
                    found: "COUNT(*)-style missing input",
                    context: "VAR update",
                })?;
                if !v.is_null() {
                    let x = v.as_f64().ok_or(ModelError::TypeMismatch {
                        expected: "numeric",
                        found: v.type_name(),
                        context: "VAR update",
                    })?;
                    *sum += x;
                    *sum_sq += x * x;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    /// Fold in a raw `Int` input — the validity-free fixed-width arm of
    /// the batched columnar update. Bit-identical to
    /// `update(Some(&Value::Int(x)))`, which is infallible for every
    /// function, so no error channel is needed.
    #[inline]
    pub fn update_int(&mut self, x: i64) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(acc) => match acc {
                Some(a) => a.0.add_int(x),
                None => *acc = Some(NumAccState(NumAcc::Int(x as i128))),
            },
            AggState::Avg { sum, count } => {
                sum.0.add_int(x);
                *count += 1;
            }
            AggState::Min(cur) => {
                let v = Value::Int(x);
                match cur {
                    Some(m) if *m <= v => {}
                    _ => *cur = Some(v),
                }
            }
            AggState::Max(cur) => {
                let v = Value::Int(x);
                match cur {
                    Some(m) if *m >= v => {}
                    _ => *cur = Some(v),
                }
            }
            AggState::Var {
                sum,
                sum_sq,
                count,
                ..
            } => {
                let f = x as f64;
                *sum += f;
                *sum_sq += f * f;
                *count += 1;
            }
        }
    }

    /// Merge another state of the same function into this one.
    /// Associative and commutative (property-tested below).
    pub fn merge(&mut self, other: &AggState) -> Result<(), ModelError> {
        match (&mut *self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => match (&mut *a, b) {
                (_, None) => {}
                (Some(x), Some(y)) => x.0.add_acc(y.0),
                (None, Some(y)) => *a = Some(*y),
            },
            (
                AggState::Avg { sum: sa, count: ca },
                AggState::Avg { sum: sb, count: cb },
            ) => {
                sa.0.add_acc(sb.0);
                *ca += cb;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(y) = b {
                    match a {
                        Some(x) if &*x <= y => {}
                        _ => *a = Some(y.clone()),
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(y) = b {
                    match a {
                        Some(x) if &*x >= y => {}
                        _ => *a = Some(y.clone()),
                    }
                }
            }
            (
                AggState::Var {
                    sum: sa,
                    sum_sq: qa,
                    count: ca,
                    stddev: da,
                },
                AggState::Var {
                    sum: sb,
                    sum_sq: qb,
                    count: cb,
                    stddev: db,
                },
            ) if da == db => {
                *sa += sb;
                *qa += qb;
                *ca += cb;
            }
            (a, b) => {
                return Err(ModelError::TypeMismatch {
                    expected: a.func().name(),
                    found: b.func().name(),
                    context: "state merge",
                })
            }
        }
        Ok(())
    }

    /// Encode the state as partial-row columns (arity =
    /// [`AggFunc::partial_arity`]). The inverse of
    /// [`AggState::merge_partial`].
    pub fn to_partial_values(&self, out: &mut Vec<Value>) {
        match self {
            AggState::Count(n) => out.push(Value::Int(*n as i64)),
            AggState::Sum(acc) => out.push(match acc {
                Some(a) => a.0.to_value(),
                None => Value::Null,
            }),
            AggState::Avg { sum, count } => {
                out.push(if *count == 0 {
                    Value::Null
                } else {
                    sum.0.to_value()
                });
                out.push(Value::Int(*count as i64));
            }
            AggState::Min(v) | AggState::Max(v) => {
                out.push(v.clone().unwrap_or(Value::Null))
            }
            AggState::Var {
                sum,
                sum_sq,
                count,
                ..
            } => {
                out.push(Value::Float(*sum));
                out.push(Value::Float(*sum_sq));
                out.push(Value::Int(*count as i64));
            }
        }
    }

    /// Merge encoded partial columns (as produced by
    /// [`AggState::to_partial_values`]) into this state. `cols` must have
    /// exactly `partial_arity` elements.
    pub fn merge_partial(&mut self, cols: &[Value]) -> Result<(), ModelError> {
        let expect = self.func().partial_arity();
        if cols.len() != expect {
            return Err(ModelError::PartialArityMismatch {
                expected: expect,
                found: cols.len(),
            });
        }
        match self {
            AggState::Count(n) => {
                let add = cols[0].as_i64().ok_or(ModelError::TypeMismatch {
                    expected: "Int",
                    found: cols[0].type_name(),
                    context: "COUNT partial merge",
                })?;
                *n += u64::try_from(add).map_err(|_| ModelError::Corrupt("negative COUNT partial"))?;
            }
            AggState::Sum(acc) => {
                if let Some(v) = NumAcc::from_value(&cols[0], "SUM partial merge")? {
                    match acc {
                        Some(a) => a.0.add_acc(v),
                        None => *acc = Some(NumAccState(v)),
                    }
                }
            }
            AggState::Avg { sum, count } => {
                let c = cols[1].as_i64().ok_or(ModelError::TypeMismatch {
                    expected: "Int",
                    found: cols[1].type_name(),
                    context: "AVG partial merge (count)",
                })?;
                let c = u64::try_from(c).map_err(|_| ModelError::Corrupt("negative AVG count"))?;
                if c > 0 {
                    let v = NumAcc::from_value(&cols[0], "AVG partial merge (sum)")?
                        .ok_or(ModelError::Corrupt("AVG partial: NULL sum with count > 0"))?;
                    sum.0.add_acc(v);
                    *count += c;
                }
            }
            AggState::Min(cur) => {
                if !cols[0].is_null() {
                    match cur {
                        Some(m) if *m <= cols[0] => {}
                        _ => *cur = Some(cols[0].clone()),
                    }
                }
            }
            AggState::Max(cur) => {
                if !cols[0].is_null() {
                    match cur {
                        Some(m) if *m >= cols[0] => {}
                        _ => *cur = Some(cols[0].clone()),
                    }
                }
            }
            AggState::Var {
                sum,
                sum_sq,
                count,
                ..
            } => {
                let s = cols[0].as_f64().ok_or(ModelError::TypeMismatch {
                    expected: "numeric",
                    found: cols[0].type_name(),
                    context: "VAR partial merge (sum)",
                })?;
                let q = cols[1].as_f64().ok_or(ModelError::TypeMismatch {
                    expected: "numeric",
                    found: cols[1].type_name(),
                    context: "VAR partial merge (sum_sq)",
                })?;
                let c = cols[2].as_i64().ok_or(ModelError::TypeMismatch {
                    expected: "Int",
                    found: cols[2].type_name(),
                    context: "VAR partial merge (count)",
                })?;
                let c = u64::try_from(c).map_err(|_| ModelError::Corrupt("negative VAR count"))?;
                *sum += s;
                *sum_sq += q;
                *count += c;
            }
        }
        Ok(())
    }

    /// The SQL result value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::Sum(acc) => match acc {
                Some(a) => a.0.to_value(),
                None => Value::Null,
            },
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.0.as_f64() / *count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Var {
                sum,
                sum_sq,
                count,
                stddev,
            } => {
                if *count == 0 {
                    Value::Null
                } else {
                    let n = *count as f64;
                    let mean = sum / n;
                    // Guard the subtraction against tiny negative
                    // floating-point residue.
                    let var = (sum_sq / n - mean * mean).max(0.0);
                    Value::Float(if *stddev { var.sqrt() } else { var })
                }
            }
        }
    }
}

/// The states of *all* of a query's aggregates for one group — the value
/// side of every hash-table entry in the system.
#[derive(Debug, Clone, PartialEq)]
pub struct AggStates {
    states: Box<[AggState]>,
}

impl AggStates {
    /// Fresh states for a query's aggregate list.
    pub fn new(specs: &[AggSpec]) -> Self {
        AggStates {
            states: specs.iter().map(|s| AggState::new(s.func)).collect(),
        }
    }

    /// Number of aggregate functions.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the query has no aggregates (pure duplicate elimination).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The individual states.
    pub fn states(&self) -> &[AggState] {
        &self.states
    }

    /// Total partial-row arity across all aggregates.
    pub fn partial_arity(&self) -> usize {
        self.states.iter().map(|s| s.func().partial_arity()).sum()
    }

    /// Fold in a raw tuple: for each spec, extract its input column and
    /// update the matching state.
    pub fn update_from_tuple(
        &mut self,
        specs: &[AggSpec],
        tuple_values: &[Value],
    ) -> Result<(), ModelError> {
        debug_assert_eq!(specs.len(), self.states.len());
        for (state, spec) in self.states.iter_mut().zip(specs) {
            let input = match spec.input {
                Some(c) => Some(tuple_values.get(c).ok_or(
                    ModelError::ColumnOutOfRange {
                        column: c,
                        arity: tuple_values.len(),
                    },
                )?),
                None => None,
            };
            state.update(input)?;
        }
        Ok(())
    }

    /// Columnar fast-path update for spec `idx` with an `Int` input cell
    /// (see [`AggState::update_int`]). The batched probe defers updates
    /// behind a group-index vector and replays them column-at-a-time
    /// through here, in row order per state — bit-identical to the
    /// row-at-a-time [`AggStates::update_from_tuple`] because states of
    /// different specs never interact.
    #[inline]
    pub fn update_int_at(&mut self, idx: usize, x: i64) {
        self.states[idx].update_int(x);
    }

    /// Columnar `COUNT(*)` update for spec `idx` (no input column). Only
    /// valid for a `COUNT` state — the batched path's eligibility check
    /// guarantees that.
    #[inline]
    pub fn update_star_at(&mut self, idx: usize) {
        match &mut self.states[idx] {
            AggState::Count(n) => *n += 1,
            other => unreachable!("COUNT(*)-style update on {} state", other.func()),
        }
    }

    /// Fold in an encoded partial row (the non-key columns of a partial
    /// tuple, concatenated per function in spec order).
    pub fn merge_partial_values(&mut self, cols: &[Value]) -> Result<(), ModelError> {
        if cols.len() != self.partial_arity() {
            return Err(ModelError::PartialArityMismatch {
                expected: self.partial_arity(),
                found: cols.len(),
            });
        }
        let mut pos = 0;
        for state in self.states.iter_mut() {
            let n = state.func().partial_arity();
            state.merge_partial(&cols[pos..pos + n])?;
            pos += n;
        }
        Ok(())
    }

    /// Merge another whole state row (e.g. combining two hash tables).
    pub fn merge(&mut self, other: &AggStates) -> Result<(), ModelError> {
        if self.states.len() != other.states.len() {
            return Err(ModelError::PartialArityMismatch {
                expected: self.states.len(),
                found: other.states.len(),
            });
        }
        for (a, b) in self.states.iter_mut().zip(other.states.iter()) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Encode all states as partial-row columns.
    pub fn to_partial_values(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.partial_arity());
        for s in self.states.iter() {
            s.to_partial_values(&mut out);
        }
        out
    }

    /// Finalize all states into result columns.
    pub fn finalize(&self) -> Vec<Value> {
        self.states.iter().map(|s| s.finalize()).collect()
    }

    /// Approximate in-memory footprint in bytes of one group entry's state
    /// (used by memory accounting in the bounded hash table).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<AggState>() * self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, inputs: &[Value]) -> Value {
        let mut s = AggState::new(func);
        for v in inputs {
            s.update(Some(v)).unwrap();
        }
        s.finalize()
    }

    #[test]
    fn count_star_counts_rows_including_nulls() {
        let mut s = AggState::new(AggFunc::Count);
        for _ in 0..3 {
            s.update(None).unwrap();
        }
        assert_eq!(s.finalize(), Value::Int(3));
    }

    #[test]
    fn count_col_skips_nulls() {
        assert_eq!(
            run(AggFunc::Count, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Int(2)
        );
    }

    #[test]
    fn sum_of_ints_stays_int() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Int(2), Value::Int(3)]),
            Value::Int(6)
        );
    }

    #[test]
    fn sum_promotes_to_float() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
    }

    #[test]
    fn sum_of_nothing_is_null() {
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn sum_near_i64_max_does_not_overflow() {
        let big = i64::MAX - 10;
        let v = run(AggFunc::Sum, &[Value::Int(big), Value::Int(big)]);
        // 2*(i64::MAX-10) exceeds i64: falls back to float.
        assert_eq!(v, Value::Float((big as f64) * 2.0));
    }

    #[test]
    fn sum_over_string_is_type_error() {
        let mut s = AggState::new(AggFunc::Sum);
        let err = s.update(Some(&Value::Str("x".into()))).unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn avg_divides_sum_by_nonnull_count() {
        assert_eq!(
            run(AggFunc::Avg, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Float(1.5)
        );
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
    }

    #[test]
    fn min_max_over_values() {
        let vs = [Value::Int(5), Value::Int(-2), Value::Null, Value::Int(9)];
        assert_eq!(run(AggFunc::Min, &vs), Value::Int(-2));
        assert_eq!(run(AggFunc::Max, &vs), Value::Int(9));
        assert_eq!(run(AggFunc::Min, &[Value::Null]), Value::Null);
    }

    #[test]
    fn min_max_over_strings() {
        let vs = [Value::Str("pear".into()), Value::Str("apple".into())];
        assert_eq!(run(AggFunc::Min, &vs), Value::Str("apple".into()));
        assert_eq!(run(AggFunc::Max, &vs), Value::Str("pear".into()));
    }

    #[test]
    fn var_pop_and_stddev_pop() {
        // Values 2, 4, 4, 4, 5, 5, 7, 9: mean 5, variance 4, stddev 2.
        let vs: Vec<Value> = [2i64, 4, 4, 4, 5, 5, 7, 9].iter().map(|&x| Value::Int(x)).collect();
        assert_eq!(run(AggFunc::VarPop, &vs), Value::Float(4.0));
        assert_eq!(run(AggFunc::StddevPop, &vs), Value::Float(2.0));
        assert_eq!(run(AggFunc::VarPop, &[]), Value::Null);
        assert_eq!(run(AggFunc::VarPop, &[Value::Null]), Value::Null);
        // A single value has zero variance.
        assert_eq!(run(AggFunc::VarPop, &[Value::Int(42)]), Value::Float(0.0));
    }

    #[test]
    fn var_over_string_is_type_error() {
        let mut s = AggState::new(AggFunc::VarPop);
        assert!(s.update(Some(&Value::Str("x".into()))).is_err());
    }

    #[test]
    fn var_partial_state_is_three_columns() {
        let mut s = AggState::new(AggFunc::StddevPop);
        s.update(Some(&Value::Int(3))).unwrap();
        s.update(Some(&Value::Int(5))).unwrap();
        let mut cols = Vec::new();
        s.to_partial_values(&mut cols);
        assert_eq!(
            cols,
            vec![Value::Float(8.0), Value::Float(34.0), Value::Int(2)]
        );
    }

    #[test]
    fn var_merge_rejects_mixed_var_and_stddev() {
        // Same state layout, different finalize: merging them would
        // silently corrupt semantics, so it must error.
        let mut a = AggState::new(AggFunc::VarPop);
        let b = AggState::new(AggFunc::StddevPop);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn partial_round_trip_equals_direct() {
        // Split an input stream in two, aggregate halves, ship as partial
        // rows, merge — must equal aggregating the whole stream directly.
        let inputs: Vec<Value> = (0..10).map(Value::Int).collect();
        for func in AggFunc::ALL {
            let direct = run(func, &inputs);

            let mut a = AggState::new(func);
            let mut b = AggState::new(func);
            for v in &inputs[..4] {
                a.update(Some(v)).unwrap();
            }
            for v in &inputs[4..] {
                b.update(Some(v)).unwrap();
            }
            let mut merged = AggState::new(func);
            let mut pa = Vec::new();
            a.to_partial_values(&mut pa);
            let mut pb = Vec::new();
            b.to_partial_values(&mut pb);
            merged.merge_partial(&pa).unwrap();
            merged.merge_partial(&pb).unwrap();
            assert_eq!(merged.finalize(), direct, "{func} partial round-trip");
        }
    }

    #[test]
    fn empty_partials_merge_to_empty() {
        for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            let empty = AggState::new(func);
            let mut p = Vec::new();
            empty.to_partial_values(&mut p);
            let mut merged = AggState::new(func);
            merged.merge_partial(&p).unwrap();
            assert_eq!(merged.finalize(), Value::Null, "{func}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_functions() {
        let mut a = AggState::new(AggFunc::Sum);
        let b = AggState::new(AggFunc::Count);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_partial_rejects_wrong_arity() {
        let mut a = AggState::new(AggFunc::Avg);
        assert_eq!(
            a.merge_partial(&[Value::Int(1)]),
            Err(ModelError::PartialArityMismatch {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn states_row_update_and_finalize() {
        let specs = [
            AggSpec::count_star(),
            AggSpec::over(AggFunc::Sum, 1),
            AggSpec::over(AggFunc::Avg, 1),
            AggSpec::over(AggFunc::Min, 1),
        ];
        let mut states = AggStates::new(&specs);
        states
            .update_from_tuple(&specs, &[Value::Int(0), Value::Int(10)])
            .unwrap();
        states
            .update_from_tuple(&specs, &[Value::Int(0), Value::Int(20)])
            .unwrap();
        assert_eq!(
            states.finalize(),
            vec![
                Value::Int(2),
                Value::Int(30),
                Value::Float(15.0),
                Value::Int(10)
            ]
        );
        assert_eq!(states.partial_arity(), 1 + 1 + 2 + 1);
    }

    #[test]
    fn states_row_partial_round_trip() {
        let specs = [
            AggSpec::count_star(),
            AggSpec::over(AggFunc::Avg, 1),
        ];
        let mut a = AggStates::new(&specs);
        let mut b = AggStates::new(&specs);
        a.update_from_tuple(&specs, &[Value::Int(0), Value::Int(4)]).unwrap();
        b.update_from_tuple(&specs, &[Value::Int(0), Value::Int(8)]).unwrap();

        let mut merged = AggStates::new(&specs);
        merged.merge_partial_values(&a.to_partial_values()).unwrap();
        merged.merge_partial_values(&b.to_partial_values()).unwrap();
        assert_eq!(
            merged.finalize(),
            vec![Value::Int(2), Value::Float(6.0)]
        );
    }

    #[test]
    fn duplicate_elimination_has_no_states() {
        let states = AggStates::new(&[]);
        assert!(states.is_empty());
        assert_eq!(states.partial_arity(), 0);
        assert_eq!(states.finalize(), Vec::<Value>::new());
    }

    #[test]
    fn update_int_matches_update_for_every_function() {
        // The columnar fast path must leave *states* (not just results)
        // bit-identical, including NumAcc Int/Float promotion order.
        let inputs: Vec<i64> = vec![5, -2, 0, i64::MAX / 2, 7, -2];
        for func in AggFunc::ALL {
            let mut via_value = AggState::new(func);
            let mut via_int = AggState::new(func);
            for &x in &inputs {
                via_value.update(Some(&Value::Int(x))).unwrap();
                via_int.update_int(x);
            }
            assert_eq!(via_value, via_int, "{func} state diverged");
            assert_eq!(via_value.finalize(), via_int.finalize());
        }
        // After a float promotes the accumulator, ints keep folding in
        // identically.
        let mut a = AggState::new(AggFunc::Sum);
        let mut b = AggState::new(AggFunc::Sum);
        a.update(Some(&Value::Float(0.5))).unwrap();
        b.update(Some(&Value::Float(0.5))).unwrap();
        a.update(Some(&Value::Int(3))).unwrap();
        b.update_int(3);
        assert_eq!(a, b);
    }

    #[test]
    fn states_columnar_updates_match_row_updates() {
        let specs = [
            AggSpec::count_star(),
            AggSpec::over(AggFunc::Sum, 1),
            AggSpec::over(AggFunc::Min, 0),
        ];
        let rows: Vec<[i64; 2]> = (0..20).map(|i| [i % 4, i * 3]).collect();
        let mut row_wise = AggStates::new(&specs);
        for r in &rows {
            row_wise
                .update_from_tuple(&specs, &[Value::Int(r[0]), Value::Int(r[1])])
                .unwrap();
        }
        // Column-at-a-time, one spec over the whole batch at a time.
        let mut col_wise = AggStates::new(&specs);
        for (j, spec) in specs.iter().enumerate() {
            for r in &rows {
                match spec.input {
                    None => col_wise.update_star_at(j),
                    Some(c) => col_wise.update_int_at(j, r[c]),
                }
            }
        }
        assert_eq!(row_wise, col_wise);
    }

    #[test]
    fn update_missing_input_column_errors() {
        let specs = [AggSpec::over(AggFunc::Sum, 5)];
        let mut states = AggStates::new(&specs);
        assert!(states
            .update_from_tuple(&specs, &[Value::Int(1)])
            .is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_inputs() -> impl Strategy<Value = Vec<Value>> {
        proptest::collection::vec(
            prop_oneof![
                Just(Value::Null),
                (-1000i64..1000).prop_map(Value::Int),
            ],
            0..40,
        )
    }

    fn fold(func: AggFunc, inputs: &[Value]) -> AggState {
        let mut s = AggState::new(func);
        for v in inputs {
            s.update(Some(v)).unwrap();
        }
        s
    }

    proptest! {
        /// Merging partials from any split equals direct aggregation:
        /// the foundation of every Two Phase variant.
        #[test]
        fn prop_any_split_merges_to_direct(
            inputs in arb_inputs(),
            split in 0usize..40,
        ) {
            let split = split.min(inputs.len());
            for func in AggFunc::ALL {
                let direct = fold(func, &inputs).finalize();
                let a = fold(func, &inputs[..split]);
                let b = fold(func, &inputs[split..]);
                let mut m = AggState::new(func);
                m.merge(&a).unwrap();
                m.merge(&b).unwrap();
                prop_assert_eq!(m.finalize(), direct);
            }
        }

        /// Merge is commutative.
        #[test]
        fn prop_merge_commutes(xs in arb_inputs(), ys in arb_inputs()) {
            for func in AggFunc::ALL {
                let a = fold(func, &xs);
                let b = fold(func, &ys);
                let mut ab = a.clone();
                ab.merge(&b).unwrap();
                let mut ba = b.clone();
                ba.merge(&a).unwrap();
                prop_assert_eq!(ab.finalize(), ba.finalize());
            }
        }

        /// Encoding to partial columns and merging back is lossless.
        #[test]
        fn prop_partial_encoding_round_trips(xs in arb_inputs()) {
            for func in AggFunc::ALL {
                let s = fold(func, &xs);
                let mut cols = Vec::new();
                s.to_partial_values(&mut cols);
                let mut back = AggState::new(func);
                back.merge_partial(&cols).unwrap();
                prop_assert_eq!(back.finalize(), s.finalize());
            }
        }
    }
}
