//! Schemas: named, typed columns.
//!
//! The execution engine is mostly schema-oblivious (it moves [`crate::Tuple`]s),
//! but workload generators, the projection operator, and result printing all
//! need to know column names, types, and widths.

use crate::value::Value;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Variable-length UTF-8 string.
    Str,
}

impl DataType {
    /// Whether a concrete value inhabits this type (NULL inhabits all).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Str, Value::Str(_))
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// A schema over the given fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of the column with the given name, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field at `idx`, if in range.
    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// A schema containing only the given columns, in the given order
    /// (used by the projection step of every algorithm).
    pub fn project(&self, columns: &[usize]) -> Schema {
        Schema {
            fields: columns
                .iter()
                .filter_map(|&c| self.fields.get(c).cloned())
                .collect(),
        }
    }

    /// Whether a tuple's values inhabit this schema.
    pub fn admits(&self, values: &[Value]) -> bool {
        values.len() == self.arity()
            && values
                .iter()
                .zip(&self.fields)
                .all(|(v, f)| f.data_type.admits(v))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("tag", DataType::Str),
        ])
    }

    #[test]
    fn index_and_field_lookup() {
        let s = sample();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("v"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field(2).unwrap().name, "tag");
        assert!(s.field(3).is_none());
    }

    #[test]
    fn projection_keeps_order_and_drops_out_of_range() {
        let s = sample();
        let p = s.project(&[2, 0, 9]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.field(0).unwrap().name, "tag");
        assert_eq!(p.field(1).unwrap().name, "g");
    }

    #[test]
    fn admits_checks_types_and_arity() {
        let s = sample();
        assert!(s.admits(&[Value::Int(1), Value::Float(2.0), Value::Str("a".into())]));
        assert!(s.admits(&[Value::Null, Value::Null, Value::Null]), "NULL inhabits all");
        assert!(!s.admits(&[Value::Int(1), Value::Int(2), Value::Str("a".into())]));
        assert!(!s.admits(&[Value::Int(1)]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(sample().to_string(), "(g INT, v FLOAT, tag STR)");
        assert_eq!(DataType::Float.to_string(), "FLOAT");
    }
}
