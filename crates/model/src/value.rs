//! Dynamically-typed scalar values.
//!
//! The paper's queries group on and aggregate over ordinary SQL columns; we
//! support the four types its workloads need (integers, floats, strings and
//! NULL). `Value` implements `Hash`/`Eq`/`Ord` with a *total* order (floats
//! are ordered by their IEEE total order, NULL sorts first), because hash
//! aggregation needs `Eq + Hash` and result comparison in tests needs `Ord`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A scalar value in a tuple.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Aggregate functions skip NULL inputs (SQL semantics);
    /// NULL group-by keys form their own group.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string. Boxed to keep `Value` at two words + discriminant.
    Str(Box<str>),
}

impl Value {
    /// A short name for the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
        }
    }

    /// Whether this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number of *payload* bytes this value occupies in the byte-level
    /// tuple encoding (see [`crate::encode`]); a 1-byte tag is added by the
    /// encoder. Storage pages, spill files and network messages are all
    /// sized from this, which is what makes the virtual-time I/O and
    /// network accounting follow real data volumes.
    pub fn encoded_payload_len(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
        }
    }

    /// Normalized float key: IEEE total-order bits so that `Eq`/`Hash`
    /// agree (NaN == NaN, +0.0 != -0.0 is avoided by mapping -0.0 to +0.0).
    fn float_key(f: f64) -> u64 {
        let f = if f == 0.0 { 0.0 } else { f }; // collapse -0.0 into +0.0
        let bits = f.to_bits();
        if bits >> 63 == 1 {
            !bits // negative: reverse order and clear the sign bit
        } else {
            bits | 0x8000_0000_0000_0000 // positive: above all negatives
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                Value::float_key(*a) == Value::float_key(*b)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(Value::float_key(*f));
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
                state.write_u8(0xff);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < Int < Float < Str across types; natural order
    /// within a type (floats via total-order bits).
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) => 1,
                Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => {
                Value::float_key(*a).cmp(&Value::float_key(*b))
            }
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into_boxed_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn eq_and_hash_agree_for_floats() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b, "NaN groups must coalesce");
        assert_eq!(hash_of(&a), hash_of(&b));

        let z1 = Value::Float(0.0);
        let z2 = Value::Float(-0.0);
        assert_eq!(z1, z2, "-0.0 and +0.0 are the same group");
        assert_eq!(hash_of(&z1), hash_of(&z2));
    }

    #[test]
    fn int_and_float_are_distinct_groups() {
        // SQL type systems would coerce; our generators never mix types in
        // one column, so keeping them distinct is both simpler and safer.
        assert_ne!(Value::Int(1), Value::Float(1.0));
    }

    #[test]
    fn total_order_is_consistent() {
        let mut vs = [
            Value::Str("b".into()),
            Value::Float(2.5),
            Value::Int(10),
            Value::Null,
            Value::Float(-1.0),
            Value::Int(-3),
            Value::Str("a".into()),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Int(-3));
        assert_eq!(vs[2], Value::Int(10));
        assert_eq!(vs[3], Value::Float(-1.0));
        assert_eq!(vs[4], Value::Float(2.5));
        assert_eq!(vs[5], Value::Str("a".into()));
        assert_eq!(vs[6], Value::Str("b".into()));
    }

    #[test]
    fn float_order_matches_numeric_order() {
        let xs = [-1e9, -1.5, -0.0, 0.0, 1e-9, 1.0, 1e300];
        for w in xs.windows(2) {
            assert!(
                Value::Float(w[0]) <= Value::Float(w[1]),
                "{} should be <= {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn encoded_payload_len_matches_variant() {
        assert_eq!(Value::Null.encoded_payload_len(), 0);
        assert_eq!(Value::Int(1).encoded_payload_len(), 8);
        assert_eq!(Value::Float(1.0).encoded_payload_len(), 8);
        assert_eq!(Value::Str("abcd".into()).encoded_payload_len(), 8);
    }

    #[test]
    fn display_round_trip_readable() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3.5f64), Value::Float(3.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
    }
}
