//! Error types for the relational model.

use std::fmt;

/// Errors raised by model-level operations (type mismatches, malformed
/// encodings, out-of-range column references).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An aggregate input had a type its function cannot consume
    /// (e.g. `SUM` over a string column).
    TypeMismatch {
        /// What the operation expected, e.g. `"numeric"`.
        expected: &'static str,
        /// What it actually saw, e.g. `"Str"`.
        found: &'static str,
        /// The operation that failed, e.g. `"SUM update"`.
        context: &'static str,
    },
    /// A tuple did not have the column an operation referenced.
    ColumnOutOfRange {
        /// The referenced column index.
        column: usize,
        /// The tuple's arity.
        arity: usize,
    },
    /// A byte buffer could not be decoded as a tuple.
    Corrupt(&'static str),
    /// A partial-state row had the wrong arity for the query's aggregates.
    PartialArityMismatch {
        /// Expected number of partial columns.
        expected: usize,
        /// Number of columns actually present.
        found: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TypeMismatch {
                expected,
                found,
                context,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            ModelError::ColumnOutOfRange { column, arity } => {
                write!(f, "column {column} out of range for arity-{arity} tuple")
            }
            ModelError::Corrupt(what) => write!(f, "corrupt encoding: {what}"),
            ModelError::PartialArityMismatch { expected, found } => write!(
                f,
                "partial row arity mismatch: expected {expected} columns, found {found}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::TypeMismatch {
            expected: "numeric",
            found: "Str",
            context: "SUM update",
        };
        assert_eq!(e.to_string(), "SUM update: expected numeric, found Str");

        let e = ModelError::ColumnOutOfRange { column: 5, arity: 3 };
        assert!(e.to_string().contains("column 5"));
        assert!(e.to_string().contains("arity-3"));

        let e = ModelError::Corrupt("truncated varint");
        assert!(e.to_string().contains("truncated varint"));

        let e = ModelError::PartialArityMismatch {
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("expected 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&ModelError::Corrupt("x"));
    }
}
