//! Byte-level tuple encoding.
//!
//! Storage pages, spill files and network messages all carry tuples in this
//! encoding, so the simulated I/O and network volumes follow real byte
//! counts. The format is deliberately simple (no varints, no compression):
//!
//! ```text
//! tuple   := arity:u16  value*
//! value   := tag:u8 payload
//! payload := ε            (tag 0, NULL)
//!          | i64 LE       (tag 1, Int)
//!          | f64-bits LE  (tag 2, Float)
//!          | len:u32 LE bytes  (tag 3, Str)
//! ```

use crate::error::ModelError;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// Encoded size of a value slice, including the arity header.
pub fn encoded_len(values: &[Value]) -> usize {
    2 + values
        .iter()
        .map(|v| 1 + v.encoded_payload_len())
        .sum::<usize>()
}

/// Append the encoding of `values` to `out`. Returns the number of bytes
/// written. Panics if arity exceeds `u16::MAX` (tuples here have ≤ dozens
/// of columns).
pub fn encode_tuple(values: &[Value], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    let arity = u16::try_from(values.len()).expect("tuple arity exceeds u16");
    out.extend_from_slice(&arity.to_le_bytes());
    for v in values {
        encode_value(v, out);
    }
    out.len() - start
}

/// Append one value's `tag payload` encoding to `out` (the per-cell body
/// of [`encode_tuple`]; column-strip pages re-encode row-major through
/// this when they hit the wire or disk).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            let len = u32::try_from(s.len()).expect("string exceeds u32 length");
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decode one tuple from the front of `buf`. Returns the values and the
/// number of bytes consumed.
pub fn decode_tuple(buf: &[u8]) -> Result<(Vec<Value>, usize), ModelError> {
    let mut values = Vec::new();
    let used = decode_tuple_into(buf, &mut values)?;
    Ok((values, used))
}

/// Decode one tuple from the front of `buf` into a caller-owned scratch
/// vector (cleared first), reusing its allocation across tuples. Returns
/// the number of bytes consumed.
pub fn decode_tuple_into(buf: &[u8], out: &mut Vec<Value>) -> Result<usize, ModelError> {
    decode_tuple_select_into(buf, None, out)
}

/// [`decode_tuple_into`], but materializing only the columns flagged in
/// `select` (`None` materializes everything; columns past the mask's end
/// are unflagged, so a short mask works without knowing the tuple arity).
/// Unselected columns are bounds-checked and skipped positionally — no
/// payload is copied or validated — and decode to [`Value::Null`]
/// placeholders so column indices and the arity stay stable. The scan
/// uses this to avoid materializing wide padding columns that neither
/// the filter nor the projection reads.
pub fn decode_tuple_select_into(
    buf: &[u8],
    select: Option<&[bool]>,
    out: &mut Vec<Value>,
) -> Result<usize, ModelError> {
    out.clear();
    let mut pos = 0usize;

    let take = |pos: &mut usize, n: usize| -> Result<&[u8], ModelError> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= buf.len())
            .ok_or(ModelError::Corrupt("truncated tuple"))?;
        let s = &buf[*pos..end];
        *pos = end;
        Ok(s)
    };

    let arity_bytes = take(&mut pos, 2)?;
    let arity = u16::from_le_bytes([arity_bytes[0], arity_bytes[1]]) as usize;
    out.reserve(arity);
    for col in 0..arity {
        let wanted = select.is_none_or(|s| s.get(col).copied().unwrap_or(false));
        let tag = take(&mut pos, 1)?[0];
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                let b: [u8; 8] = take(&mut pos, 8)?.try_into().unwrap();
                if wanted {
                    Value::Int(i64::from_le_bytes(b))
                } else {
                    Value::Null
                }
            }
            TAG_FLOAT => {
                let b: [u8; 8] = take(&mut pos, 8)?.try_into().unwrap();
                if wanted {
                    Value::Float(f64::from_bits(u64::from_le_bytes(b)))
                } else {
                    Value::Null
                }
            }
            TAG_STR => {
                let lb: [u8; 4] = take(&mut pos, 4)?.try_into().unwrap();
                let len = u32::from_le_bytes(lb) as usize;
                let bytes = take(&mut pos, len)?;
                if wanted {
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| ModelError::Corrupt("non-UTF8 string payload"))?;
                    Value::Str(s.into())
                } else {
                    Value::Null
                }
            }
            _ => return Err(ModelError::Corrupt("unknown value tag")),
        };
        out.push(v);
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: Vec<Value>) {
        let mut buf = Vec::new();
        let n = encode_tuple(&values, &mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n, encoded_len(&values), "encoded_len must match actual bytes");
        let (decoded, consumed) = decode_tuple(&buf).unwrap();
        assert_eq!(consumed, n);
        assert_eq!(decoded, values);
    }

    #[test]
    fn round_trips_all_types() {
        round_trip(vec![]);
        round_trip(vec![Value::Null]);
        round_trip(vec![Value::Int(i64::MIN), Value::Int(i64::MAX)]);
        round_trip(vec![Value::Float(-0.0), Value::Float(f64::INFINITY)]);
        round_trip(vec![Value::Str("".into()), Value::Str("héllo ✓".into())]);
        round_trip(vec![
            Value::Int(1),
            Value::Null,
            Value::Float(2.5),
            Value::Str("mixed".into()),
        ]);
    }

    #[test]
    fn decode_into_reuses_scratch_and_matches_decode() {
        let a = vec![Value::Int(7), Value::Str("abc".into()), Value::Null];
        let b = vec![Value::Float(1.5)];
        let mut buf = Vec::new();
        encode_tuple(&a, &mut buf);
        encode_tuple(&b, &mut buf);
        let mut scratch = Vec::new();
        let used = decode_tuple_into(&buf, &mut scratch).unwrap();
        assert_eq!(scratch, a);
        let used2 = decode_tuple_into(&buf[used..], &mut scratch).unwrap();
        assert_eq!(scratch, b, "scratch is cleared between tuples");
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn select_skips_unwanted_columns_as_null() {
        let row = vec![Value::Int(1), Value::Str("wide-pad".into()), Value::Int(2)];
        let mut buf = Vec::new();
        let n = encode_tuple(&row, &mut buf);
        let mut out = Vec::new();
        let used =
            decode_tuple_select_into(&buf, Some(&[true, false, true]), &mut out).unwrap();
        assert_eq!(used, n, "skipping still consumes the full tuple");
        assert_eq!(out, vec![Value::Int(1), Value::Null, Value::Int(2)]);

        // Columns past the mask's end are skipped (short masks work
        // without knowing the arity), but the arity is preserved.
        decode_tuple_select_into(&buf, Some(&[true]), &mut out).unwrap();
        assert_eq!(out, vec![Value::Int(1), Value::Null, Value::Null]);

        // Truncation is still detected when the cut lands in a skipped column.
        let cut = &buf[..n - 10];
        assert!(decode_tuple_select_into(cut, Some(&[true, false, false]), &mut out).is_err());
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        let mut buf = Vec::new();
        encode_tuple(&[Value::Float(f64::NAN)], &mut buf);
        let (vals, _) = decode_tuple(&buf).unwrap();
        match vals[0] {
            Value::Float(f) => assert!(f.is_nan()),
            _ => panic!("wrong type"),
        }
    }

    #[test]
    fn consecutive_tuples_in_one_buffer() {
        let a = vec![Value::Int(1)];
        let b = vec![Value::Str("two".into()), Value::Null];
        let mut buf = Vec::new();
        encode_tuple(&a, &mut buf);
        encode_tuple(&b, &mut buf);
        let (da, used) = decode_tuple(&buf).unwrap();
        let (db, used2) = decode_tuple(&buf[used..]).unwrap();
        assert_eq!(da, a);
        assert_eq!(db, b);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        encode_tuple(&[Value::Int(12345), Value::Str("abcdef".into())], &mut buf);
        for cut in 0..buf.len() {
            assert!(
                decode_tuple(&buf[..cut]).is_err(),
                "truncation at {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn unknown_tag_is_detected() {
        let buf = [1u8, 0, 9]; // arity 1, tag 9
        assert_eq!(
            decode_tuple(&buf),
            Err(ModelError::Corrupt("unknown value tag"))
        );
    }

    #[test]
    fn invalid_utf8_is_detected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.push(super::TAG_STR);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            decode_tuple(&buf),
            Err(ModelError::Corrupt("non-UTF8 string payload"))
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            ".{0,40}".prop_map(|s: String| Value::Str(s.into_boxed_str())),
        ]
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(arb_value(), 0..10)) {
            let mut buf = Vec::new();
            let n = encode_tuple(&values, &mut buf);
            prop_assert_eq!(n, encoded_len(&values));
            let (decoded, used) = decode_tuple(&buf).unwrap();
            prop_assert_eq!(used, n);
            // Compare via Value's Eq (handles NaN identity).
            prop_assert_eq!(decoded, values);
        }

        #[test]
        fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = decode_tuple(&bytes); // must not panic, error is fine
        }
    }
}
