//! Fast, seedable hashing.
//!
//! Three different hash decisions are taken on every tuple's group key:
//!
//! 1. **partitioning** — which node a tuple is sent to (`hash % N`);
//! 2. **overflow bucketing** — which spill bucket a tuple lands in when a
//!    hash table overflows;
//! 3. **table placement** — the in-memory hash table's own hashing.
//!
//! If these reuse the same function, overflow buckets degenerate (every
//! tuple in a bucket collides in the table too) and partitions correlate
//! with buckets — the classic hybrid-hash pitfall. We therefore derive a
//! distinct [`Seed`] per purpose and fold it into an FxHash-style
//! multiply-rotate hasher. `std`'s SipHash would also work but is several
//! times slower for the short keys that dominate here, and the offline
//! crate allowlist has no fxhash/ahash — so we implement the (tiny,
//! well-known) algorithm ourselves.

use crate::value::Value;
use std::hash::{BuildHasher, Hash, Hasher};

/// 64-bit multiplicative constant from FxHash (`pi`-derived).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A hashing purpose, turned into an avalanche-mixed starting state so that
/// the three decisions above are pairwise independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seed {
    /// Node partitioning (exchange operator).
    Partition,
    /// Overflow-bucket selection inside a hash table.
    OverflowBucket(u32),
    /// In-memory hash-table placement.
    Table,
    /// Arbitrary extra seed (tests, ablations).
    Custom(u64),
}

impl Seed {
    fn initial_state(self) -> u64 {
        let raw = match self {
            Seed::Partition => 0x9e37_79b9_7f4a_7c15,
            Seed::OverflowBucket(level) => 0xc2b2_ae3d_27d4_eb4f ^ (level as u64).wrapping_mul(K),
            Seed::Table => 0x165667b19e3779f9,
            Seed::Custom(s) => s | 1,
        };
        // One round of splitmix64 finalization so nearby raw seeds diverge.
        let mut z = raw.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FxHash-style hasher: word-at-a-time rotate-xor-multiply.
#[derive(Debug, Clone)]
pub struct FxHasher {
    state: u64,
}

/// One mixing step of the Fx hash: rotate, xor the word in, multiply.
#[inline]
fn mix_word(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(K)
}

/// The finishing avalanche applied by [`FxHasher::finish`].
#[inline]
fn finish_state(state: u64) -> u64 {
    let z = (state ^ (state >> 32)).wrapping_mul(0xd6e8_feb8_6659_fd93);
    z ^ (z >> 32)
}

impl FxHasher {
    /// A hasher starting from the given seed's mixed state.
    pub fn with_seed(seed: Seed) -> Self {
        FxHasher {
            state: seed.initial_state(),
        }
    }

    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = mix_word(self.state, word);
    }
}

impl Default for FxHasher {
    fn default() -> Self {
        FxHasher::with_seed(Seed::Table)
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: Fx's raw state has weak low bits; since we use
        // `finish() % N` for partitioning, mix before exposing.
        finish_state(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            buf[7] = rem.len() as u8; // length-tag the tail
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for using [`FxHasher`] in `HashMap`s (always [`Seed::Table`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Hash a slice of values under a given seed. This is *the* hash function
/// for group keys: partitioning, bucketing and table placement all go
/// through here with their respective seeds.
pub fn hash_values(seed: Seed, values: &[Value]) -> u64 {
    let mut h = FxHasher::with_seed(seed);
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// Vectorized batch counterpart of [`hash_values`]: initialize one hash
/// state per row. The caller then folds each key column in with
/// [`hash_batch_ints`] / [`hash_batch_values`] (column-at-a-time over the
/// whole batch) and seals with [`hash_batch_finish`]; row `r`'s result is
/// then bit-identical to `hash_values(seed, &key_columns_of_row_r)`.
///
/// `states` is cleared and resized — callers pool it across batches.
pub fn hash_batch_init(seed: Seed, rows: usize, states: &mut Vec<u64>) {
    states.clear();
    states.resize(rows, seed.initial_state());
}

/// Fold a fixed-width `Int` column into every row's hash state: exactly
/// the words `Value::Int(x).hash()` feeds (type tag, then payload), with
/// no per-value dispatch — the kernel the validity-free columnar fast
/// path rides.
pub fn hash_batch_ints(states: &mut [u64], column: &[i64]) {
    debug_assert_eq!(states.len(), column.len());
    for (s, &x) in states.iter_mut().zip(column) {
        *s = mix_word(mix_word(*s, 1), x as u64);
    }
}

/// Fold a general [`Value`] column into every row's hash state (mixed
/// types, strings, nulls — the non-fast columnar path).
pub fn hash_batch_values(states: &mut [u64], column: &[Value]) {
    debug_assert_eq!(states.len(), column.len());
    for (s, v) in states.iter_mut().zip(column) {
        let mut h = FxHasher { state: *s };
        v.hash(&mut h);
        *s = h.state;
    }
}

/// Apply the finishing avalanche to every row's state, producing the
/// final hashes ([`FxHasher::finish`] semantics).
pub fn hash_batch_finish(states: &mut [u64]) {
    for s in states.iter_mut() {
        *s = finish_state(*s);
    }
}

/// Convenience wrapper pairing a seed with the hash function.
#[derive(Debug, Clone, Copy)]
pub struct ValueHasher {
    seed: Seed,
}

impl ValueHasher {
    /// A hasher for the given purpose.
    pub fn new(seed: Seed) -> Self {
        ValueHasher { seed }
    }

    /// Hash the values.
    pub fn hash(&self, values: &[Value]) -> u64 {
        hash_values(self.seed, values)
    }

    /// Hash the values down to a bucket in `0..n`.
    pub fn bucket(&self, values: &[Value], n: usize) -> usize {
        debug_assert!(n > 0);
        (self.hash(values) % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Vec<Value> {
        vec![Value::Int(i)]
    }

    #[test]
    fn deterministic_per_seed() {
        for seed in [Seed::Partition, Seed::Table, Seed::OverflowBucket(0)] {
            assert_eq!(hash_values(seed, &v(42)), hash_values(seed, &v(42)));
        }
    }

    #[test]
    fn seeds_are_independent() {
        // The same key must land differently under different purposes —
        // otherwise overflow buckets correlate with partitions.
        let mut diffs = 0;
        for i in 0..64 {
            let a = hash_values(Seed::Partition, &v(i)) % 8;
            let b = hash_values(Seed::OverflowBucket(0), &v(i)) % 8;
            if a != b {
                diffs += 1;
            }
        }
        assert!(diffs > 32, "partition and bucket hashes correlate: {diffs}/64 differ");
    }

    #[test]
    fn overflow_levels_are_independent() {
        let mut diffs = 0;
        for i in 0..64 {
            let a = hash_values(Seed::OverflowBucket(0), &v(i)) % 8;
            let b = hash_values(Seed::OverflowBucket(1), &v(i)) % 8;
            if a != b {
                diffs += 1;
            }
        }
        assert!(diffs > 32, "recursive overflow levels correlate");
    }

    #[test]
    fn partitioning_is_roughly_uniform() {
        const N: usize = 8;
        let mut counts = [0usize; N];
        for i in 0..8000 {
            counts[(hash_values(Seed::Partition, &v(i)) % N as u64) as usize] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&c),
                "bucket {b} got {c} of 8000 keys (expected ~1000)"
            );
        }
    }

    #[test]
    fn sequential_keys_do_not_collide_in_low_bits() {
        // `finish() % N` must spread sequential integers (our generators
        // produce group ids 0..G).
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(hash_values(Seed::Table, &v(i)) % 1024);
        }
        assert!(seen.len() > 600, "only {} distinct low-bit values", seen.len());
    }

    #[test]
    fn multi_column_keys_hash_all_columns() {
        let a = hash_values(Seed::Table, &[Value::Int(1), Value::Int(2)]);
        let b = hash_values(Seed::Table, &[Value::Int(1), Value::Int(3)]);
        let c = hash_values(Seed::Table, &[Value::Int(2), Value::Int(2)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn str_tail_bytes_are_length_tagged() {
        // "ab" and "ab\0" style prefixes must not collide via zero padding.
        let a = hash_values(Seed::Table, &[Value::Str("ab".into())]);
        let b = hash_values(Seed::Table, &[Value::Str("ab\0".into())]);
        assert_ne!(a, b);
    }

    #[test]
    fn build_hasher_usable_in_hashmap() {
        let mut m: std::collections::HashMap<u64, u64, FxBuildHasher> =
            std::collections::HashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m[&40], 80);
    }

    #[test]
    fn value_hasher_bucket_in_range() {
        let h = ValueHasher::new(Seed::Partition);
        for i in 0..100 {
            assert!(h.bucket(&v(i), 7) < 7);
        }
    }

    #[test]
    fn batch_int_kernel_matches_row_hash() {
        for seed in [Seed::Table, Seed::Partition, Seed::OverflowBucket(3)] {
            let col: Vec<i64> = (-5..40).map(|i| i * 31 - 7).collect();
            let mut states = Vec::new();
            hash_batch_init(seed, col.len(), &mut states);
            hash_batch_ints(&mut states, &col);
            hash_batch_finish(&mut states);
            for (r, &x) in col.iter().enumerate() {
                assert_eq!(
                    states[r],
                    hash_values(seed, &[Value::Int(x)]),
                    "row {r} diverged under {seed:?}"
                );
            }
        }
    }

    #[test]
    fn batch_value_kernel_matches_row_hash_for_every_type() {
        let col = vec![
            Value::Null,
            Value::Int(42),
            Value::Float(2.5),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Str("".into()),
            Value::Str("ab".into()),
            Value::Str("a longer string crossing word chunks".into()),
        ];
        let mut states = Vec::new();
        hash_batch_init(Seed::Table, col.len(), &mut states);
        hash_batch_values(&mut states, &col);
        hash_batch_finish(&mut states);
        for (r, v) in col.iter().enumerate() {
            assert_eq!(
                states[r],
                hash_values(Seed::Table, std::slice::from_ref(v)),
                "row {r} ({v:?}) diverged"
            );
        }
    }

    #[test]
    fn batch_multi_column_matches_row_hash() {
        // Mixed strip kinds: an Int column then a Value column, folded
        // column-at-a-time, must equal hashing each row's key slice.
        let ints: Vec<i64> = (0..32).collect();
        let vals: Vec<Value> = (0..32)
            .map(|i| {
                if i % 3 == 0 {
                    Value::Str(format!("s{i}").into())
                } else {
                    Value::Int(i)
                }
            })
            .collect();
        let mut states = Vec::new();
        hash_batch_init(Seed::Table, 32, &mut states);
        hash_batch_ints(&mut states, &ints);
        hash_batch_values(&mut states, &vals);
        hash_batch_finish(&mut states);
        for r in 0..32usize {
            let key = [Value::Int(ints[r]), vals[r].clone()];
            assert_eq!(states[r], hash_values(Seed::Table, &key), "row {r}");
        }
    }

    #[test]
    fn batch_init_reuses_and_clears_scratch() {
        let mut states = vec![0xdead; 64];
        hash_batch_init(Seed::Table, 2, &mut states);
        assert_eq!(states.len(), 2);
        assert!(states.iter().all(|&s| s != 0xdead));
    }
}
