//! Tuples: fixed-arity rows of [`Value`]s.

use crate::error::ModelError;
use crate::value::Value;
use std::fmt;

/// A row. Stored as a boxed slice: tuples are immutable once built and a
/// `Box<[Value]>` is one word smaller than a `Vec<Value>` — tuples are the
/// most-instantiated type in the system.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// A tuple over the given values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into_boxed_slice(),
        }
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at `col`, or an error if out of range.
    pub fn get(&self, col: usize) -> Result<&Value, ModelError> {
        self.values.get(col).ok_or(ModelError::ColumnOutOfRange {
            column: col,
            arity: self.values.len(),
        })
    }

    /// Project onto the given columns (clones the kept values).
    pub fn project(&self, columns: &[usize]) -> Result<Tuple, ModelError> {
        let mut out = Vec::with_capacity(columns.len());
        for &c in columns {
            out.push(self.get(c)?.clone());
        }
        Ok(Tuple::new(out))
    }

    /// Bytes this tuple occupies in the on-page / on-wire encoding
    /// (see [`crate::encode`]). Sums of this drive every I/O and network
    /// cost in the simulation.
    pub fn encoded_len(&self) -> usize {
        crate::encode::encoded_len(&self.values)
    }

    /// Consume the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values.into_vec()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Convenience constructor: `tuple![Int(1), Float(2.0)]`-style building from
/// anything convertible to [`Value`].
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_out_of_range() {
        let t = Tuple::new(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0).unwrap(), &Value::Int(1));
        assert_eq!(
            t.get(2),
            Err(ModelError::ColumnOutOfRange { column: 2, arity: 2 })
        );
    }

    #[test]
    fn project_selects_and_reorders() {
        let t = Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let p = t.project(&[2, 0]).unwrap();
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
        assert!(t.project(&[5]).is_err());
    }

    #[test]
    fn encoded_len_counts_tags_and_payloads() {
        let t = Tuple::new(vec![Value::Int(1), Value::Null, Value::Str("ab".into())]);
        // layout: u16 arity + per value (1-byte tag + payload)
        assert_eq!(t.encoded_len(), 2 + (1 + 8) + 1 + (1 + 4 + 2));
    }

    #[test]
    fn tuple_macro_builds_values() {
        let t = tuple![1i64, 2.5f64, "hi"];
        assert_eq!(
            t.values(),
            &[Value::Int(1), Value::Float(2.5), Value::Str("hi".into())]
        );
    }

    #[test]
    fn display() {
        let t = tuple![1i64, "a"];
        assert_eq!(t.to_string(), "[1, a]");
    }

    #[test]
    fn into_values_round_trip() {
        let t = tuple![4i64];
        assert_eq!(t.into_values(), vec![Value::Int(4)]);
    }
}
