//! Revocable memory grants.
//!
//! A [`MemoryGrant`] is a shared, atomically-updatable cap on the number
//! of hash-table entries a query may hold resident on one node. The
//! serving layer's memory broker holds one handle per (query, node) and
//! shrinks or regrows it as queries are admitted and finish; the
//! aggregation operators read it at every would-insert-new-group check,
//! so a revocation takes effect mid-scan and the operator degrades
//! through its normal budget-exceeded path (spill or adaptive switch)
//! instead of overshooting.
//!
//! The default grant is *unlimited*: no shared counter exists and the
//! table's own `max_entries` budget is the only cap. Every pre-serving
//! code path uses this default, so single-query runs stay bit-identical
//! to the un-brokered engine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared entry-count cap, revocable while the query runs.
#[derive(Debug, Clone, Default)]
pub struct MemoryGrant {
    /// `None` = unlimited (the common, zero-overhead default).
    shared: Option<Arc<AtomicUsize>>,
}

impl MemoryGrant {
    /// The default grant: no cap beyond the table's own budget.
    pub fn unlimited() -> Self {
        MemoryGrant { shared: None }
    }

    /// A live grant of `entries`, shrinkable/growable via [`set`].
    ///
    /// [`set`]: MemoryGrant::set
    pub fn bounded(entries: usize) -> Self {
        MemoryGrant {
            shared: Some(Arc::new(AtomicUsize::new(entries))),
        }
    }

    /// Whether this grant imposes no cap of its own.
    pub fn is_unlimited(&self) -> bool {
        self.shared.is_none()
    }

    /// The current cap (`usize::MAX` when unlimited).
    pub fn current(&self) -> usize {
        match &self.shared {
            Some(a) => a.load(Ordering::Relaxed),
            None => usize::MAX,
        }
    }

    /// Update the cap. All clones of this grant observe the new value on
    /// their next read. No-op on an unlimited grant.
    pub fn set(&self, entries: usize) {
        if let Some(a) = &self.shared {
            a.store(entries, Ordering::Relaxed);
        }
    }

    /// `budget` clamped by the live cap. The unlimited path performs no
    /// atomic read.
    #[inline]
    pub fn cap(&self, budget: usize) -> usize {
        match &self.shared {
            Some(a) => budget.min(a.load(Ordering::Relaxed)),
            None => budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_transparent() {
        let g = MemoryGrant::unlimited();
        assert!(g.is_unlimited());
        assert_eq!(g.current(), usize::MAX);
        assert_eq!(g.cap(123), 123);
        g.set(5); // no-op, not a panic
        assert_eq!(g.cap(123), 123);
    }

    #[test]
    fn bounded_caps_and_shrinks_across_clones() {
        let g = MemoryGrant::bounded(100);
        let seen_by_table = g.clone();
        assert_eq!(seen_by_table.cap(10_000), 100);
        assert_eq!(seen_by_table.cap(50), 50);
        g.set(8); // broker revokes
        assert_eq!(seen_by_table.cap(10_000), 8);
        g.set(400); // broker regrants
        assert_eq!(seen_by_table.cap(10_000), 400);
    }

    #[test]
    fn default_is_unlimited() {
        assert!(MemoryGrant::default().is_unlimited());
    }
}
