//! Cost events: the currency between the layers and the virtual clock.
//!
//! Storage, hash aggregation and the operators do real work (move real
//! tuples, fill real pages) and *emit events* describing the costed actions
//! of the paper's model. The execution engine converts events into virtual
//! milliseconds using [`crate::CostParams`]; tests use counting trackers to
//! assert on exact event counts (e.g. "spilling wrote exactly N pages").
//!
//! Layering convention (who charges what — this is what prevents double
//! counting):
//!
//! * **storage** charges page-level disk I/O (`PageReadSeq`, `PageWriteSeq`,
//!   `PageReadRand`) and nothing else;
//! * **compute layers** (hashagg, operators) charge per-tuple CPU costs
//!   (`TupleRead`, `TupleWrite`, `TupleHash`, `TupleAgg`, `TupleDest`);
//! * **the network fabric** charges `MsgProtocol` per message page at both
//!   ends; transfer time (`m_l` / bus occupancy) is handled by the network
//!   model directly since it may involve waiting, not just cost.

/// A costed action, mirroring Table 1's parameters one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostEvent {
    /// `t_r` — read a tuple (off a page, out of a hash bucket, off a
    /// message).
    TupleRead,
    /// `t_w` — write a tuple (into a page, a message block, a hash entry).
    TupleWrite,
    /// `t_h` — compute a hash value of a group key.
    TupleHash,
    /// `t_a` — process a tuple through aggregate state.
    TupleAgg,
    /// `t_d` — compute a tuple's destination node.
    TupleDest,
    /// `IO` — sequential page read.
    PageReadSeq,
    /// `IO` — sequential page write.
    PageWriteSeq,
    /// `rIO` — random page read (page-level sampling).
    PageReadRand,
    /// `m_p` — message protocol cost for one message page (sender or
    /// receiver side).
    MsgProtocol,
}

impl CostEvent {
    /// The virtual-time cost of one occurrence under `params`, in ms.
    pub fn unit_ms(self, params: &crate::CostParams) -> f64 {
        match self {
            CostEvent::TupleRead => params.t_read(),
            CostEvent::TupleWrite => params.t_write(),
            CostEvent::TupleHash => params.t_hash(),
            CostEvent::TupleAgg => params.t_agg(),
            CostEvent::TupleDest => params.t_dest(),
            CostEvent::PageReadSeq | CostEvent::PageWriteSeq => params.io_seq_ms,
            CostEvent::PageReadRand => params.io_rand_ms,
            CostEvent::MsgProtocol => params.t_msg_protocol(),
        }
    }

    /// All event kinds (for counting-tracker tables).
    pub const ALL: [CostEvent; 9] = [
        CostEvent::TupleRead,
        CostEvent::TupleWrite,
        CostEvent::TupleHash,
        CostEvent::TupleAgg,
        CostEvent::TupleDest,
        CostEvent::PageReadSeq,
        CostEvent::PageWriteSeq,
        CostEvent::PageReadRand,
        CostEvent::MsgProtocol,
    ];

    fn index(self) -> usize {
        match self {
            CostEvent::TupleRead => 0,
            CostEvent::TupleWrite => 1,
            CostEvent::TupleHash => 2,
            CostEvent::TupleAgg => 3,
            CostEvent::TupleDest => 4,
            CostEvent::PageReadSeq => 5,
            CostEvent::PageWriteSeq => 6,
            CostEvent::PageReadRand => 7,
            CostEvent::MsgProtocol => 8,
        }
    }
}

/// Consumes cost events. Implemented by the engine's virtual clock and by
/// test trackers.
pub trait CostTracker {
    /// Record `count` occurrences of `event`.
    fn record(&mut self, event: CostEvent, count: u64);

    /// Record `count` tuples, each emitting the events of `template` in
    /// order — the batched form of the per-tuple hot path.
    ///
    /// The contract is strict: the observable effect must be identical
    /// to `count` repetitions of `record(e, 1)` for each template event,
    /// *including floating-point rounding* in time-accumulating
    /// trackers. Implementations may only batch where that holds (an
    /// integer counter can multiply; a clock must replay the per-unit
    /// additions). The default does exactly the naive loop.
    fn record_tuples(&mut self, template: &[CostEvent], count: u64) {
        for _ in 0..count {
            for &event in template {
                self.record(event, 1);
            }
        }
    }
}

/// Discards all events (pure-function uses of the substrates).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracker;

impl CostTracker for NullTracker {
    fn record(&mut self, _event: CostEvent, _count: u64) {}

    fn record_tuples(&mut self, _template: &[CostEvent], _count: u64) {}
}

/// Counts events per kind; the workhorse of unit tests and of the
/// per-phase breakdowns reported in [`EXPERIMENTS`](index.html).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountingTracker {
    counts: [u64; 9],
}

impl CountingTracker {
    /// Fresh, all-zero tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Occurrences of `event` recorded so far.
    pub fn count(&self, event: CostEvent) -> u64 {
        self.counts[event.index()]
    }

    /// Total virtual-time of everything recorded, under `params`.
    pub fn total_ms(&self, params: &crate::CostParams) -> f64 {
        CostEvent::ALL
            .iter()
            .map(|&e| e.unit_ms(params) * self.count(e) as f64)
            .sum()
    }

    /// Add another tracker's counts into this one.
    pub fn absorb(&mut self, other: &CountingTracker) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Reset all counts to zero.
    pub fn clear(&mut self) {
        self.counts = [0; 9];
    }
}

impl CostTracker for CountingTracker {
    fn record(&mut self, event: CostEvent, count: u64) {
        self.counts[event.index()] += count;
    }

    // Counts are integers: multiplying is exactly the repeated loop.
    fn record_tuples(&mut self, template: &[CostEvent], count: u64) {
        for &event in template {
            self.counts[event.index()] += count;
        }
    }
}

impl CostTracker for &mut dyn CostTracker {
    fn record(&mut self, event: CostEvent, count: u64) {
        (**self).record(event, count);
    }

    fn record_tuples(&mut self, template: &[CostEvent], count: u64) {
        (**self).record_tuples(template, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostParams;

    #[test]
    fn unit_costs_match_params() {
        let p = CostParams::paper_default();
        assert!((CostEvent::TupleRead.unit_ms(&p) - 0.0075).abs() < 1e-12);
        assert!((CostEvent::PageReadSeq.unit_ms(&p) - 1.15).abs() < 1e-12);
        assert!((CostEvent::PageReadRand.unit_ms(&p) - 15.0).abs() < 1e-12);
        assert!((CostEvent::MsgProtocol.unit_ms(&p) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn counting_tracker_accumulates() {
        let mut t = CountingTracker::new();
        t.record(CostEvent::TupleRead, 10);
        t.record(CostEvent::TupleRead, 5);
        t.record(CostEvent::PageWriteSeq, 2);
        assert_eq!(t.count(CostEvent::TupleRead), 15);
        assert_eq!(t.count(CostEvent::PageWriteSeq), 2);
        assert_eq!(t.count(CostEvent::TupleAgg), 0);
    }

    #[test]
    fn total_ms_weights_by_unit_cost() {
        let p = CostParams::paper_default();
        let mut t = CountingTracker::new();
        t.record(CostEvent::PageReadSeq, 10); // 11.5 ms
        t.record(CostEvent::TupleRead, 1000); // 7.5 ms
        assert!((t.total_ms(&p) - 19.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_and_clear() {
        let mut a = CountingTracker::new();
        let mut b = CountingTracker::new();
        a.record(CostEvent::TupleHash, 3);
        b.record(CostEvent::TupleHash, 4);
        b.record(CostEvent::MsgProtocol, 1);
        a.absorb(&b);
        assert_eq!(a.count(CostEvent::TupleHash), 7);
        assert_eq!(a.count(CostEvent::MsgProtocol), 1);
        a.clear();
        assert_eq!(a.count(CostEvent::TupleHash), 0);
    }

    #[test]
    fn dyn_tracker_forwards() {
        let mut c = CountingTracker::new();
        {
            let d: &mut dyn CostTracker = &mut c;
            d.record(CostEvent::TupleWrite, 2);
        }
        assert_eq!(c.count(CostEvent::TupleWrite), 2);
    }

    #[test]
    fn record_tuples_matches_per_tuple_loop() {
        let template = [CostEvent::TupleRead, CostEvent::TupleHash, CostEvent::TupleAgg];
        let mut batched = CountingTracker::new();
        batched.record_tuples(&template, 37);
        let mut looped = CountingTracker::new();
        for _ in 0..37 {
            for &e in &template {
                looped.record(e, 1);
            }
        }
        assert_eq!(batched, looped);

        // Through a trait object the override still applies.
        let mut c = CountingTracker::new();
        {
            let d: &mut dyn CostTracker = &mut c;
            d.record_tuples(&template, 5);
        }
        assert_eq!(c.count(CostEvent::TupleHash), 5);
    }

    #[test]
    fn all_covers_every_variant_uniquely() {
        let mut seen = std::collections::HashSet::new();
        for e in CostEvent::ALL {
            assert!(seen.insert(e.index()), "duplicate index for {e:?}");
        }
        assert_eq!(seen.len(), 9);
    }
}
