//! Scan predicates (the `[where {predicates}]` of the paper's §2 query
//! form).
//!
//! Predicates are evaluated by the scan operator *before* projection, so
//! they reduce what the aggregation algorithms see without touching the
//! algorithms themselves — exactly the paper's framing ("the child
//! operator is a scan/select"). A query's filter is a conjunction of
//! column-vs-literal comparisons, which covers the benchmark-style
//! selections this system runs; richer boolean structure belongs to a
//! full query engine.

use crate::error::ModelError;
use crate::value::Value;
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compare {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Compare {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            Compare::Eq => "=",
            Compare::Ne => "<>",
            Compare::Lt => "<",
            Compare::Le => "<=",
            Compare::Gt => ">",
            Compare::Ge => ">=",
        }
    }

    fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (Compare::Eq, Equal)
                | (Compare::Ne, Less)
                | (Compare::Ne, Greater)
                | (Compare::Lt, Less)
                | (Compare::Le, Less)
                | (Compare::Le, Equal)
                | (Compare::Gt, Greater)
                | (Compare::Ge, Greater)
                | (Compare::Ge, Equal)
        )
    }
}

impl fmt::Display for Compare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One `column <op> literal` comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// Base-tuple column index.
    pub column: usize,
    /// The comparison.
    pub op: Compare,
    /// The literal to compare against.
    pub literal: Value,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(column: usize, op: Compare, literal: Value) -> Self {
        Predicate {
            column,
            op,
            literal,
        }
    }

    /// Evaluate against a tuple's values. SQL three-valued logic is
    /// simplified to its observable effect: comparisons involving NULL
    /// are not true, so the row is filtered out.
    pub fn matches(&self, values: &[Value]) -> Result<bool, ModelError> {
        let v = values.get(self.column).ok_or(ModelError::ColumnOutOfRange {
            column: self.column,
            arity: values.len(),
        })?;
        if v.is_null() || self.literal.is_null() {
            return Ok(false);
        }
        Ok(self.op.holds(v.cmp(&self.literal)))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col{} {} {}", self.column, self.op, self.literal)
    }
}

/// Evaluate a conjunction (empty = always true).
pub fn matches_all(filter: &[Predicate], values: &[Value]) -> Result<bool, ModelError> {
    for p in filter {
        if !p.matches(values)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(g: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(g), Value::Int(v)]
    }

    #[test]
    fn all_operators() {
        let cases = [
            (Compare::Eq, 5, vec![5], vec![4, 6]),
            (Compare::Ne, 5, vec![4, 6], vec![5]),
            (Compare::Lt, 5, vec![4], vec![5, 6]),
            (Compare::Le, 5, vec![4, 5], vec![6]),
            (Compare::Gt, 5, vec![6], vec![4, 5]),
            (Compare::Ge, 5, vec![5, 6], vec![4]),
        ];
        for (op, lit, yes, no) in cases {
            let p = Predicate::new(1, op, Value::Int(lit));
            for y in yes {
                assert!(p.matches(&row(0, y)).unwrap(), "{op:?} {y}");
            }
            for n in no {
                assert!(!p.matches(&row(0, n)).unwrap(), "{op:?} {n}");
            }
        }
    }

    #[test]
    fn strings_compare_lexicographically() {
        let p = Predicate::new(0, Compare::Lt, Value::Str("m".into()));
        assert!(p.matches(&[Value::Str("apple".into())]).unwrap());
        assert!(!p.matches(&[Value::Str("pear".into())]).unwrap());
    }

    #[test]
    fn null_never_matches() {
        let p = Predicate::new(0, Compare::Eq, Value::Int(1));
        assert!(!p.matches(&[Value::Null]).unwrap());
        let p = Predicate::new(0, Compare::Ne, Value::Int(1));
        assert!(!p.matches(&[Value::Null]).unwrap(), "NULL <> 1 is not true");
        let p = Predicate::new(0, Compare::Eq, Value::Null);
        assert!(!p.matches(&[Value::Int(1)]).unwrap());
    }

    #[test]
    fn out_of_range_column_errors() {
        let p = Predicate::new(7, Compare::Eq, Value::Int(1));
        assert!(p.matches(&row(0, 0)).is_err());
    }

    #[test]
    fn conjunction_semantics() {
        let f = vec![
            Predicate::new(0, Compare::Ge, Value::Int(2)),
            Predicate::new(1, Compare::Lt, Value::Int(10)),
        ];
        assert!(matches_all(&f, &row(2, 9)).unwrap());
        assert!(!matches_all(&f, &row(1, 9)).unwrap());
        assert!(!matches_all(&f, &row(2, 10)).unwrap());
        assert!(matches_all(&[], &row(0, 0)).unwrap(), "empty filter is true");
    }

    #[test]
    fn display_reads_like_sql() {
        let p = Predicate::new(2, Compare::Le, Value::Int(7));
        assert_eq!(p.to_string(), "col2 <= 7");
    }
}
