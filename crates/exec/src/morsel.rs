//! Morsel-grained scanning with a deferred cost journal.
//!
//! The intra-node parallel scan splits a node's base file into fixed-size
//! page ranges (morsels) consumed by a worker pool. Workers cannot touch
//! the node's virtual clock — cost charging must replay in the *logical*
//! (single-threaded) execution order to keep every virtual-time figure
//! bit-identical to the serial scan. So each worker records what the
//! serial scan *would have charged* into a compact per-morsel
//! [`ScanJournal`], and the driver replays the journals in morsel order
//! on the real clock after the physical scan finishes.
//!
//! ## Journal encoding
//!
//! A journal is a flat `Vec<i64>` of run-length ops:
//!
//! * `0`  — page boundary: `record(PageReadSeq, 1)`;
//! * `+L` — a run of `L` tuples that passed the filter and were accepted
//!   by the aggregation table:
//!   `record_tuples([TupleRead, TupleWrite, TupleRead, TupleHash, TupleAgg], L)`
//!   (scan read, select copy-out, then the table's accept sequence);
//! * `-L` — a run of `L` tuples rejected by the filter:
//!   `record_tuples([TupleRead], L)`.
//!
//! Replay is bit-identical to the serial per-tuple loop because
//! [`CostTracker::record_tuples`] replays per-unit `f64` deltas in the
//! same accumulation order as `record(e, 1)` calls, and `record(e, 1)`
//! itself is one such delta. Runs never span a page boundary (the `0` op
//! sits between), matching the serial interleaving of page and tuple
//! charges exactly.
//!
//! The encoding only covers the no-spill accept path: the parallel scan
//! aborts to the serial path the moment any insert would overflow the
//! memory grant, so a committed journal is always spill-free.

use crate::error::ExecError;
use adaptagg_model::{matches_all, CostEvent, CostTracker, ModelError, Predicate, Value};
use adaptagg_storage::HeapFile;

/// Charges for one accepted tuple, in serial order: scan read, select
/// copy-out, then the hash table's accept sequence (attempt read+hash,
/// aggregate update).
pub const MORSEL_PASS: [CostEvent; 5] = [
    CostEvent::TupleRead,
    CostEvent::TupleWrite,
    CostEvent::TupleRead,
    CostEvent::TupleHash,
    CostEvent::TupleAgg,
];

/// Charges for one filtered-out tuple: the scan read only.
pub const MORSEL_FAIL: [CostEvent; 1] = [CostEvent::TupleRead];

/// A per-morsel record of deferred cost charges (see module docs).
#[derive(Debug, Default)]
pub struct ScanJournal {
    ops: Vec<i64>,
}

impl ScanJournal {
    /// An empty journal.
    pub fn new() -> Self {
        ScanJournal::default()
    }

    /// Record a page boundary (one sequential page read).
    pub fn page(&mut self) {
        self.ops.push(0);
    }

    /// Record one tuple that passed the filter and was accepted.
    pub fn pass(&mut self) {
        match self.ops.last_mut() {
            Some(last) if *last > 0 => *last += 1,
            _ => self.ops.push(1),
        }
    }

    /// Record one tuple rejected by the filter.
    pub fn fail(&mut self) {
        match self.ops.last_mut() {
            Some(last) if *last < 0 => *last -= 1,
            _ => self.ops.push(-1),
        }
    }

    /// The encoded ops, for replay.
    pub fn ops(&self) -> &[i64] {
        &self.ops
    }

    /// Drop all recorded ops (an aborted morsel's journal is garbage).
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

/// Replay a journal's charges onto `clock`, bit-identical to the serial
/// scan loop that would have produced them.
pub fn replay_scan_journal<T: CostTracker>(clock: &mut T, ops: &[i64]) {
    for &op in ops {
        if op == 0 {
            clock.record(CostEvent::PageReadSeq, 1);
        } else if op > 0 {
            clock.record_tuples(&MORSEL_PASS, op as u64);
        } else {
            clock.record_tuples(&MORSEL_FAIL, (-op) as u64);
        }
    }
}

/// The columns a scan must materialize — whatever the filter or the
/// projection reads; `None` (empty projection) passes the whole tuple.
/// Identical to the serial scan's mask so both paths decode the same
/// columns.
pub fn build_select_mask(filter: &[Predicate], columns: &[usize]) -> Option<Vec<bool>> {
    if columns.is_empty() {
        return None;
    }
    let top = columns
        .iter()
        .chain(filter.iter().map(|p| &p.column))
        .copied()
        .max()
        .unwrap_or(0);
    let mut mask = vec![false; top + 1];
    for &c in columns {
        mask[c] = true;
    }
    for p in filter {
        mask[p.column] = true;
    }
    Some(mask)
}

/// Scan the page range `[start_page, end_page)` of `file`, applying
/// `filter` and projecting onto `columns` exactly like the serial
/// `scan_project`, but clock-free: charges go into `journal`, and each
/// passing tuple is fed to `consume`.
///
/// `consume` returns `Ok(true)` to continue or `Ok(false)` to stop the
/// scan early (the engine aborted); on early stop this returns
/// `Ok(false)` and the journal's contents are meaningless — the caller
/// discards them. The tuple slice is scratch, valid only during the
/// call.
#[allow(clippy::too_many_arguments)]
pub fn scan_morsel<F>(
    file: &HeapFile,
    start_page: usize,
    end_page: usize,
    select: Option<&[bool]>,
    filter: &[Predicate],
    columns: &[usize],
    journal: &mut ScanJournal,
    mut consume: F,
) -> Result<bool, ExecError>
where
    F: FnMut(&[Value]) -> Result<bool, ExecError>,
{
    let mut raw: Vec<Value> = Vec::new();
    let mut projected: Vec<Value> = Vec::new();
    for pi in start_page..end_page {
        journal.page();
        let page = file.page(pi)?;
        let mut cursor = page.cursor();
        while cursor.next_select_into(select, &mut raw)? {
            if !matches_all(filter, &raw)? {
                journal.fail();
                continue;
            }
            journal.pass();
            let keep = if columns.is_empty() {
                consume(&raw)?
            } else {
                projected.clear();
                for &c in columns {
                    projected.push(
                        raw.get(c)
                            .ok_or(ModelError::ColumnOutOfRange {
                                column: c,
                                arity: raw.len(),
                            })?
                            .clone(),
                    );
                }
                consume(&projected)?
            };
            if !keep {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use adaptagg_model::{Compare, CostParams, Predicate, Value};
    use adaptagg_storage::HeapFile;

    fn file_with(tuples: &[Vec<Value>], page_bytes: usize) -> HeapFile {
        let mut f = HeapFile::new(page_bytes);
        for t in tuples {
            f.append(t).unwrap();
        }
        f
    }

    #[test]
    fn journal_replay_matches_serial_charge_order() {
        // Serial loop: page, fail, pass, pass, page, pass — replay must
        // land on the exact same virtual time, bit for bit.
        let params = CostParams::paper_default();
        let mut serial = Clock::new(params.clone());
        serial.record(CostEvent::PageReadSeq, 1);
        serial.record_tuples(&MORSEL_FAIL, 1);
        serial.record_tuples(&MORSEL_PASS, 2);
        serial.record(CostEvent::PageReadSeq, 1);
        serial.record_tuples(&MORSEL_PASS, 1);

        let mut j = ScanJournal::new();
        j.page();
        j.fail();
        j.pass();
        j.pass();
        j.page();
        j.pass();
        assert_eq!(j.ops(), &[0, -1, 2, 0, 1]);

        let mut replayed = Clock::new(params);
        replay_scan_journal(&mut replayed, j.ops());
        assert_eq!(serial.now_ms().to_bits(), replayed.now_ms().to_bits());
    }

    #[test]
    fn scan_morsel_projects_and_filters_like_serial() {
        let tuples: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Int(i % 4), Value::Int(i), Value::Int(100 + i)])
            .collect();
        let file = file_with(&tuples, 256);
        let filter = vec![Predicate::new(0, Compare::Eq, Value::Int(1))];
        let columns = vec![2, 0];
        let select = build_select_mask(&filter, &columns);
        let mut journal = ScanJournal::new();
        let mut seen: Vec<Vec<Value>> = Vec::new();
        let done = scan_morsel(
            &file,
            0,
            file.page_count(),
            select.as_deref(),
            &filter,
            &columns,
            &mut journal,
            |vals| {
                seen.push(vals.to_vec());
                Ok(true)
            },
        )
        .unwrap();
        assert!(done);
        assert_eq!(seen.len(), 5); // i % 4 == 1 for i in 0..20
        for row in &seen {
            assert_eq!(row[1], Value::Int(1));
        }
        // Every tuple shows up in the journal exactly once.
        let total: i64 = journal.ops().iter().map(|&op| op.abs()).sum();
        assert_eq!(total as usize, tuples.len());
    }

    #[test]
    fn scan_morsel_stops_when_consumer_declines() {
        let tuples: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let file = file_with(&tuples, 256);
        let mut journal = ScanJournal::new();
        let mut n = 0;
        let done = scan_morsel(
            &file,
            0,
            file.page_count(),
            None,
            &[],
            &[],
            &mut journal,
            |_vals| {
                n += 1;
                Ok(n < 3)
            },
        )
        .unwrap();
        assert!(!done);
        assert_eq!(n, 3);
    }
}
