//! The cluster runtime: spawn N node threads, run an algorithm closure on
//! each, gather outputs and reports.

use crate::error::ExecError;
use crate::node::{NodeCtx, DEFAULT_WATCHDOG};
use crate::runstats::{NodeReport, RunResult};
use adaptagg_model::CostParams;
use adaptagg_net::{Control, Fabric, FaultPlan};
use adaptagg_storage::{HeapFile, SimDisk};
use std::time::Duration;

/// Cluster shape and cost parameters for a run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (`N` in Table 1).
    pub nodes: usize,
    /// Table 1 constants, including the network kind and the hash-table
    /// budget `M`.
    pub params: CostParams,
    /// Seeded fault schedule ([`FaultPlan::none()`] by default — zero
    /// overhead anywhere when disabled).
    pub fault_plan: FaultPlan,
    /// Real-time receive deadline per node (the hang backstop).
    pub watchdog: Duration,
}

impl ClusterConfig {
    /// A cluster of `nodes` nodes with the given parameters.
    pub fn new(nodes: usize, params: CostParams) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        ClusterConfig {
            nodes,
            params,
            fault_plan: FaultPlan::none(),
            watchdog: DEFAULT_WATCHDOG,
        }
    }

    /// Run under a seeded fault schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the real-time receive deadline (tests use short ones).
    pub fn with_watchdog(mut self, timeout: Duration) -> Self {
        self.watchdog = timeout;
        self
    }

    /// The paper's implementation platform: 8 nodes on a shared 10 Mbit
    /// bus (§5).
    pub fn paper_cluster() -> Self {
        ClusterConfig::new(8, CostParams::cluster_default())
    }

    /// The analytical default: 32 nodes on a high-speed network.
    pub fn paper_model() -> Self {
        ClusterConfig::new(32, CostParams::paper_default())
    }
}

/// The outcome of [`run_cluster`]: one output per node plus timing.
#[derive(Debug)]
pub struct ClusterRun<T> {
    /// Per-node outputs, in node order.
    pub outputs: Vec<T>,
    /// Timing and traffic.
    pub run: RunResult,
}

/// Run `body` on every node of a cluster in parallel.
///
/// `partitions[i]` becomes node `i`'s base-relation partition (disk file
/// `"base"`). The closure receives the node's [`NodeCtx`] and returns its
/// output; any node error or panic aborts the run with an [`ExecError`].
///
/// Threads are real (the run exercises real channels and real contention
/// on the shared-bus model); time is virtual.
///
/// ## Failure propagation and attribution
///
/// A node whose body fails broadcasts [`Control::Abort`] before its
/// endpoint drops, so peers blocked waiting for its data fail promptly
/// with [`ExecError::Aborted`] instead of hanging (the per-node watchdog
/// is the backstop if even the abort is lost). Several nodes usually
/// error on one failure — the originator plus its cascades — so the
/// reported error is chosen by attribution class first
/// ([`ExecError::attribution_class`]: primary < watchdog < cascade),
/// earliest virtual failure time second: the *first cause*, not whichever
/// thread happened to be joined first.
pub fn run_cluster<T, F>(
    config: &ClusterConfig,
    partitions: Vec<HeapFile>,
    body: F,
) -> Result<ClusterRun<T>, ExecError>
where
    T: Send,
    F: Fn(&mut NodeCtx) -> Result<T, ExecError> + Sync,
{
    assert_eq!(
        partitions.len(),
        config.nodes,
        "one partition per node required"
    );
    let endpoints =
        Fabric::with_faults(config.nodes, config.params.network, &config.fault_plan)
            .into_endpoints();

    type NodeOk<T> = (T, NodeReport, f64);
    let results: Vec<Result<NodeOk<T>, (ExecError, f64)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.nodes);
        for (endpoint, partition) in endpoints.into_iter().zip(partitions) {
            let params = config.params.clone();
            let body = &body;
            let config = &*config;
            handles.push(scope.spawn(move || {
                let node = endpoint.node();
                let disk = SimDisk::with_base_partition(partition);
                let mut ctx = NodeCtx::new(endpoint, disk, params);
                ctx.apply_faults(config.fault_plan.node(node));
                ctx.set_watchdog(config.watchdog);
                let out = match body(&mut ctx) {
                    Ok(out) => out,
                    Err(e) => {
                        let at_ms = ctx.clock.now_ms();
                        // Tell the survivors why we are leaving; ignore
                        // delivery failures (a peer may be gone already).
                        let _ = ctx.broadcast_control(Control::Abort {
                            origin: node,
                            reason: e.to_string(),
                        });
                        return Err((e, at_ms));
                    }
                };
                let report = NodeReport {
                    node,
                    clock_ms: ctx.clock.now_ms(),
                    breakdown: *ctx.clock.breakdown(),
                    net: *ctx.net_stats(),
                    marks: ctx.clock.marks().to_vec(),
                };
                let bus = ctx.bus_busy_ms();
                Ok((out, report, bus))
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(node, h)| {
                h.join().unwrap_or_else(|panic| {
                    let message = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic".to_string());
                    // A panicking thread never reached the abort
                    // broadcast; rank it at the end of virtual time so a
                    // typed primary error at the same class wins.
                    Err((ExecError::NodePanic { node, message }, f64::INFINITY))
                })
            })
            .collect()
    });

    let mut outputs = Vec::with_capacity(config.nodes);
    let mut per_node = Vec::with_capacity(config.nodes);
    let mut bus_busy_ms = 0.0f64;
    let mut failure: Option<(ExecError, f64)> = None;
    for r in results {
        match r {
            Ok((out, report, bus)) => {
                outputs.push(out);
                per_node.push(report);
                bus_busy_ms = bus_busy_ms.max(bus);
            }
            Err((e, at_ms)) => {
                let better = match &failure {
                    None => true,
                    Some((best, best_ms)) => {
                        let (c, bc) = (e.attribution_class(), best.attribution_class());
                        c < bc || (c == bc && at_ms < *best_ms)
                    }
                };
                if better {
                    failure = Some((e, at_ms));
                }
            }
        }
    }
    if let Some((e, _)) = failure {
        return Err(e);
    }

    Ok(ClusterRun {
        outputs,
        run: RunResult {
            per_node,
            bus_busy_ms,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{CostEvent, CostTracker, NetworkKind, Value};
    use adaptagg_net::{Control, DataKind, Payload};
    use adaptagg_storage::Page;

    fn partitions(n: usize, tuples_per_node: usize) -> Vec<HeapFile> {
        (0..n)
            .map(|node| {
                let tuples: Vec<Vec<Value>> = (0..tuples_per_node)
                    .map(|i| vec![Value::Int((node * tuples_per_node + i) as i64)])
                    .collect();
                HeapFile::from_tuples(4096, tuples.iter().map(|t| t.as_slice())).unwrap()
            })
            .collect()
    }

    #[test]
    fn each_node_sees_its_partition() {
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let run = run_cluster(&config, partitions(4, 10), |ctx| {
            Ok(ctx.disk.get("base")?.tuple_count())
        })
        .unwrap();
        assert_eq!(run.outputs, vec![10, 10, 10, 10]);
        assert_eq!(run.run.per_node.len(), 4);
    }

    #[test]
    fn elapsed_is_max_over_nodes() {
        let config = ClusterConfig::new(3, CostParams::paper_default());
        let run = run_cluster(&config, partitions(3, 0), |ctx| {
            // Node i does i+1 page reads (1.15 ms each).
            ctx.clock
                .record(CostEvent::PageReadSeq, ctx.id() as u64 + 1);
            Ok(())
        })
        .unwrap();
        assert!((run.run.elapsed_ms() - 3.0 * 1.15).abs() < 1e-9);
        assert_eq!(run.run.slowest_node(), Some(2));
    }

    #[test]
    fn nodes_exchange_messages_with_lamport_time() {
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let run = run_cluster(&config, partitions(2, 0), |ctx| {
            if ctx.id() == 0 {
                // Do expensive work, then send.
                ctx.clock.record(CostEvent::PageReadRand, 2); // 30 ms
                let mut page = Page::new(2048);
                page.try_push(&[Value::Int(1)]).unwrap();
                ctx.send_page(1, DataKind::Raw, page)?;
                Ok(ctx.clock.now_ms())
            } else {
                let msg = ctx.recv()?;
                assert!(msg.payload.is_data());
                Ok(ctx.clock.now_ms())
            }
        })
        .unwrap();
        // Node 1's clock must reflect waiting for node 0.
        assert!(run.outputs[1] >= 30.0, "got {}", run.outputs[1]);
        assert!(run.run.per_node[1].breakdown.wait_ms >= 29.0);
    }

    #[test]
    fn panic_in_one_node_is_reported() {
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let r = run_cluster(&config, partitions(2, 0), |ctx| {
            if ctx.id() == 1 {
                panic!("injected failure");
            }
            Ok(())
        });
        match r {
            Err(ExecError::NodePanic { node, message }) => {
                assert_eq!(node, 1);
                assert!(message.contains("injected"));
            }
            other => panic!("expected NodePanic, got {other:?}"),
        }
    }

    #[test]
    fn shared_bus_busy_time_is_reported() {
        let params = CostParams {
            network: NetworkKind::SharedBus { ms_per_page: 2.0 },
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(2, params);
        let run = run_cluster(&config, partitions(2, 0), |ctx| {
            let peer = 1 - ctx.id();
            let mut page = Page::new(2048);
            page.try_push(&[Value::Int(ctx.id() as i64)]).unwrap();
            ctx.send_page(peer, DataKind::Raw, page)?;
            // Drain the incoming page so channels stay clean.
            loop {
                match ctx.recv()?.payload {
                    Payload::Data { .. } => break,
                    Payload::Control(Control::EndOfStream) => {}
                    _ => {}
                }
            }
            Ok(())
        })
        .unwrap();
        // Two pages at 2 ms each on one shared bus.
        assert!((run.run.bus_busy_ms - 4.0).abs() < 1e-9);
        // Someone waited: elapsed must be at least 4 ms.
        assert!(run.run.elapsed_ms() >= 4.0 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "one partition per node")]
    fn partition_count_must_match() {
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let _ = run_cluster(&config, partitions(1, 0), |_| Ok(()));
    }

    #[test]
    fn failure_is_attributed_to_the_originating_node() {
        // Node 2 fails while nodes 0 and 1 block on recv. Without the
        // abort protocol they would hang; without class-ranked attribution
        // the run could report node 0's cascade (`Aborted`) because its
        // thread is joined first. The originator's primary error must win.
        let config = ClusterConfig::new(3, CostParams::paper_default())
            .with_watchdog(std::time::Duration::from_secs(5));
        let r = run_cluster(&config, partitions(3, 0), |ctx| {
            if ctx.id() == 2 {
                return Err(ExecError::Protocol("node 2's own failure"));
            }
            ctx.recv()?; // blocks until node 2's abort arrives
            Ok(())
        });
        assert_eq!(r.err(), Some(ExecError::Protocol("node 2's own failure")));
    }

    #[test]
    fn earliest_virtual_failure_wins_within_a_class() {
        // Two primary failures: node 1 fails at t=0, node 0 at t=15.
        // The earlier one is the cause to report.
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let r = run_cluster(&config, partitions(2, 0), |ctx| -> Result<(), ExecError> {
            if ctx.id() == 0 {
                ctx.clock.record(CostEvent::PageReadRand, 1); // 15 ms
                Err(ExecError::Protocol("late failure"))
            } else {
                Err(ExecError::Protocol("early failure"))
            }
        });
        assert_eq!(r.err(), Some(ExecError::Protocol("early failure")));
    }

    #[test]
    fn injected_crash_surfaces_as_typed_error() {
        let plan = adaptagg_net::FaultPlan::new(1).with_crash(1, 5);
        let config = ClusterConfig::new(2, CostParams::paper_default())
            .with_fault_plan(plan)
            .with_watchdog(std::time::Duration::from_secs(5));
        let r = run_cluster(&config, partitions(2, 20), |ctx| {
            for _ in 0..20 {
                ctx.fault_tick()?;
            }
            // Node 0 then waits for traffic that will never come; the
            // abort from node 1 must release it.
            if ctx.id() == 0 {
                ctx.recv()?;
            }
            Ok(())
        });
        assert_eq!(
            r.err(),
            Some(ExecError::InjectedCrash {
                node: 1,
                at_tuple: 5
            })
        );
    }

    #[test]
    fn slowdown_fault_inflates_one_node_only() {
        let work = |ctx: &mut NodeCtx| {
            ctx.clock.record(CostEvent::PageReadSeq, 10);
            Ok(ctx.clock.now_ms())
        };
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let nominal = run_cluster(&config, partitions(2, 0), work).unwrap();
        let slowed_config = ClusterConfig::new(2, CostParams::paper_default())
            .with_fault_plan(adaptagg_net::FaultPlan::new(2).with_slowdown(1, 3.0));
        let slowed = run_cluster(&slowed_config, partitions(2, 0), work).unwrap();
        assert_eq!(slowed.outputs[0], nominal.outputs[0]);
        assert!((slowed.outputs[1] - 3.0 * nominal.outputs[1]).abs() < 1e-9);
    }

    #[test]
    fn watchdog_breaks_a_hang_even_without_an_abort() {
        // A node that simply never sends (no error, so no abort broadcast)
        // must not hang its peer forever: the watchdog converts the wait
        // into a typed error.
        let config = ClusterConfig::new(2, CostParams::paper_default())
            .with_watchdog(std::time::Duration::from_millis(100));
        let r = run_cluster(&config, partitions(2, 0), |ctx| {
            if ctx.id() == 0 {
                ctx.recv()?; // nothing ever arrives
            }
            Ok(())
        });
        match r {
            Err(ExecError::Watchdog { node: 0, waited_ms }) => assert_eq!(waited_ms, 100),
            other => panic!("expected Watchdog, got {:?}", other.err()),
        }
    }
}
