//! The cluster runtime: spawn N node threads, run an algorithm closure on
//! each, gather outputs and reports.

use crate::error::ExecError;
use crate::node::{NodeCtx, DEFAULT_WATCHDOG};
use crate::recovery::{self, RecoveryPolicy, RecoverySession, Segment};
use crate::runstats::{NodeReport, RecoveryStats, RunResult};
use adaptagg_model::{CostParams, MemoryGrant};
use adaptagg_net::{
    loopback_endpoints, Control, Fabric, FaultPlan, LinkRetryPolicy, NodeFaults, TcpConfig,
    TransportKind,
};
use adaptagg_obs::{NodeTraceReport, RecoveryAttemptTrace, RecoverySummaryTrace, RunTrace};
use adaptagg_storage::{HeapFile, SimDisk};
use std::time::Duration;

/// Default per-node real-time watchdog headroom when deriving the
/// deadline from cluster size (thread startup, scheduling). Overridable
/// per run via [`ClusterConfig::with_watchdog_headroom`] or globally via
/// `ADAPTAGG_WATCHDOG_MS_PER_NODE` (DESIGN.md §9).
pub const WATCHDOG_MS_PER_NODE: u64 = 250;
/// Default per-input-page watchdog headroom when deriving the deadline
/// (real compute time scales with input volume even though time is
/// virtual). Overridable per run via
/// [`ClusterConfig::with_watchdog_headroom`] or globally via
/// `ADAPTAGG_WATCHDOG_US_PER_PAGE` (DESIGN.md §9).
pub const WATCHDOG_US_PER_PAGE: u64 = 200;

/// Read a `u64` watchdog knob from the environment, falling back to its
/// compiled default on absence or garbage (a misspelt value must not
/// silently disable the hang backstop).
fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Cluster shape and cost parameters for a run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (`N` in Table 1).
    pub nodes: usize,
    /// Table 1 constants, including the network kind and the hash-table
    /// budget `M`.
    pub params: CostParams,
    /// Seeded fault schedule ([`FaultPlan::none()`] by default — zero
    /// overhead anywhere when disabled).
    pub fault_plan: FaultPlan,
    /// Explicit real-time receive deadline per node (the hang backstop).
    /// `None` (the default) derives the deadline from cluster size and
    /// input volume — see [`ClusterConfig::effective_watchdog`].
    pub watchdog: Option<Duration>,
    /// Floor for the derived watchdog deadline.
    pub watchdog_floor: Duration,
    /// Per-node headroom (ms) of the derived watchdog. Defaults from
    /// `ADAPTAGG_WATCHDOG_MS_PER_NODE`, then [`WATCHDOG_MS_PER_NODE`].
    pub watchdog_ms_per_node: u64,
    /// Per-input-page headroom (µs) of the derived watchdog. Defaults
    /// from `ADAPTAGG_WATCHDOG_US_PER_PAGE`, then
    /// [`WATCHDOG_US_PER_PAGE`].
    pub watchdog_us_per_page: u64,
    /// Per-node live memory grants (original node ids), installed on each
    /// node's [`NodeCtx`]. Empty (the default) leaves every node on the
    /// unlimited grant — the pre-serving, bit-identical path. The serving
    /// layer's broker passes one revocable handle per node here.
    pub grants: Vec<MemoryGrant>,
    /// Query-level fault recovery. `None` (the default) keeps fail-stop
    /// semantics: the first node failure aborts the run, bit-identically
    /// to the pre-recovery runtime.
    pub recovery: Option<RecoveryPolicy>,
    /// Record a [`RunTrace`] (spans, events, metrics, per-link traffic)
    /// for this run. Defaults from the `ADAPTAGG_TRACE` environment
    /// variable (unset / empty / `"0"` → off). Tracing never records
    /// cost events and never advances any clock, so every virtual-time
    /// figure is bit-identical with it on or off.
    pub trace: bool,
    /// Worker threads per node for intra-node morsel parallelism.
    /// Defaults from the `ADAPTAGG_THREADS` environment variable (unset
    /// / garbage → 1, the serial path). Values above 1 let eligible
    /// scans and merges run the morsel engine; all result rows and every
    /// virtual-time figure stay bit-identical to `threads = 1` (the
    /// engine replays cost charges in logical order — only wall-clock
    /// changes).
    pub threads: usize,
    /// Which wire carries the fabric: the deterministic in-process
    /// channel mesh (the default) or real TCP sockets on loopback. The
    /// reliability layer — sequence numbers, dedup, fault injection,
    /// virtual-time accounting — is identical over both (see
    /// [`adaptagg_net::Transport`]), so algorithms, chaos schedules, and
    /// traces run unchanged against either backend.
    pub transport: TransportKind,
}

impl ClusterConfig {
    /// A cluster of `nodes` nodes with the given parameters.
    pub fn new(nodes: usize, params: CostParams) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        ClusterConfig {
            nodes,
            params,
            fault_plan: FaultPlan::none(),
            watchdog: None,
            watchdog_floor: DEFAULT_WATCHDOG,
            watchdog_ms_per_node: env_u64("ADAPTAGG_WATCHDOG_MS_PER_NODE", WATCHDOG_MS_PER_NODE),
            watchdog_us_per_page: env_u64("ADAPTAGG_WATCHDOG_US_PER_PAGE", WATCHDOG_US_PER_PAGE),
            grants: Vec::new(),
            recovery: None,
            trace: std::env::var("ADAPTAGG_TRACE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false),
            threads: env_u64("ADAPTAGG_THREADS", 1).max(1) as usize,
            transport: TransportKind::default(),
        }
    }

    /// Use `threads` worker threads per node (see [`ClusterConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Run the fabric over the given transport backend.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Record a [`RunTrace`] for this run (see [`ClusterConfig::trace`]).
    pub fn with_tracing(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Run under a seeded fault schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the real-time receive deadline (tests use short ones).
    /// Disables the size-derived deadline.
    pub fn with_watchdog(mut self, timeout: Duration) -> Self {
        self.watchdog = Some(timeout);
        self
    }

    /// Override the floor of the size-derived receive deadline.
    pub fn with_watchdog_floor(mut self, floor: Duration) -> Self {
        self.watchdog_floor = floor;
        self
    }

    /// Override the derived watchdog's headroom slopes: `ms_per_node` of
    /// real time per cluster node plus `us_per_page` per input page.
    /// Loaded CI machines and the concurrent serving path raise these so
    /// contended-but-healthy runs aren't declared stalled.
    pub fn with_watchdog_headroom(mut self, ms_per_node: u64, us_per_page: u64) -> Self {
        self.watchdog_ms_per_node = ms_per_node;
        self.watchdog_us_per_page = us_per_page;
        self
    }

    /// Install per-node live memory grants (one per node, original ids).
    pub fn with_grants(mut self, grants: Vec<MemoryGrant>) -> Self {
        assert_eq!(grants.len(), self.nodes, "one grant per node required");
        self.grants = grants;
        self
    }

    /// Enable query-level fault recovery under the given policy.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// The real-time receive deadline a run with `total_pages` of input
    /// actually uses: the explicit override if set, otherwise the floor
    /// plus headroom proportional to cluster size and input volume (a
    /// fixed constant falsely declares large slow runs stalled). With
    /// recovery enabled, the derived deadline is further scaled by the
    /// policy's straggler factor — survivors inherit partitions and
    /// legitimately run longer.
    pub fn effective_watchdog(&self, total_pages: usize) -> Duration {
        if let Some(explicit) = self.watchdog {
            return explicit;
        }
        let mut ms = self.watchdog_floor.as_millis() as u64
            + self.watchdog_ms_per_node * self.nodes as u64
            + self.watchdog_us_per_page * total_pages as u64 / 1000;
        if let Some(policy) = &self.recovery {
            ms = (ms as f64 * policy.straggler_factor.max(1.0)).round() as u64;
        }
        Duration::from_millis(ms)
    }

    /// The paper's implementation platform: 8 nodes on a shared 10 Mbit
    /// bus (§5).
    pub fn paper_cluster() -> Self {
        ClusterConfig::new(8, CostParams::cluster_default())
    }

    /// The analytical default: 32 nodes on a high-speed network.
    pub fn paper_model() -> Self {
        ClusterConfig::new(32, CostParams::paper_default())
    }
}

/// The outcome of [`run_cluster`]: one output per node plus timing.
#[derive(Debug)]
pub struct ClusterRun<T> {
    /// Per-node outputs, in node order.
    pub outputs: Vec<T>,
    /// Timing and traffic.
    pub run: RunResult,
    /// The run trace, when [`ClusterConfig::trace`] was set (node ids are
    /// original ids, even after recovery reassignment).
    pub trace: Option<RunTrace>,
}

/// Run `body` on every node of a cluster in parallel.
///
/// `partitions[i]` becomes node `i`'s base-relation partition (disk file
/// `"base"`). The closure receives the node's [`NodeCtx`] and returns its
/// output; any node error or panic aborts the run with an [`ExecError`].
///
/// Threads are real (the run exercises real channels and real contention
/// on the shared-bus model); time is virtual.
///
/// ## Failure propagation and attribution
///
/// A node whose body fails broadcasts [`Control::Abort`] before its
/// endpoint drops, so peers blocked waiting for its data fail promptly
/// with [`ExecError::Aborted`] instead of hanging (the per-node watchdog
/// is the backstop if even the abort is lost). Several nodes usually
/// error on one failure — the originator plus its cascades — so the
/// reported error is chosen by attribution class first
/// ([`ExecError::attribution_class`]: primary < watchdog < cascade),
/// earliest virtual failure time second: the *first cause*, not whichever
/// thread happened to be joined first.
pub fn run_cluster<T, F>(
    config: &ClusterConfig,
    partitions: Vec<HeapFile>,
    body: F,
) -> Result<ClusterRun<T>, ExecError>
where
    T: Send,
    F: Fn(&mut NodeCtx) -> Result<T, ExecError> + Sync,
{
    assert_eq!(
        partitions.len(),
        config.nodes,
        "one partition per node required"
    );
    let total_pages: usize = partitions.iter().map(|p| p.page_count()).sum();
    let watchdog = config.effective_watchdog(total_pages);
    match &config.recovery {
        None => {
            // Fail-stop path, bit-identical to the pre-recovery runtime:
            // no retry policy, no sessions, one attempt.
            let seats = partitions
                .into_iter()
                .enumerate()
                .map(|(node, base)| NodeSeat {
                    base,
                    faults: config.fault_plan.node(node),
                    recovery: None,
                    grant: config.grants.get(node).cloned().unwrap_or_default(),
                })
                .collect();
            let attempt = run_seats(
                &config.params,
                &config.fault_plan,
                config.transport,
                watchdog,
                None,
                config.trace,
                config.threads,
                seats,
                &body,
            );
            match attempt {
                Ok((outputs, per_node, bus_busy_ms, traces)) => Ok(ClusterRun {
                    outputs,
                    run: RunResult {
                        per_node,
                        bus_busy_ms,
                        recovery: RecoveryStats::default(),
                    },
                    trace: config.trace.then(|| RunTrace {
                        nodes: traces,
                        recovery: Vec::new(),
                        transport: config.transport.to_string(),
                        ..RunTrace::default()
                    }),
                }),
                Err((e, _at_ms)) => Err(e),
            }
        }
        Some(policy) => run_recovering(config, policy, &partitions, watchdog, &body),
    }
}

/// One node's assignment for a cluster attempt: its (possibly
/// concatenated) base data, injected faults, and — with recovery on —
/// its checkpoint session.
struct NodeSeat {
    base: HeapFile,
    faults: NodeFaults,
    recovery: Option<RecoverySession>,
    grant: MemoryGrant,
}

/// One attempt's successful outcome: outputs, reports, bus-busy time,
/// and per-node traces (empty when tracing is off).
type AttemptOk<T> = (Vec<T>, Vec<NodeReport>, f64, Vec<NodeTraceReport>);
/// One attempt's failure: the first cause and its virtual failure time.
type AttemptErr = (ExecError, f64);

/// Execute one cluster attempt over the given seats. Returns either all
/// nodes' outputs or the attempt's first-cause failure with its virtual
/// failure time.
#[allow(clippy::too_many_arguments)]
fn run_seats<T, F>(
    params: &CostParams,
    fault_plan: &FaultPlan,
    transport: TransportKind,
    watchdog: Duration,
    link_retry: Option<LinkRetryPolicy>,
    trace: bool,
    threads: usize,
    seats: Vec<NodeSeat>,
    body: &F,
) -> Result<AttemptOk<T>, AttemptErr>
where
    T: Send,
    F: Fn(&mut NodeCtx) -> Result<T, ExecError> + Sync,
{
    let n = seats.len();
    let endpoints = match transport {
        TransportKind::InProcess => {
            Fabric::with_faults(n, params.network, fault_plan).into_endpoints()
        }
        TransportKind::TcpLoopback => {
            let cfg = TcpConfig::default().with_seed(fault_plan.seed());
            match loopback_endpoints(n, params.network, fault_plan, cfg) {
                Ok(endpoints) => endpoints,
                // Establishment failure happens before any virtual time
                // elapses; it is an environment fault, not a node fault.
                Err(e) => return Err((ExecError::Net(e), 0.0)),
            }
        }
    };

    type NodeOk<T> = (T, NodeReport, f64, Option<NodeTraceReport>);
    let results: Vec<Result<NodeOk<T>, (ExecError, f64)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (endpoint, seat) in endpoints.into_iter().zip(seats) {
            let params = params.clone();
            handles.push(scope.spawn(move || {
                let node = endpoint.node();
                let disk = SimDisk::with_base_partition(seat.base);
                let mut ctx = NodeCtx::new(endpoint, disk, params);
                ctx.apply_faults(seat.faults);
                ctx.set_watchdog(watchdog);
                ctx.set_link_retry(link_retry);
                ctx.set_grant(seat.grant);
                ctx.set_threads(threads);
                ctx.recovery = seat.recovery;
                if trace {
                    ctx.enable_trace();
                }
                let out = match body(&mut ctx) {
                    Ok(out) => out,
                    Err(e) => {
                        let at_ms = ctx.clock.now_ms();
                        // Tell the survivors why we are leaving; ignore
                        // delivery failures (a peer may be gone already).
                        let _ = ctx.broadcast_control(Control::Abort {
                            origin: node,
                            reason: e.to_string(),
                        });
                        return Err((e, at_ms));
                    }
                };
                let report = NodeReport {
                    node,
                    clock_ms: ctx.clock.now_ms(),
                    breakdown: *ctx.clock.breakdown(),
                    net: *ctx.net_stats(),
                    marks: ctx.clock.marks().to_vec(),
                    recovery: ctx
                        .recovery
                        .as_ref()
                        .map(|s| s.counters)
                        .unwrap_or_default(),
                };
                let bus = ctx.bus_busy_ms();
                let node_trace = ctx.finish_trace();
                Ok((out, report, bus, node_trace))
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(node, h)| {
                h.join().unwrap_or_else(|panic| {
                    let message = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic".to_string());
                    // A panicking thread never reached the abort
                    // broadcast; rank it at the end of virtual time so a
                    // typed primary error at the same class wins.
                    Err((ExecError::NodePanic { node, message }, f64::INFINITY))
                })
            })
            .collect()
    });

    let mut outputs = Vec::with_capacity(n);
    let mut per_node = Vec::with_capacity(n);
    let mut traces = Vec::new();
    let mut bus_busy_ms = 0.0f64;
    let mut failure: Option<(ExecError, f64)> = None;
    for r in results {
        match r {
            Ok((out, report, bus, node_trace)) => {
                outputs.push(out);
                per_node.push(report);
                traces.extend(node_trace);
                bus_busy_ms = bus_busy_ms.max(bus);
            }
            Err((e, at_ms)) => {
                let better = match &failure {
                    None => true,
                    Some((best, best_ms)) => {
                        let (c, bc) = (e.attribution_class(), best.attribution_class());
                        c < bc || (c == bc && at_ms < *best_ms)
                    }
                };
                if better {
                    failure = Some((e, at_ms));
                }
            }
        }
    }
    if let Some(f) = failure {
        return Err(f);
    }
    Ok((outputs, per_node, bus_busy_ms, traces))
}

/// The recovery driver: run attempts until one completes, removing the
/// failed attempt's victim node and reassigning its base partitions (plus
/// their durable checkpoints) to survivors.
///
/// Each failed attempt removes exactly one node — the first cause's
/// victim — so progress is guaranteed and the attempt count is bounded by
/// `min(max_attempts, nodes)`. A watchdog failure names the *waiter*, not
/// the staller (the waiter cannot know who stalled); removing the waiter
/// is still bounded and the straggler-scaled deadline makes it rare.
/// Checkpoints live in a store shared across attempts (modeling
/// replicated stable storage), so a survivor inheriting a partition
/// replays only the un-checkpointed suffix.
fn run_recovering<T, F>(
    config: &ClusterConfig,
    policy: &RecoveryPolicy,
    partitions: &[HeapFile],
    watchdog: Duration,
    body: &F,
) -> Result<ClusterRun<T>, ExecError>
where
    T: Send,
    F: Fn(&mut NodeCtx) -> Result<T, ExecError> + Sync,
{
    let page_bytes = partitions
        .first()
        .map(|p| p.page_bytes())
        .unwrap_or(config.params.page_bytes);
    let store = recovery::new_store();
    // owner[p] = original node id currently responsible for partition p.
    let mut owner: Vec<usize> = (0..config.nodes).collect();
    let mut alive = vec![true; config.nodes];
    let mut stats = RecoveryStats {
        attempts: 0,
        ..RecoveryStats::default()
    };
    let mut backoff = policy.backoff_ms;
    let mut last_err = None;
    let mut recovery_trace: Vec<RecoveryAttemptTrace> = Vec::new();
    let max_attempts = policy.max_attempts.max(1);

    for attempt in 0..max_attempts {
        stats.attempts += 1;
        // live[i] = original id of the node seated at fabric index i.
        let live: Vec<usize> = (0..config.nodes).filter(|&id| alive[id]).collect();
        let seats: Vec<NodeSeat> = live
            .iter()
            .map(|&orig| {
                // Concatenate this node's partitions ascending by
                // partition id; record per-partition page offsets so
                // checkpoint-aware scans can resume per partition.
                let mut pages = Vec::new();
                let mut segments = Vec::new();
                for (p, part) in partitions.iter().enumerate() {
                    if owner[p] != orig {
                        continue;
                    }
                    segments.push(Segment {
                        partition: p,
                        start_page: pages.len(),
                        pages: part.page_count(),
                    });
                    for pi in 0..part.page_count() {
                        pages.push(part.page(pi).expect("partition page").clone());
                    }
                }
                let base =
                    HeapFile::from_pages(page_bytes, pages).expect("concatenated partition");
                NodeSeat {
                    base,
                    faults: config.fault_plan.node(orig),
                    recovery: Some(RecoverySession::new(
                        segments,
                        store.clone(),
                        policy.checkpoint_interval_pages,
                        config.params.page_bytes,
                    )),
                    // Grants are per original node id: a survivor keeps
                    // its own grant across reassignment.
                    grant: config.grants.get(orig).cloned().unwrap_or_default(),
                }
            })
            .collect();

        match run_seats(
            &config.params,
            &config.fault_plan,
            config.transport,
            watchdog,
            policy.link_retry,
            config.trace,
            config.threads,
            seats,
            body,
        ) {
            Ok((outputs, mut per_node, bus_busy_ms, mut traces)) => {
                // Reports carry fabric indices; restore original ids.
                for (report, &orig) in per_node.iter_mut().zip(&live) {
                    report.node = orig;
                }
                // Traces too: their node field is the fabric index.
                for trace in traces.iter_mut() {
                    trace.node = live[trace.node];
                }
                let summary = RecoverySummaryTrace {
                    attempts: stats.attempts,
                    dead_nodes: stats.dead_nodes.clone(),
                    reassigned_partitions: stats.reassigned_partitions,
                    lost_ms: stats.lost_ms,
                    backoff_ms: stats.backoff_ms,
                };
                return Ok(ClusterRun {
                    outputs,
                    run: RunResult {
                        per_node,
                        bus_busy_ms,
                        recovery: stats,
                    },
                    trace: config.trace.then(|| RunTrace {
                        nodes: traces,
                        recovery: std::mem::take(&mut recovery_trace),
                        recovery_summary: Some(summary),
                        transport: config.transport.to_string(),
                        annotations: Vec::new(),
                    }),
                });
            }
            Err((e, at_ms)) => {
                if at_ms.is_finite() {
                    stats.lost_ms += at_ms;
                }
                // Non-recoverable failures (storage, model, protocol
                // bugs) bail immediately — retrying cannot help.
                let Some(victim_seat) = recovery::victim_of(&e) else {
                    return Err(e);
                };
                // The error names a fabric index; map to the original id.
                let Some(&victim) = live.get(victim_seat) else {
                    return Err(e);
                };
                last_err = Some(e);
                alive[victim] = false;
                stats.dead_nodes.push(victim);
                let survivors: Vec<usize> =
                    (0..config.nodes).filter(|&id| alive[id]).collect();
                if survivors.is_empty() {
                    break;
                }
                // Reassign the victim's partitions, fewest-loaded
                // survivor first (ties to the lowest id) — deterministic.
                for p in 0..owner.len() {
                    if owner[p] != victim {
                        continue;
                    }
                    let heir = *survivors
                        .iter()
                        .min_by_key(|&&s| {
                            (owner.iter().filter(|&&o| o == s).count(), s)
                        })
                        .expect("survivors non-empty");
                    owner[p] = heir;
                    stats.reassigned_partitions += 1;
                }
                let mut charged_backoff = 0.0;
                if attempt + 1 < max_attempts {
                    stats.backoff_ms += backoff;
                    charged_backoff = backoff;
                    backoff *= policy.backoff_multiplier;
                }
                if config.trace {
                    recovery_trace.push(RecoveryAttemptTrace {
                        attempt: stats.attempts,
                        victim: Some(victim),
                        lost_ms: if at_ms.is_finite() { at_ms } else { 0.0 },
                        backoff_ms: charged_backoff,
                    });
                }
            }
        }
    }

    Err(ExecError::RecoveryExhausted {
        attempts: stats.attempts,
        last: Box::new(last_err.expect("at least one failed attempt")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{CostEvent, CostTracker, NetworkKind, Value};
    use adaptagg_net::{Control, DataKind, Payload};
    use adaptagg_storage::Page;

    fn partitions(n: usize, tuples_per_node: usize) -> Vec<HeapFile> {
        (0..n)
            .map(|node| {
                let tuples: Vec<Vec<Value>> = (0..tuples_per_node)
                    .map(|i| vec![Value::Int((node * tuples_per_node + i) as i64)])
                    .collect();
                HeapFile::from_tuples(4096, tuples.iter().map(|t| t.as_slice())).unwrap()
            })
            .collect()
    }

    #[test]
    fn each_node_sees_its_partition() {
        let config = ClusterConfig::new(4, CostParams::paper_default());
        let run = run_cluster(&config, partitions(4, 10), |ctx| {
            Ok(ctx.disk.get("base")?.tuple_count())
        })
        .unwrap();
        assert_eq!(run.outputs, vec![10, 10, 10, 10]);
        assert_eq!(run.run.per_node.len(), 4);
    }

    #[test]
    fn elapsed_is_max_over_nodes() {
        let config = ClusterConfig::new(3, CostParams::paper_default());
        let run = run_cluster(&config, partitions(3, 0), |ctx| {
            // Node i does i+1 page reads (1.15 ms each).
            ctx.clock
                .record(CostEvent::PageReadSeq, ctx.id() as u64 + 1);
            Ok(())
        })
        .unwrap();
        assert!((run.run.elapsed_ms() - 3.0 * 1.15).abs() < 1e-9);
        assert_eq!(run.run.slowest_node(), Some(2));
    }

    #[test]
    fn nodes_exchange_messages_with_lamport_time() {
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let run = run_cluster(&config, partitions(2, 0), |ctx| {
            if ctx.id() == 0 {
                // Do expensive work, then send.
                ctx.clock.record(CostEvent::PageReadRand, 2); // 30 ms
                let mut page = Page::new(2048);
                page.try_push(&[Value::Int(1)]).unwrap();
                ctx.send_page(1, DataKind::Raw, page)?;
                Ok(ctx.clock.now_ms())
            } else {
                let msg = ctx.recv()?;
                assert!(msg.payload.is_data());
                Ok(ctx.clock.now_ms())
            }
        })
        .unwrap();
        // Node 1's clock must reflect waiting for node 0.
        assert!(run.outputs[1] >= 30.0, "got {}", run.outputs[1]);
        assert!(run.run.per_node[1].breakdown.wait_ms >= 29.0);
    }

    #[test]
    fn panic_in_one_node_is_reported() {
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let r = run_cluster(&config, partitions(2, 0), |ctx| {
            if ctx.id() == 1 {
                panic!("injected failure");
            }
            Ok(())
        });
        match r {
            Err(ExecError::NodePanic { node, message }) => {
                assert_eq!(node, 1);
                assert!(message.contains("injected"));
            }
            other => panic!("expected NodePanic, got {other:?}"),
        }
    }

    #[test]
    fn shared_bus_busy_time_is_reported() {
        let params = CostParams {
            network: NetworkKind::SharedBus { ms_per_page: 2.0 },
            ..CostParams::paper_default()
        };
        let config = ClusterConfig::new(2, params);
        let run = run_cluster(&config, partitions(2, 0), |ctx| {
            let peer = 1 - ctx.id();
            let mut page = Page::new(2048);
            page.try_push(&[Value::Int(ctx.id() as i64)]).unwrap();
            ctx.send_page(peer, DataKind::Raw, page)?;
            // Drain the incoming page so channels stay clean.
            loop {
                match ctx.recv()?.payload {
                    Payload::Data { .. } => break,
                    Payload::Control(Control::EndOfStream) => {}
                    _ => {}
                }
            }
            Ok(())
        })
        .unwrap();
        // Two pages at 2 ms each on one shared bus.
        assert!((run.run.bus_busy_ms - 4.0).abs() < 1e-9);
        // Someone waited: elapsed must be at least 4 ms.
        assert!(run.run.elapsed_ms() >= 4.0 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "one partition per node")]
    fn partition_count_must_match() {
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let _ = run_cluster(&config, partitions(1, 0), |_| Ok(()));
    }

    #[test]
    fn failure_is_attributed_to_the_originating_node() {
        // Node 2 fails while nodes 0 and 1 block on recv. Without the
        // abort protocol they would hang; without class-ranked attribution
        // the run could report node 0's cascade (`Aborted`) because its
        // thread is joined first. The originator's primary error must win.
        let config = ClusterConfig::new(3, CostParams::paper_default())
            .with_watchdog(std::time::Duration::from_secs(5));
        let r = run_cluster(&config, partitions(3, 0), |ctx| {
            if ctx.id() == 2 {
                return Err(ExecError::Protocol("node 2's own failure"));
            }
            ctx.recv()?; // blocks until node 2's abort arrives
            Ok(())
        });
        assert_eq!(r.err(), Some(ExecError::Protocol("node 2's own failure")));
    }

    #[test]
    fn earliest_virtual_failure_wins_within_a_class() {
        // Two primary failures: node 1 fails at t=0, node 0 at t=15.
        // The earlier one is the cause to report.
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let r = run_cluster(&config, partitions(2, 0), |ctx| -> Result<(), ExecError> {
            if ctx.id() == 0 {
                ctx.clock.record(CostEvent::PageReadRand, 1); // 15 ms
                Err(ExecError::Protocol("late failure"))
            } else {
                Err(ExecError::Protocol("early failure"))
            }
        });
        assert_eq!(r.err(), Some(ExecError::Protocol("early failure")));
    }

    #[test]
    fn injected_crash_surfaces_as_typed_error() {
        let plan = adaptagg_net::FaultPlan::new(1).with_crash(1, 5);
        let config = ClusterConfig::new(2, CostParams::paper_default())
            .with_fault_plan(plan)
            .with_watchdog(std::time::Duration::from_secs(5));
        let r = run_cluster(&config, partitions(2, 20), |ctx| {
            for _ in 0..20 {
                ctx.fault_tick()?;
            }
            // Node 0 then waits for traffic that will never come; the
            // abort from node 1 must release it.
            if ctx.id() == 0 {
                ctx.recv()?;
            }
            Ok(())
        });
        assert_eq!(
            r.err(),
            Some(ExecError::InjectedCrash {
                node: 1,
                at_tuple: 5
            })
        );
    }

    #[test]
    fn slowdown_fault_inflates_one_node_only() {
        let work = |ctx: &mut NodeCtx| {
            ctx.clock.record(CostEvent::PageReadSeq, 10);
            Ok(ctx.clock.now_ms())
        };
        let config = ClusterConfig::new(2, CostParams::paper_default());
        let nominal = run_cluster(&config, partitions(2, 0), work).unwrap();
        let slowed_config = ClusterConfig::new(2, CostParams::paper_default())
            .with_fault_plan(adaptagg_net::FaultPlan::new(2).with_slowdown(1, 3.0));
        let slowed = run_cluster(&slowed_config, partitions(2, 0), work).unwrap();
        assert_eq!(slowed.outputs[0], nominal.outputs[0]);
        assert!((slowed.outputs[1] - 3.0 * nominal.outputs[1]).abs() < 1e-9);
    }

    #[test]
    fn watchdog_breaks_a_hang_even_without_an_abort() {
        // A node that simply never sends (no error, so no abort broadcast)
        // must not hang its peer forever: the watchdog converts the wait
        // into a typed error.
        let config = ClusterConfig::new(2, CostParams::paper_default())
            .with_watchdog(std::time::Duration::from_millis(100));
        let r = run_cluster(&config, partitions(2, 0), |ctx| {
            if ctx.id() == 0 {
                ctx.recv()?; // nothing ever arrives
            }
            Ok(())
        });
        match r {
            Err(ExecError::Watchdog { node: 0, waited_ms }) => assert_eq!(waited_ms, 100),
            other => panic!("expected Watchdog, got {:?}", other.err()),
        }
    }

    #[test]
    fn derived_watchdog_scales_with_cluster_size_and_input() {
        // The old fixed 30 s constant falsely declared large slow runs
        // stalled. The derived deadline must keep the floor and grow with
        // both node count and input volume.
        let small = ClusterConfig::new(2, CostParams::paper_default());
        let big = ClusterConfig::new(64, CostParams::paper_default());
        assert!(small.effective_watchdog(0) >= DEFAULT_WATCHDOG);
        assert!(big.effective_watchdog(0) > small.effective_watchdog(0));
        assert!(small.effective_watchdog(1_000_000) > small.effective_watchdog(0));
    }

    #[test]
    fn explicit_watchdog_override_wins() {
        let config = ClusterConfig::new(64, CostParams::paper_default())
            .with_watchdog(Duration::from_millis(123));
        assert_eq!(
            config.effective_watchdog(1_000_000),
            Duration::from_millis(123)
        );
        let floored = ClusterConfig::new(1, CostParams::paper_default())
            .with_watchdog_floor(Duration::from_secs(90));
        assert!(floored.effective_watchdog(0) >= Duration::from_secs(90));
    }

    #[test]
    fn watchdog_headroom_override_changes_the_derived_deadline() {
        let stock = ClusterConfig::new(8, CostParams::paper_default());
        let padded = ClusterConfig::new(8, CostParams::paper_default())
            .with_watchdog_headroom(WATCHDOG_MS_PER_NODE * 10, WATCHDOG_US_PER_PAGE * 10);
        assert!(padded.effective_watchdog(1000) > stock.effective_watchdog(1000));
        let expected = stock.watchdog_floor.as_millis() as u64
            + WATCHDOG_MS_PER_NODE * 10 * 8
            + WATCHDOG_US_PER_PAGE * 10 * 1000 / 1000;
        assert_eq!(
            padded.effective_watchdog(1000),
            Duration::from_millis(expected)
        );
    }

    #[test]
    fn recovery_scales_the_derived_deadline_for_stragglers() {
        let plain = ClusterConfig::new(4, CostParams::paper_default());
        let recovering = ClusterConfig::new(4, CostParams::paper_default())
            .with_recovery(RecoveryPolicy::default());
        assert!(
            recovering.effective_watchdog(100) > plain.effective_watchdog(100),
            "survivors inherit partitions and legitimately run longer"
        );
    }

    #[test]
    fn recovery_completes_a_crashed_query_on_survivors() {
        // Node 1 crashes at tuple 5. With recovery on, attempt 2 runs on
        // nodes {0, 2} with node 1's partition reassigned; every tuple is
        // still counted exactly once.
        let plan = adaptagg_net::FaultPlan::new(7).with_crash(1, 5);
        let config = ClusterConfig::new(3, CostParams::paper_default())
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy::default())
            .with_watchdog(Duration::from_secs(10));
        let run = run_cluster(&config, partitions(3, 20), |ctx| {
            let n = ctx.disk.get("base")?.tuple_count();
            for _ in 0..n {
                ctx.clock.record(CostEvent::TupleRead, 1);
                ctx.fault_tick()?;
            }
            Ok(n)
        })
        .unwrap();
        assert_eq!(run.outputs.iter().sum::<usize>(), 60, "no tuple lost");
        assert_eq!(run.run.recovery.attempts, 2);
        assert_eq!(run.run.recovery.dead_nodes, vec![1]);
        assert_eq!(run.run.recovery.reassigned_partitions, 1);
        assert!(run.run.recovery.lost_ms > 0.0);
        assert!(run.run.recovery.backoff_ms > 0.0);
        let ids: Vec<usize> = run.run.per_node.iter().map(|r| r.node).collect();
        assert_eq!(ids, vec![0, 2], "reports keep original node ids");
        assert!(run.run.elapsed_with_recovery_ms() > run.run.elapsed_ms());
    }

    #[test]
    fn recovery_exhausts_when_every_node_crashes() {
        let plan = adaptagg_net::FaultPlan::new(1)
            .with_crash(0, 1)
            .with_crash(1, 1);
        let config = ClusterConfig::new(2, CostParams::paper_default())
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy::default())
            .with_watchdog(Duration::from_secs(10));
        let r = run_cluster(&config, partitions(2, 10), |ctx| {
            let n = ctx.disk.get("base")?.tuple_count();
            for _ in 0..n {
                ctx.fault_tick()?;
            }
            Ok(n)
        });
        match r {
            Err(ExecError::RecoveryExhausted { attempts, last }) => {
                assert_eq!(attempts, 2, "one victim per attempt, two nodes");
                assert!(matches!(*last, ExecError::InjectedCrash { .. }));
            }
            other => panic!("expected RecoveryExhausted, got {:?}", other.err()),
        }
    }

    #[test]
    fn recovery_respects_the_attempt_bound() {
        let plan = adaptagg_net::FaultPlan::new(1)
            .with_crash(0, 1)
            .with_crash(1, 1)
            .with_crash(2, 1)
            .with_crash(3, 1);
        let config = ClusterConfig::new(4, CostParams::paper_default())
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy::default().with_max_attempts(2))
            .with_watchdog(Duration::from_secs(10));
        let r = run_cluster(&config, partitions(4, 10), |ctx| {
            let n = ctx.disk.get("base")?.tuple_count();
            for _ in 0..n {
                ctx.fault_tick()?;
            }
            Ok(n)
        });
        match r {
            Err(ExecError::RecoveryExhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected RecoveryExhausted, got {:?}", other.err()),
        }
    }

    #[test]
    fn non_recoverable_failures_bail_without_retry() {
        // A protocol bug is not a node fault; retrying cannot help and
        // must not burn attempts.
        let config = ClusterConfig::new(2, CostParams::paper_default())
            .with_recovery(RecoveryPolicy::default())
            .with_watchdog(Duration::from_secs(10));
        let r = run_cluster(&config, partitions(2, 0), |ctx| {
            if ctx.id() == 1 {
                return Err(ExecError::Protocol("logic bug"));
            }
            ctx.recv()?;
            Ok(())
        });
        assert_eq!(r.err(), Some(ExecError::Protocol("logic bug")));
    }

    #[test]
    fn clean_run_with_recovery_reports_one_attempt() {
        let config = ClusterConfig::new(2, CostParams::paper_default())
            .with_recovery(RecoveryPolicy::default());
        let run = run_cluster(&config, partitions(2, 5), |ctx| {
            Ok(ctx.disk.get("base")?.tuple_count())
        })
        .unwrap();
        assert_eq!(run.run.recovery, RecoveryStats::default());
        assert_eq!(run.outputs, vec![5, 5]);
    }
}
