//! Run results: per-node reports and cluster-wide summaries.

use crate::clock::{PhaseMark, TimeBreakdown};
use adaptagg_net::NetStats;

/// Per-node recovery activity: checkpoint I/O, restored state, replay.
/// All zero when recovery is disabled or the run was clean.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct NodeRecoveryStats {
    /// Checkpoint pages written to the node's disk.
    pub checkpoint_pages: u64,
    /// Partial rows written into checkpoints.
    pub checkpoint_partials: u64,
    /// Partial rows restored from checkpoints instead of recomputed.
    pub restored_partials: u64,
    /// Input pages re-scanned that an earlier attempt had already
    /// scanned past (the un-checkpointed suffix).
    pub replayed_pages: u64,
}

impl NodeRecoveryStats {
    /// Element-wise sum (cluster-wide totals).
    pub fn add(&mut self, other: &NodeRecoveryStats) {
        self.checkpoint_pages += other.checkpoint_pages;
        self.checkpoint_partials += other.checkpoint_partials;
        self.restored_partials += other.restored_partials;
        self.replayed_pages += other.replayed_pages;
    }

    /// Whether any recovery work happened on this node.
    pub fn any(&self) -> bool {
        *self != NodeRecoveryStats::default()
    }
}

/// Query-level recovery accounting for a whole run: how many attempts it
/// took, which nodes were lost, and how much virtual time the failures
/// cost. Default (attempts = 1, nothing lost) for clean runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStats {
    /// Cluster executions, including the successful one (1 = clean run).
    pub attempts: u32,
    /// Nodes declared dead across failed attempts, in failure order
    /// (original node ids).
    pub dead_nodes: Vec<usize>,
    /// Base partitions reassigned to survivors.
    pub reassigned_partitions: u64,
    /// Virtual time wasted in failed attempts (each attempt's first-cause
    /// failure time), summed.
    pub lost_ms: f64,
    /// Virtual backoff charged between attempts.
    pub backoff_ms: f64,
}

impl Default for RecoveryStats {
    fn default() -> Self {
        RecoveryStats {
            attempts: 1,
            dead_nodes: Vec::new(),
            reassigned_partitions: 0,
            lost_ms: 0.0,
            backoff_ms: 0.0,
        }
    }
}

impl RecoveryStats {
    /// Whether the run needed any recovery.
    pub fn recovered(&self) -> bool {
        self.attempts > 1
    }
}

/// One node's timing and traffic report after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id.
    pub node: usize,
    /// The node's final virtual time in ms.
    pub clock_ms: f64,
    /// Where the time went.
    pub breakdown: TimeBreakdown,
    /// Network traffic.
    pub net: NetStats,
    /// Phase boundaries the algorithm marked (e.g. end of its sending
    /// phase), in order.
    pub marks: Vec<PhaseMark>,
    /// Recovery activity (checkpoints, restores, replay) on this node.
    pub recovery: NodeRecoveryStats,
}

impl NodeReport {
    /// Virtual time of the mark with `label`, if recorded.
    pub fn mark_ms(&self, label: &str) -> Option<f64> {
        self.marks.iter().find(|m| m.label == label).map(|m| m.at_ms)
    }
}

/// A whole run's result: per-node reports plus derived cluster metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunResult {
    /// Per-node reports in node order.
    pub per_node: Vec<NodeReport>,
    /// Total time the shared network medium was busy (0 under the
    /// high-speed model).
    pub bus_busy_ms: f64,
    /// Query-level recovery accounting (attempts, lost time, backoff).
    pub recovery: RecoveryStats,
}

impl RunResult {
    /// Elapsed virtual time: the slowest node's clock — the paper's
    /// response-time metric ("all nodes work completely in parallel").
    /// This is the *successful attempt's* time; see
    /// [`RunResult::elapsed_with_recovery_ms`] for the honest total.
    pub fn elapsed_ms(&self) -> f64 {
        self.per_node
            .iter()
            .map(|r| r.clock_ms)
            .fold(0.0, f64::max)
    }

    /// Elapsed virtual time including recovery cost: failed attempts'
    /// lost time and inter-attempt backoff on top of the successful
    /// attempt. Equals [`RunResult::elapsed_ms`] for clean runs.
    pub fn elapsed_with_recovery_ms(&self) -> f64 {
        self.elapsed_ms() + self.recovery.lost_ms + self.recovery.backoff_ms
    }

    /// Cluster-wide recovery activity (summed over nodes).
    pub fn total_recovery(&self) -> NodeRecoveryStats {
        let mut total = NodeRecoveryStats::default();
        for r in &self.per_node {
            total.add(&r.recovery);
        }
        total
    }

    /// The node that finished last.
    pub fn slowest_node(&self) -> Option<usize> {
        self.per_node
            .iter()
            .max_by(|a, b| a.clock_ms.total_cmp(&b.clock_ms))
            .map(|r| r.node)
    }

    /// Cluster-wide time breakdown (summed over nodes).
    pub fn total_breakdown(&self) -> TimeBreakdown {
        let mut total = TimeBreakdown::default();
        for r in &self.per_node {
            total.add(&r.breakdown);
        }
        total
    }

    /// Cluster-wide network traffic (summed over nodes).
    pub fn total_net(&self) -> NetStats {
        let mut total = NetStats::default();
        for r in &self.per_node {
            total.add(&r.net);
        }
        total
    }

    /// Load imbalance of final clocks: slowest node / mean node (1.0 =
    /// perfectly balanced). Note that Lamport waiting equalizes final
    /// clocks — a node idling for a straggler's data ends up with the
    /// same clock; use [`RunResult::work_imbalance`] to see *work* skew.
    pub fn imbalance(&self) -> f64 {
        if self.per_node.is_empty() {
            return 1.0;
        }
        let mean: f64 =
            self.per_node.iter().map(|r| r.clock_ms).sum::<f64>() / self.per_node.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.elapsed_ms() / mean
        }
    }

    /// Work imbalance: the busiest node's CPU+I/O over the mean — the §6
    /// skew experiments' signal (waiting excluded).
    pub fn work_imbalance(&self) -> f64 {
        if self.per_node.is_empty() {
            return 1.0;
        }
        let work = |r: &NodeReport| r.breakdown.cpu_ms + r.breakdown.io_ms;
        let max = self.per_node.iter().map(work).fold(0.0, f64::max);
        let mean: f64 = self.per_node.iter().map(work).sum::<f64>() / self.per_node.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(node: usize, ms: f64) -> NodeReport {
        NodeReport {
            node,
            clock_ms: ms,
            breakdown: TimeBreakdown {
                cpu_ms: ms,
                ..Default::default()
            },
            net: NetStats::default(),
            marks: Vec::new(),
            recovery: NodeRecoveryStats::default(),
        }
    }

    #[test]
    fn elapsed_is_max_clock() {
        let run = RunResult {
            per_node: vec![report(0, 5.0), report(1, 9.0), report(2, 7.0)],
            bus_busy_ms: 0.0,
            recovery: RecoveryStats::default(),
        };
        assert_eq!(run.elapsed_ms(), 9.0);
        assert_eq!(run.slowest_node(), Some(1));
    }

    #[test]
    fn imbalance_of_balanced_run_is_one() {
        let run = RunResult {
            per_node: vec![report(0, 4.0), report(1, 4.0)],
            bus_busy_ms: 0.0,
            recovery: RecoveryStats::default(),
        };
        assert!((run.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_skewed_run_exceeds_one() {
        let run = RunResult {
            per_node: vec![report(0, 10.0), report(1, 2.0)],
            bus_busy_ms: 0.0,
            recovery: RecoveryStats::default(),
        };
        assert!(run.imbalance() > 1.5);
    }

    #[test]
    fn totals_sum_nodes() {
        let run = RunResult {
            per_node: vec![report(0, 1.0), report(1, 2.0)],
            bus_busy_ms: 0.0,
            recovery: RecoveryStats::default(),
        };
        assert!((run.total_breakdown().cpu_ms - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let run = RunResult::default();
        assert_eq!(run.elapsed_ms(), 0.0);
        assert_eq!(run.slowest_node(), None);
        assert_eq!(run.imbalance(), 1.0);
    }
}
