//! Run results: per-node reports and cluster-wide summaries.

use crate::clock::{PhaseMark, TimeBreakdown};
use adaptagg_net::NetStats;

/// One node's timing and traffic report after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id.
    pub node: usize,
    /// The node's final virtual time in ms.
    pub clock_ms: f64,
    /// Where the time went.
    pub breakdown: TimeBreakdown,
    /// Network traffic.
    pub net: NetStats,
    /// Phase boundaries the algorithm marked (e.g. end of its sending
    /// phase), in order.
    pub marks: Vec<PhaseMark>,
}

impl NodeReport {
    /// Virtual time of the mark with `label`, if recorded.
    pub fn mark_ms(&self, label: &str) -> Option<f64> {
        self.marks.iter().find(|m| m.label == label).map(|m| m.at_ms)
    }
}

/// A whole run's result: per-node reports plus derived cluster metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunResult {
    /// Per-node reports in node order.
    pub per_node: Vec<NodeReport>,
    /// Total time the shared network medium was busy (0 under the
    /// high-speed model).
    pub bus_busy_ms: f64,
}

impl RunResult {
    /// Elapsed virtual time: the slowest node's clock — the paper's
    /// response-time metric ("all nodes work completely in parallel").
    pub fn elapsed_ms(&self) -> f64 {
        self.per_node
            .iter()
            .map(|r| r.clock_ms)
            .fold(0.0, f64::max)
    }

    /// The node that finished last.
    pub fn slowest_node(&self) -> Option<usize> {
        self.per_node
            .iter()
            .max_by(|a, b| a.clock_ms.total_cmp(&b.clock_ms))
            .map(|r| r.node)
    }

    /// Cluster-wide time breakdown (summed over nodes).
    pub fn total_breakdown(&self) -> TimeBreakdown {
        let mut total = TimeBreakdown::default();
        for r in &self.per_node {
            total.add(&r.breakdown);
        }
        total
    }

    /// Cluster-wide network traffic (summed over nodes).
    pub fn total_net(&self) -> NetStats {
        let mut total = NetStats::default();
        for r in &self.per_node {
            total.add(&r.net);
        }
        total
    }

    /// Load imbalance of final clocks: slowest node / mean node (1.0 =
    /// perfectly balanced). Note that Lamport waiting equalizes final
    /// clocks — a node idling for a straggler's data ends up with the
    /// same clock; use [`RunResult::work_imbalance`] to see *work* skew.
    pub fn imbalance(&self) -> f64 {
        if self.per_node.is_empty() {
            return 1.0;
        }
        let mean: f64 =
            self.per_node.iter().map(|r| r.clock_ms).sum::<f64>() / self.per_node.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.elapsed_ms() / mean
        }
    }

    /// Work imbalance: the busiest node's CPU+I/O over the mean — the §6
    /// skew experiments' signal (waiting excluded).
    pub fn work_imbalance(&self) -> f64 {
        if self.per_node.is_empty() {
            return 1.0;
        }
        let work = |r: &NodeReport| r.breakdown.cpu_ms + r.breakdown.io_ms;
        let max = self.per_node.iter().map(work).fold(0.0, f64::max);
        let mean: f64 = self.per_node.iter().map(work).sum::<f64>() / self.per_node.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(node: usize, ms: f64) -> NodeReport {
        NodeReport {
            node,
            clock_ms: ms,
            breakdown: TimeBreakdown {
                cpu_ms: ms,
                ..Default::default()
            },
            net: NetStats::default(),
            marks: Vec::new(),
        }
    }

    #[test]
    fn elapsed_is_max_clock() {
        let run = RunResult {
            per_node: vec![report(0, 5.0), report(1, 9.0), report(2, 7.0)],
            bus_busy_ms: 0.0,
        };
        assert_eq!(run.elapsed_ms(), 9.0);
        assert_eq!(run.slowest_node(), Some(1));
    }

    #[test]
    fn imbalance_of_balanced_run_is_one() {
        let run = RunResult {
            per_node: vec![report(0, 4.0), report(1, 4.0)],
            bus_busy_ms: 0.0,
        };
        assert!((run.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_skewed_run_exceeds_one() {
        let run = RunResult {
            per_node: vec![report(0, 10.0), report(1, 2.0)],
            bus_busy_ms: 0.0,
        };
        assert!(run.imbalance() > 1.5);
    }

    #[test]
    fn totals_sum_nodes() {
        let run = RunResult {
            per_node: vec![report(0, 1.0), report(1, 2.0)],
            bus_busy_ms: 0.0,
        };
        assert!((run.total_breakdown().cpu_ms - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let run = RunResult::default();
        assert_eq!(run.elapsed_ms(), 0.0);
        assert_eq!(run.slowest_node(), None);
        assert_eq!(run.imbalance(), 1.0);
    }
}
