//! Node context: one node's view of the cluster.

use crate::clock::Clock;
use crate::error::ExecError;
use crate::recovery::RecoverySession;
use adaptagg_model::{CostEvent, CostParams, CostTracker, MemoryGrant};
use adaptagg_net::{
    Control, DataKind, Endpoint, LinkRetryPolicy, Message, NetError, NetStats, NodeFaults, Payload,
};
use adaptagg_obs::{LinkTrace, NodeTrace, NodeTraceReport, PhaseKind, SwitchCause, TraceEvent};
use adaptagg_storage::{Page, PagePool, SimDisk};
use std::time::Duration;

/// Default real-time receive deadline — generous: virtual time is cheap,
/// so a healthy run never comes close, while a genuinely wedged protocol
/// surfaces [`ExecError::Watchdog`] instead of hanging the process.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

/// Everything an algorithm touches on one node: identity, virtual clock,
/// private disk, and the network endpoint. All messaging goes through this
/// type so that protocol CPU (`m_p`) and transfer time are charged the same
/// way by every algorithm — and so failure handling is uniform: sends and
/// receives return [`ExecError`]s, an incoming [`Control::Abort`] is turned
/// into [`ExecError::Aborted`] before any algorithm sees it, and the
/// real-time watchdog bounds every blocking receive.
#[derive(Debug)]
pub struct NodeCtx {
    id: usize,
    nodes: usize,
    /// The node's virtual clock. Public: operators and the hashagg layer
    /// take `&mut ctx.clock` as their `CostTracker`.
    pub clock: Clock,
    /// The node's private disk.
    pub disk: SimDisk,
    /// Recycled message/page buffers for the node's hot paths. Sealed
    /// message pages draw replacements from here and consumed receive
    /// pages are returned, so steady-state exchange avoids the allocator.
    /// Wall-clock only — never affects cost events or virtual time.
    pub page_pool: PagePool,
    /// The node's recovery context, when the run has a
    /// [`crate::recovery::RecoveryPolicy`]: partition layout, shared
    /// checkpoint store, and recovery counters. `None` (the default)
    /// means fail-stop semantics — algorithms must not checkpoint.
    pub recovery: Option<RecoverySession>,
    /// The node's trace handle. Disabled (the default) it is a bare
    /// `None`: every tracing call is an early-return branch — no heap,
    /// no clock reads, no cost events — so observability cannot move a
    /// single virtual-time figure (see `adaptagg-obs`).
    pub trace: NodeTrace,
    endpoint: Endpoint,
    faults: NodeFaults,
    tuples_scanned: u64,
    watchdog: Duration,
    /// Worker-pool width for intra-node (morsel-driven) parallelism.
    /// `1` (the default) keeps every operator on the strictly serial
    /// path — the bit-exactness reference.
    threads: usize,
    /// This node's live memory grant for the running query (unlimited by
    /// default). The serving layer's broker holds the other handle and
    /// may shrink it mid-run; aggregation operators attach it to their
    /// hash tables so the revocation degrades them gracefully.
    grant: MemoryGrant,
}

impl NodeCtx {
    /// Assemble a node context (used by the cluster runtime).
    pub fn new(endpoint: Endpoint, disk: SimDisk, params: CostParams) -> Self {
        NodeCtx {
            id: endpoint.node(),
            nodes: endpoint.nodes(),
            clock: Clock::new(params),
            disk,
            page_pool: PagePool::new(),
            recovery: None,
            trace: NodeTrace::off(),
            endpoint,
            faults: NodeFaults::default(),
            tuples_scanned: 0,
            watchdog: DEFAULT_WATCHDOG,
            threads: 1,
            grant: MemoryGrant::unlimited(),
        }
    }

    /// Set the intra-node worker-pool width (clamped to ≥ 1).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Intra-node worker-pool width (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the morsel-driven parallel scan may run on this node:
    /// more than one worker, no recovery session in progress (checkpoint
    /// suffix-replay is inherently serial), and no scheduled crash fault
    /// (the crash must land at its exact logical tuple). The parallel
    /// path is an optimistic fast path — ineligible nodes simply run the
    /// serial code.
    pub fn par_scan_eligible(&self) -> bool {
        self.threads > 1 && self.recovery.is_none() && self.faults.crash_at_tuple.is_none()
    }

    /// Install this node's live memory grant (the cluster runtime calls
    /// this when the run carries per-node grants).
    pub fn set_grant(&mut self, grant: MemoryGrant) {
        self.grant = grant;
    }

    /// This node's live memory grant (unlimited unless a broker holds
    /// the other handle). Operators clone it into their hash tables.
    pub fn grant(&self) -> &MemoryGrant {
        &self.grant
    }

    /// Enable bounded retry-with-backoff for failed sends (part of a
    /// [`crate::recovery::RecoveryPolicy`]; `None` keeps fail-fast).
    pub fn set_link_retry(&mut self, policy: Option<LinkRetryPolicy>) {
        self.endpoint.set_retry_policy(policy);
    }

    /// Apply a fault plan's per-node faults: the slowdown inflates the
    /// clock from now on; the crash point arms [`NodeCtx::fault_tick`].
    pub fn apply_faults(&mut self, faults: NodeFaults) {
        self.clock.set_slowdown(faults.slowdown_factor);
        self.faults = faults;
    }

    /// Set the real-time receive deadline (tests use short ones).
    pub fn set_watchdog(&mut self, timeout: Duration) {
        self.watchdog = timeout;
    }

    /// Count one scanned tuple against the node's crash schedule. Called
    /// by the scan operator per tuple; returns
    /// [`ExecError::InjectedCrash`] once the scheduled crash point is
    /// reached. A plan without a crash for this node never fails.
    pub fn fault_tick(&mut self) -> Result<(), ExecError> {
        self.tuples_scanned += 1;
        match self.faults.crash_at_tuple {
            Some(k) if self.tuples_scanned > k => Err(ExecError::InjectedCrash {
                node: self.id,
                at_tuple: k,
            }),
            _ => Ok(()),
        }
    }

    /// Dismantle the context, handing back its endpoint. The cluster
    /// binaries run one recovery attempt per context but hold a single
    /// established connection mesh for the life of the process; this is
    /// how the mesh survives the context.
    pub fn into_endpoint(self) -> Endpoint {
        self.endpoint
    }

    /// This node's id (`0..nodes`).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Cost parameters (convenience for `self.clock.params()`).
    pub fn params(&self) -> &CostParams {
        self.clock.params()
    }

    /// Network statistics so far.
    pub fn net_stats(&self) -> &NetStats {
        self.endpoint.stats()
    }

    /// Enable span/event tracing on this node (used by the cluster
    /// runtime when the run is traced).
    pub fn enable_trace(&mut self) {
        self.trace = NodeTrace::on(self.id);
    }

    /// `[cpu, io, net, wait]` snapshot for span bookkeeping.
    fn breakdown_snapshot(&self) -> [f64; 4] {
        let b = self.clock.breakdown();
        [b.cpu_ms, b.io_ms, b.net_ms, b.wait_ms]
    }

    /// Open a phase span (no-op when tracing is disabled).
    pub fn span_start(&mut self, phase: PhaseKind) {
        if self.trace.enabled() {
            let now = self.clock.now_ms();
            let bd = self.breakdown_snapshot();
            self.trace.span_start(phase, now, bd);
        }
    }

    /// Close the innermost open phase span (no-op when disabled).
    pub fn span_end(&mut self) {
        if self.trace.enabled() {
            let now = self.clock.now_ms();
            let bd = self.breakdown_snapshot();
            self.trace.span_end(now, bd);
        }
    }

    /// Record an adaptive strategy switch as a first-class trace event,
    /// stamped with the node's current virtual time (no-op when
    /// disabled).
    pub fn trace_switch(&mut self, cause: SwitchCause, at_tuple: u64) {
        if self.trace.enabled() {
            let at_ms = self.clock.now_ms();
            self.trace.event(TraceEvent::StrategySwitch {
                at_ms,
                cause,
                at_tuple,
            });
        }
    }

    /// Record the intra-node picker's strategy choice (`intra.pick`) as
    /// a trace event (no-op when disabled). Stamped with the node's
    /// current virtual time — for a committed parallel scan that is the
    /// post-replay (end-of-scan) time, since picker decisions have no
    /// logical position on the serial timeline.
    pub fn trace_intra_pick(&mut self, strategy: &'static str, at_morsel: u64) {
        if self.trace.enabled() {
            let at_ms = self.clock.now_ms();
            self.trace.event(TraceEvent::IntraPick {
                at_ms,
                strategy,
                at_morsel,
            });
        }
    }

    /// Record a mid-scan intra-node strategy switch (`intra.switch`)
    /// as a trace event (no-op when disabled).
    pub fn trace_intra_switch(
        &mut self,
        from: &'static str,
        to: &'static str,
        cause: &'static str,
        at_morsel: u64,
    ) {
        if self.trace.enabled() {
            let at_ms = self.clock.now_ms();
            self.trace.event(TraceEvent::IntraSwitch {
                at_ms,
                from,
                to,
                cause,
                at_morsel,
            });
        }
    }

    /// Record the sampling algorithm's decision as a trace event (no-op
    /// when disabled).
    pub fn trace_sampling_decision(&mut self, use_repartitioning: bool, groups_in_sample: u64) {
        if self.trace.enabled() {
            let at_ms = self.clock.now_ms();
            self.trace.event(TraceEvent::SamplingDecision {
                at_ms,
                use_repartitioning,
                groups_in_sample,
            });
        }
    }

    /// Consume the node's trace into a report, harvesting per-link
    /// traffic totals from the fabric. Returns `None` when disabled.
    pub fn finish_trace(&mut self) -> Option<NodeTraceReport> {
        if self.trace.enabled() {
            let links: Vec<LinkTrace> = (0..self.nodes)
                .filter(|&to| to != self.id)
                .map(|to| {
                    let s = self.endpoint.link_stats(to);
                    LinkTrace {
                        to,
                        msgs: s.msgs,
                        pages: s.pages,
                        bytes: s.bytes,
                        tuples: s.tuples,
                        retries: s.retries,
                        drops: s.drops,
                    }
                })
                .filter(|l| l.msgs > 0)
                .collect();
            self.trace.set_links(links);
        }
        let now = self.clock.now_ms();
        let bd = self.breakdown_snapshot();
        self.trace.finish(now, bd)
    }

    /// Total busy time of the shared network medium so far (0 under the
    /// high-speed model).
    pub fn bus_busy_ms(&self) -> f64 {
        self.endpoint.network().total_busy_ms()
    }

    /// Send one message page of tuples to `to`, charging sender-side
    /// protocol cost (`m_p`) and occupying the node until the transfer
    /// completes (`m_l` / shared-bus wait). Fails with
    /// [`ExecError::Net`] if the peer is already gone.
    pub fn send_page(&mut self, to: usize, kind: DataKind, page: Page) -> Result<(), ExecError> {
        let traced_tuples = if self.trace.enabled() {
            Some(page.tuple_count() as u64)
        } else {
            None
        };
        self.clock.record(CostEvent::MsgProtocol, 1);
        let result = self.endpoint.send_data(to, kind, page, self.clock.now_ms());
        self.charge_retry_backoff();
        let done = result?;
        self.clock.advance_net_to(done);
        if let Some(n) = traced_tuples {
            self.trace.counter_add("exchange.pages_sent", 1);
            self.trace.histogram_record("exchange.page_tuples", n);
        }
        Ok(())
    }

    /// Send a control message (free: piggy-backed per §3.3).
    pub fn send_control(&mut self, to: usize, control: Control) -> Result<(), ExecError> {
        let result = self.endpoint.send_control(to, control, self.clock.now_ms());
        self.charge_retry_backoff();
        result?;
        Ok(())
    }

    /// Broadcast a control message to all other nodes (peers that already
    /// died are skipped — see `Endpoint::broadcast_control`).
    pub fn broadcast_control(&mut self, control: Control) -> Result<(), ExecError> {
        let now = self.clock.now_ms();
        let result = self.endpoint.broadcast_control(control, now);
        self.charge_retry_backoff();
        result?;
        Ok(())
    }

    /// Book the virtual backoff accrued by link retries (zero — and a
    /// no-op — unless a retry policy is set and a send actually failed).
    fn charge_retry_backoff(&mut self) {
        let backoff = self.endpoint.take_retry_backoff_ms();
        if backoff > 0.0 {
            let now = self.clock.now_ms();
            self.clock.observe(now + backoff);
        }
    }

    /// Map an [`Control::Abort`] arrival to the error that propagates the
    /// origin's failure, before any algorithm-level match sees it.
    fn intercept(&self, msg: Message) -> Result<Message, ExecError> {
        if let Payload::Control(Control::Abort { origin, reason }) = msg.payload {
            return Err(ExecError::Aborted { origin, reason });
        }
        Ok(msg)
    }

    /// Blocking receive with **no clock accounting** — for phases that
    /// buffer arrivals and replay the Lamport observations and protocol
    /// charges in canonical (sender-id) order instead of physical
    /// arrival order, so their virtual times cannot depend on thread
    /// scheduling (see `merge_phase_store`). Aborts are still
    /// intercepted at arrival: failure propagation must not wait for
    /// the replay.
    pub fn recv_deferred(&mut self) -> Result<Message, ExecError> {
        let msg = self
            .endpoint
            .recv_timeout(self.watchdog)
            .map_err(|e| match e {
                NetError::Deadline { waited_ms } => ExecError::Watchdog {
                    node: self.id,
                    waited_ms,
                },
                other => ExecError::Net(other),
            })?;
        self.intercept(msg)
    }

    /// Blocking receive: observes the message's timestamp (Lamport) and
    /// charges receiver-side protocol cost for data pages. Bounded by the
    /// real-time watchdog; an incoming abort surfaces as
    /// [`ExecError::Aborted`].
    pub fn recv(&mut self) -> Result<Message, ExecError> {
        let msg = self
            .endpoint
            .recv_timeout(self.watchdog)
            .map_err(|e| match e {
                NetError::Deadline { waited_ms } => ExecError::Watchdog {
                    node: self.id,
                    waited_ms,
                },
                other => ExecError::Net(other),
            })?;
        let msg = self.intercept(msg)?;
        self.clock.observe(msg.sent_at_ms);
        if msg.payload.is_data() {
            self.clock.record(CostEvent::MsgProtocol, 1);
        }
        Ok(msg)
    }

    /// Non-blocking receive of a message that has *virtually arrived* by
    /// the node's current time, with the same accounting. Messages whose
    /// transfer completes in the node's virtual future stay queued — a
    /// poll cannot see the future (see `Endpoint::try_recv_arrived`).
    /// An incoming abort surfaces as [`ExecError::Aborted`] even if its
    /// virtual timestamp is in the future — failure propagation must not
    /// wait on simulated time.
    pub fn try_recv(&mut self) -> Result<Option<Message>, ExecError> {
        let now = self.clock.now_ms();
        let Some(msg) = self.endpoint.try_recv_arrived(now)? else {
            return Ok(None);
        };
        let msg = self.intercept(msg)?;
        self.clock.observe(msg.sent_at_ms);
        if msg.payload.is_data() {
            self.clock.record(CostEvent::MsgProtocol, 1);
        }
        Ok(Some(msg))
    }

    /// Receive data pages until an `EndOfStream` has arrived from every
    /// node (including this one, which must send itself one too — keeping
    /// the protocol uniform). Calls `on_page(ctx_clock_and_disk_parts…)`
    /// for each data page. Control messages other than `EndOfStream` are
    /// handed to `on_control`; return `false` from it to reject.
    pub fn recv_until_all_eos<FD, FC>(
        &mut self,
        mut on_page: FD,
        mut on_control: FC,
    ) -> Result<(), crate::ExecError>
    where
        FD: FnMut(&mut Clock, &mut SimDisk, DataKind, Page) -> Result<(), crate::ExecError>,
        FC: FnMut(Control) -> Result<(), crate::ExecError>,
    {
        let mut eos = 0usize;
        while eos < self.nodes {
            let msg = self.recv()?;
            match msg.payload {
                Payload::Data { kind, page } => {
                    on_page(&mut self.clock, &mut self.disk, kind, page)?
                }
                Payload::Control(Control::EndOfStream) => eos += 1,
                Payload::Control(c) => on_control(c)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{NetworkKind, Value};
    use adaptagg_net::Fabric;
    use adaptagg_storage::HeapFile;

    fn two_nodes(kind: NetworkKind) -> (NodeCtx, NodeCtx) {
        let mut eps = Fabric::new(2, kind).into_endpoints();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let params = CostParams::paper_default();
        (
            NodeCtx::new(a, SimDisk::new(), params.clone()),
            NodeCtx::new(b, SimDisk::new(), params),
        )
    }

    fn page_of(n: usize) -> Page {
        let mut p = Page::new(2048);
        for i in 0..n {
            assert!(p.try_push(&[Value::Int(i as i64)]).unwrap());
        }
        p
    }

    #[test]
    fn send_charges_protocol_and_transfer() {
        let (mut a, mut b) = two_nodes(NetworkKind::HighSpeed { latency_ms: 0.5 });
        a.send_page(1, DataKind::Raw, page_of(3)).unwrap();
        // m_p = 0.025 ms cpu, then 0.5 ms transfer.
        assert!((a.clock.now_ms() - 0.525).abs() < 1e-9);
        assert!((a.clock.breakdown().net_ms - 0.5).abs() < 1e-9);

        let msg = b.recv().unwrap();
        // Receiver observed the timestamp (0.525) and charged its m_p.
        assert!((b.clock.now_ms() - 0.55).abs() < 1e-9);
        assert!((b.clock.breakdown().wait_ms - 0.525).abs() < 1e-9);
        assert!(msg.payload.is_data());
    }

    #[test]
    fn control_messages_are_free() {
        let (mut a, mut b) = two_nodes(NetworkKind::high_speed_default());
        a.send_control(1, Control::EndOfStream).unwrap();
        assert_eq!(a.clock.now_ms(), 0.0);
        let msg = b.recv().unwrap();
        assert_eq!(b.clock.now_ms(), 0.0);
        assert!(matches!(msg.payload, Payload::Control(Control::EndOfStream)));
    }

    #[test]
    fn recv_until_all_eos_counts_every_sender() {
        let (mut a, mut b) = two_nodes(NetworkKind::high_speed_default());
        // a sends one page + EOS to b; b must also EOS itself.
        a.send_page(1, DataKind::Partial, page_of(2)).unwrap();
        a.send_control(1, Control::EndOfStream).unwrap();
        b.send_control(1, Control::EndOfStream).unwrap(); // self-EOS

        let mut pages = 0;
        b.recv_until_all_eos(
            |_clock, _disk, kind, page| {
                assert_eq!(kind, DataKind::Partial);
                pages += page.tuple_count();
                Ok(())
            },
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(pages, 2);
    }

    #[test]
    fn recv_until_all_eos_routes_other_controls() {
        let (mut a, mut b) = two_nodes(NetworkKind::high_speed_default());
        a.send_control(1, Control::EndOfPhase { groups_seen: 3 }).unwrap();
        a.send_control(1, Control::EndOfStream).unwrap();
        b.send_control(1, Control::EndOfStream).unwrap();
        let mut phases = 0;
        b.recv_until_all_eos(
            |_, _, _, _| Ok(()),
            |c| {
                assert!(matches!(c, Control::EndOfPhase { groups_seen: 3 }));
                phases += 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(phases, 1);
    }

    #[test]
    fn try_recv_respects_virtual_arrival() {
        // A poll must not see messages whose transfer completes in the
        // receiver's virtual future (the causality rule ARep relies on).
        let (mut a, mut b) = two_nodes(NetworkKind::HighSpeed { latency_ms: 5.0 });
        a.send_page(1, DataKind::Raw, page_of(1)).unwrap(); // arrives at t = 5+m_p
        assert!(
            b.try_recv().unwrap().is_none(),
            "b at t=0 must not see a t=5 message"
        );
        // Advance b's virtual clock past the arrival: now visible.
        b.clock.record(adaptagg_model::CostEvent::PageReadRand, 1); // +15ms
        let msg = b.try_recv().unwrap().expect("message has arrived by t=15");
        assert!(msg.payload.is_data());
    }

    #[test]
    fn blocking_recv_delivers_the_future_and_waits() {
        let (mut a, mut b) = two_nodes(NetworkKind::HighSpeed { latency_ms: 5.0 });
        a.send_page(1, DataKind::Raw, page_of(1)).unwrap();
        // A failed poll stashes the message; a blocking recv must still
        // deliver it (waiting until its virtual arrival).
        assert!(b.try_recv().unwrap().is_none());
        let msg = b.recv().unwrap();
        assert!(msg.payload.is_data());
        assert!(b.clock.now_ms() >= 5.0);
        assert!(b.clock.breakdown().wait_ms > 0.0);
    }

    #[test]
    fn abort_surfaces_as_error_on_recv_and_poll() {
        let (mut a, mut b) = two_nodes(NetworkKind::high_speed_default());
        a.send_control(
            1,
            Control::Abort {
                origin: 0,
                reason: "test failure".into(),
            },
        )
        .unwrap();
        match b.recv() {
            Err(crate::ExecError::Aborted { origin, reason }) => {
                assert_eq!(origin, 0);
                assert!(reason.contains("test failure"));
            }
            other => panic!("expected Aborted, got {other:?}"),
        }

        // Polls see aborts too, even with a future-stamped abort: failure
        // propagation must not wait on virtual time.
        let (mut a, mut b) = two_nodes(NetworkKind::HighSpeed { latency_ms: 5.0 });
        a.clock.observe(1000.0); // a is far ahead in virtual time
        a.send_control(
            1,
            Control::Abort {
                origin: 0,
                reason: "late".into(),
            },
        )
        .unwrap();
        assert!(matches!(
            b.try_recv(),
            Err(crate::ExecError::Aborted { origin: 0, .. })
        ));
    }

    #[test]
    fn watchdog_turns_silence_into_typed_error() {
        let (_a, mut b) = two_nodes(NetworkKind::high_speed_default());
        b.set_watchdog(std::time::Duration::from_millis(30));
        match b.recv() {
            Err(crate::ExecError::Watchdog { node, waited_ms }) => {
                assert_eq!(node, 1);
                assert_eq!(waited_ms, 30);
            }
            other => panic!("expected Watchdog, got {other:?}"),
        }
    }

    #[test]
    fn fault_tick_crashes_at_the_scheduled_tuple() {
        let (mut a, _b) = two_nodes(NetworkKind::high_speed_default());
        a.apply_faults(adaptagg_net::NodeFaults {
            crash_at_tuple: Some(3),
            slowdown_factor: 1.0,
        });
        for _ in 0..3 {
            a.fault_tick().unwrap();
        }
        assert_eq!(
            a.fault_tick(),
            Err(crate::ExecError::InjectedCrash {
                node: 0,
                at_tuple: 3
            })
        );
    }

    #[test]
    fn benign_faults_never_tick() {
        let (mut a, _b) = two_nodes(NetworkKind::high_speed_default());
        for _ in 0..10_000 {
            a.fault_tick().unwrap();
        }
    }

    #[test]
    fn node_identity_and_disk() {
        let (mut a, b) = two_nodes(NetworkKind::high_speed_default());
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(a.nodes(), 2);
        a.disk.put("base", HeapFile::with_default_pages());
        assert!(a.disk.get("base").is_ok());
    }
}
