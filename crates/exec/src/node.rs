//! Node context: one node's view of the cluster.

use crate::clock::Clock;
use adaptagg_model::{CostEvent, CostParams, CostTracker};
use adaptagg_net::{Control, DataKind, Endpoint, Message, NetStats, Payload};
use adaptagg_storage::{Page, SimDisk};

/// Everything an algorithm touches on one node: identity, virtual clock,
/// private disk, and the network endpoint. All messaging goes through this
/// type so that protocol CPU (`m_p`) and transfer time are charged the same
/// way by every algorithm.
#[derive(Debug)]
pub struct NodeCtx {
    id: usize,
    nodes: usize,
    /// The node's virtual clock. Public: operators and the hashagg layer
    /// take `&mut ctx.clock` as their `CostTracker`.
    pub clock: Clock,
    /// The node's private disk.
    pub disk: SimDisk,
    endpoint: Endpoint,
}

impl NodeCtx {
    /// Assemble a node context (used by the cluster runtime).
    pub fn new(endpoint: Endpoint, disk: SimDisk, params: CostParams) -> Self {
        NodeCtx {
            id: endpoint.node(),
            nodes: endpoint.nodes(),
            clock: Clock::new(params),
            disk,
            endpoint,
        }
    }

    /// This node's id (`0..nodes`).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Cost parameters (convenience for `self.clock.params()`).
    pub fn params(&self) -> &CostParams {
        self.clock.params()
    }

    /// Network statistics so far.
    pub fn net_stats(&self) -> &NetStats {
        self.endpoint.stats()
    }

    /// Total busy time of the shared network medium so far (0 under the
    /// high-speed model).
    pub fn bus_busy_ms(&self) -> f64 {
        self.endpoint.network().total_busy_ms()
    }

    /// Send one message page of tuples to `to`, charging sender-side
    /// protocol cost (`m_p`) and occupying the node until the transfer
    /// completes (`m_l` / shared-bus wait).
    pub fn send_page(&mut self, to: usize, kind: DataKind, page: Page) {
        self.clock.record(CostEvent::MsgProtocol, 1);
        let done = self.endpoint.send_data(to, kind, page, self.clock.now_ms());
        self.clock.advance_net_to(done);
    }

    /// Send a control message (free: piggy-backed per §3.3).
    pub fn send_control(&mut self, to: usize, control: Control) {
        self.endpoint.send_control(to, control, self.clock.now_ms());
    }

    /// Broadcast a control message to all other nodes.
    pub fn broadcast_control(&mut self, control: Control) {
        let now = self.clock.now_ms();
        self.endpoint.broadcast_control(control, now);
    }

    /// Blocking receive: observes the message's timestamp (Lamport) and
    /// charges receiver-side protocol cost for data pages.
    pub fn recv(&mut self) -> Message {
        let msg = self.endpoint.recv();
        self.clock.observe(msg.sent_at_ms);
        if msg.payload.is_data() {
            self.clock.record(CostEvent::MsgProtocol, 1);
        }
        msg
    }

    /// Non-blocking receive of a message that has *virtually arrived* by
    /// the node's current time, with the same accounting. Messages whose
    /// transfer completes in the node's virtual future stay queued — a
    /// poll cannot see the future (see `Endpoint::try_recv_arrived`).
    pub fn try_recv(&mut self) -> Option<Message> {
        let now = self.clock.now_ms();
        let msg = self.endpoint.try_recv_arrived(now)?;
        self.clock.observe(msg.sent_at_ms);
        if msg.payload.is_data() {
            self.clock.record(CostEvent::MsgProtocol, 1);
        }
        Some(msg)
    }

    /// Receive data pages until an `EndOfStream` has arrived from every
    /// node (including this one, which must send itself one too — keeping
    /// the protocol uniform). Calls `on_page(ctx_clock_and_disk_parts…)`
    /// for each data page. Control messages other than `EndOfStream` are
    /// handed to `on_control`; return `false` from it to reject.
    pub fn recv_until_all_eos<FD, FC>(
        &mut self,
        mut on_page: FD,
        mut on_control: FC,
    ) -> Result<(), crate::ExecError>
    where
        FD: FnMut(&mut Clock, &mut SimDisk, DataKind, Page) -> Result<(), crate::ExecError>,
        FC: FnMut(Control) -> Result<(), crate::ExecError>,
    {
        let mut eos = 0usize;
        while eos < self.nodes {
            let msg = self.recv();
            match msg.payload {
                Payload::Data { kind, page } => {
                    on_page(&mut self.clock, &mut self.disk, kind, page)?
                }
                Payload::Control(Control::EndOfStream) => eos += 1,
                Payload::Control(c) => on_control(c)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{NetworkKind, Value};
    use adaptagg_net::Fabric;
    use adaptagg_storage::HeapFile;

    fn two_nodes(kind: NetworkKind) -> (NodeCtx, NodeCtx) {
        let mut eps = Fabric::new(2, kind).into_endpoints();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let params = CostParams::paper_default();
        (
            NodeCtx::new(a, SimDisk::new(), params.clone()),
            NodeCtx::new(b, SimDisk::new(), params),
        )
    }

    fn page_of(n: usize) -> Page {
        let mut p = Page::new(2048);
        for i in 0..n {
            assert!(p.try_push(&[Value::Int(i as i64)]).unwrap());
        }
        p
    }

    #[test]
    fn send_charges_protocol_and_transfer() {
        let (mut a, mut b) = two_nodes(NetworkKind::HighSpeed { latency_ms: 0.5 });
        a.send_page(1, DataKind::Raw, page_of(3));
        // m_p = 0.025 ms cpu, then 0.5 ms transfer.
        assert!((a.clock.now_ms() - 0.525).abs() < 1e-9);
        assert!((a.clock.breakdown().net_ms - 0.5).abs() < 1e-9);

        let msg = b.recv();
        // Receiver observed the timestamp (0.525) and charged its m_p.
        assert!((b.clock.now_ms() - 0.55).abs() < 1e-9);
        assert!((b.clock.breakdown().wait_ms - 0.525).abs() < 1e-9);
        assert!(msg.payload.is_data());
    }

    #[test]
    fn control_messages_are_free() {
        let (mut a, mut b) = two_nodes(NetworkKind::high_speed_default());
        a.send_control(1, Control::EndOfStream);
        assert_eq!(a.clock.now_ms(), 0.0);
        let msg = b.recv();
        assert_eq!(b.clock.now_ms(), 0.0);
        assert!(matches!(msg.payload, Payload::Control(Control::EndOfStream)));
    }

    #[test]
    fn recv_until_all_eos_counts_every_sender() {
        let (mut a, mut b) = two_nodes(NetworkKind::high_speed_default());
        // a sends one page + EOS to b; b must also EOS itself.
        a.send_page(1, DataKind::Partial, page_of(2));
        a.send_control(1, Control::EndOfStream);
        b.send_control(1, Control::EndOfStream); // self-EOS

        let mut pages = 0;
        b.recv_until_all_eos(
            |_clock, _disk, kind, page| {
                assert_eq!(kind, DataKind::Partial);
                pages += page.tuple_count();
                Ok(())
            },
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(pages, 2);
    }

    #[test]
    fn recv_until_all_eos_routes_other_controls() {
        let (mut a, mut b) = two_nodes(NetworkKind::high_speed_default());
        a.send_control(1, Control::EndOfPhase { groups_seen: 3 });
        a.send_control(1, Control::EndOfStream);
        b.send_control(1, Control::EndOfStream);
        let mut phases = 0;
        b.recv_until_all_eos(
            |_, _, _, _| Ok(()),
            |c| {
                assert!(matches!(c, Control::EndOfPhase { groups_seen: 3 }));
                phases += 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(phases, 1);
    }

    #[test]
    fn try_recv_respects_virtual_arrival() {
        // A poll must not see messages whose transfer completes in the
        // receiver's virtual future (the causality rule ARep relies on).
        let (mut a, mut b) = two_nodes(NetworkKind::HighSpeed { latency_ms: 5.0 });
        a.send_page(1, DataKind::Raw, page_of(1)); // arrives at t = 5+m_p
        assert!(
            b.try_recv().is_none(),
            "b at t=0 must not see a t=5 message"
        );
        // Advance b's virtual clock past the arrival: now visible.
        b.clock.record(adaptagg_model::CostEvent::PageReadRand, 1); // +15ms
        let msg = b.try_recv().expect("message has arrived by t=15");
        assert!(msg.payload.is_data());
    }

    #[test]
    fn blocking_recv_delivers_the_future_and_waits() {
        let (mut a, mut b) = two_nodes(NetworkKind::HighSpeed { latency_ms: 5.0 });
        a.send_page(1, DataKind::Raw, page_of(1));
        // A failed poll stashes the message; a blocking recv must still
        // deliver it (waiting until its virtual arrival).
        assert!(b.try_recv().is_none());
        let msg = b.recv();
        assert!(msg.payload.is_data());
        assert!(b.clock.now_ms() >= 5.0);
        assert!(b.clock.breakdown().wait_ms > 0.0);
    }

    #[test]
    fn node_identity_and_disk() {
        let (mut a, b) = two_nodes(NetworkKind::high_speed_default());
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(a.nodes(), 2);
        a.disk.put("base", HeapFile::with_default_pages());
        assert!(a.disk.get("base").is_ok());
    }
}
