//! The hash-partitioning exchange operator.
//!
//! Routes rows to nodes by hashing their group-key columns with
//! [`Seed::Partition`], blocking them into 2 KB message pages per
//! destination (§5), and handling end-of-stream markers. Used by:
//!
//! * Repartitioning — raw tuples, `charge_hash = true` (the paper's select
//!   cost there is `t_r + t_w + t_h + t_d`);
//! * Two Phase / A2P partial shipping — partial rows, `charge_hash = false`
//!   (the rows just came out of a hash table; only `t_d` is charged);
//! * C2P — fixed destination via [`Exchange::send_to`] (no hash, no dest
//!   computation).
//!
//! A single exchange instance must carry one [`DataKind`] at a time;
//! switching kinds flushes automatically (A2P flushes its partials before
//! forwarding raws, so this matches the algorithm's structure).

use crate::error::ExecError;
use crate::node::NodeCtx;
use adaptagg_model::hash::{
    hash_batch_finish, hash_batch_init, hash_batch_ints, hash_batch_values, hash_values, Seed,
};
use adaptagg_model::{CostEvent, CostTracker, Value};
use adaptagg_net::{Blocker, Control, DataKind};
use adaptagg_storage::{Page, StripView};

/// Per-row cost template for a hash route (`t_h + t_d`).
const ROUTE_WITH_HASH: [CostEvent; 2] = [CostEvent::TupleHash, CostEvent::TupleDest];
/// Per-row cost template for a route of pre-hashed rows (`t_d` only).
const ROUTE_NO_HASH: [CostEvent; 1] = [CostEvent::TupleDest];

fn route_template(charge_hash: bool) -> &'static [CostEvent] {
    if charge_hash {
        &ROUTE_WITH_HASH
    } else {
        &ROUTE_NO_HASH
    }
}

/// A partitioned, blocked sender.
#[derive(Debug)]
pub struct Exchange {
    blocker: Blocker,
    key_len: usize,
    kind: DataKind,
    routed: u64,
    row_scratch: Vec<Value>,
    /// Pooled per-page hash vector for the batched route.
    hash_scratch: Vec<u64>,
    /// Whether [`Exchange::route_page`] hashes whole key columns through
    /// the batch kernels (`ADAPTAGG_COLUMNAR` ≠ `"row"`) or per row.
    /// Either way the destinations, charges and timestamps are identical.
    columnar: bool,
}

/// Read the `ADAPTAGG_COLUMNAR` knob (per construction, not cached):
/// `"row"` forces the row-at-a-time path.
fn columnar_default() -> bool {
    std::env::var("ADAPTAGG_COLUMNAR").map(|v| v != "row").unwrap_or(true)
}

impl Exchange {
    /// An exchange over `nodes` destinations. `key_len` is the number of
    /// leading key columns of every row (group-by columns in projected
    /// form — identical for raw and partial rows). `message_bytes` is the
    /// wire block size.
    pub fn new(nodes: usize, message_bytes: usize, key_len: usize, kind: DataKind) -> Self {
        Exchange {
            blocker: Blocker::new(nodes, message_bytes),
            key_len,
            kind,
            routed: 0,
            row_scratch: Vec::new(),
            hash_scratch: Vec::new(),
            columnar: columnar_default(),
        }
    }

    /// Rows routed so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// The destination node for a row (pure; no cost).
    pub fn destination_of(&self, values: &[Value]) -> usize {
        let key = &values[..self.key_len.min(values.len())];
        (hash_values(Seed::Partition, key) % self.blocker.destinations() as u64) as usize
    }

    /// Route a row to its hash destination. Charges `t_d` (destination
    /// computation) and, when `charge_hash`, `t_h` — see module docs.
    /// Sends a message page whenever the destination's block fills.
    pub fn route(
        &mut self,
        ctx: &mut NodeCtx,
        values: &[Value],
        charge_hash: bool,
    ) -> Result<(), ExecError> {
        if charge_hash {
            ctx.clock.record(CostEvent::TupleHash, 1);
        }
        ctx.clock.record(CostEvent::TupleDest, 1);
        let dest = self.destination_of(values);
        self.push_to(ctx, dest, values)
    }

    /// Route a row to an explicit destination (C2P's coordinator). Charges
    /// nothing per tuple beyond the blocking copy (`t_w` is charged by the
    /// producer when it generated the row).
    pub fn send_to(
        &mut self,
        ctx: &mut NodeCtx,
        dest: usize,
        values: &[Value],
    ) -> Result<(), ExecError> {
        self.push_to(ctx, dest, values)
    }

    fn push_to(&mut self, ctx: &mut NodeCtx, dest: usize, values: &[Value]) -> Result<(), ExecError> {
        if let Some(page) = self.blocker.add_pooled(dest, values, &mut ctx.page_pool)? {
            ctx.send_page(dest, self.kind, page)?;
        }
        self.routed += 1;
        Ok(())
    }

    /// Route a batch of rows — the page-batched counterpart of calling
    /// [`Exchange::route`] per row. Cost events and virtual time are
    /// bit-identical to the per-row loop: per-row `t_h`/`t_d` charges are
    /// accumulated and flushed (in per-row order, via
    /// [`CostTracker::record_tuples`]) before every page send, so send
    /// timestamps — and therefore receiver Lamport observations — cannot
    /// move.
    pub fn route_rows<R: AsRef<[Value]>>(
        &mut self,
        ctx: &mut NodeCtx,
        rows: &[R],
        charge_hash: bool,
    ) -> Result<(), ExecError> {
        let template = route_template(charge_hash);
        let mut pending = 0u64;
        for values in rows {
            self.route_batched(ctx, values.as_ref(), template, &mut pending)?;
        }
        ctx.clock.record_tuples(template, pending);
        Ok(())
    }

    /// Route every tuple on a page — [`Exchange::route_rows`] for rows
    /// still in wire format (e.g. forwarding a received block). Decodes
    /// into a reused scratch row; same bit-exact cost contract.
    pub fn route_page(
        &mut self,
        ctx: &mut NodeCtx,
        page: &Page,
        charge_hash: bool,
    ) -> Result<(), ExecError> {
        if self.columnar {
            if let Some(arity) = page.uniform_arity() {
                return self.route_page_batched(ctx, page, charge_hash, arity);
            }
        }
        let template = route_template(charge_hash);
        let mut pending = 0u64;
        let mut scratch = std::mem::take(&mut self.row_scratch);
        let mut cursor = page.cursor();
        let result = loop {
            match cursor.next_into(&mut scratch) {
                Ok(true) => {
                    if let Err(e) = self.route_batched(ctx, &scratch, template, &mut pending) {
                        break Err(e);
                    }
                }
                Ok(false) => break Ok(()),
                Err(e) => break Err(e.into()),
            }
        };
        self.row_scratch = scratch;
        ctx.clock.record_tuples(template, pending);
        result
    }

    /// The vectorized [`Exchange::route_page`]: one [`Seed::Partition`]
    /// hash kernel pass over the page's key strips computes every row's
    /// destination, then rows are blocked in order with their
    /// precomputed destination. Identical charges, destinations and send
    /// timestamps as the row loop.
    fn route_page_batched(
        &mut self,
        ctx: &mut NodeCtx,
        page: &Page,
        charge_hash: bool,
        arity: usize,
    ) -> Result<(), ExecError> {
        let template = route_template(charge_hash);
        // Rows shorter than key_len hash their whole prefix — uniform
        // arity makes that the same truncation for every row.
        let k = self.key_len.min(arity);
        let mut hashes = std::mem::take(&mut self.hash_scratch);
        hash_batch_init(Seed::Partition, page.tuple_count(), &mut hashes);
        for j in 0..k {
            match page.column(j).expect("uniform-arity page has dense strips") {
                StripView::Ints(xs) => hash_batch_ints(&mut hashes, xs),
                StripView::Values(vs) => hash_batch_values(&mut hashes, vs),
            }
        }
        hash_batch_finish(&mut hashes);

        let dests = self.blocker.destinations() as u64;
        let mut pending = 0u64;
        let mut scratch = std::mem::take(&mut self.row_scratch);
        let mut cursor = page.cursor();
        let mut result = Ok(());
        for &hash in &hashes {
            match cursor.next_into(&mut scratch) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    result = Err(e.into());
                    break;
                }
            }
            let dest = (hash % dests) as usize;
            debug_assert_eq!(dest, self.destination_of(&scratch), "batched dest drifted");
            if let Err(e) = self.route_to_batched(ctx, dest, &scratch, template, &mut pending) {
                result = Err(e);
                break;
            }
        }
        self.row_scratch = scratch;
        self.hash_scratch = hashes;
        ctx.clock.record_tuples(template, pending);
        result
    }

    /// One row of a batched route: defer the per-row charge, but flush
    /// all deferred charges before any send so timestamps match the
    /// per-row path exactly.
    fn route_batched(
        &mut self,
        ctx: &mut NodeCtx,
        values: &[Value],
        template: &[CostEvent],
        pending: &mut u64,
    ) -> Result<(), ExecError> {
        let dest = self.destination_of(values);
        self.route_to_batched(ctx, dest, values, template, pending)
    }

    /// [`Exchange::route_batched`] with the destination already computed
    /// (the batched page route hashes whole columns up front).
    fn route_to_batched(
        &mut self,
        ctx: &mut NodeCtx,
        dest: usize,
        values: &[Value],
        template: &[CostEvent],
        pending: &mut u64,
    ) -> Result<(), ExecError> {
        *pending += 1;
        let sealed = match self.blocker.add_pooled(dest, values, &mut ctx.page_pool) {
            Ok(sealed) => sealed,
            Err(e) => {
                ctx.clock.record_tuples(template, std::mem::take(pending));
                return Err(e.into());
            }
        };
        if let Some(page) = sealed {
            ctx.clock.record_tuples(template, std::mem::take(pending));
            ctx.send_page(dest, self.kind, page)?;
        }
        self.routed += 1;
        Ok(())
    }

    /// Switch the data kind, flushing any buffered pages of the old kind
    /// first (A2P: partial flush → raw forwarding).
    pub fn switch_kind(&mut self, ctx: &mut NodeCtx, kind: DataKind) -> Result<(), ExecError> {
        if kind != self.kind {
            self.flush(ctx)?;
            self.kind = kind;
        }
        Ok(())
    }

    /// Send all buffered partial pages.
    pub fn flush(&mut self, ctx: &mut NodeCtx) -> Result<(), ExecError> {
        for (dest, page) in self.blocker.flush() {
            ctx.send_page(dest, self.kind, page)?;
        }
        Ok(())
    }

    /// Flush and send `EndOfStream` to **every** node (including self):
    /// receivers complete a phase after one EOS per node.
    pub fn finish(mut self, ctx: &mut NodeCtx) -> Result<(), ExecError> {
        self.flush(ctx)?;
        for dest in 0..ctx.nodes() {
            ctx.send_control(dest, Control::EndOfStream)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{CostParams, NetworkKind};
    use adaptagg_net::{Fabric, Payload};
    use adaptagg_storage::SimDisk;

    fn cluster_of(n: usize) -> Vec<NodeCtx> {
        Fabric::new(n, NetworkKind::high_speed_default())
            .into_endpoints()
            .into_iter()
            .map(|ep| NodeCtx::new(ep, SimDisk::new(), CostParams::paper_default()))
            .collect()
    }

    fn row(g: i64) -> Vec<Value> {
        vec![Value::Int(g), Value::Int(1)]
    }

    #[test]
    fn same_key_always_same_destination() {
        let ex = Exchange::new(4, 2048, 1, DataKind::Raw);
        for g in 0..100 {
            let d1 = ex.destination_of(&row(g));
            let d2 = ex.destination_of(&row(g));
            assert_eq!(d1, d2);
            assert!(d1 < 4);
        }
    }

    #[test]
    fn route_blocks_then_sends_and_finish_flushes() {
        let mut ctxs = cluster_of(2);
        let mut rx = ctxs.pop().unwrap(); // node 1
        let mut tx = ctxs.pop().unwrap(); // node 0

        let mut ex = Exchange::new(2, 2048, 1, DataKind::Raw);
        let mut to_node1 = 0;
        for g in 0..500 {
            if ex.destination_of(&row(g)) == 1 {
                to_node1 += 1;
            }
            ex.route(&mut tx, &row(g), true).unwrap();
        }
        assert_eq!(ex.routed(), 500);
        ex.finish(&mut tx).unwrap();

        // Count tuples arriving at node 1 (EOS from node 0 only; node 1
        // would normally EOS itself — emulate that).
        rx.send_control(1, Control::EndOfStream).unwrap();
        let mut got = 0;
        let mut eos = 0;
        while eos < 2 {
            let msg = rx.recv().unwrap();
            match msg.payload {
                Payload::Data { kind, page } => {
                    assert_eq!(kind, DataKind::Raw);
                    got += page.tuple_count();
                }
                Payload::Control(Control::EndOfStream) => eos += 1,
                _ => panic!("unexpected control"),
            }
        }
        assert_eq!(got, to_node1);
    }

    #[test]
    fn self_routed_tuples_also_arrive() {
        let mut ctxs = cluster_of(1);
        let mut n0 = ctxs.pop().unwrap();
        let mut ex = Exchange::new(1, 2048, 1, DataKind::Partial);
        for g in 0..10 {
            ex.route(&mut n0, &row(g), false).unwrap();
        }
        ex.finish(&mut n0).unwrap();
        let mut got = 0;
        let mut eos = 0;
        while eos < 1 {
            match n0.recv().unwrap().payload {
                Payload::Data { page, .. } => got += page.tuple_count(),
                Payload::Control(Control::EndOfStream) => eos += 1,
                _ => panic!(),
            }
        }
        assert_eq!(got, 10);
    }

    #[test]
    fn charge_hash_flag_controls_hash_cost() {
        let mut ctxs = cluster_of(2);
        let _rx = ctxs.pop().unwrap();
        let mut tx = ctxs.pop().unwrap();
        let p = CostParams::paper_default();

        let mut ex = Exchange::new(2, 2048, 1, DataKind::Raw);
        ex.route(&mut tx, &row(1), true).unwrap();
        let with_hash = tx.clock.now_ms();
        assert!((with_hash - (p.t_hash() + p.t_dest())).abs() < 1e-9);

        ex.route(&mut tx, &row(2), false).unwrap();
        let without = tx.clock.now_ms() - with_hash;
        assert!((without - p.t_dest()).abs() < 1e-9);
    }

    #[test]
    fn switch_kind_flushes_old_pages() {
        let mut ctxs = cluster_of(1);
        let mut n0 = ctxs.pop().unwrap();
        let mut ex = Exchange::new(1, 2048, 1, DataKind::Partial);
        ex.route(&mut n0, &row(1), false).unwrap();
        ex.switch_kind(&mut n0, DataKind::Raw).unwrap();
        ex.route(&mut n0, &row(2), false).unwrap();
        ex.finish(&mut n0).unwrap();

        let mut kinds = Vec::new();
        let mut eos = 0;
        while eos < 1 {
            match n0.recv().unwrap().payload {
                Payload::Data { kind, .. } => kinds.push(kind),
                Payload::Control(Control::EndOfStream) => eos += 1,
                _ => panic!(),
            }
        }
        assert_eq!(kinds, vec![DataKind::Partial, DataKind::Raw]);
    }

    #[test]
    fn batched_routes_are_bit_identical_to_per_tuple_routes() {
        // route_rows and route_page must be indistinguishable from the
        // per-tuple loop: same sealed pages, same send timestamps, same
        // clock bits on the sender.
        let rows: Vec<Vec<Value>> = (0..700).map(row).collect();
        for charge_hash in [false, true] {
            let mut outcomes = Vec::new();
            for mode in 0..3 {
                let mut ctxs = cluster_of(2);
                let mut rx = ctxs.pop().unwrap();
                let mut tx = ctxs.pop().unwrap();
                let mut ex = Exchange::new(2, 2048, 1, DataKind::Raw);
                match mode {
                    0 => {
                        for r in &rows {
                            ex.route(&mut tx, r, charge_hash).unwrap();
                        }
                    }
                    1 => ex.route_rows(&mut tx, &rows, charge_hash).unwrap(),
                    _ => {
                        // Same rows, paged up in wire format first.
                        let mut pages = vec![Page::new(1 << 16)];
                        for r in &rows {
                            assert!(pages.last_mut().unwrap().try_push(r).unwrap());
                        }
                        for p in &pages {
                            ex.route_page(&mut tx, p, charge_hash).unwrap();
                        }
                    }
                }
                assert_eq!(ex.routed(), rows.len() as u64);
                ex.finish(&mut tx).unwrap();

                // Drain node 1's inbox: page contents + send timestamps.
                rx.send_control(1, Control::EndOfStream).unwrap();
                let mut received = Vec::new();
                let mut eos = 0;
                while eos < 2 {
                    let msg = rx.recv().unwrap();
                    match msg.payload {
                        Payload::Data { page, .. } => {
                            received.push((msg.sent_at_ms.to_bits(), page.decode_all().unwrap()))
                        }
                        Payload::Control(Control::EndOfStream) => eos += 1,
                        _ => panic!("unexpected control"),
                    }
                }
                outcomes.push((tx.clock.now_ms().to_bits(), received));
            }
            assert_eq!(outcomes[0], outcomes[1], "route_rows drifted");
            assert_eq!(outcomes[0], outcomes[2], "route_page drifted");
        }
    }

    #[test]
    fn partition_is_balanced_over_nodes() {
        let ex = Exchange::new(8, 2048, 1, DataKind::Raw);
        let mut counts = [0usize; 8];
        for g in 0..8000 {
            counts[ex.destination_of(&row(g))] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed partition: {counts:?}");
        }
    }
}
