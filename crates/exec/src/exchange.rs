//! The hash-partitioning exchange operator.
//!
//! Routes rows to nodes by hashing their group-key columns with
//! [`Seed::Partition`], blocking them into 2 KB message pages per
//! destination (§5), and handling end-of-stream markers. Used by:
//!
//! * Repartitioning — raw tuples, `charge_hash = true` (the paper's select
//!   cost there is `t_r + t_w + t_h + t_d`);
//! * Two Phase / A2P partial shipping — partial rows, `charge_hash = false`
//!   (the rows just came out of a hash table; only `t_d` is charged);
//! * C2P — fixed destination via [`Exchange::send_to`] (no hash, no dest
//!   computation).
//!
//! A single exchange instance must carry one [`DataKind`] at a time;
//! switching kinds flushes automatically (A2P flushes its partials before
//! forwarding raws, so this matches the algorithm's structure).

use crate::error::ExecError;
use crate::node::NodeCtx;
use adaptagg_model::hash::{hash_values, Seed};
use adaptagg_model::{CostEvent, CostTracker, Value};
use adaptagg_net::{Blocker, Control, DataKind};

/// A partitioned, blocked sender.
#[derive(Debug)]
pub struct Exchange {
    blocker: Blocker,
    key_len: usize,
    kind: DataKind,
    routed: u64,
}

impl Exchange {
    /// An exchange over `nodes` destinations. `key_len` is the number of
    /// leading key columns of every row (group-by columns in projected
    /// form — identical for raw and partial rows). `message_bytes` is the
    /// wire block size.
    pub fn new(nodes: usize, message_bytes: usize, key_len: usize, kind: DataKind) -> Self {
        Exchange {
            blocker: Blocker::new(nodes, message_bytes),
            key_len,
            kind,
            routed: 0,
        }
    }

    /// Rows routed so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// The destination node for a row (pure; no cost).
    pub fn destination_of(&self, values: &[Value]) -> usize {
        let key = &values[..self.key_len.min(values.len())];
        (hash_values(Seed::Partition, key) % self.blocker.destinations() as u64) as usize
    }

    /// Route a row to its hash destination. Charges `t_d` (destination
    /// computation) and, when `charge_hash`, `t_h` — see module docs.
    /// Sends a message page whenever the destination's block fills.
    pub fn route(
        &mut self,
        ctx: &mut NodeCtx,
        values: &[Value],
        charge_hash: bool,
    ) -> Result<(), ExecError> {
        if charge_hash {
            ctx.clock.record(CostEvent::TupleHash, 1);
        }
        ctx.clock.record(CostEvent::TupleDest, 1);
        let dest = self.destination_of(values);
        self.push_to(ctx, dest, values)
    }

    /// Route a row to an explicit destination (C2P's coordinator). Charges
    /// nothing per tuple beyond the blocking copy (`t_w` is charged by the
    /// producer when it generated the row).
    pub fn send_to(
        &mut self,
        ctx: &mut NodeCtx,
        dest: usize,
        values: &[Value],
    ) -> Result<(), ExecError> {
        self.push_to(ctx, dest, values)
    }

    fn push_to(&mut self, ctx: &mut NodeCtx, dest: usize, values: &[Value]) -> Result<(), ExecError> {
        if let Some(page) = self.blocker.add(dest, values)? {
            ctx.send_page(dest, self.kind, page)?;
        }
        self.routed += 1;
        Ok(())
    }

    /// Switch the data kind, flushing any buffered pages of the old kind
    /// first (A2P: partial flush → raw forwarding).
    pub fn switch_kind(&mut self, ctx: &mut NodeCtx, kind: DataKind) -> Result<(), ExecError> {
        if kind != self.kind {
            self.flush(ctx)?;
            self.kind = kind;
        }
        Ok(())
    }

    /// Send all buffered partial pages.
    pub fn flush(&mut self, ctx: &mut NodeCtx) -> Result<(), ExecError> {
        for (dest, page) in self.blocker.flush() {
            ctx.send_page(dest, self.kind, page)?;
        }
        Ok(())
    }

    /// Flush and send `EndOfStream` to **every** node (including self):
    /// receivers complete a phase after one EOS per node.
    pub fn finish(mut self, ctx: &mut NodeCtx) -> Result<(), ExecError> {
        self.flush(ctx)?;
        for dest in 0..ctx.nodes() {
            ctx.send_control(dest, Control::EndOfStream)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{CostParams, NetworkKind};
    use adaptagg_net::{Fabric, Payload};
    use adaptagg_storage::SimDisk;

    fn cluster_of(n: usize) -> Vec<NodeCtx> {
        Fabric::new(n, NetworkKind::high_speed_default())
            .into_endpoints()
            .into_iter()
            .map(|ep| NodeCtx::new(ep, SimDisk::new(), CostParams::paper_default()))
            .collect()
    }

    fn row(g: i64) -> Vec<Value> {
        vec![Value::Int(g), Value::Int(1)]
    }

    #[test]
    fn same_key_always_same_destination() {
        let ex = Exchange::new(4, 2048, 1, DataKind::Raw);
        for g in 0..100 {
            let d1 = ex.destination_of(&row(g));
            let d2 = ex.destination_of(&row(g));
            assert_eq!(d1, d2);
            assert!(d1 < 4);
        }
    }

    #[test]
    fn route_blocks_then_sends_and_finish_flushes() {
        let mut ctxs = cluster_of(2);
        let mut rx = ctxs.pop().unwrap(); // node 1
        let mut tx = ctxs.pop().unwrap(); // node 0

        let mut ex = Exchange::new(2, 2048, 1, DataKind::Raw);
        let mut to_node1 = 0;
        for g in 0..500 {
            if ex.destination_of(&row(g)) == 1 {
                to_node1 += 1;
            }
            ex.route(&mut tx, &row(g), true).unwrap();
        }
        assert_eq!(ex.routed(), 500);
        ex.finish(&mut tx).unwrap();

        // Count tuples arriving at node 1 (EOS from node 0 only; node 1
        // would normally EOS itself — emulate that).
        rx.send_control(1, Control::EndOfStream).unwrap();
        let mut got = 0;
        let mut eos = 0;
        while eos < 2 {
            let msg = rx.recv().unwrap();
            match msg.payload {
                Payload::Data { kind, page } => {
                    assert_eq!(kind, DataKind::Raw);
                    got += page.tuple_count();
                }
                Payload::Control(Control::EndOfStream) => eos += 1,
                _ => panic!("unexpected control"),
            }
        }
        assert_eq!(got, to_node1);
    }

    #[test]
    fn self_routed_tuples_also_arrive() {
        let mut ctxs = cluster_of(1);
        let mut n0 = ctxs.pop().unwrap();
        let mut ex = Exchange::new(1, 2048, 1, DataKind::Partial);
        for g in 0..10 {
            ex.route(&mut n0, &row(g), false).unwrap();
        }
        ex.finish(&mut n0).unwrap();
        let mut got = 0;
        let mut eos = 0;
        while eos < 1 {
            match n0.recv().unwrap().payload {
                Payload::Data { page, .. } => got += page.tuple_count(),
                Payload::Control(Control::EndOfStream) => eos += 1,
                _ => panic!(),
            }
        }
        assert_eq!(got, 10);
    }

    #[test]
    fn charge_hash_flag_controls_hash_cost() {
        let mut ctxs = cluster_of(2);
        let _rx = ctxs.pop().unwrap();
        let mut tx = ctxs.pop().unwrap();
        let p = CostParams::paper_default();

        let mut ex = Exchange::new(2, 2048, 1, DataKind::Raw);
        ex.route(&mut tx, &row(1), true).unwrap();
        let with_hash = tx.clock.now_ms();
        assert!((with_hash - (p.t_hash() + p.t_dest())).abs() < 1e-9);

        ex.route(&mut tx, &row(2), false).unwrap();
        let without = tx.clock.now_ms() - with_hash;
        assert!((without - p.t_dest()).abs() < 1e-9);
    }

    #[test]
    fn switch_kind_flushes_old_pages() {
        let mut ctxs = cluster_of(1);
        let mut n0 = ctxs.pop().unwrap();
        let mut ex = Exchange::new(1, 2048, 1, DataKind::Partial);
        ex.route(&mut n0, &row(1), false).unwrap();
        ex.switch_kind(&mut n0, DataKind::Raw).unwrap();
        ex.route(&mut n0, &row(2), false).unwrap();
        ex.finish(&mut n0).unwrap();

        let mut kinds = Vec::new();
        let mut eos = 0;
        while eos < 1 {
            match n0.recv().unwrap().payload {
                Payload::Data { kind, .. } => kinds.push(kind),
                Payload::Control(Control::EndOfStream) => eos += 1,
                _ => panic!(),
            }
        }
        assert_eq!(kinds, vec![DataKind::Partial, DataKind::Raw]);
    }

    #[test]
    fn partition_is_balanced_over_nodes() {
        let ex = Exchange::new(8, 2048, 1, DataKind::Raw);
        let mut counts = [0usize; 8];
        for g in 0..8000 {
            counts[ex.destination_of(&row(g))] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed partition: {counts:?}");
        }
    }
}
