//! Scan/project and store operators.
//!
//! Cost model mapping (paper §2.1):
//!
//! * scan: `(R_i/P) * IO` — one sequential page read per page, charged by
//!   the heap file;
//! * select, "getting tuple off data page": `|R_i| * (t_r + t_w)` —
//!   charged here per tuple (the `t_w` is the copy out of the page buffer;
//!   projection rides along);
//! * store: `(result_bytes/P) * IO` page writes plus nothing per tuple —
//!   the `t_w` of "generating result tuples" is charged when the hash
//!   table drains.

use crate::error::ExecError;
use crate::node::NodeCtx;
use adaptagg_model::{CostEvent, CostTracker, ResultRow, Value};
use adaptagg_storage::HeapFile;

/// Sequentially scan the node's file `name`, apply the WHERE conjunction
/// `filter` (over base columns, before projection), project each passing
/// tuple onto `columns`, and feed it to `consume`. Charges scan I/O and
/// select CPU; filtered-out tuples pay `t_r` (they were read off the
/// page) but not the `t_w` copy-out.
///
/// `consume` receives the node context back, so it can route tuples into
/// exchanges or hash tables (which charge their own costs). The tuple
/// slice is only valid for the duration of the call — the scan reuses its
/// scratch buffers across tuples; copy (`to_vec`) to retain.
pub fn scan_project<F>(
    ctx: &mut NodeCtx,
    name: &str,
    filter: &[adaptagg_model::Predicate],
    columns: &[usize],
    mut consume: F,
) -> Result<usize, ExecError>
where
    F: FnMut(&mut NodeCtx, &[Value]) -> Result<(), ExecError>,
{
    // Take the file out of the disk for the duration of the scan so the
    // consumer can freely use `ctx` (including `ctx.disk`).
    let file = ctx.disk.take(name)?;
    let pages = file.page_count();
    let result = scan_project_file(ctx, &file, filter, columns, 0, pages, &mut consume);
    ctx.disk.put(name, file);
    result
}

/// [`scan_project`] restricted to the page range `[start_page, end_page)`
/// — the recovery layer's unit of progress: a restarted node scans only
/// the pages past its last durable checkpoint. Charges exactly what a
/// full scan charges for those pages.
pub fn scan_project_range<F>(
    ctx: &mut NodeCtx,
    name: &str,
    filter: &[adaptagg_model::Predicate],
    columns: &[usize],
    start_page: usize,
    end_page: usize,
    mut consume: F,
) -> Result<usize, ExecError>
where
    F: FnMut(&mut NodeCtx, &[Value]) -> Result<(), ExecError>,
{
    let file = ctx.disk.take(name)?;
    let end = end_page.min(file.page_count());
    let result = scan_project_file(ctx, &file, filter, columns, start_page, end, &mut consume);
    ctx.disk.put(name, file);
    result
}

fn scan_project_file<F>(
    ctx: &mut NodeCtx,
    file: &HeapFile,
    filter: &[adaptagg_model::Predicate],
    columns: &[usize],
    start_page: usize,
    end_page: usize,
    consume: &mut F,
) -> Result<usize, ExecError>
where
    F: FnMut(&mut NodeCtx, &[Value]) -> Result<(), ExecError>,
{
    // Columns the scan must materialize: whatever the filter or the
    // projection reads. An empty projection passes the whole tuple
    // through, so everything is needed. Wide padding columns outside the
    // mask are skipped positionally by the decoder (no payload copy).
    let select: Option<Vec<bool>> = if columns.is_empty() {
        None
    } else {
        let top = columns
            .iter()
            .chain(filter.iter().map(|p| &p.column))
            .copied()
            .max()
            .unwrap_or(0);
        let mut mask = vec![false; top + 1];
        for &c in columns {
            mask[c] = true;
        }
        for p in filter {
            mask[p.column] = true;
        }
        Some(mask)
    };
    let mut raw: Vec<Value> = Vec::new();
    let mut projected: Vec<Value> = Vec::new();
    let mut n = 0usize;
    for pi in start_page..end_page {
        ctx.clock.record(CostEvent::PageReadSeq, 1);
        let page = file.page(pi)?;
        let mut cursor = page.cursor();
        while cursor.next_select_into(select.as_deref(), &mut raw)? {
            // Scanned tuples are the fault plan's crash currency — a node
            // scheduled to crash at tuple K dies right here.
            ctx.fault_tick()?;
            ctx.clock.record(CostEvent::TupleRead, 1);
            if !adaptagg_model::matches_all(filter, &raw)? {
                continue;
            }
            ctx.clock.record(CostEvent::TupleWrite, 1);
            if columns.is_empty() {
                consume(ctx, &raw)?;
            } else {
                projected.clear();
                for &c in columns {
                    projected.push(
                        raw.get(c)
                            .ok_or(adaptagg_model::ModelError::ColumnOutOfRange {
                                column: c,
                                arity: raw.len(),
                            })?
                            .clone(),
                    );
                }
                consume(ctx, &projected)?;
            }
            n += 1;
        }
    }
    Ok(n)
}

/// Store finalized result rows into the node's `result` file, charging one
/// sequential page write per result page.
pub fn store_results(ctx: &mut NodeCtx, rows: &[ResultRow]) -> Result<(), ExecError> {
    let page_bytes = ctx.params().page_bytes;
    let file = ctx.disk.get_or_create("result", page_bytes);
    let mut values: Vec<Value> = Vec::new();
    for row in rows {
        values.clear();
        values.extend_from_slice(row.key.values());
        values.extend_from_slice(&row.aggs);
        file.append(&values)?;
    }
    let pages = ctx.disk.get("result")?.page_count() as u64;
    // Charge all result pages once, at the end of the store (the file may
    // be appended to only once per run).
    ctx.clock.record(CostEvent::PageWriteSeq, pages);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{CostParams, GroupKey, NetworkKind};
    use adaptagg_net::Fabric;
    use adaptagg_storage::SimDisk;

    fn ctx_with_file(tuples: &[Vec<Value>], page_bytes: usize) -> NodeCtx {
        let mut eps = Fabric::new(1, NetworkKind::high_speed_default()).into_endpoints();
        let file =
            HeapFile::from_tuples(page_bytes, tuples.iter().map(|t| t.as_slice())).unwrap();
        let mut disk = SimDisk::new();
        disk.put("base", file);
        NodeCtx::new(eps.pop().unwrap(), disk, CostParams::paper_default())
    }

    #[test]
    fn scan_projects_and_charges() {
        let tuples: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2), Value::Str("pad".into())])
            .collect();
        let mut ctx = ctx_with_file(&tuples, 128);
        let mut seen = Vec::new();
        let n = scan_project(&mut ctx, "base", &[], &[1, 0], |_ctx, vals| {
            seen.push(vals.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 10);
        assert_eq!(seen[3], vec![Value::Int(6), Value::Int(3)]);

        // Charges: 10 t_r + 10 t_w + pages * IO.
        let b = ctx.clock.breakdown();
        let p = CostParams::paper_default();
        let expect_cpu = 10.0 * (p.t_read() + p.t_write());
        assert!((b.cpu_ms - expect_cpu).abs() < 1e-9, "cpu {}", b.cpu_ms);
        assert!(b.io_ms > 0.0);
        // File still present afterwards.
        assert!(ctx.disk.get("base").is_ok());
    }

    #[test]
    fn range_scan_splits_cover_the_full_scan_exactly() {
        // Scanning [0, k) then [k, end) must see the same tuples and
        // charge the same costs as one full scan.
        let tuples: Vec<Vec<Value>> = (0..40).map(|i| vec![Value::Int(i)]).collect();
        let mut full_ctx = ctx_with_file(&tuples, 128);
        let mut full = Vec::new();
        scan_project(&mut full_ctx, "base", &[], &[], |_ctx, vals| {
            full.push(vals.to_vec());
            Ok(())
        })
        .unwrap();

        let mut ctx = ctx_with_file(&tuples, 128);
        let pages = ctx.disk.get("base").unwrap().page_count();
        assert!(pages >= 2, "need a multi-page file for the split");
        let mut seen = Vec::new();
        for (a, b) in [(0, pages / 2), (pages / 2, pages)] {
            scan_project_range(&mut ctx, "base", &[], &[], a, b, |_ctx, vals| {
                seen.push(vals.to_vec());
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(seen, full);
        assert_eq!(ctx.clock.now_ms(), full_ctx.clock.now_ms());
    }

    #[test]
    fn range_scan_clamps_past_the_end() {
        let tuples = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let mut ctx = ctx_with_file(&tuples, 128);
        let mut n = 0;
        scan_project_range(&mut ctx, "base", &[], &[], 0, 999, |_ctx, _vals| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn filter_columns_are_decoded_even_when_not_projected() {
        // The select mask must cover filter columns, or predicates would
        // see Null placeholders and silently drop every row.
        let tuples: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2), Value::Str("pad".into())])
            .collect();
        let mut ctx = ctx_with_file(&tuples, 128);
        let filter = [adaptagg_model::Predicate::new(
            1,
            adaptagg_model::Compare::Ge,
            Value::Int(10),
        )];
        let mut seen = Vec::new();
        scan_project(&mut ctx, "base", &filter, &[0], |_ctx, vals| {
            seen.push(vals.to_vec());
            Ok(())
        })
        .unwrap();
        let expect: Vec<Vec<Value>> = (5..10).map(|i| vec![Value::Int(i)]).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn scan_empty_projection_passes_whole_tuple() {
        let tuples = vec![vec![Value::Int(5), Value::Int(6)]];
        let mut ctx = ctx_with_file(&tuples, 128);
        scan_project(&mut ctx, "base", &[], &[], |_ctx, vals| {
            assert_eq!(vals.len(), 2);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn scan_missing_file_errors() {
        let mut ctx = ctx_with_file(&[], 128);
        let r = scan_project(&mut ctx, "nope", &[], &[], |_, _| Ok(()));
        assert!(r.is_err());
    }

    #[test]
    fn scan_bad_column_errors() {
        let tuples = vec![vec![Value::Int(1)]];
        let mut ctx = ctx_with_file(&tuples, 128);
        let r = scan_project(&mut ctx, "base", &[], &[4], |_, _| Ok(()));
        assert!(r.is_err());
        // File restored even on error.
        assert!(ctx.disk.get("base").is_ok());
    }

    #[test]
    fn store_writes_rows_and_charges_pages() {
        let mut ctx = ctx_with_file(&[], 4096);
        let rows: Vec<ResultRow> = (0..100)
            .map(|i| {
                ResultRow::new(
                    GroupKey::new(vec![Value::Int(i)]),
                    vec![Value::Int(i * 10)],
                )
            })
            .collect();
        store_results(&mut ctx, &rows).unwrap();
        let f = ctx.disk.get("result").unwrap();
        assert_eq!(f.tuple_count(), 100);
        assert!(ctx.clock.breakdown().io_ms > 0.0);
    }

    #[test]
    fn consumer_can_use_ctx_disk() {
        // The scan must not hold a borrow that blocks the consumer from
        // writing to another file on the same disk.
        let tuples = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let mut ctx = ctx_with_file(&tuples, 128);
        scan_project(&mut ctx, "base", &[], &[], |ctx, vals| {
            ctx.disk
                .get_or_create("copy", 128)
                .append(vals)
                .map_err(ExecError::from)
        })
        .unwrap();
        assert_eq!(ctx.disk.get("copy").unwrap().tuple_count(), 2);
    }
}
