//! Execution errors.

use adaptagg_model::ModelError;
use adaptagg_net::NetError;
use adaptagg_storage::StorageError;
use std::fmt;

/// Errors from running an algorithm on the cluster.
///
/// Failure attribution (see `run_cluster`) classifies these: *primary*
/// errors describe the originating failure ([`ExecError::Storage`],
/// [`ExecError::Model`], [`ExecError::Protocol`],
/// [`ExecError::InjectedCrash`], [`ExecError::NodePanic`]); *cascade*
/// errors are consequences of some other node failing first
/// ([`ExecError::Aborted`], [`ExecError::Net`]); [`ExecError::Watchdog`]
/// sits between (a hang whose cause was not otherwise observed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Storage layer failure (decode, missing file, oversized tuple).
    Storage(StorageError),
    /// Model layer failure (type mismatch, arity mismatch).
    Model(ModelError),
    /// A node thread panicked; the message is preserved.
    NodePanic {
        /// The node whose thread panicked.
        node: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// An algorithm violated the messaging protocol (e.g. unexpected
    /// message kind in a phase).
    Protocol(&'static str),
    /// Messaging-layer failure (peer down, all peers gone).
    Net(NetError),
    /// The fault plan killed this node after it scanned `at_tuple` tuples.
    InjectedCrash {
        /// The node the fault plan crashed.
        node: usize,
        /// The scheduled crash point, in tuples scanned.
        at_tuple: u64,
    },
    /// A peer failed first and told us to stop (graceful propagation of
    /// its failure — a cascade, not a cause).
    Aborted {
        /// The node where the failure originated.
        origin: usize,
        /// The originating error, rendered.
        reason: String,
    },
    /// The node's real-time receive watchdog fired: it waited longer than
    /// the configured deadline with no traffic — the backstop that turns
    /// would-be hangs into errors.
    Watchdog {
        /// The node whose receive timed out.
        node: usize,
        /// How long it waited, in real milliseconds.
        waited_ms: u64,
    },
    /// The recovery layer ran out of attempts (or survivors): every
    /// re-execution failed too. Wraps the last attempt's first-cause
    /// error.
    RecoveryExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The final attempt's first-cause error.
        last: Box<ExecError>,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage: {e}"),
            ExecError::Model(e) => write!(f, "model: {e}"),
            ExecError::NodePanic { node, message } => {
                write!(f, "node {node} panicked: {message}")
            }
            ExecError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ExecError::Net(e) => write!(f, "network: {e}"),
            ExecError::InjectedCrash { node, at_tuple } => {
                write!(f, "node {node} crashed (injected) after {at_tuple} tuples")
            }
            ExecError::Aborted { origin, reason } => {
                write!(f, "aborted by node {origin}: {reason}")
            }
            ExecError::Watchdog { node, waited_ms } => {
                write!(f, "node {node} watchdog fired after {waited_ms} ms without traffic")
            }
            ExecError::RecoveryExhausted { attempts, last } => {
                write!(f, "recovery exhausted after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            ExecError::Model(e) => Some(e),
            ExecError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<ModelError> for ExecError {
    fn from(e: ModelError) -> Self {
        ExecError::Model(e)
    }
}

impl From<NetError> for ExecError {
    fn from(e: NetError) -> Self {
        ExecError::Net(e)
    }
}

impl ExecError {
    /// Attribution class: lower beats higher when picking which of a run's
    /// per-node errors to report. `0` = primary (describes the originating
    /// failure), `1` = watchdog, `2` = cascade (consequence of a peer
    /// failing first).
    pub fn attribution_class(&self) -> u8 {
        match self {
            ExecError::Storage(_)
            | ExecError::Model(_)
            | ExecError::Protocol(_)
            | ExecError::InjectedCrash { .. }
            | ExecError::NodePanic { .. } => 0,
            ExecError::Watchdog { .. } => 1,
            ExecError::Aborted { .. } | ExecError::Net(_) => 2,
            // Produced by the recovery driver, never by a node; classify
            // like its wrapped cause for symmetry.
            ExecError::RecoveryExhausted { last, .. } => last.attribution_class(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ExecError = StorageError::NoSuchFile("x".into()).into();
        assert!(e.to_string().contains("storage"));
        let e: ExecError = ModelError::Corrupt("y").into();
        assert!(e.to_string().contains("model"));
        let e = ExecError::NodePanic {
            node: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("node 3"));
        assert!(ExecError::Protocol("bad phase").to_string().contains("bad phase"));
        let e: ExecError = NetError::PeerDown { peer: 1 }.into();
        assert!(e.to_string().contains("network"));
        assert!(ExecError::InjectedCrash { node: 2, at_tuple: 77 }
            .to_string()
            .contains("77"));
        let e = ExecError::Aborted {
            origin: 4,
            reason: "disk died".into(),
        };
        assert!(e.to_string().contains("node 4"));
        assert!(ExecError::Watchdog { node: 0, waited_ms: 500 }
            .to_string()
            .contains("500"));
    }

    #[test]
    fn attribution_classes_rank_primary_first() {
        assert_eq!(
            ExecError::InjectedCrash { node: 0, at_tuple: 1 }.attribution_class(),
            0
        );
        assert_eq!(ExecError::Protocol("x").attribution_class(), 0);
        assert_eq!(
            ExecError::Watchdog { node: 0, waited_ms: 1 }.attribution_class(),
            1
        );
        assert_eq!(
            ExecError::Aborted { origin: 0, reason: String::new() }.attribution_class(),
            2
        );
        assert_eq!(
            ExecError::Net(NetError::Disconnected).attribution_class(),
            2
        );
    }
}
