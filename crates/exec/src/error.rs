//! Execution errors.

use adaptagg_model::ModelError;
use adaptagg_storage::StorageError;
use std::fmt;

/// Errors from running an algorithm on the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Storage layer failure (decode, missing file, oversized tuple).
    Storage(StorageError),
    /// Model layer failure (type mismatch, arity mismatch).
    Model(ModelError),
    /// A node thread panicked; the message is preserved.
    NodePanic {
        /// The node whose thread panicked.
        node: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// An algorithm violated the messaging protocol (e.g. unexpected
    /// message kind in a phase).
    Protocol(&'static str),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage: {e}"),
            ExecError::Model(e) => write!(f, "model: {e}"),
            ExecError::NodePanic { node, message } => {
                write!(f, "node {node} panicked: {message}")
            }
            ExecError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            ExecError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<ModelError> for ExecError {
    fn from(e: ModelError) -> Self {
        ExecError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ExecError = StorageError::NoSuchFile("x".into()).into();
        assert!(e.to_string().contains("storage"));
        let e: ExecError = ModelError::Corrupt("y").into();
        assert!(e.to_string().contains("model"));
        let e = ExecError::NodePanic {
            node: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("node 3"));
        assert!(ExecError::Protocol("bad phase").to_string().contains("bad phase"));
    }
}
