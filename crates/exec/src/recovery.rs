//! Query-level fault recovery: checkpointed partials, partition
//! reassignment, and bounded retry.
//!
//! The paper's §3.2 insight — partial-aggregate states are mergeable and
//! flushable at *any* point — is exactly the property a recovery layer
//! needs: a node's progress can be captured as a pile of partial rows and
//! replayed or handed to another node without recomputing the world. This
//! module provides the pieces the cluster runtime composes:
//!
//! * [`RecoveryPolicy`] — how hard to try: attempt budget, checkpoint
//!   interval, backoff schedule, straggler (watchdog) headroom, and the
//!   link-level retry policy.
//! * [`RecoverySession`] — one node's per-attempt view: which base
//!   partitions it owns (as [`Segment`]s of its concatenated `"base"`
//!   file), the shared [`CheckpointStore`], and its recovery counters.
//! * [`PartitionCheckpoint`] — durable per-partition progress: how many
//!   input pages are fully folded into the checkpointed partial rows.
//!
//! The checkpoint store is shared across attempts by the recovery driver
//! in `cluster.rs` — it models replicated stable storage that survives a
//! node loss. The *cost* of writing and reading checkpoints is still
//! charged to the owning node's virtual clock and mirrored onto its
//! [`SimDisk`] (file `"ckpt.<partition>"`), so recovery overhead shows up
//! honestly in [`crate::RunResult`].
//!
//! What is deliberately *not* recovered: work that left the node as raw
//! (unaggregated) forwarded tuples — its effect lives in peers' memory
//! and dies with the attempt — and any in-flight network state. Both are
//! simply replayed; the seq+dedup fabric plus the attempt-scoped restart
//! make the replay exactly-once from the query's point of view.

use crate::clock::Clock;
use crate::error::ExecError;
use crate::runstats::NodeRecoveryStats;
use adaptagg_model::{CostEvent, CostTracker, Value};
use adaptagg_net::LinkRetryPolicy;
use adaptagg_storage::{HeapFile, SimDisk};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// How a run recovers from node loss. Attach to a
/// [`crate::ClusterConfig`] via `with_recovery`; absent (the default),
/// the runtime keeps PR 1's fail-stop behaviour bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Cluster executions to attempt before giving up (≥ 1). Each failed
    /// attempt removes exactly one node, so progress is guaranteed.
    pub max_attempts: u32,
    /// Checkpoint the local partial-aggregate state every K input pages
    /// (and at phase boundaries). Smaller = less replay after a crash,
    /// more checkpoint I/O during healthy scans.
    pub checkpoint_interval_pages: usize,
    /// Virtual backoff before the first re-attempt, in ms.
    pub backoff_ms: f64,
    /// Multiplier applied to the backoff between attempts.
    pub backoff_multiplier: f64,
    /// Headroom multiplier on the derived watchdog deadline while
    /// recovery is active: survivors inherit partitions and legitimately
    /// run longer, so stall declaration must be more patient.
    pub straggler_factor: f64,
    /// Bounded retry for link-level send failures before the failure
    /// escalates to node reassignment.
    pub link_retry: Option<LinkRetryPolicy>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 8,
            checkpoint_interval_pages: 32,
            backoff_ms: 5.0,
            backoff_multiplier: 2.0,
            straggler_factor: 2.0,
            link_retry: Some(LinkRetryPolicy::default()),
        }
    }
}

impl RecoveryPolicy {
    /// Override the attempt budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Override the checkpoint interval (input pages per checkpoint).
    pub fn with_checkpoint_interval(mut self, pages: usize) -> Self {
        self.checkpoint_interval_pages = pages.max(1);
        self
    }
}

/// One contiguous page range of a node's concatenated `"base"` file,
/// holding one original base partition. Checkpoints are keyed by
/// `partition`, which is stable across reassignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Original partition id (`0..cluster.nodes`).
    pub partition: usize,
    /// First page of this partition within the node's `"base"` file.
    pub start_page: usize,
    /// Number of pages.
    pub pages: usize,
}

/// Durable progress for one base partition: the partial rows produced
/// from its first `pages_done` pages. Restoring the rows and scanning
/// from `pages_done` reproduces the partition's full contribution.
#[derive(Debug, Clone)]
pub struct PartitionCheckpoint {
    /// Input pages fully folded into `partials` (durable scan progress).
    pub pages_done: usize,
    /// Furthest page any attempt ever scanned (durably or not) — the
    /// basis for replayed-page accounting.
    pub high_water: usize,
    /// Whether the partition's scan completed.
    pub complete: bool,
    /// The checkpointed partial rows, in the model's mergeable-partials
    /// page encoding.
    pub partials: HeapFile,
}

impl PartitionCheckpoint {
    fn new(page_bytes: usize) -> Self {
        PartitionCheckpoint {
            pages_done: 0,
            high_water: 0,
            complete: false,
            partials: HeapFile::new(page_bytes),
        }
    }
}

/// Checkpoints shared across attempts, keyed by original partition id.
/// Models replicated stable storage: it survives the loss of the node
/// that wrote it (the I/O cost does not — it was already charged).
pub type CheckpointStore = Arc<Mutex<BTreeMap<usize, PartitionCheckpoint>>>;

/// A fresh, empty checkpoint store.
pub fn new_store() -> CheckpointStore {
    Arc::new(Mutex::new(BTreeMap::new()))
}

/// One node's recovery context for one attempt: its partition layout,
/// the shared checkpoint store, and its activity counters. Lives on
/// [`crate::NodeCtx::recovery`]; algorithms `take()` it for the duration
/// of a checkpointed scan and put it back.
#[derive(Debug)]
pub struct RecoverySession {
    segments: Vec<Segment>,
    store: CheckpointStore,
    interval_pages: usize,
    page_bytes: usize,
    /// Checkpoint/restore/replay counters, reported per node.
    pub counters: NodeRecoveryStats,
}

impl RecoverySession {
    /// Assemble a session (used by the cluster runtime).
    pub fn new(
        segments: Vec<Segment>,
        store: CheckpointStore,
        interval_pages: usize,
        page_bytes: usize,
    ) -> Self {
        RecoverySession {
            segments,
            store,
            interval_pages: interval_pages.max(1),
            page_bytes,
            counters: NodeRecoveryStats::default(),
        }
    }

    /// The node's partition layout, in ascending partition order.
    pub fn segments(&self) -> Vec<Segment> {
        self.segments.clone()
    }

    /// Pages per checkpoint.
    pub fn interval_pages(&self) -> usize {
        self.interval_pages
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<usize, PartitionCheckpoint>> {
        self.store.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Where to resume scanning `partition`: the first page past its
    /// durable checkpoint. Pages between that and the partition's high
    /// water were scanned by a lost attempt and are about to be scanned
    /// again — counted as replay.
    pub fn resume_point(&mut self, partition: usize) -> usize {
        let (done, hw) = self
            .lock()
            .get(&partition)
            .map(|c| (c.pages_done, c.high_water))
            .unwrap_or((0, 0));
        self.counters.replayed_pages += hw.saturating_sub(done) as u64;
        done
    }

    /// Read `partition`'s checkpointed partial rows back, charging
    /// checkpoint-read I/O. Empty when no checkpoint exists.
    pub fn restore_partials(
        &mut self,
        partition: usize,
        clock: &mut Clock,
    ) -> Result<Vec<Vec<Value>>, ExecError> {
        let rows = {
            let store = self.lock();
            let Some(cp) = store.get(&partition) else {
                return Ok(Vec::new());
            };
            let mut rows = Vec::with_capacity(cp.partials.tuple_count());
            for tuple in cp.partials.iter_untracked() {
                rows.push(tuple?);
            }
            clock.record(CostEvent::PageReadSeq, cp.partials.page_count() as u64);
            rows
        };
        clock.record(CostEvent::TupleRead, rows.len() as u64);
        self.counters.restored_partials += rows.len() as u64;
        Ok(rows)
    }

    /// Durably record that `partition`'s first `pages_done` pages are
    /// folded into the given partial rows. Appends the rows to the
    /// partition's checkpoint, charges the write I/O (at least one page
    /// per checkpoint — the metadata record), and mirrors the checkpoint
    /// file onto the node's disk as `"ckpt.<partition>"`.
    pub fn checkpoint(
        &mut self,
        partition: usize,
        pages_done: usize,
        partials: &[Vec<Value>],
        complete: bool,
        clock: &mut Clock,
        disk: &mut SimDisk,
    ) -> Result<(), ExecError> {
        let (delta, mirror) = {
            let mut store = self.lock();
            let cp = store
                .entry(partition)
                .or_insert_with(|| PartitionCheckpoint::new(self.page_bytes));
            let before = cp.partials.page_count();
            for row in partials {
                cp.partials.append(row)?;
            }
            let delta = (cp.partials.page_count() - before).max(1) as u64;
            cp.pages_done = cp.pages_done.max(pages_done);
            cp.high_water = cp.high_water.max(pages_done);
            cp.complete |= complete;
            clock.record(CostEvent::PageWriteSeq, delta);
            (delta, cp.partials.clone())
        };
        self.counters.checkpoint_pages += delta;
        self.counters.checkpoint_partials += partials.len() as u64;
        disk.put(format!("ckpt.{partition}"), mirror);
        Ok(())
    }

    /// Record scan progress that is *not* durable (e.g. Adaptive Two
    /// Phase after its switch, when output leaves the node as raw
    /// forwarded tuples): raises the replay high water without advancing
    /// the resume point.
    pub fn note_scanned(&mut self, partition: usize, scanned_to: usize) {
        let mut store = self.lock();
        let cp = store
            .entry(partition)
            .or_insert_with(|| PartitionCheckpoint::new(self.page_bytes));
        cp.high_water = cp.high_water.max(scanned_to);
    }
}

/// The node a first-cause error blames — the one the recovery driver
/// removes before re-attempting. `None` means the error is not a node
/// failure (storage/model/protocol bugs) and must not be retried.
pub fn victim_of(e: &ExecError) -> Option<usize> {
    match e {
        ExecError::InjectedCrash { node, .. }
        | ExecError::NodePanic { node, .. }
        | ExecError::Watchdog { node, .. } => Some(*node),
        ExecError::Aborted { origin, .. } => Some(*origin),
        ExecError::Net(adaptagg_net::NetError::PeerDown { peer }) => Some(*peer),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::CostParams;

    fn clock() -> Clock {
        Clock::new(CostParams::paper_default())
    }

    #[test]
    fn checkpoint_then_restore_roundtrips_rows_and_charges() {
        let store = new_store();
        let mut s = RecoverySession::new(
            vec![Segment { partition: 3, start_page: 0, pages: 10 }],
            store.clone(),
            4,
            2048,
        );
        let mut clk = clock();
        let rows: Vec<Vec<Value>> =
            (0..5).map(|i| vec![Value::Int(i), Value::Int(i * 10)]).collect();
        s.checkpoint(3, 4, &rows, false, &mut clk, &mut SimDisk::new()).unwrap();
        assert!(clk.breakdown().io_ms > 0.0, "checkpoint write charged");
        assert_eq!(s.counters.checkpoint_partials, 5);

        // A later attempt (fresh session, same store) resumes past the
        // checkpoint and restores the rows.
        let mut s2 = RecoverySession::new(
            vec![Segment { partition: 3, start_page: 0, pages: 10 }],
            store,
            4,
            2048,
        );
        assert_eq!(s2.resume_point(3), 4);
        let mut clk2 = clock();
        let restored = s2.restore_partials(3, &mut clk2).unwrap();
        assert_eq!(restored, rows);
        assert_eq!(s2.counters.restored_partials, 5);
        assert!(clk2.breakdown().io_ms > 0.0, "restore read charged");
    }

    #[test]
    fn non_durable_progress_counts_as_replay_not_resume() {
        let store = new_store();
        let mut s = RecoverySession::new(Vec::new(), store.clone(), 8, 2048);
        let mut clk = clock();
        s.checkpoint(0, 8, &[], false, &mut clk, &mut SimDisk::new()).unwrap();
        s.note_scanned(0, 20); // scanned to page 20, durable only to 8

        let mut s2 = RecoverySession::new(Vec::new(), store, 8, 2048);
        assert_eq!(s2.resume_point(0), 8, "resume at the durable point");
        assert_eq!(s2.counters.replayed_pages, 12, "pages 8..20 replay");
    }

    #[test]
    fn missing_checkpoint_restores_nothing() {
        let mut s = RecoverySession::new(Vec::new(), new_store(), 8, 2048);
        assert_eq!(s.resume_point(7), 0);
        let mut clk = clock();
        assert!(s.restore_partials(7, &mut clk).unwrap().is_empty());
        assert_eq!(clk.now_ms(), 0.0, "nothing to read, nothing charged");
    }

    #[test]
    fn victims_are_classified_by_error_kind() {
        use adaptagg_net::NetError;
        assert_eq!(victim_of(&ExecError::InjectedCrash { node: 2, at_tuple: 5 }), Some(2));
        assert_eq!(
            victim_of(&ExecError::NodePanic { node: 1, message: "x".into() }),
            Some(1)
        );
        assert_eq!(victim_of(&ExecError::Watchdog { node: 0, waited_ms: 9 }), Some(0));
        assert_eq!(
            victim_of(&ExecError::Aborted { origin: 3, reason: "y".into() }),
            Some(3)
        );
        assert_eq!(victim_of(&ExecError::Net(NetError::PeerDown { peer: 1 })), Some(1));
        assert_eq!(victim_of(&ExecError::Protocol("bug")), None, "bugs are not retried");
        assert_eq!(victim_of(&ExecError::Net(NetError::Disconnected)), None);
    }
}
