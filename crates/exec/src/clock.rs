//! Per-node virtual clocks.

use adaptagg_model::{CostEvent, CostParams, CostTracker};

/// Where a node's virtual time went. The categories mirror the paper's
/// cost-model terms, so measured runs and analytical predictions can be
/// compared term by term in EXPERIMENTS.md.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Per-tuple CPU work (`t_r`,`t_w`,`t_h`,`t_a`,`t_d`) and message
    /// protocol (`m_p`).
    pub cpu_ms: f64,
    /// Disk page I/O (`IO`, `rIO`), including overflow spills.
    pub io_ms: f64,
    /// Network transfer occupancy (`m_l` / bus waits on send).
    pub net_ms: f64,
    /// Time spent waiting for other nodes' data (Lamport observation
    /// jumps on receive).
    pub wait_ms: f64,
}

impl TimeBreakdown {
    /// Sum of all categories (equals the clock's now if it started at 0).
    pub fn total_ms(&self) -> f64 {
        self.cpu_ms + self.io_ms + self.net_ms + self.wait_ms
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &TimeBreakdown) {
        self.cpu_ms += other.cpu_ms;
        self.io_ms += other.io_ms;
        self.net_ms += other.net_ms;
        self.wait_ms += other.wait_ms;
    }
}

/// A labelled checkpoint on a node's virtual timeline — algorithms mark
/// phase boundaries so runs can report per-phase spans comparable to the
/// analytical model's per-phase breakdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMark {
    /// What finished at this point (e.g. `"phase1"`).
    pub label: &'static str,
    /// The node's virtual time at the mark.
    pub at_ms: f64,
    /// Snapshot of the breakdown at the mark.
    pub breakdown: TimeBreakdown,
}

/// A node's virtual clock. Implements [`CostTracker`], so the storage and
/// hash-aggregation layers advance it transparently as they emit events.
#[derive(Debug, Clone)]
pub struct Clock {
    now_ms: f64,
    params: CostParams,
    breakdown: TimeBreakdown,
    marks: Vec<PhaseMark>,
    slowdown: f64,
}

impl Clock {
    /// A clock at time zero under the given cost parameters.
    pub fn new(params: CostParams) -> Self {
        Clock {
            now_ms: 0.0,
            params,
            breakdown: TimeBreakdown::default(),
            marks: Vec::new(),
            slowdown: 1.0,
        }
    }

    /// Inflate every subsequent CPU/disk event by `factor` — a fault
    /// plan's per-node slowdown (a degraded, not dead, node). `1.0` is the
    /// nominal default and is exactly cost-free (`x * 1.0 == x` in IEEE
    /// 754), so an unslowed clock ticks identically to one without the
    /// feature.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(factor >= 1.0, "slowdown factor must be >= 1.0");
        self.slowdown = factor;
    }

    /// The current slowdown factor.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Record a phase boundary at the current virtual time.
    pub fn mark(&mut self, label: &'static str) {
        self.marks.push(PhaseMark {
            label,
            at_ms: self.now_ms,
            breakdown: self.breakdown,
        });
    }

    /// The phase marks recorded so far, in order.
    pub fn marks(&self) -> &[PhaseMark] {
        &self.marks
    }

    /// Current virtual time in ms.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// The cost parameters this clock charges with.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Where the time went so far.
    pub fn breakdown(&self) -> &TimeBreakdown {
        &self.breakdown
    }

    /// Advance to a network-transfer completion time (send side): the node
    /// is occupied until its transfer finishes, matching the analytical
    /// model charging `m_l` to the sender.
    pub fn advance_net_to(&mut self, t_ms: f64) {
        if t_ms > self.now_ms {
            self.breakdown.net_ms += t_ms - self.now_ms;
            self.now_ms = t_ms;
        }
    }

    /// Lamport observation (receive side): jump forward to the message's
    /// timestamp if it is ahead of us; the gap is idle waiting.
    pub fn observe(&mut self, t_ms: f64) {
        if t_ms > self.now_ms {
            self.breakdown.wait_ms += t_ms - self.now_ms;
            self.now_ms = t_ms;
        }
    }
}

impl CostTracker for Clock {
    fn record(&mut self, event: CostEvent, count: u64) {
        let dt = event.unit_ms(&self.params) * count as f64 * self.slowdown;
        self.now_ms += dt;
        match event {
            CostEvent::PageReadSeq | CostEvent::PageWriteSeq | CostEvent::PageReadRand => {
                self.breakdown.io_ms += dt
            }
            _ => self.breakdown.cpu_ms += dt,
        }
    }

    fn record_tuples(&mut self, template: &[CostEvent], count: u64) {
        // Per-unit deltas, each exactly what `record(e, 1)` would add
        // (`unit_ms * 1 as f64 * slowdown`). Replaying them per tuple keeps
        // the f64 accumulation order — and therefore every rounding step —
        // identical to the per-tuple loop this call batches. Fixed-size
        // buffers: no allocation on the hot path.
        if template.len() > 8 {
            // Oversized template (never happens in-tree): take the naive
            // per-tuple path rather than truncate.
            for _ in 0..count {
                for &e in template {
                    self.record(e, 1);
                }
            }
            return;
        }
        let mut dts = [0.0f64; 8];
        let mut io = [false; 8];
        let n = template.len();
        for (i, e) in template.iter().enumerate() {
            dts[i] = e.unit_ms(&self.params) * self.slowdown;
            io[i] = matches!(
                e,
                CostEvent::PageReadSeq | CostEvent::PageWriteSeq | CostEvent::PageReadRand
            );
        }
        for _ in 0..count {
            for i in 0..n {
                let dt = dts[i];
                self.now_ms += dt;
                if io[i] {
                    self.breakdown.io_ms += dt;
                } else {
                    self.breakdown.cpu_ms += dt;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> Clock {
        Clock::new(CostParams::paper_default())
    }

    #[test]
    fn events_advance_by_unit_cost() {
        let mut c = clock();
        c.record(CostEvent::PageReadSeq, 2); // 2.30 ms io
        c.record(CostEvent::TupleRead, 100); // 0.75 ms cpu
        assert!((c.now_ms() - 3.05).abs() < 1e-9);
        assert!((c.breakdown().io_ms - 2.30).abs() < 1e-9);
        assert!((c.breakdown().cpu_ms - 0.75).abs() < 1e-9);
    }

    #[test]
    fn observe_only_moves_forward() {
        let mut c = clock();
        c.record(CostEvent::PageReadSeq, 10); // 11.5ms
        c.observe(5.0); // in the past: no-op
        assert!((c.now_ms() - 11.5).abs() < 1e-9);
        assert_eq!(c.breakdown().wait_ms, 0.0);
        c.observe(20.0);
        assert!((c.now_ms() - 20.0).abs() < 1e-9);
        assert!((c.breakdown().wait_ms - 8.5).abs() < 1e-9);
    }

    #[test]
    fn advance_net_accumulates_net_time() {
        let mut c = clock();
        c.advance_net_to(3.0);
        c.advance_net_to(2.0); // past: no-op
        assert_eq!(c.now_ms(), 3.0);
        assert_eq!(c.breakdown().net_ms, 3.0);
    }

    #[test]
    fn breakdown_total_matches_clock() {
        let mut c = clock();
        c.record(CostEvent::TupleHash, 7);
        c.advance_net_to(1.0);
        c.observe(2.5);
        c.record(CostEvent::PageWriteSeq, 1);
        assert!((c.breakdown().total_ms() - c.now_ms()).abs() < 1e-9);
    }

    #[test]
    fn slowdown_inflates_events_only() {
        let mut c = clock();
        c.set_slowdown(2.0);
        c.record(CostEvent::PageReadSeq, 2); // 2 × 1.15 × 2.0 = 4.6 ms
        assert!((c.now_ms() - 4.6).abs() < 1e-9);
        // Network/Lamport advances are wall positions, not work: unscaled.
        c.advance_net_to(5.0);
        assert!((c.now_ms() - 5.0).abs() < 1e-9);
        c.observe(6.0);
        assert!((c.now_ms() - 6.0).abs() < 1e-9);
        assert_eq!(c.slowdown(), 2.0);
    }

    #[test]
    fn record_tuples_is_bit_identical_to_per_tuple_loop() {
        // The batched path must reproduce the per-tuple loop's f64
        // accumulation exactly — rounding included — or virtual-time pins
        // would drift. Exercise cpu-only and mixed cpu/io templates, with
        // and without slowdown, from a non-zero starting time.
        let templates: [&[CostEvent]; 3] = [
            &[CostEvent::TupleRead, CostEvent::TupleHash, CostEvent::TupleAgg],
            &[CostEvent::TupleRead, CostEvent::TupleAgg],
            &[CostEvent::TupleRead, CostEvent::PageWriteSeq, CostEvent::TupleDest],
        ];
        for slowdown in [1.0, 1.75] {
            for template in templates {
                let mut batched = clock();
                batched.set_slowdown(slowdown);
                batched.record(CostEvent::TupleHash, 7); // non-zero start
                let mut looped = batched.clone();
                batched.record_tuples(template, 1013);
                for _ in 0..1013 {
                    for &e in template {
                        looped.record(e, 1);
                    }
                }
                assert_eq!(batched.now_ms().to_bits(), looped.now_ms().to_bits());
                assert_eq!(
                    batched.breakdown().cpu_ms.to_bits(),
                    looped.breakdown().cpu_ms.to_bits()
                );
                assert_eq!(
                    batched.breakdown().io_ms.to_bits(),
                    looped.breakdown().io_ms.to_bits()
                );
            }
        }
    }

    #[test]
    fn breakdown_add() {
        let mut a = TimeBreakdown {
            cpu_ms: 1.0,
            io_ms: 2.0,
            net_ms: 3.0,
            wait_ms: 4.0,
        };
        a.add(&TimeBreakdown {
            cpu_ms: 0.5,
            io_ms: 0.5,
            net_ms: 0.5,
            wait_ms: 0.5,
        });
        assert_eq!(a.total_ms(), 12.0);
    }
}
