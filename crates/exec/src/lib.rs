//! # adaptagg-exec
//!
//! The Gamma-style execution substrate (§2: "we assume a Gamma-like
//! architecture where each relational operation is represented by
//! operators"): a thread-per-node simulated shared-nothing cluster with
//! **virtual-time** accounting.
//!
//! * [`Clock`] — each node's virtual clock, advanced by
//!   [`adaptagg_model::CostEvent`]s (it implements `CostTracker`), by
//!   network transfer completions, and by Lamport observation of incoming
//!   message timestamps. A run's elapsed virtual time is the max over all
//!   node clocks — the metric of every figure in the paper.
//! * [`NodeCtx`] — what an algorithm sees on one node: its id, clock,
//!   private [`adaptagg_storage::SimDisk`], and fabric endpoint. All
//!   sends/receives go through it so protocol CPU (`m_p`) and transfer
//!   time (`m_l` / bus) are charged consistently on both sides.
//! * [`operators`] — scan+project and store, charging the paper's select
//!   and result-I/O costs.
//! * [`Exchange`] — the hash-partitioning exchange operator with 2 KB
//!   message blocking and end-of-stream bookkeeping.
//! * [`run_cluster`] — spawn N node threads, run one closure per node,
//!   collect per-node outputs and timing reports.
//!
//! The algorithms themselves live in `adaptagg-algos`; nothing here knows
//! which of the paper's six strategies is executing.

pub mod clock;
pub mod cluster;
pub mod error;
pub mod exchange;
pub mod morsel;
pub mod node;
pub mod operators;
pub mod recovery;
pub mod runstats;

pub use clock::{Clock, PhaseMark, TimeBreakdown};
pub use cluster::{
    run_cluster, ClusterConfig, ClusterRun, WATCHDOG_MS_PER_NODE, WATCHDOG_US_PER_PAGE,
};
pub use error::ExecError;
pub use exchange::Exchange;
pub use morsel::{
    build_select_mask, replay_scan_journal, scan_morsel, ScanJournal, MORSEL_FAIL, MORSEL_PASS,
};
pub use node::{NodeCtx, DEFAULT_WATCHDOG};
pub use recovery::{new_store, CheckpointStore, RecoveryPolicy, RecoverySession, Segment};
pub use runstats::{NodeRecoveryStats, NodeReport, RecoveryStats, RunResult};

/// Re-export: fault plans and link retry are configured on
/// [`ClusterConfig`] / [`RecoveryPolicy`].
pub use adaptagg_net::{FaultPlan, LinkFaults, LinkRetryPolicy, NodeFaults};

/// Re-export: the observability layer's types, so algorithms and tools
/// consume the trace API through the execution substrate (`NodeCtx`
/// carries the per-node trace handle; [`ClusterRun`] carries the run
/// trace).
pub use adaptagg_obs::{
    Histogram, LinkTrace, MetricSet, NodeTrace, NodeTraceReport, PhaseKind, PhaseTotal,
    RecoveryAttemptTrace, RunTrace, SpanRecord, SwitchCause, TraceEvent,
};
