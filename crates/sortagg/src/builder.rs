//! Sorted-run formation with early aggregation.

use adaptagg_model::{
    AggQuery, AggStates, CostEvent, CostTracker, GroupKey, ModelError, RowKind, Value,
};
use adaptagg_storage::{SpillFile, StorageError};
use std::collections::BTreeMap;

/// Builds sorted runs: a memory-bounded ordered table that seals itself
/// to a [`SpillFile`] (written in key order) whenever it reaches the
/// group budget.
#[derive(Debug)]
pub struct RunBuilder {
    query: AggQuery,
    table: BTreeMap<GroupKey, AggStates>,
    max_entries: usize,
    page_bytes: usize,
    sealed: Vec<SpillFile>,
    rows_in: u64,
}

impl RunBuilder {
    /// A builder for `query` (projected form) with a `max_entries` group
    /// budget per run.
    pub fn new(query: AggQuery, max_entries: usize, page_bytes: usize) -> Self {
        RunBuilder {
            query,
            table: BTreeMap::new(),
            max_entries: max_entries.max(1),
            page_bytes,
            sealed: Vec::new(),
            rows_in: 0,
        }
    }

    /// Rows pushed so far.
    pub fn rows_in(&self) -> u64 {
        self.rows_in
    }

    /// Runs sealed so far (excluding the in-memory one).
    pub fn sealed_runs(&self) -> usize {
        self.sealed.len()
    }

    /// Groups resident in the current in-memory run.
    pub fn resident_groups(&self) -> usize {
        self.table.len()
    }

    /// Push a row of either kind. Charges `t_r` (read) + `t_h` (ordered
    /// insertion; see crate docs on cost parity) + `t_a` (combine).
    pub fn push<T: CostTracker>(
        &mut self,
        kind: RowKind,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        tracker.record(CostEvent::TupleRead, 1);
        tracker.record(CostEvent::TupleHash, 1);
        self.rows_in += 1;

        let k = self.query.group_by.len();
        let key = match kind {
            RowKind::Raw => self.query.key_of_values(values)?,
            RowKind::Partial => {
                if values.len() != self.query.partial_row_arity() {
                    return Err(ModelError::PartialArityMismatch {
                        expected: self.query.partial_row_arity(),
                        found: values.len(),
                    }
                    .into());
                }
                GroupKey::new(values[..k].to_vec())
            }
        };

        // Early aggregation: combine into the resident run if the key is
        // present; otherwise admit it (sealing first if at budget).
        if !self.table.contains_key(&key) && self.table.len() >= self.max_entries {
            self.seal_run(tracker)?;
        }
        let states = self
            .table
            .entry(key)
            .or_insert_with(|| AggStates::new(&self.query.aggs));
        match kind {
            RowKind::Raw => states.update_from_tuple(&self.query.aggs, values)?,
            RowKind::Partial => states.merge_partial_values(&values[k..])?,
        }
        tracker.record(CostEvent::TupleAgg, 1);
        Ok(())
    }

    /// Seal the resident run to disk in key order (BTreeMap iteration is
    /// sorted). Charges `t_w` per row plus page writes.
    fn seal_run<T: CostTracker>(&mut self, tracker: &mut T) -> Result<(), StorageError> {
        if self.table.is_empty() {
            return Ok(());
        }
        let mut run = SpillFile::new(self.page_bytes);
        for (key, states) in std::mem::take(&mut self.table) {
            tracker.record(CostEvent::TupleWrite, 1);
            let mut row = key.into_values();
            row.extend(states.to_partial_values());
            run.spool(&row, tracker)?;
        }
        run.finish(tracker);
        self.sealed.push(run);
        Ok(())
    }

    /// Finish run formation. Returns all sealed runs plus the resident
    /// run's rows (which never touch disk — the hybrid trick: the last
    /// run merges from memory).
    #[allow(clippy::type_complexity)]
    pub fn finish<T: CostTracker>(
        mut self,
        tracker: &mut T,
    ) -> Result<(Vec<SpillFile>, Vec<Vec<Value>>), StorageError> {
        let mut resident: Vec<Vec<Value>> = Vec::with_capacity(self.table.len());
        for (key, states) in std::mem::take(&mut self.table) {
            tracker.record(CostEvent::TupleWrite, 1);
            let mut row = key.into_values();
            row.extend(states.to_partial_values());
            resident.push(row);
        }
        Ok((self.sealed, resident))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec, CountingTracker, NullTracker};
    use adaptagg_storage::SpillFile;

    fn query() -> AggQuery {
        AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)])
    }

    fn raw(g: i64, v: i64) -> Vec<Value> {
        vec![Value::Int(g), Value::Int(v)]
    }

    fn drain_run(run: SpillFile) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        run.drain(&mut NullTracker, |_t, row| {
            out.push(row.to_vec());
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn small_input_stays_resident() {
        let mut b = RunBuilder::new(query(), 100, 256);
        let mut tr = NullTracker;
        for i in 0..50 {
            b.push(RowKind::Raw, &raw(i % 10, 1), &mut tr).unwrap();
        }
        assert_eq!(b.sealed_runs(), 0);
        assert_eq!(b.resident_groups(), 10);
        let (runs, resident) = b.finish(&mut tr).unwrap();
        assert!(runs.is_empty());
        assert_eq!(resident.len(), 10);
        // Resident rows are key-ordered (BTreeMap).
        let keys: Vec<i64> = resident.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn early_aggregation_combines_before_sealing() {
        // 10 groups repeated 100x with budget 10: everything combines in
        // memory, nothing seals.
        let mut b = RunBuilder::new(query(), 10, 256);
        let mut tr = CountingTracker::new();
        for i in 0..1000 {
            b.push(RowKind::Raw, &raw(i % 10, 1), &mut tr).unwrap();
        }
        assert_eq!(b.sealed_runs(), 0);
        assert_eq!(tr.count(CostEvent::PageWriteSeq), 0);
    }

    #[test]
    fn overflow_seals_sorted_runs() {
        let mut b = RunBuilder::new(query(), 4, 256);
        let mut tr = CountingTracker::new();
        // 12 distinct groups in arrival order 11,10,…,0: 2 seals.
        for g in (0..12).rev() {
            b.push(RowKind::Raw, &raw(g, 1), &mut tr).unwrap();
        }
        assert_eq!(b.sealed_runs(), 2);
        let (runs, resident) = b.finish(&mut tr).unwrap();
        assert_eq!(resident.len(), 4);
        for run in runs {
            let rows = drain_run(run);
            assert_eq!(rows.len(), 4);
            let keys: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "run not sorted: {keys:?}");
        }
    }

    #[test]
    fn partial_rows_combine_too() {
        let mut b = RunBuilder::new(query(), 100, 256);
        let mut tr = NullTracker;
        b.push(RowKind::Raw, &raw(1, 5), &mut tr).unwrap();
        b.push(RowKind::Partial, &[Value::Int(1), Value::Int(37)], &mut tr)
            .unwrap();
        let (_, resident) = b.finish(&mut tr).unwrap();
        assert_eq!(resident, vec![vec![Value::Int(1), Value::Int(42)]]);
    }

    #[test]
    fn bad_partial_arity_is_error() {
        let mut b = RunBuilder::new(query(), 100, 256);
        assert!(b
            .push(RowKind::Partial, &[Value::Int(1)], &mut NullTracker)
            .is_err());
    }
}
