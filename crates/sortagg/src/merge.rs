//! K-way merge of sorted runs with aggregation.

use adaptagg_model::{AggQuery, AggStates, CostEvent, CostTracker, GroupKey, Value};
use adaptagg_storage::{SpillFile, StorageError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What the merge emits per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeEmit {
    /// Finalized result columns.
    Finalized,
    /// Encoded partial-state columns.
    Partial,
}

/// One cursor over a materialized run.
struct RunCursor {
    rows: std::vec::IntoIter<Vec<Value>>,
}

/// Merge sorted runs (plus the resident in-memory rows of the final run)
/// into key-ordered output rows, combining equal keys' partial states.
///
/// Charges: page reads + `t_r` per row when draining runs (via the spill
/// machinery), `t_r` per heap pop (the merge comparison work — see the
/// crate's cost-parity note), `t_a` per combine, and `t_w` per emitted
/// row.
pub fn merge_runs<T: CostTracker>(
    query: &AggQuery,
    runs: Vec<SpillFile>,
    resident: Vec<Vec<Value>>,
    emit: MergeEmit,
    tracker: &mut T,
) -> Result<Vec<Vec<Value>>, StorageError> {
    let k = query.group_by.len();

    // Materialize each run's rows (charging its reads); runs are small
    // relative to the input thanks to early aggregation.
    let mut cursors: Vec<RunCursor> = Vec::with_capacity(runs.len() + 1);
    for run in runs {
        let mut rows = Vec::with_capacity(run.tuple_count());
        run.drain(tracker, |t, row| {
            t.record(CostEvent::TupleRead, 1);
            rows.push(row.to_vec());
            Ok(())
        })?;
        cursors.push(RunCursor {
            rows: rows.into_iter(),
        });
    }
    cursors.push(RunCursor {
        rows: resident.into_iter(),
    });

    // Seed the heap with each cursor's head. Reverse for a min-heap on
    // (key, cursor index) — the index breaks ties deterministically.
    let mut heap: BinaryHeap<Reverse<(GroupKey, usize)>> = BinaryHeap::new();
    let mut heads: Vec<Option<Vec<Value>>> = Vec::with_capacity(cursors.len());
    for (i, c) in cursors.iter_mut().enumerate() {
        let head = c.rows.next();
        if let Some(row) = &head {
            heap.push(Reverse((GroupKey::new(row[..k].to_vec()), i)));
        }
        heads.push(head);
    }

    let mut out: Vec<Vec<Value>> = Vec::new();
    let mut current: Option<(GroupKey, AggStates)> = None;

    while let Some(Reverse((key, i))) = heap.pop() {
        tracker.record(CostEvent::TupleRead, 1); // merge comparison work
        let row = heads[i].take().expect("head present for heap entry");

        // Advance cursor i.
        if let Some(next) = cursors[i].rows.next() {
            heap.push(Reverse((GroupKey::new(next[..k].to_vec()), i)));
            heads[i] = Some(next);
        }

        match &mut current {
            Some((cur_key, states)) if *cur_key == key => {
                states.merge_partial_values(&row[k..])?;
                tracker.record(CostEvent::TupleAgg, 1);
            }
            _ => {
                if let Some((done_key, done)) = current.take() {
                    out.push(emit_row(done_key, done, emit, tracker));
                }
                let mut states = AggStates::new(&query.aggs);
                states.merge_partial_values(&row[k..])?;
                tracker.record(CostEvent::TupleAgg, 1);
                current = Some((key, states));
            }
        }
    }
    if let Some((key, states)) = current {
        out.push(emit_row(key, states, emit, tracker));
    }
    Ok(out)
}

fn emit_row<T: CostTracker>(
    key: GroupKey,
    states: AggStates,
    emit: MergeEmit,
    tracker: &mut T,
) -> Vec<Value> {
    tracker.record(CostEvent::TupleWrite, 1);
    let mut row = key.into_values();
    match emit {
        MergeEmit::Finalized => row.extend(states.finalize()),
        MergeEmit::Partial => row.extend(states.to_partial_values()),
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec, NullTracker, RowKind};

    fn query() -> AggQuery {
        AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)])
    }

    fn runs_from(groups_per_run: &[&[(i64, i64)]]) -> (Vec<SpillFile>, Vec<Vec<Value>>) {
        let mut runs = Vec::new();
        for rows in groups_per_run {
            let mut run = SpillFile::new(256);
            for &(g, v) in rows.iter() {
                run.spool(&[Value::Int(g), Value::Int(v)], &mut NullTracker)
                    .unwrap();
            }
            run.finish(&mut NullTracker);
            runs.push(run);
        }
        (runs, Vec::new())
    }

    #[test]
    fn merges_disjoint_and_overlapping_runs() {
        let (runs, resident) =
            runs_from(&[&[(1, 10), (3, 30)], &[(2, 20), (3, 3)], &[(1, 1)]]);
        let out = merge_runs(&query(), runs, resident, MergeEmit::Finalized, &mut NullTracker)
            .unwrap();
        assert_eq!(
            out,
            vec![
                vec![Value::Int(1), Value::Int(11)],
                vec![Value::Int(2), Value::Int(20)],
                vec![Value::Int(3), Value::Int(33)],
            ]
        );
    }

    #[test]
    fn resident_rows_participate() {
        let (runs, _) = runs_from(&[&[(1, 10)]]);
        let resident = vec![vec![Value::Int(0), Value::Int(5)], vec![Value::Int(1), Value::Int(2)]];
        let out = merge_runs(&query(), runs, resident, MergeEmit::Finalized, &mut NullTracker)
            .unwrap();
        assert_eq!(
            out,
            vec![
                vec![Value::Int(0), Value::Int(5)],
                vec![Value::Int(1), Value::Int(12)],
            ]
        );
    }

    #[test]
    fn empty_input_empty_output() {
        let out = merge_runs(
            &query(),
            Vec::new(),
            Vec::new(),
            MergeEmit::Finalized,
            &mut NullTracker,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn partial_emission_round_trips() {
        let (runs, _) = runs_from(&[&[(7, 1)], &[(7, 2)]]);
        let partials =
            merge_runs(&query(), runs, Vec::new(), MergeEmit::Partial, &mut NullTracker).unwrap();
        assert_eq!(partials.len(), 1);
        // Feed the partial into a fresh builder and finalize.
        let mut b = crate::builder::RunBuilder::new(query(), 10, 256);
        b.push(RowKind::Partial, &partials[0], &mut NullTracker)
            .unwrap();
        let (_, resident) = b.finish(&mut NullTracker).unwrap();
        assert_eq!(resident, vec![vec![Value::Int(7), Value::Int(3)]]);
    }

    #[test]
    fn output_is_globally_sorted() {
        let (runs, _) = runs_from(&[
            &[(0, 1), (5, 1), (9, 1)],
            &[(2, 1), (5, 1), (7, 1)],
            &[(1, 1), (8, 1)],
        ]);
        let out =
            merge_runs(&query(), runs, Vec::new(), MergeEmit::Finalized, &mut NullTracker).unwrap();
        let keys: Vec<i64> = out.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![0, 1, 2, 5, 7, 8, 9]);
    }
}
