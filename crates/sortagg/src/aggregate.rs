//! The sort-based aggregator: run formation + k-way merge behind the
//! same push/finish interface as the hash aggregator.

use crate::builder::RunBuilder;
use crate::merge::{merge_runs, MergeEmit};
use adaptagg_model::{AggQuery, CostTracker, ResultRow, RowKind, Value};
use adaptagg_storage::StorageError;

/// Behaviour counters for one sort-based aggregation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SortAggStats {
    /// Rows pushed.
    pub rows_in: u64,
    /// Sorted runs that were sealed to disk (0 = everything fit).
    pub runs_sealed: u64,
    /// Groups emitted.
    pub groups_out: u64,
}

impl SortAggStats {
    /// Whether any run touched disk.
    pub fn spilled(&self) -> bool {
        self.runs_sealed > 0
    }
}

/// A memory-bounded sort-based aggregator. Emits **key-ordered** output —
/// the property hash aggregation cannot offer, and the reason sort-based
/// plans survive when an ORDER BY or merge-join sits downstream.
#[derive(Debug)]
pub struct SortAggregator {
    query: AggQuery,
    builder: RunBuilder,
}

impl SortAggregator {
    /// An aggregator for `query` (projected form) with a `max_entries`
    /// run budget.
    pub fn new(query: AggQuery, max_entries: usize, page_bytes: usize) -> Self {
        SortAggregator {
            builder: RunBuilder::new(query.clone(), max_entries, page_bytes),
            query,
        }
    }

    /// Push a raw tuple.
    pub fn push_raw<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        self.builder.push(RowKind::Raw, values, tracker)
    }

    /// Push a partial row.
    pub fn push_partial<T: CostTracker>(
        &mut self,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        self.builder.push(RowKind::Partial, values, tracker)
    }

    /// Push a row of either kind.
    pub fn push<T: CostTracker>(
        &mut self,
        kind: RowKind,
        values: &[Value],
        tracker: &mut T,
    ) -> Result<(), StorageError> {
        self.builder.push(kind, values, tracker)
    }

    /// Finish: merge all runs, emitting partial rows (local phases) in
    /// key order.
    pub fn finish_partials<T: CostTracker>(
        self,
        tracker: &mut T,
    ) -> Result<(Vec<Vec<Value>>, SortAggStats), StorageError> {
        self.finish_with(MergeEmit::Partial, tracker)
    }

    /// Finish: merge all runs into finalized, key-ordered result rows.
    pub fn finish_rows<T: CostTracker>(
        self,
        tracker: &mut T,
    ) -> Result<(Vec<ResultRow>, SortAggStats), StorageError> {
        let query = self.query.clone();
        let (flat, stats) = self.finish_with(MergeEmit::Finalized, tracker)?;
        let rows = flat
            .into_iter()
            .map(|vals| ResultRow::from_values(&query, vals).map_err(StorageError::from))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((rows, stats))
    }

    fn finish_with<T: CostTracker>(
        self,
        emit: MergeEmit,
        tracker: &mut T,
    ) -> Result<(Vec<Vec<Value>>, SortAggStats), StorageError> {
        let rows_in = self.builder.rows_in();
        let (runs, resident) = self.builder.finish(tracker)?;
        let runs_sealed = runs.len() as u64;
        let out = merge_runs(&self.query, runs, resident, emit, tracker)?;
        let stats = SortAggStats {
            rows_in,
            runs_sealed,
            groups_out: out.len() as u64,
        };
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec, NullTracker};

    fn query() -> AggQuery {
        AggQuery::new(
            vec![0],
            vec![AggSpec::over(AggFunc::Sum, 1), AggSpec::count_star()],
        )
    }

    fn run_sorted(rows: &[(i64, i64)], budget: usize) -> (Vec<ResultRow>, SortAggStats) {
        let mut agg = SortAggregator::new(query(), budget, 256);
        let mut tr = NullTracker;
        for &(g, v) in rows {
            agg.push_raw(&[Value::Int(g), Value::Int(v)], &mut tr).unwrap();
        }
        agg.finish_rows(&mut tr).unwrap()
    }

    fn reference(rows: &[(i64, i64)]) -> Vec<(i64, i64, i64)> {
        let mut m: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for &(g, v) in rows {
            let e = m.entry(g).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        m.into_iter().map(|(g, (s, c))| (g, s, c)).collect()
    }

    fn as_triples(rows: &[ResultRow]) -> Vec<(i64, i64, i64)> {
        rows.iter()
            .map(|r| {
                (
                    r.key.values()[0].as_i64().unwrap(),
                    r.aggs[0].as_i64().unwrap(),
                    r.aggs[1].as_i64().unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn in_memory_case_is_exact_and_sorted() {
        let rows: Vec<(i64, i64)> = (0..200).map(|i| (i % 20, i)).collect();
        let (out, stats) = run_sorted(&rows, 1000);
        assert_eq!(as_triples(&out), reference(&rows));
        assert!(!stats.spilled());
        assert_eq!(stats.groups_out, 20);
    }

    #[test]
    fn external_case_is_exact_and_sorted() {
        let rows: Vec<(i64, i64)> = (0..3000).map(|i| ((i * 7) % 500, 1)).collect();
        let (out, stats) = run_sorted(&rows, 32);
        assert_eq!(as_triples(&out), reference(&rows));
        assert!(stats.spilled());
        assert!(stats.runs_sealed >= 2);
        // Output is globally key-ordered — the sort-based selling point.
        let keys: Vec<i64> = out.iter().map(|r| r.key.values()[0].as_i64().unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn partials_round_trip_between_sort_aggregators() {
        let rows: Vec<(i64, i64)> = (0..400).map(|i| (i % 40, 2)).collect();
        let mut local = SortAggregator::new(query(), 8, 256);
        let mut tr = NullTracker;
        for &(g, v) in &rows {
            local.push_raw(&[Value::Int(g), Value::Int(v)], &mut tr).unwrap();
        }
        let (partials, _) = local.finish_partials(&mut tr).unwrap();

        let mut merge = SortAggregator::new(query(), 1000, 256);
        for p in &partials {
            merge.push_partial(p, &mut tr).unwrap();
        }
        let (out, _) = merge.finish_rows(&mut tr).unwrap();
        assert_eq!(as_triples(&out), reference(&rows));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use adaptagg_model::{AggFunc, AggSpec, NullTracker};
    use proptest::prelude::*;

    proptest! {
        /// Sort-based and unbounded-hash reference agree for any input
        /// and any run budget.
        #[test]
        fn prop_sort_equals_reference(
            rows in proptest::collection::vec((0i64..64, -100i64..100), 0..400),
            budget in 1usize..40,
        ) {
            let query = AggQuery::new(vec![0], vec![AggSpec::over(AggFunc::Sum, 1)]);
            let mut agg = SortAggregator::new(query, budget, 128);
            let mut tr = NullTracker;
            for &(g, v) in &rows {
                agg.push_raw(&[Value::Int(g), Value::Int(v)], &mut tr).unwrap();
            }
            let (out, _) = agg.finish_rows(&mut tr).unwrap();

            let mut expect: std::collections::BTreeMap<i64, i64> = Default::default();
            for &(g, v) in &rows {
                *expect.entry(g).or_insert(0) += v;
            }
            prop_assert_eq!(out.len(), expect.len());
            for (row, (g, s)) in out.iter().zip(expect) {
                prop_assert_eq!(row.key.values()[0].as_i64().unwrap(), g);
                prop_assert_eq!(row.aggs[0].as_i64().unwrap(), s);
            }
        }
    }
}
