//! # adaptagg-sortagg
//!
//! Sort-based aggregation: the alternative local-aggregation strategy of
//! Bitton et al. \[BBDW83\], which the paper's §1 cites as the prior
//! approach ("two sorting based algorithms for aggregate processing …
//! the first algorithm is somewhat similar to the Two Phase approach in
//! that it uses local aggregation").
//!
//! The classic external-sort-with-early-aggregation pipeline:
//!
//! 1. **run formation** — accumulate tuples in a memory-bounded ordered
//!    table (early aggregation: duplicates combine *before* anything is
//!    written), and when it reaches `M` groups, seal it to disk as a
//!    sorted run ([`RunBuilder`]);
//! 2. **k-way merge** — merge all runs by key, combining equal keys'
//!    partial states, emitting finalized or partial rows in key order
//!    ([`merge_runs`]).
//!
//! [`SortAggregator`] packages the pipeline behind the same
//! push/finish interface as `adaptagg_hashagg::HashAggregator`, so the
//! algorithms layer can swap strategies (`AlgorithmKind::SortTwoPhase`).
//!
//! Cost parity: Table 1 prices hashing (`t_h`) but not comparisons; we
//! charge `t_h` per run-table insertion (the BTree descent) and `t_r` per
//! comparison-driven move in the merge, keeping the two strategies
//! comparable under one parameter set. Run I/O goes through the same
//! spill machinery (page writes on seal, reads on merge) as hash
//! overflow, so the I/O accounting is identical.

pub mod aggregate;
pub mod builder;
pub mod merge;

pub use aggregate::{SortAggStats, SortAggregator};
pub use builder::RunBuilder;
pub use merge::merge_runs;
